"""FHE-workload perf trajectory — the paper's end-to-end motivation.

Standalone benchmark (also importable under pytest) timing layers of
DGHV homomorphic AND gates — the workload the accelerator exists for —
through the Engine façade:

- **direct**: ``scheme.multiply_many`` batching the γ×γ-bit ciphertext
  products into one SSA pass;
- **jobs**: the same layer through ``JobScheduler.map("dghv-mult",...)``
  (the futures-style service shape);
- **modeled**: one gate on the ``hw-model`` backend for the cycle
  count, next to the paper's 122.88 µs Table II anchor;
- **rlwe**: batched ``multiply_plain_many`` ring products on the
  *fused* negacyclic plan vs the explicit-twist unfused path —
  bit-identity is checked on every measurement, and the full run
  gates the paper 64K plan at ≥ 1.15× (ISSUE 5 acceptance);
- **ordering**: the same ring products on the permutation-free
  (decimated DIF/DIT) fused plan vs the natural-order fused plan —
  bit-identity strict, ≥1× floor with a timer-jitter allowance
  (ISSUE 6).

Every gate is decrypted and checked against the plaintext AND truth.
Results go to two places:

- ``BENCH_fhe_workload.json`` at the repo root — the machine-readable
  perf-trajectory point (FHE-workload series, one point per PR);
- ``benchmarks/output/fhe_workload.txt`` — the human-readable table.

With ``--inject`` the script switches into **resilience mode** (ISSUE
7): it measures the ``software-mp`` batch-multiply throughput clean vs
with one worker SIGKILLed mid-batch by the deterministic injection
harness (:mod:`repro.engine.faultinject`), asserts bit-identical
recovery on every run, and gates the recovery overhead — CI runs
``--smoke --inject worker-kill`` and fails if recovering from the kill
costs more than 25% over the clean run.  Full resilience runs measure
the paper's 64K workload (786432-bit products) and write the
``BENCH_resilience.json`` trajectory point.

Usage::

    python benchmarks/bench_fhe_workload.py            # full
    python benchmarks/bench_fhe_workload.py --smoke    # CI gate
    python benchmarks/bench_fhe_workload.py --smoke --inject worker-kill
    python benchmarks/bench_fhe_workload.py --inject worker-kill  # 64K
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import sys
import time
from pathlib import Path
from typing import List, Optional

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.engine import Engine  # noqa: E402
from repro.fhe.params import MEDIUM, SMALL_DGHV, TOY  # noqa: E402
from repro.hw.timing import PAPER_TIMING  # noqa: E402

DEFAULT_JSON = REPO_ROOT / "BENCH_fhe_workload.json"
DEFAULT_RESILIENCE_JSON = REPO_ROOT / "BENCH_resilience.json"
OUTPUT_DIR = Path(__file__).resolve().parent / "output"

#: The jobs path reuses the same batched SSA pass; it must stay within
#: a small constant factor of calling ``multiply_many`` directly.
FULL_MAX_JOBS_OVERHEAD = 2.0
SMOKE_MAX_JOBS_OVERHEAD = 5.0
#: Fused negacyclic plans must beat the explicit-twist route by this
#: factor on the paper 64K plan (ISSUE 5 acceptance; full runs only —
#: smoke checks bit-identity without a timing gate).
RLWE_FUSED_SPEEDUP_FLOOR = 1.15
RLWE_ACCEPTANCE_N = 65536
#: Permutation-free vs permuted RLWE ring products (ISSUE 6): the
#: decimated pair strictly drops the digit-reversal gathers, but on a
#: fused plan that is the *only* saving (~1% of a limb-matmul
#: convolution — ψ-untwist and n⁻¹ are already stage constants), so
#: the ≥1× floor carries a timer-jitter allowance: bit-identity is
#: strict, and a real regression still trips the gate while sub-noise
#: effects cannot flake CI.
RLWE_ORDERING_FLOOR = 1.0
RLWE_ORDERING_JITTER = 0.05
#: Resilience mode (ISSUE 7): recovering from one worker SIGKILL must
#: cost at most this fraction over the clean run on the smoke workload
#: (CI gate).  Recovery replays the lost shards on a respawned pool
#: whose workers rebuild their engines and plan caches from scratch,
#: so the workload is sized to amortize that fixed cost well below the
#: gate (~4-8x headroom on a 1-CPU container).
MAX_RECOVERY_OVERHEAD = 0.25
#: Full resilience runs measure the paper's 64K workload, where the
#: respawned workers' 64K-point plan rebuild is a much larger fixed
#: cost; the lenient ceiling catches catastrophic regressions (e.g.
#: recovery re-running the whole batch more than once) without gating
#: on machine-dependent plan-build times.
FULL_MAX_RECOVERY_OVERHEAD = 0.75
#: (bits, batch) of the resilience workloads: smoke amortizes recovery
#: under the CI gate; full is the paper point (786432-bit products ↔
#: 64K-point transforms).
RESILIENCE_SMOKE_WORKLOAD = (98_304, 96)
RESILIENCE_FULL_WORKLOAD = (786_432, 48)


def _best_time(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _interleaved_best(fn_a, fn_b, repeats: int):
    """Best-of timing with A/B samples interleaved (noise-robust)."""
    best_a = best_b = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn_a()
        best_a = min(best_a, time.perf_counter() - start)
        start = time.perf_counter()
        fn_b()
        best_b = min(best_b, time.perf_counter() - start)
    return best_a, best_b


def run_case(
    engine: Engine, params, gates: int, repeats: int, seed: int
) -> dict:
    """One AND-gate layer at one parameter point, direct vs jobs."""
    rng = random.Random(seed)
    scheme = engine.fhe(params, rng=rng)
    keys = scheme.generate_keys()
    plain = [(rng.randrange(2), rng.randrange(2)) for _ in range(gates)]
    pairs = [
        (scheme.encrypt(keys, a), scheme.encrypt(keys, b))
        for a, b in plain
    ]
    truth = [a & b for a, b in plain]

    def direct():
        return scheme.multiply_many(keys, pairs)

    def jobs():
        return engine.map("dghv-mult", pairs, x0=keys.x0)

    decrypted_direct = [scheme.decrypt(keys, c) for c in direct()]
    decrypted_jobs = [scheme.decrypt(keys, c) for c in jobs()]
    correct = decrypted_direct == truth and decrypted_jobs == truth

    direct_s = _best_time(direct, repeats)
    jobs_s = _best_time(jobs, repeats)
    return {
        "params": params.name,
        "gamma_bits": params.gamma,
        "gates": gates,
        "direct_s": direct_s,
        "jobs_s": jobs_s,
        "direct_gates_per_s": gates / direct_s,
        "jobs_gates_per_s": gates / jobs_s,
        "jobs_overhead": jobs_s / direct_s,
        "correct": correct,
    }


def rlwe_case(n: int, batch: int, repeats: int, seed: int) -> dict:
    """Fused vs unfused ``multiply_plain_many`` at one ring dimension.

    Two RLWE contexts share the same parameters and ciphertexts; one is
    pinned to the fused negacyclic plan, the other to the explicit-twist
    cyclic plan.  Outputs must be bit-identical; the timing ratio is the
    fused-negacyclic speedup on the RLWE hot path.
    """
    from repro.fhe.rlwe import RLWE, RLWEParams
    from repro.ntt.plan import TWIST_NEGACYCLIC, plan_for_size

    params = RLWEParams(n=n, t=256, noise_bound=4)
    fused_scheme = RLWE(
        params,
        rng=random.Random(seed),
        plan=plan_for_size(n, twist=TWIST_NEGACYCLIC),
    )
    unfused_scheme = RLWE(
        params, rng=random.Random(seed), plan=plan_for_size(n)
    )
    rng = random.Random(seed + 1)
    secret = fused_scheme.generate_secret()
    messages = [
        [rng.randrange(params.t) for _ in range(n)] for _ in range(batch)
    ]
    plains = [
        [rng.randrange(params.t) for _ in range(n)] for _ in range(batch)
    ]
    cts = fused_scheme.encrypt_many(secret, messages)

    fused_out = fused_scheme.multiply_plain_many(cts, plains)
    unfused_out = unfused_scheme.multiply_plain_many(cts, plains)
    identical = all(
        np.array_equal(f.c0, u.c0) and np.array_equal(f.c1, u.c1)
        for f, u in zip(fused_out, unfused_out)
    )

    fused_s = _best_time(
        lambda: fused_scheme.multiply_plain_many(cts, plains), repeats
    )
    unfused_s = _best_time(
        lambda: unfused_scheme.multiply_plain_many(cts, plains), repeats
    )
    return {
        "n": n,
        "batch": batch,
        "unfused_s": unfused_s,
        "fused_s": fused_s,
        "fused_speedup": unfused_s / fused_s,
        "fused_products_per_s": 2 * batch / fused_s,
        "identical": identical,
    }


def ordering_rlwe_case(n: int, batch: int, repeats: int, seed: int) -> dict:
    """Permutation-free vs permuted RLWE ``multiply_plain_many``.

    Both schemes run ψ-fused plans; one keeps natural-order spectra
    (paying digit-reversal gathers around the pointwise product), the
    other runs the decimated DIF/DIT pair — the plan flavor
    ``Engine.fhe`` now binds by default.  Ciphertext outputs must be
    bit-identical; the timing ratio is the permutation-free speedup.
    """
    from repro.fhe.rlwe import RLWE, RLWEParams
    from repro.ntt.plan import (
        ORDER_DECIMATED,
        TWIST_NEGACYCLIC,
        plan_for_size,
    )

    params = RLWEParams(n=n, t=256, noise_bound=4)
    permuted_scheme = RLWE(
        params,
        rng=random.Random(seed),
        plan=plan_for_size(n, twist=TWIST_NEGACYCLIC),
    )
    free_scheme = RLWE(
        params,
        rng=random.Random(seed),
        plan=plan_for_size(
            n, twist=TWIST_NEGACYCLIC, ordering=ORDER_DECIMATED
        ),
    )
    rng = random.Random(seed + 1)
    secret = permuted_scheme.generate_secret()
    messages = [
        [rng.randrange(params.t) for _ in range(n)] for _ in range(batch)
    ]
    plains = [
        [rng.randrange(params.t) for _ in range(n)] for _ in range(batch)
    ]
    cts = permuted_scheme.encrypt_many(secret, messages)

    permuted_out = permuted_scheme.multiply_plain_many(cts, plains)
    free_out = free_scheme.multiply_plain_many(cts, plains)
    identical = all(
        np.array_equal(f.c0, u.c0) and np.array_equal(f.c1, u.c1)
        for f, u in zip(free_out, permuted_out)
    )

    permuted_s, free_s = _interleaved_best(
        lambda: permuted_scheme.multiply_plain_many(cts, plains),
        lambda: free_scheme.multiply_plain_many(cts, plains),
        repeats,
    )
    return {
        "n": n,
        "batch": batch,
        "permuted_s": permuted_s,
        "permutation_free_s": free_s,
        "speedup": permuted_s / free_s,
        "identical": identical,
    }


def modeled_gate() -> dict:
    """Cycle-model numbers: one toy gate plus the paper anchor."""
    engine = Engine(backend="hw-model")
    scheme = engine.fhe(TOY, rng=random.Random(99))
    keys = scheme.generate_keys()
    ca = scheme.encrypt(keys, 1)
    cb = scheme.encrypt(keys, 1)
    ands = scheme.multiply_many(keys, [(ca, cb)])
    report = engine.last_report
    report = report[0] if isinstance(report, list) else report
    ok = scheme.decrypt(keys, ands[0]) == 1 and report.total_cycles > 0
    return {
        "toy_gate_us": report.time_us,
        "toy_gate_cycles": report.total_cycles,
        "paper_gate_us": PAPER_TIMING.multiplication_time_us(),
        "paper_gamma_bits": SMALL_DGHV.gamma,
        "correct": ok,
    }


def render_table(report: dict) -> str:
    lines = [
        "FHE workload: DGHV AND-gate layers through the Engine",
        "",
        f"{'params':>10} {'gamma':>7} {'gates':>6} {'direct s':>10} "
        f"{'jobs s':>10} {'direct/s':>9} {'jobs/s':>9} {'ok':>4}",
    ]
    for r in report["results"]:
        lines.append(
            f"{r['params']:>10} {r['gamma_bits']:>7} {r['gates']:>6} "
            f"{r['direct_s']:>10.4f} {r['jobs_s']:>10.4f} "
            f"{r['direct_gates_per_s']:>9.1f} "
            f"{r['jobs_gates_per_s']:>9.1f} "
            f"{'yes' if r['correct'] else 'NO':>4}"
        )
    lines += [
        "",
        "RLWE multiply_plain_many: fused negacyclic plan vs explicit twist",
        "",
        f"{'n':>7} {'batch':>6} {'unfused s':>10} {'fused s':>10} "
        f"{'speedup':>8} {'ident':>6}",
    ]
    for r in report["rlwe"]:
        lines.append(
            f"{r['n']:>7} {r['batch']:>6} {r['unfused_s']:>10.4f} "
            f"{r['fused_s']:>10.4f} {r['fused_speedup']:>7.2f}x "
            f"{'yes' if r['identical'] else 'NO':>6}"
        )
    lines += [
        "",
        "RLWE orderings: permutation-free DIF/DIT pair vs permuted (fused)",
        "",
        f"{'n':>7} {'batch':>6} {'permuted s':>11} {'perm-free s':>12} "
        f"{'speedup':>8} {'ident':>6}",
    ]
    for r in report["ordering"]:
        lines.append(
            f"{r['n']:>7} {r['batch']:>6} {r['permuted_s']:>11.4f} "
            f"{r['permutation_free_s']:>12.4f} {r['speedup']:>7.2f}x "
            f"{'yes' if r['identical'] else 'NO':>6}"
        )
    model = report["modeled"]
    lines += [
        "",
        "cycle model context:",
        f"  toy gate ({TOY.gamma}-bit ciphertexts): "
        f"{model['toy_gate_us']:.2f} us "
        f"({model['toy_gate_cycles']} cycles)",
        f"  paper gate ({model['paper_gamma_bits']}-bit ciphertexts): "
        f"{model['paper_gate_us']:.2f} us (Table II) "
        f"-> ~{1e6 / model['paper_gate_us']:,.0f} AND gates/s/device",
        "  Gentry-Halevi software baseline the paper cites: "
        "> 1 s to encrypt a single bit",
    ]
    return "\n".join(lines)


def evaluate(report: dict, smoke: bool) -> List[str]:
    ceiling = SMOKE_MAX_JOBS_OVERHEAD if smoke else FULL_MAX_JOBS_OVERHEAD
    failures = []
    for r in report["results"]:
        tag = f"params={r['params']} gates={r['gates']}"
        if not r["correct"]:
            failures.append(f"{tag}: homomorphic ANDs decrypted wrong")
        if r["jobs_overhead"] > ceiling:
            failures.append(
                f"{tag}: jobs path cost {r['jobs_overhead']:.2f}x direct "
                f"(> {ceiling}x ceiling)"
            )
    if not report["modeled"]["correct"]:
        failures.append("cycle model gate failed its decrypt check")
    if abs(report["modeled"]["paper_gate_us"] - 122.88) > 0.01:
        failures.append("paper timing anchor drifted from 122.88 us")
    for r in report["rlwe"]:
        tag = f"rlwe n={r['n']} batch={r['batch']}"
        if not r["identical"]:
            failures.append(
                f"{tag}: fused multiply_plain_many diverged from the "
                f"explicit-twist path"
            )
        if not smoke and r["n"] == RLWE_ACCEPTANCE_N:
            if r["fused_speedup"] < RLWE_FUSED_SPEEDUP_FLOOR:
                failures.append(
                    f"{tag}: fused speedup {r['fused_speedup']:.2f}x "
                    f"< {RLWE_FUSED_SPEEDUP_FLOOR}x acceptance floor"
                )
    if not smoke and not any(
        r["n"] == RLWE_ACCEPTANCE_N for r in report["rlwe"]
    ):
        failures.append(
            f"no {RLWE_ACCEPTANCE_N}-point rlwe measurement present"
        )
    ordering_floor = RLWE_ORDERING_FLOOR - RLWE_ORDERING_JITTER
    for r in report["ordering"]:
        tag = f"ordering n={r['n']} batch={r['batch']}"
        if not r["identical"]:
            failures.append(
                f"{tag}: permutation-free multiply_plain_many diverged "
                f"from the natural-order path"
            )
        if r["speedup"] < ordering_floor:
            failures.append(
                f"{tag}: permutation-free pipeline regressed to "
                f"{r['speedup']:.2f}x (< {ordering_floor:.2f}x permuted)"
            )
    return failures


def run_suite(smoke: bool, repeats: Optional[int], seed: int) -> dict:
    engine = Engine()
    if smoke:
        cases = [(TOY, 8)]
        rlwe_cases = [(1024, 4)]
        ordering_cases = [(1024, 4)]
        repeats = repeats or 2
    else:
        cases = [(TOY, 64), (MEDIUM, 16)]
        rlwe_cases = [(4096, 8), (RLWE_ACCEPTANCE_N, 4)]
        ordering_cases = [(4096, 8), (RLWE_ACCEPTANCE_N, 4)]
        repeats = repeats or 3
    try:
        results = [
            run_case(engine, params, gates, repeats, seed + i)
            for i, (params, gates) in enumerate(cases)
        ]
    finally:
        engine.close()
    rlwe_results = [
        rlwe_case(n, batch, repeats, seed + 50 + i)
        for i, (n, batch) in enumerate(rlwe_cases)
    ]
    # Gather-only margin: interleaved best-of-5-or-more keeps the
    # permutation-free ratio honest on a noisy machine.
    ordering_results = [
        ordering_rlwe_case(n, batch, max(repeats, 5), seed + 70 + i)
        for i, (n, batch) in enumerate(ordering_cases)
    ]
    report = {
        "benchmark": "fhe_workload",
        "schema_version": 3,
        "mode": "smoke" if smoke else "full",
        "created_unix": time.time(),
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpus": os.cpu_count(),
        },
        "config": {
            "engine_kernel": engine.config.kernel,
            "repeats": repeats,
            "seed": seed,
            "timer": "best-of-repeats wall clock",
        },
        "results": results,
        "rlwe": rlwe_results,
        "ordering": ordering_results,
        "modeled": modeled_gate(),
    }
    failures = evaluate(report, smoke)
    report["acceptance"] = {
        "max_jobs_overhead": (
            SMOKE_MAX_JOBS_OVERHEAD if smoke else FULL_MAX_JOBS_OVERHEAD
        ),
        "rlwe_fused_speedup_floor": (
            None if smoke else RLWE_FUSED_SPEEDUP_FLOOR
        ),
        "rlwe_ordering_floor": RLWE_ORDERING_FLOOR,
        "rlwe_ordering_jitter": RLWE_ORDERING_JITTER,
        "failures": failures,
        "passed": not failures,
    }
    return report


def resilience_case(
    bits: int, count: int, repeats: int, seed: int, inject_spec: str
) -> dict:
    """Clean vs injected-kill ``software-mp`` batch-multiply throughput.

    Every run (clean and injected alike) is asserted bit-identical to
    Python big-int truth; the injected runs re-arm the fault plan per
    repeat, so each one pays one worker SIGKILL plus the full recovery
    (pool respawn, worker re-warm, lost-shard replay).
    """
    from repro.engine import ExecutionConfig, faultinject

    rng = random.Random(seed)
    pairs = [
        (rng.getrandbits(bits) | 1, rng.getrandbits(bits) | 1)
        for _ in range(count)
    ]
    left = [a for a, _ in pairs]
    right = [b for _, b in pairs]
    truth = [a * b for a, b in pairs]
    flags = {"clean_ok": True, "injected_ok": True}
    engine = Engine(
        config=ExecutionConfig(workers=2), backend="software-mp"
    )
    try:
        # Warm the pool, the worker engines and every plan cache so
        # the clean baseline measures steady-state throughput.
        flags["clean_ok"] &= engine.multiply(left, right) == truth

        def clean():
            flags["clean_ok"] &= engine.multiply(left, right) == truth

        clean_s = _best_time(clean, repeats)
        respawns_before = engine.backend.fault_report.respawns

        def injected():
            with faultinject.inject(inject_spec):
                flags["injected_ok"] &= (
                    engine.multiply(left, right) == truth
                )

        injected_s = _best_time(injected, repeats)
        respawns = engine.backend.fault_report.respawns - respawns_before
        fault_events = [
            event.render() for event in engine.backend.fault_report.events
        ]
    finally:
        engine.close()
    return {
        "bits": bits,
        "count": count,
        "inject": inject_spec,
        "clean_s": clean_s,
        "injected_s": injected_s,
        "clean_ops_per_s": count / clean_s,
        "injected_ops_per_s": count / injected_s,
        "recovery_overhead": injected_s / clean_s - 1.0,
        "respawns": respawns,
        "clean_ok": flags["clean_ok"],
        "injected_ok": flags["injected_ok"],
        "fault_events": fault_events,
    }


def evaluate_resilience(report: dict, smoke: bool) -> List[str]:
    ceiling = (
        MAX_RECOVERY_OVERHEAD if smoke else FULL_MAX_RECOVERY_OVERHEAD
    )
    failures = []
    for r in report["resilience"]:
        tag = f"resilience bits={r['bits']} count={r['count']}"
        if not r["clean_ok"]:
            failures.append(f"{tag}: clean products diverged from truth")
        if not r["injected_ok"]:
            failures.append(
                f"{tag}: recovered products NOT bit-identical to truth"
            )
        if r["respawns"] < 1:
            failures.append(
                f"{tag}: no pool respawn recorded — the injected kill "
                f"never fired"
            )
        if r["recovery_overhead"] > ceiling:
            failures.append(
                f"{tag}: recovery overhead "
                f"{r['recovery_overhead']:+.1%} exceeds the "
                f"{ceiling:.0%} ceiling"
            )
    return failures


def run_resilience_suite(
    smoke: bool, repeats: Optional[int], seed: int, inject_spec: str
) -> dict:
    if inject_spec in ("worker-kill", "kill"):
        inject_spec = "worker-kill:0"
    bits, count = (
        RESILIENCE_SMOKE_WORKLOAD if smoke else RESILIENCE_FULL_WORKLOAD
    )
    repeats = repeats or (2 if smoke else 2)
    results = [resilience_case(bits, count, repeats, seed, inject_spec)]
    report = {
        "benchmark": "resilience",
        "schema_version": 1,
        "mode": "smoke" if smoke else "full",
        "created_unix": time.time(),
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpus": os.cpu_count(),
        },
        "config": {
            "repeats": repeats,
            "seed": seed,
            "workers": 2,
            "inject": inject_spec,
            "timer": "best-of-repeats wall clock",
        },
        "resilience": results,
    }
    failures = evaluate_resilience(report, smoke)
    report["acceptance"] = {
        "max_recovery_overhead": (
            MAX_RECOVERY_OVERHEAD if smoke else FULL_MAX_RECOVERY_OVERHEAD
        ),
        "failures": failures,
        "passed": not failures,
    }
    return report


def render_resilience_table(report: dict) -> str:
    lines = [
        "Resilience: software-mp throughput, clean vs one injected "
        "worker kill",
        "",
        f"{'bits':>8} {'count':>6} {'clean s':>9} {'injected s':>11} "
        f"{'overhead':>9} {'respawns':>9} {'ok':>4}",
    ]
    for r in report["resilience"]:
        ok = r["clean_ok"] and r["injected_ok"]
        lines.append(
            f"{r['bits']:>8} {r['count']:>6} {r['clean_s']:>9.3f} "
            f"{r['injected_s']:>11.3f} {r['recovery_overhead']:>+8.1%} "
            f"{r['respawns']:>9} {'yes' if ok else 'NO':>4}"
        )
    lines.append("")
    lines.append("fault events observed:")
    for r in report["resilience"]:
        for event in r["fault_events"]:
            lines.append(f"  {event}")
    return "\n".join(lines)


def test_smoke_workload():
    """Pytest hook: the smoke suite must pass its gates."""
    report = run_suite(smoke=True, repeats=1, seed=0xFE)
    assert report["acceptance"]["passed"], report["acceptance"]["failures"]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small layer for CI; lenient overhead ceiling",
    )
    parser.add_argument(
        "--repeats", type=int, default=None, help="timing repeats per case"
    )
    parser.add_argument("--seed", type=int, default=0xFE)
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        help=(
            "where to write the JSON report (default: repo-root "
            "BENCH_fhe_workload.json — or BENCH_resilience.json with "
            "--inject — on full runs, nowhere on --smoke)"
        ),
    )
    parser.add_argument(
        "--inject",
        type=str,
        default=None,
        metavar="SPEC",
        help=(
            "resilience mode: measure software-mp throughput clean vs "
            "with this fault injected (e.g. 'worker-kill'); gates "
            "recovery overhead and bit-identical recovery instead of "
            "the FHE-workload gates"
        ),
    )
    args = parser.parse_args(argv)

    if args.inject:
        report = run_resilience_suite(
            args.smoke, args.repeats, args.seed, args.inject
        )
        table = render_resilience_table(report)
        default_json = DEFAULT_RESILIENCE_JSON
        output_name = "resilience.txt"
    else:
        report = run_suite(args.smoke, args.repeats, args.seed)
        table = render_table(report)
        default_json = DEFAULT_JSON
        output_name = "fhe_workload.txt"
    print(table)

    json_path = args.json
    if json_path is None and not args.smoke:
        json_path = default_json
    if json_path is not None:
        json_path.parent.mkdir(parents=True, exist_ok=True)
        json_path.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nwrote {json_path}")
    if not args.smoke:
        OUTPUT_DIR.mkdir(exist_ok=True)
        (OUTPUT_DIR / output_name).write_text(table + "\n")

    failures = report["acceptance"]["failures"]
    if failures:
        print("\nFAIL:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    if args.inject:
        print(
            "\nPASS: recovery bit-identical, respawn recorded, "
            "overhead gate met"
        )
    else:
        print("\nPASS: every gate decrypts correctly, overhead gates met")
    return 0


if __name__ == "__main__":
    sys.exit(main())
