"""E11 — the end-to-end FHE workload (the paper's motivation).

Runs DGHV homomorphic AND gates with ciphertext products routed through
the accelerator model, and reports the accelerator time per gate at the
paper's full parameters next to the software baselines the paper cites
(Table II context: hundreds of µs per multiplication in hardware versus
the >1 s/bit software encours of Gentry-Halevi the introduction quotes).
"""

import random

from benchmarks.conftest import write_artifact
from repro.fhe.dghv import DGHV
from repro.fhe.ops import he_mult
from repro.fhe.params import SMALL_DGHV, TOY
from repro.hw.accelerator import HEAccelerator
from repro.hw.timing import PAPER_TIMING
from repro.ntt.plan import plan_for_size
from repro.ssa.encode import SSAParameters


def test_fhe_and_gate_on_accelerator(benchmark, artifact_dir):
    params = SSAParameters(coefficient_bits=24, operand_coefficients=128)
    accelerator = HEAccelerator(
        pes=4, plan=plan_for_size(256, (16, 16)), params=params
    )
    reports = []

    def accelerated(a, b):
        product, report = accelerator.multiply(a, b)
        reports.append(report)
        return product

    scheme = DGHV(TOY, multiplier=accelerated, rng=random.Random(99))
    keys = scheme.generate_keys()
    ca = scheme.encrypt(keys, 1)
    cb = scheme.encrypt(keys, 1)

    def gate():
        return he_mult(scheme, ca, cb, x0=keys.x0)

    result = benchmark(gate)
    assert scheme.decrypt(keys, result) == 1

    gamma_ratio = SMALL_DGHV.gamma / TOY.gamma
    lines = [
        "FHE workload on the accelerator model",
        "",
        f"toy parameters: gamma = {TOY.gamma} bits "
        f"-> {reports[0].time_us:.2f} us per ciphertext product "
        f"({reports[0].total_cycles} cycles on a 256-point pipeline)",
        f"paper parameters: gamma = {SMALL_DGHV.gamma} bits "
        f"-> {PAPER_TIMING.multiplication_time_us():.2f} us per product "
        "(64K-point pipeline, Table II)",
        "",
        "context from the paper:",
        "  - Gentry-Halevi software: > 1 s to encrypt a single bit",
        "  - accelerated DGHV mult: 122 us -> ~8,100 AND gates/s/device",
        f"  - ciphertext scale-up toy -> paper: {gamma_ratio:.0f}x",
    ]
    write_artifact(artifact_dir, "fhe_workload.txt", "\n".join(lines))

    assert reports[0].total_cycles > 0
    assert scheme.decrypt(keys, result) == 1
