"""E9 — PE scaling and radix-plan flexibility sweeps.

The architecture is explicitly sized for scalability ("inherent support
for scalability to ultralong operands ... possibly in multi-FPGA
settings").  The sweep reports T_FFT / T_MULT for P = 1..16 — with the
paper's P = 4 and the [28]-equivalent P = 1 as anchors — and checks the
exchange volume still hides behind compute at every P where the
schedulability condition l > d holds.
"""

import numpy as np

from benchmarks.conftest import write_artifact
from repro.analysis.sweep import pe_scaling_sweep, radix_plan_sweep
from repro.analysis.tables import shape_check
from repro.field.solinas import P as FIELD_P
from repro.field.vector import to_field_array
from repro.hw.accelerator import HEAccelerator
from repro.hw.hypercube import HypercubeTopology


def test_pe_scaling(benchmark, artifact_dir, rng):
    points = benchmark(pe_scaling_sweep)

    lines = [
        "PE scaling (64K-point transform, 200 MHz)",
        "",
        f"{'PEs':>4} {'T_FFT us':>10} {'T_MULT us':>10} {'efficiency':>11} "
        f"{'l>d':>5}",
    ]
    for point in points:
        cube = HypercubeTopology(point.pes)
        lines.append(
            f"{point.pes:>4} {point.fft_us:>10.2f} {point.mult_us:>10.2f} "
            f"{point.parallel_efficiency:>10.0%} "
            f"{str(cube.validate_interleaving(3)):>5}"
        )

    anchor = {p.pes: p for p in points}
    checks = [
        shape_check("P=4 T_FFT", anchor[4].fft_us, 30.7, 0.01),
        shape_check("P=4 T_MULT", anchor[4].mult_us, 122.0, 0.01),
        shape_check("P=1 T_FFT (≈[28])", anchor[1].fft_us, 125.0, 0.05),
    ]
    lines += ["", "shape checks:"] + [c.render() for c in checks]

    # Exchange hiding measured from the live model at each valid P.
    lines += ["", "exchange hiding (simulated):"]
    data = to_field_array([rng.randrange(FIELD_P) for _ in range(65536)])
    for pes in (1, 2, 4):
        acc = HEAccelerator(pes=pes)
        _, report = acc.distributed_ntt(data)
        hidden = all(s.overlapped for s in report.stages if s.exchange_cycles)
        lines.append(
            f"  P={pes}: total {report.total_cycles} cycles, "
            f"stalls {report.stall_cycles}, exchanges hidden: {hidden}"
        )
        assert report.stall_cycles == 0

    write_artifact(artifact_dir, "pe_scaling.txt", "\n".join(lines))
    assert all(c.ok for c in checks)


def test_radix_plan_flexibility(benchmark, artifact_dir):
    sweep = benchmark(radix_plan_sweep)
    lines = [
        "radix-plan flexibility for the 64K transform (P = 4)",
        "",
    ]
    for radices, fft_us in sweep.items():
        name = "x".join(map(str, radices))
        marker = "  <- paper Eq. 2" if radices == (64, 64, 16) else ""
        lines.append(f"  {name:<12} {fft_us:>7.2f} us{marker}")
    lines.append(
        "\nall plans tie at 8 output points/cycle — radix choice trades "
        "twiddle-multiplier area, not latency"
    )
    write_artifact(artifact_dir, "radix_plans.txt", "\n".join(lines))
    assert len(set(round(v, 2) for v in sweep.values())) == 1
