"""E13 (extension) — power and energy per multiplication.

Quantifies the efficiency argument the paper inherits from [28] ("the
FPGA version is at least twice as fast as the GPU one, with lower
power consumption"): a resource-based power estimate of the reproduced
design and the energy-per-786,432-bit-product comparison against the
published GPU and ASIC baselines of Table II.
"""

from benchmarks.conftest import write_artifact
from repro.hw.power import (
    energy_comparison,
    estimate_power,
    render_energy_table,
)


def test_power_and_energy(benchmark, artifact_dir):
    def run():
        return estimate_power(), energy_comparison()

    power, rows = benchmark(run)

    lines = [
        "power estimate (proposed design, resource-based):",
        f"  {power.render()}",
        "",
        "energy per 786,432-bit multiplication:",
        render_energy_table(rows),
        "",
        "shape: the FPGA beats both GPUs on speed AND power, hence by",
        "~2 orders of magnitude on energy; the 90nm ASIC core [30] is",
        "slower than the FPGA but wins on energy — consistent with the",
        "technology positioning in the paper's related work.",
    ]
    write_artifact(artifact_dir, "power_energy.txt", "\n".join(lines))

    by_name = {r.design: r for r in rows}
    ours = by_name["proposed"]
    assert ours.power_w < 30.0
    for gpu in ("wang_gpu[26]", "wang_gpu[27]"):
        assert by_name[gpu].energy_mj / ours.energy_mj > 50
    assert by_name["wang_vlsi_asic[30]"].energy_mj < ours.energy_mj
