"""E6 — structural dumps for the architecture figures (Figs. 1, 3, 4, 5).

The paper's remaining figures are block diagrams.  The artifact renders
each one from the *live model objects* — component inventory, widths,
port counts, resource shares — demonstrating that the modeled
architecture is the drawn architecture.
"""

from benchmarks.conftest import write_artifact
from repro.hw.banked_memory import (
    ACCESS_WIDTH,
    BANK_COLS,
    BANK_DEPTH,
    BANK_ROWS,
    BankedMemory,
    M20K_PER_BANK,
)
from repro.hw.fft64_baseline import BaselineFFT64Unit
from repro.hw.fft64_unit import FFT64Config, FFT64Unit, PIPELINE_LATENCY
from repro.hw.pe import ProcessingElement


def _fig1_pe(pe: ProcessingElement) -> str:
    parts = pe.resource_breakdown()
    lines = [
        "Fig. 1 — architecture of a 64K FFT processing element",
        f"  {pe.name}: partition {pe.partition_points} points",
        "  +- Radix-64/16 FFT unit (8 points/cycle out, "
        f"pipeline latency {PIPELINE_LATENCY})",
        f"  +- {len(pe.twiddle_multipliers)} twiddle modular multipliers "
        "(4x 32x32 DSP each)",
        "  +- double buffering: 2 buffers x "
        f"{len(pe.buffers[0])} banked arrays (swap per stage)",
        "  +- data route: address generator "
        "(8-spaced reductor order pre-arranged by the unit)",
        "  +- hypercube link interfaces (one per dimension)",
        "",
        "  resource shares:",
    ]
    total = pe.resources().alms
    for name, est in parts.items():
        lines.append(
            f"    {name:<22} {est.alms:>8.0f} ALMs ({est.alms / total:>4.0%})"
        )
    return "\n".join(lines)


def _fig3_baseline(unit: BaselineFFT64Unit) -> str:
    est = unit.resources()
    return "\n".join(
        [
            "Fig. 3 — baseline Radix-64 unit [28]",
            "  64 independent computing chains, each:",
            "    shifter bank (8 live barrel shifters) -> 8-input "
            "carry-save adder tree -> CS accumulator -> private "
            "modular reductor (Normalize + AddMod)",
            "  64-word writeback (memory parallelism 64)",
            f"  census: {est.alms:.0f} ALMs, {est.registers:.0f} regs",
        ]
    )


def _fig4_proposed(unit: FFT64Unit) -> str:
    est = unit.resources()
    cfg = unit.config
    return "\n".join(
        [
            "Fig. 4 — optimized FFT-64 unit (Eq. 5 dataflow)",
            f"  stage 1: {'4' if cfg.halved_chains else '8'} shared chains "
            "(fixed shifts, even/odd dual-output trees, CS merged "
            f"{'on' if cfg.merged_carry_save else 'off'})",
            "  mid twiddles: 8 selectable shifters (w64^jk1, w16^j)",
            "  64 accumulators in 8 blocks; per-block 4:1 shift mux "
            "+ subtract flag"
            if cfg.reduced_twiddle_shifts
            else "  64 accumulators, 8:1 shift muxes",
            f"  {'8 shared' if cfg.shared_reductors else '64 private'} "
            "modular reductors -> 8-word writeback",
            f"  census: {est.alms:.0f} ALMs, {est.registers:.0f} regs",
        ]
    )


def _fig5_memory(memory: BankedMemory) -> str:
    return "\n".join(
        [
            "Fig. 5 — banked memory buffer",
            f"  {BANK_ROWS}x{BANK_COLS} dual-port banks, "
            f"{BANK_DEPTH} x 64-bit words each "
            f"({M20K_PER_BANK} M20K blocks/bank)",
            f"  array capacity: {BANK_ROWS * BANK_COLS * BANK_DEPTH} points "
            "(256 Kbit)",
            f"  access parallelism: {ACCESS_WIDTH} words/cycle/port "
            "(reads on one port network, writes on the other)",
            "  diagonal-skew mapping bank(i) = (i + i/16) mod 16: "
            "strides 1/2/4/8 all conflict-free",
        ]
    )


def test_architecture_figures(benchmark, artifact_dir):
    def build():
        pe = ProcessingElement(0, 16384)
        return (
            _fig1_pe(pe),
            _fig3_baseline(BaselineFFT64Unit()),
            _fig4_proposed(FFT64Unit(config=FFT64Config.proposed())),
            _fig5_memory(BankedMemory()),
        )

    figures = benchmark(build)
    text = "\n\n".join(figures)
    write_artifact(artifact_dir, "architecture_figures.txt", text)

    assert "Fig. 1" in text and "Fig. 5" in text
    # The Fig. 3 unit must be the expensive one.
    baseline = BaselineFFT64Unit().resources()
    proposed = FFT64Unit().resources()
    assert baseline.alms > proposed.alms
