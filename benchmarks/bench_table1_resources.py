"""E3 — regenerate paper Table I (resource usage comparison).

The benchmark times the full structural census; the artifact is the
computed table next to the paper's printed numbers, plus the
per-component breakdowns the paper aggregates away.
"""

from benchmarks.conftest import write_artifact
from repro.analysis.tables import shape_check
from repro.hw.reports import (
    PAPER_TABLE1,
    baseline_fft_census,
    proposed_fft_census,
    table1_report,
)


def test_table1_resource_census(benchmark, artifact_dir):
    table = benchmark(table1_report)

    checks = [
        shape_check(
            "proposed ALMs",
            table.row("proposed").alms,
            PAPER_TABLE1["proposed"]["alms"],
        ),
        shape_check(
            "proposed registers",
            table.row("proposed").registers,
            PAPER_TABLE1["proposed"]["registers"],
            tolerance=0.25,
        ),
        shape_check(
            "proposed DSP",
            table.row("proposed").dsp_blocks,
            PAPER_TABLE1["proposed"]["dsp_blocks"],
            tolerance=0.0,
        ),
        shape_check(
            "baseline ALMs",
            table.row("baseline[28]").alms,
            PAPER_TABLE1["baseline[28]"]["alms"],
        ),
        shape_check(
            "baseline registers",
            table.row("baseline[28]").registers,
            PAPER_TABLE1["baseline[28]"]["registers"],
            tolerance=0.25,
        ),
        shape_check(
            "baseline DSP",
            table.row("baseline[28]").dsp_blocks,
            PAPER_TABLE1["baseline[28]"]["dsp_blocks"],
            tolerance=0.0,
        ),
        shape_check(
            "hardware saving (ALM+reg+DSP mean)",
            (
                table.saving("alms")
                + table.saving("registers")
                + table.saving("dsp_blocks")
            )
            / 3,
            0.60,
            tolerance=0.12,
        ),
    ]

    lines = [table.render(), "", "shape checks:"]
    lines += [c.render() for c in checks]
    lines += ["", proposed_fft_census().render(), "", baseline_fft_census().render()]
    write_artifact(artifact_dir, "table1_resources.txt", "\n".join(lines))

    assert all(c.ok for c in checks)


def test_table1_calibration_sensitivity(benchmark, artifact_dir):
    """The saving conclusion under ±30% perturbation of every unit cost
    — evidence that Table I's comparison is structural."""
    from repro.analysis.sensitivity import (
        render_sensitivity,
        savings_envelope,
        savings_sensitivity,
    )

    points = benchmark.pedantic(savings_sensitivity, rounds=1, iterations=1)
    write_artifact(
        artifact_dir,
        "table1_sensitivity.txt",
        render_sensitivity(points),
    )
    low, high = savings_envelope(points)
    assert 0.45 < low and high < 0.75
