"""Render every ``BENCH_*.json`` perf series across commits.

The repo root carries one machine-readable trajectory point per
benchmark per PR (``BENCH_ntt_kernels.json``, ``BENCH_ssa_multiply.json``,
``BENCH_fhe_workload.json``, ...).  This tool walks the git history of
each file, extracts one headline metric per commit, and renders the
trajectory as an ASCII chart (plus a PNG when matplotlib happens to be
installed — it is an optional extra, never a requirement).

Usage::

    python benchmarks/plot_trajectory.py                 # all series
    python benchmarks/plot_trajectory.py --bench ssa_multiply
    python benchmarks/plot_trajectory.py --output out.txt

Exit status is non-zero only on malformed history (a tracked
``BENCH_*.json`` that never parses); an empty history is fine (the
working tree counts as one point).
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_DIR = Path(__file__).resolve().parent / "output"
BAR_WIDTH = 40


def _headline_ntt_kernels(report: dict) -> Tuple[str, float]:
    best = max(
        r["limb_matmul_transforms_per_s"] for r in report["results"]
    )
    return "best limb-matmul transforms/s", best


def _headline_ssa_multiply(report: dict) -> Tuple[str, float]:
    best = max(r["batched_ops_per_s"] for r in report["results"])
    return "best batched products/s", best


def _headline_fhe_workload(report: dict) -> Tuple[str, float]:
    best = max(
        max(r["direct_gates_per_s"], r.get("jobs_gates_per_s", 0.0))
        for r in report["results"]
    )
    return "best AND gates/s", best


def _headline_resilience(report: dict) -> Tuple[str, float]:
    best = max(r["injected_ops_per_s"] for r in report["resilience"])
    return "injected-kill products/s", best


def _headline_service(report: dict) -> Tuple[str, float]:
    best = max(r["coalesced_jobs_per_s"] for r in report["results"])
    return "best coalesced jobs/s", best


def _headline_rlwe_pipeline(report: dict) -> Tuple[str, float]:
    best = max(r["ct_products_per_s"] for r in report["multiply"])
    return "best ct x ct products/s", best


def _headline_arch_dse(report: dict) -> Tuple[str, float]:
    results = report["results"]
    paper = results["paper"]["total_cycles"]
    best = min(m["total_cycles"] for m in results["frontier"])
    saved = 100.0 * max(0, paper - best) / paper
    return "best frontier cycles saved vs paper (%)", saved


def _headline_generic(report: dict) -> Tuple[str, float]:
    """Fallback: first positive float leaf under ``results``."""

    def leaves(node):
        if isinstance(node, dict):
            for value in node.values():
                yield from leaves(value)
        elif isinstance(node, list):
            for value in node:
                yield from leaves(value)
        elif isinstance(node, (int, float)) and not isinstance(node, bool):
            yield float(node)

    for value in leaves(report.get("results", report)):
        if value > 0:
            return "first metric", value
    raise ValueError("no numeric leaf found")


HEADLINES: Dict[str, Callable[[dict], Tuple[str, float]]] = {
    "ntt_kernels": _headline_ntt_kernels,
    "ssa_multiply": _headline_ssa_multiply,
    "fhe_workload": _headline_fhe_workload,
    "resilience": _headline_resilience,
    "service": _headline_service,
    "rlwe_pipeline": _headline_rlwe_pipeline,
    "arch_dse": _headline_arch_dse,
}


def _git(*args: str) -> str:
    return subprocess.run(
        ["git", *args],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        check=True,
    ).stdout


def history_points(path: Path) -> List[dict]:
    """One point per commit touching ``path``, oldest first, plus the
    working tree if it differs from HEAD (or is untracked)."""
    name = path.name
    points: List[dict] = []
    try:
        commits = _git(
            "log", "--reverse", "--format=%H %ct %s", "--", name
        ).splitlines()
    except subprocess.CalledProcessError:
        commits = []  # not a git checkout: working tree only
    last_blob: Optional[str] = None
    for line in commits:
        sha, stamp, _, = line.split(" ", 2)
        try:
            blob = _git("show", f"{sha}:{name}")
        except subprocess.CalledProcessError:
            continue  # deleted at this commit
        try:
            report = json.loads(blob)
        except json.JSONDecodeError as error:
            raise ValueError(f"{name} at {sha[:8]} is not JSON: {error}")
        points.append(
            {"commit": sha[:8], "unix": int(stamp), "report": report}
        )
        last_blob = blob
    if path.exists():
        blob = path.read_text()
        if blob != last_blob:
            points.append(
                {
                    "commit": "worktree",
                    "unix": int(path.stat().st_mtime),
                    "report": json.loads(blob),
                }
            )
    return points


def series_rows(name: str, points: List[dict]) -> List[dict]:
    """Extract the headline metric once per point (shared by the ASCII
    and PNG renderers; off-schema historical points fall back to the
    generic extractor instead of crashing)."""
    extractor = HEADLINES.get(name, _headline_generic)
    rows = []
    for point in points:
        try:
            label, value = extractor(point["report"])
        except Exception:
            label, value = _headline_generic(point["report"])
        rows.append(
            {
                "commit": point["commit"],
                "unix": point["unix"],
                "label": label,
                "value": value,
            }
        )
    return rows


def render_series(name: str, rows: List[dict]) -> str:
    if not rows:
        return f"{name}: no points"
    label = rows[-1]["label"]
    peak = max(row["value"] for row in rows)
    lines = [f"{name} — {label} (peak {peak:,.1f})"]
    for row in rows:
        value = row["value"]
        bar = "#" * max(1, round(BAR_WIDTH * value / peak)) if peak else ""
        day = time.strftime("%Y-%m-%d", time.localtime(row["unix"]))
        lines.append(
            f"  {row['commit']:>9} {day} {value:>14,.1f} {bar}"
        )
    return "\n".join(lines)


def maybe_png(series: Dict[str, List[dict]], path: Path) -> bool:
    """Best-effort PNG; returns False when matplotlib is missing."""
    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        return False
    fig, axes = plt.subplots(
        len(series), 1, figsize=(8, 3 * len(series)), squeeze=False
    )
    for ax, (name, rows) in zip(axes.flat, series.items()):
        values = [row["value"] for row in rows]
        ax.plot(range(len(values)), values, marker="o")
        ax.set_xticks(range(len(values)))
        ax.set_xticklabels(
            [row["commit"] for row in rows], rotation=45, fontsize=7
        )
        ax.set_title(name)
    fig.tight_layout()
    fig.savefig(path)
    return True


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--bench",
        action="append",
        default=None,
        help="series name (e.g. ssa_multiply); repeatable; default all",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="text output path (default benchmarks/output/trajectory.txt)",
    )
    args = parser.parse_args(argv)

    files = sorted(REPO_ROOT.glob("BENCH_*.json"))
    if args.bench:
        wanted = set(args.bench)
        files = [
            f for f in files if f.stem.replace("BENCH_", "") in wanted
        ]
        missing = wanted - {f.stem.replace("BENCH_", "") for f in files}
        if missing:
            print(f"error: no BENCH json for {sorted(missing)}", file=sys.stderr)
            return 1
    if not files:
        print("no BENCH_*.json series at the repo root", file=sys.stderr)
        return 1

    series: Dict[str, List[dict]] = {}
    blocks: List[str] = []
    for path in files:
        name = path.stem.replace("BENCH_", "")
        try:
            rows = series_rows(name, history_points(path))
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        series[name] = rows
        blocks.append(render_series(name, rows))

    text = "\n\n".join(
        ["perf trajectory across commits (one point per PR)", *blocks]
    )
    print(text)
    output = args.output
    if output is None:
        output = OUTPUT_DIR / "trajectory.txt"
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(text + "\n")
    print(f"\nwrote {output}")
    # The PNG render lands next to the text output, so CI can publish
    # both from one artifact directory.
    png_path = output.with_suffix(".png")
    if maybe_png(series, png_path):
        print(f"wrote {png_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
