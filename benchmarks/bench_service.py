"""Service-tier perf trajectory: coalescing under many-client load.

Standalone benchmark (also importable under pytest) driving the
:mod:`repro.serve` compute service with an **open-loop synthetic
many-client load**: several tenants fire single-item requests as fast
as admission allows (no client-side pacing), and the run measures what
the serving tier — not the raw engine — delivers:

- **sustained jobs/s**, naive vs coalesced: the same request stream is
  run once with coalescing disabled (every request is its own engine
  pass: the "library-internal FIFO" baseline the subsystem replaces)
  and once with the coalescing scheduler merging compatible requests
  into single ``*_many`` batched engine passes;
- **p99 latency** (client-observed: queue wait + execution), from the
  per-response ``latency_s`` the service stamps;
- **batch-fill ratio** from the metrics registry: mean requests and
  items per engine pass against the per-batch item budget.

Bit-identity is asserted on every measurement: the coalesced run's
per-request results must equal the naive run's, which must equal
ground truth.  The smoke gate (CI) requires coalesced throughput
≥ 1.3× naive on the multiply stream; full runs additionally measure a
batched-RLWE ``multiply_plain`` stream (the paper's workload) and
write the ``BENCH_service.json`` trajectory point rendered by
``plot_trajectory.py``.

Usage::

    python benchmarks/bench_service.py            # full
    python benchmarks/bench_service.py --smoke    # CI gate
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import sys
import time
from pathlib import Path
from typing import List, Optional

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.fhe.rlwe import RLWE, RLWEParams  # noqa: E402
from repro.serve import (  # noqa: E402
    ComputeService,
    MultiplyOp,
    RLWEMultiplyPlainOp,
    ServiceConfig,
)
from repro.serve.metrics import percentile  # noqa: E402

DEFAULT_JSON = REPO_ROOT / "BENCH_service.json"
OUTPUT_DIR = Path(__file__).resolve().parent / "output"

#: The acceptance gate: coalesced service throughput must beat naive
#: one-engine-pass-per-request submission by this factor on the
#: open-loop multiply stream, with bit-identical per-request results.
COALESCING_FLOOR = 1.3

#: Tenants the synthetic load is spread across (round-robin).
TENANTS = ("alice", "bob", "carol", "dave")

#: Queue bounds sized so the open-loop burst is *admitted*, not
#: rejected — this benchmark measures throughput, not backpressure.
_BENCH_QUEUE = dict(max_queue_per_tenant=4096, max_queue_global=8192)


def _service(coalesce: bool) -> ComputeService:
    return ComputeService(
        config=ServiceConfig(coalesce=coalesce, **_BENCH_QUEUE)
    )


def _drive(service: ComputeService, ops) -> dict:
    """Open-loop: submit every request at once, wait for all.

    Returns wall time, per-request results (submission order),
    client-observed latencies, and the service metrics snapshot.
    """
    start = time.perf_counter()
    futures = [
        service.submit(op, tenant=TENANTS[i % len(TENANTS)])
        for i, op in enumerate(ops)
    ]
    responses = [future.result() for future in futures]
    elapsed = time.perf_counter() - start
    if not all(r.ok for r in responses):
        bad = next(r for r in responses if not r.ok)
        raise RuntimeError(
            f"service run failed: {bad.status} {bad.error!r}"
        )
    return {
        "elapsed_s": elapsed,
        "results": [r.result for r in responses],
        "latencies": [r.latency_s for r in responses],
        "snapshot": service.stats(),
    }


def _measure_mode(make_ops, coalesce: bool, repeats: int) -> dict:
    """Best-of-repeats drive of a fresh service per repeat."""
    best = None
    for _ in range(repeats):
        service = _service(coalesce)
        try:
            run = _drive(service, make_ops())
        finally:
            service.shutdown()
        if best is None or run["elapsed_s"] < best["elapsed_s"]:
            best = run
    return best


def multiply_case(
    requests: int, bits: int, repeats: int, seed: int
) -> dict:
    """Open-loop single-pair multiply stream, naive vs coalesced."""
    rng = random.Random(seed)
    pairs = [
        (rng.getrandbits(bits) | 1, rng.getrandbits(bits) | 1)
        for _ in range(requests)
    ]
    truth = [[a * b] for a, b in pairs]

    def make_ops():
        return [MultiplyOp.of([pair]) for pair in pairs]

    naive = _measure_mode(make_ops, coalesce=False, repeats=repeats)
    coalesced = _measure_mode(make_ops, coalesce=True, repeats=repeats)

    def as_ints(results):
        return [[int(v) for v in row] for row in results]

    identical = (
        as_ints(naive["results"]) == truth
        and as_ints(coalesced["results"]) == truth
    )
    batching = coalesced["snapshot"]["coalescing"]
    return {
        "op": "multiply",
        "bits": bits,
        "requests": requests,
        "tenants": len(TENANTS),
        "naive_s": naive["elapsed_s"],
        "coalesced_s": coalesced["elapsed_s"],
        "naive_jobs_per_s": requests / naive["elapsed_s"],
        "coalesced_jobs_per_s": requests / coalesced["elapsed_s"],
        "coalescing_speedup": naive["elapsed_s"]
        / coalesced["elapsed_s"],
        "p99_latency_ms": percentile(
            sorted(coalesced["latencies"]), 0.99
        )
        * 1e3,
        "naive_p99_latency_ms": percentile(
            sorted(naive["latencies"]), 0.99
        )
        * 1e3,
        "requests_per_batch": batching["requests_per_batch"],
        "batch_fill_ratio": batching.get("fill_ratio", 0.0),
        "identical": identical,
    }


def rlwe_case(requests: int, n: int, repeats: int, seed: int) -> dict:
    """Open-loop single-ciphertext RLWE ``multiply_plain`` stream."""
    params = RLWEParams(n=n, t=256, noise_bound=4)
    scheme = RLWE(params, rng=random.Random(seed))
    secret = scheme.generate_secret()
    rng = random.Random(seed + 1)
    messages = [
        [rng.randrange(params.t) for _ in range(n)]
        for _ in range(requests)
    ]
    plains = [
        [rng.randrange(params.t) for _ in range(n)]
        for _ in range(requests)
    ]
    cts = scheme.encrypt_many(secret, messages)

    def make_ops():
        return [
            RLWEMultiplyPlainOp.of(params, [ct], [plain])
            for ct, plain in zip(cts, plains)
        ]

    naive = _measure_mode(make_ops, coalesce=False, repeats=repeats)
    coalesced = _measure_mode(make_ops, coalesce=True, repeats=repeats)
    identical = all(
        np.array_equal(got[0].c0, want[0].c0)
        and np.array_equal(got[0].c1, want[0].c1)
        for got, want in zip(coalesced["results"], naive["results"])
    )
    batching = coalesced["snapshot"]["coalescing"]
    return {
        "op": "rlwe-multiply-plain",
        "n": n,
        "requests": requests,
        "tenants": len(TENANTS),
        "naive_s": naive["elapsed_s"],
        "coalesced_s": coalesced["elapsed_s"],
        "naive_jobs_per_s": requests / naive["elapsed_s"],
        "coalesced_jobs_per_s": requests / coalesced["elapsed_s"],
        "coalescing_speedup": naive["elapsed_s"]
        / coalesced["elapsed_s"],
        "p99_latency_ms": percentile(
            sorted(coalesced["latencies"]), 0.99
        )
        * 1e3,
        "naive_p99_latency_ms": percentile(
            sorted(naive["latencies"]), 0.99
        )
        * 1e3,
        "requests_per_batch": batching["requests_per_batch"],
        "batch_fill_ratio": batching.get("fill_ratio", 0.0),
        "identical": identical,
    }


def render_table(report: dict) -> str:
    lines = [
        "Service tier: open-loop many-client load, naive vs coalesced",
        "",
        f"{'op':>20} {'size':>7} {'reqs':>5} {'naive/s':>9} "
        f"{'coal/s':>9} {'speedup':>8} {'p99 ms':>8} {'fill':>6} "
        f"{'r/batch':>8} {'ident':>6}",
    ]
    for r in report["results"]:
        size = r.get("bits", r.get("n", 0))
        lines.append(
            f"{r['op']:>20} {size:>7} {r['requests']:>5} "
            f"{r['naive_jobs_per_s']:>9.1f} "
            f"{r['coalesced_jobs_per_s']:>9.1f} "
            f"{r['coalescing_speedup']:>7.2f}x "
            f"{r['p99_latency_ms']:>8.1f} "
            f"{r['batch_fill_ratio']:>6.0%} "
            f"{r['requests_per_batch']:>8.2f} "
            f"{'yes' if r['identical'] else 'NO':>6}"
        )
    lines += [
        "",
        "naive = coalescing disabled (one engine pass per request); "
        "coalesced = the",
        "service scheduler merging compatible requests into batched "
        "*_many passes.",
        "p99 is client-observed (queue wait + execution) on the "
        "coalesced run.",
    ]
    return "\n".join(lines)


def evaluate(report: dict) -> List[str]:
    failures = []
    for r in report["results"]:
        tag = f"op={r['op']} requests={r['requests']}"
        if not r["identical"]:
            failures.append(
                f"{tag}: coalesced results NOT bit-identical to "
                f"individual submission"
            )
        if r["coalescing_speedup"] < COALESCING_FLOOR:
            failures.append(
                f"{tag}: coalescing {r['coalescing_speedup']:.2f}x "
                f"< {COALESCING_FLOOR}x floor over naive submission"
            )
        if r["requests_per_batch"] <= 1.0:
            failures.append(
                f"{tag}: no batching happened "
                f"({r['requests_per_batch']:.2f} requests/batch)"
            )
    return failures


def run_suite(smoke: bool, repeats: Optional[int], seed: int) -> dict:
    if smoke:
        repeats = repeats or 2
        results = [multiply_case(96, 2048, repeats, seed)]
    else:
        repeats = repeats or 3
        results = [
            multiply_case(192, 2048, repeats, seed),
            multiply_case(96, 4096, repeats, seed + 1),
            rlwe_case(96, 256, repeats, seed + 2),
        ]
    report = {
        "benchmark": "service",
        "schema_version": 1,
        "mode": "smoke" if smoke else "full",
        "created_unix": time.time(),
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpus": os.cpu_count(),
        },
        "config": {
            "repeats": repeats,
            "seed": seed,
            "tenants": list(TENANTS),
            "max_coalesce_requests": ServiceConfig().max_coalesce_requests,
            "max_coalesce_items": ServiceConfig().max_coalesce_items,
            "timer": "best-of-repeats wall clock, open-loop",
        },
        "results": results,
    }
    failures = evaluate(report)
    report["acceptance"] = {
        "coalescing_floor": COALESCING_FLOOR,
        "failures": failures,
        "passed": not failures,
    }
    return report


def test_smoke_workload():
    """Pytest hook: the smoke suite must pass its gates."""
    report = run_suite(smoke=True, repeats=1, seed=0xD5)
    assert report["acceptance"]["passed"], report["acceptance"]["failures"]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small multiply stream for CI; same 1.3x coalescing gate",
    )
    parser.add_argument(
        "--repeats", type=int, default=None, help="repeats per mode"
    )
    parser.add_argument("--seed", type=int, default=0xD5)
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        help=(
            "where to write the JSON report (default: repo-root "
            "BENCH_service.json on full runs, nowhere on --smoke)"
        ),
    )
    args = parser.parse_args(argv)

    report = run_suite(args.smoke, args.repeats, args.seed)
    table = render_table(report)
    print(table)

    json_path = args.json
    if json_path is None and not args.smoke:
        json_path = DEFAULT_JSON
    if json_path is not None:
        json_path.parent.mkdir(parents=True, exist_ok=True)
        json_path.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nwrote {json_path}")
    if not args.smoke:
        OUTPUT_DIR.mkdir(exist_ok=True)
        (OUTPUT_DIR / "service.txt").write_text(table + "\n")

    failures = report["acceptance"]["failures"]
    if failures:
        print("\nFAIL:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(
        "\nPASS: coalesced results bit-identical, "
        f">= {COALESCING_FLOOR}x naive throughput"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
