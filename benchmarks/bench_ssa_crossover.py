"""E7 — the SSA-vs-classical crossover (Section III's ≥100,000-bit claim).

Two views:

- *measured*: wall-clock times of our schoolbook, Karatsuba, Toom-3 and
  SSA implementations at growing operand sizes (pytest-benchmark timing
  on the paper-size SSA multiply);
- *modeled*: limb-operation counts locating the crossover analytically.

Python-level constant factors differ from hardware, so the measured
table is evidence of the trend while the op-count model carries the
crossover claim.
"""

import time

from benchmarks.conftest import write_artifact
from repro.analysis.sweep import crossover_point, operand_size_sweep
from repro.analysis.tables import shape_check
from repro.ssa.baselines import (
    karatsuba_multiply,
    schoolbook_multiply,
    toom3_multiply,
)
from repro.ssa.multiplier import SSAMultiplier


def _time_once(func, *args) -> float:
    start = time.perf_counter()
    func(*args)
    return time.perf_counter() - start


def test_crossover_study(benchmark, artifact_dir, rng):
    lines = [
        "SSA vs classical multipliers",
        "",
        "measured wall clock (our implementations, one shot):",
        f"{'bits':>9} {'schoolbook':>11} {'karatsuba':>11} "
        f"{'toom3':>11} {'ssa':>11}",
    ]
    for bits in (4096, 16384, 65536):
        a, b = rng.getrandbits(bits), rng.getrandbits(bits)
        ssa = SSAMultiplier.for_bits(bits)
        row = [
            _time_once(schoolbook_multiply, a, b),
            _time_once(karatsuba_multiply, a, b),
            _time_once(toom3_multiply, a, b),
            _time_once(ssa.multiply, a, b),
        ]
        lines.append(
            f"{bits:>9} " + " ".join(f"{t:>10.4f}s" for t in row)
        )

    # The paper-size SSA multiply is the timed benchmark target.
    big = 786_432
    a, b = rng.getrandbits(big), rng.getrandbits(big)
    ssa_full = SSAMultiplier()

    product = benchmark.pedantic(
        lambda: ssa_full.multiply(a, b), rounds=1, iterations=1
    )
    assert product == a * b

    lines += ["", "modeled limb-operation counts:"]
    lines.append(f"{'bits':>9} {'schoolbook':>12} {'karatsuba':>12} {'ssa':>12}")
    for point in operand_size_sweep():
        lines.append(
            f"{point.bits:>9} {point.schoolbook:>12.3g} "
            f"{point.karatsuba:>12.3g} {point.ssa:>12.3g}"
        )

    karatsuba_x = crossover_point("karatsuba")
    check = shape_check(
        "SSA/Karatsuba crossover (bits)", karatsuba_x, 100_000, tolerance=0.5
    )
    lines += ["", check.render(), "paper: 'at least 100,000 bits'"]
    write_artifact(artifact_dir, "ssa_crossover.txt", "\n".join(lines))
    assert check.ok
