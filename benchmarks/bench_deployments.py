"""E12 (extension) — prototype vs final platform, and batch headroom.

Quantifies two statements the paper makes in passing:

- Section IV: the design "was initially prototyped on a multi-board
  platform based on low-end devices (Altera Cyclone V) then extended
  to a hybrid on-/off-chip solution relying on a larger device" — the
  deployment model shows the off-chip links exposing the hypercube
  exchange that the on-chip design hides;
- Section V: "the unused resources might be used to achieve further
  performance improvements, although this was not exploited" — the
  batch scheduler shows the three-stage macro-pipeline those resources
  enable (~1.33× steady-state throughput).
"""

from benchmarks.conftest import write_artifact
from repro.hw.batch import schedule_batch
from repro.hw.deployment import (
    CYCLONE_MULTI_BOARD,
    STRATIX_ON_CHIP,
    evaluate_deployment,
)
from repro.hw.timing import PAPER_TIMING


def test_deployment_comparison(benchmark, artifact_dir):
    def run():
        return (
            evaluate_deployment(CYCLONE_MULTI_BOARD),
            evaluate_deployment(STRATIX_ON_CHIP),
        )

    prototype, final = benchmark(run)

    lines = [
        prototype.render(),
        f"  T_MULT = {prototype.multiplication_time_us(65536):.2f} us",
        "",
        final.render(),
        f"  T_MULT = {final.multiplication_time_us(65536):.2f} us",
        "",
        f"final/prototype FFT speedup: "
        f"{prototype.fft_time_us / final.fft_time_us:.2f}x "
        "(clock x2, exchange hiding, on-chip links)",
    ]
    write_artifact(artifact_dir, "deployments.txt", "\n".join(lines))

    assert final.fits and prototype.fits
    assert sum(s.exposed_cycles for s in final.stages) == 0
    assert sum(s.exposed_cycles for s in prototype.stages) > 0
    assert final.fft_time_us < prototype.fft_time_us / 3


def test_batch_throughput_headroom(benchmark, artifact_dir):
    schedule = benchmark(schedule_batch, 64)

    serial_us = PAPER_TIMING.multiplication_time_us()
    lines = [
        schedule.render(),
        "",
        f"serial latency per product: {serial_us:.2f} us",
        f"pipelined steady-state per product: "
        f"{schedule.steady_state_interval * 5 / 1000:.2f} us",
        "the dot-product multipliers and carry adder run concurrently "
        "with the next product's transforms",
    ]
    write_artifact(artifact_dir, "batch_throughput.txt", "\n".join(lines))

    assert schedule.throughput_speedup > 1.25
    assert schedule.steady_state_interval == 3 * PAPER_TIMING.fft_cycles()
