"""E8 — batched software throughput vs the Section V macro-pipeline.

The hardware model (:mod:`repro.hw.batch`) pipelines independent
products across the FFT / dot-product / carry resources for a ~1.33×
steady-state gain.  The software analogue is the batched execution
engine: one precomputed plan driving a ``(batch, n)`` operand matrix,
which amortizes all per-stage interpreter overhead across the batch.

This benchmark measures looped vs batched multiplication at 4096-bit
operands across batch sizes up to 32, cross-checks every product
against Python big-int multiplication, writes the comparison artifact,
and asserts the ≥3× acceptance threshold at batch 32.
"""

from benchmarks.conftest import write_artifact
from repro.hw.batch import measure_software_batch, schedule_batch
from repro.ssa.multiplier import SSAMultiplier

BITS = 4096
FULL_BATCH = 32


def test_batch_throughput(benchmark, artifact_dir, rng):
    lines = [
        f"batched execution engine vs looped multiply ({BITS}-bit operands)",
        "",
        f"{'batch':>6} {'looped ops/s':>13} {'batched ops/s':>14} "
        f"{'measured':>9} {'modeled':>8}",
    ]
    full = None
    for count in (1, 4, 8, 16, FULL_BATCH):
        comparison = measure_software_batch(
            bits=BITS, count=count, seed=0xDA7E + count
        )
        lines.append(
            f"{count:>6} {comparison.serial_ops_per_sec:>13.1f} "
            f"{comparison.batched_ops_per_sec:>14.1f} "
            f"{comparison.measured_speedup:>8.2f}x "
            f"{comparison.modeled_speedup:>7.2f}x"
        )
        if count == FULL_BATCH:
            full = comparison

    # The timed benchmark target: the full batch through the engine.
    multiplier = SSAMultiplier.for_bits(BITS)
    pairs = [
        (rng.getrandbits(BITS), rng.getrandbits(BITS))
        for _ in range(FULL_BATCH)
    ]
    products = benchmark.pedantic(
        lambda: multiplier.multiply_many(pairs), rounds=3, iterations=1
    )
    assert products == [a * b for a, b in pairs]

    accepted = full.measured_speedup >= 3.0
    lines += [
        "",
        full.render(),
        "",
        schedule_batch(FULL_BATCH).render(),
        "",
        f"[{'PASS' if accepted else 'FAIL'}] batch-{FULL_BATCH} speedup "
        f"{full.measured_speedup:.2f}x >= 3x acceptance threshold",
    ]
    write_artifact(artifact_dir, "batch_throughput.txt", "\n".join(lines))
    assert full.meets_model
    assert full.measured_speedup >= 3.0
