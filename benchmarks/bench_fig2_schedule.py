"""E5 — regenerate the Fig. 2 data-distribution / exchange schedule.

Paper Fig. 2 shows, for the 64K FFT on four PEs, the interleaving of
sub-FFT computing stages (over indices n3, n2, n1) with hypercube data
exchanges.  The artifact reconstructs that schedule from the live
simulation timeline: three compute stages per PE, d = 2 exchange hops
fully hidden behind compute (the paper's l > d condition), plus the
ownership movement that drives the exchanges.
"""

import numpy as np

from benchmarks.conftest import write_artifact
from repro.field.solinas import P
from repro.field.vector import to_field_array
from repro.hw.accelerator import HEAccelerator
from repro.hw.hypercube import HypercubeTopology


def test_fig2_schedule(benchmark, artifact_dir, rng):
    accelerator = HEAccelerator()
    data = to_field_array([rng.randrange(P) for _ in range(65536)])

    def run():
        return accelerator.distributed_ntt(data)

    _, report = benchmark.pedantic(run, rounds=1, iterations=1)

    cube = HypercubeTopology(4)
    stage_indices = ["n3 (radix-64)", "n2 (radix-64)", "n1 (radix-16)"]
    lines = [
        "Fig. 2 — computing and communication stages, 64K FFT on 4 PEs",
        f"hypercube dimension d = {cube.dimension}; compute stages l = 3; "
        f"l > d holds: {cube.validate_interleaving(3)}",
        "",
    ]
    for stage, label in zip(report.stages, stage_indices):
        comm = (
            f"then exchange {stage.exchange_words_per_link} words/link over "
            f"{cube.dimension} hops ({stage.exchange_cycles} cycles, "
            f"{'hidden behind next stage' if stage.overlapped else 'EXPOSED'})"
            if stage.exchange_cycles
            else "no exchange (computation only)"
        )
        lines.append(
            f"stage {stage.index}: compute over index {label}, "
            f"{stage.sub_transforms} sub-FFTs "
            f"({stage.compute_cycles_per_pe} cycles/PE); {comm}"
        )

    lines += ["", "hypercube exchange pairs per hop:"]
    for step in cube.exchange_schedule():
        pairs = ", ".join(f"PE{a}<->PE{b}" for a, b in step.pairs)
        lines.append(f"  dimension {step.dimension}: {pairs}")

    lines += ["", "per-PE timeline (cycles):", report.timeline.render()]

    write_artifact(artifact_dir, "fig2_schedule.txt", "\n".join(lines))

    # Shape assertions: d exchange hops, all hidden, 3 compute stages.
    assert len(report.stages) == 3
    assert all(s.overlapped for s in report.stages if s.exchange_cycles)
    assert cube.validate_interleaving(len(report.stages))
