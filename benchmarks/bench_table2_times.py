"""E1/E2/E4 — regenerate paper Table II and the Section V timing text.

Three benches:

- ``test_fft_latency_model``: the T_FFT formula (E1), cross-checked
  against a live transaction-level simulation of the 64K transform;
- ``test_phase_budget``: dot-product and carry-recovery phases (E2);
- ``test_table2``: the full execution-time comparison (E4), asserting
  the paper's speedup shape (3.32× vs [28], ≥1.69× vs the rest).
"""

import numpy as np

from benchmarks.conftest import write_artifact
from repro.analysis.tables import (
    PAPER_DOTPROD_US,
    PAPER_FFT_US,
    PAPER_MULT_US,
    PAPER_SPEEDUP_VS_28,
    shape_check,
)
from repro.field.solinas import P
from repro.field.vector import to_field_array
from repro.hw.accelerator import HEAccelerator
from repro.hw.reports import table2_report
from repro.hw.timing import PAPER_TIMING


def test_fft_latency_model(benchmark, artifact_dir, rng):
    """T_FFT = 2·(T_C·8·1024)/P + (T_C·2)·4096/P ≈ 30.7 µs (E1)."""
    accelerator = HEAccelerator()
    data = to_field_array([rng.randrange(P) for _ in range(65536)])

    def run():
        return accelerator.distributed_ntt(data)

    spectrum, report = benchmark.pedantic(run, rounds=1, iterations=1)

    checks = [
        shape_check("T_FFT analytic", PAPER_TIMING.fft_time_us(), PAPER_FFT_US, 0.01),
        shape_check("T_FFT simulated", report.time_us, PAPER_FFT_US, 0.01),
    ]
    lines = [report.render(), "", "shape checks:"]
    lines += [c.render() for c in checks]
    write_artifact(artifact_dir, "fft_latency.txt", "\n".join(lines))
    assert all(c.ok for c in checks)
    assert report.total_cycles == PAPER_TIMING.fft_cycles()


def test_phase_budget(benchmark, artifact_dir, rng):
    """T_DOTPROD ≈ 10.2 µs, carry ≈ 20 µs, full multiply ≈ 122 µs (E2)."""
    accelerator = HEAccelerator()
    a = rng.getrandbits(786_432)
    b = rng.getrandbits(786_432)

    def run():
        return accelerator.multiply(a, b)

    product, report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert product == a * b

    phase_us = {p.name: p.time_us for p in report.phases}
    checks = [
        shape_check("dot product", phase_us["dot_product"], PAPER_DOTPROD_US, 0.01),
        shape_check("carry recovery", phase_us["carry_recovery"], 20.0, 0.05),
        shape_check("full multiplication", report.time_us, PAPER_MULT_US, 0.01),
    ]
    lines = [report.render(), "", "shape checks:"]
    lines += [c.render() for c in checks]
    write_artifact(artifact_dir, "multiply_phases.txt", "\n".join(lines))
    assert all(c.ok for c in checks)


def test_table2(benchmark, artifact_dir):
    """The full Table II comparison (E4)."""
    table = benchmark(table2_report)

    checks = [
        shape_check(
            "speedup vs [28]",
            table.speedup_vs("wang_huang_fpga[28]"),
            PAPER_SPEEDUP_VS_28,
            tolerance=0.05,
        ),
        shape_check(
            "FFT vs [28]",
            table.row("wang_huang_fpga[28]").fft_us
            / table.row("proposed").fft_us,
            125.0 / 30.7,
            tolerance=0.05,
        ),
    ]
    ours = table.row("proposed").mult_us
    ordering_ok = all(
        row.mult_us is None or row.mult_us > ours for row in table.rows[1:]
    )

    lines = [table.render(), "", "shape checks:"]
    lines += [c.render() for c in checks]
    lines.append(f"proposed fastest overall: {ordering_ok}")
    write_artifact(artifact_dir, "table2_times.txt", "\n".join(lines))
    assert all(c.ok for c in checks)
    assert ordering_ok
