"""E10 — NTT stage-kernel backends: ``loop`` vs ``limb-matmul``.

Standalone benchmark (also importable under pytest) comparing the two
stage-DFT backends of :mod:`repro.ntt.kernels` on the forward NTT at
several batch sizes, cross-checking bit-exactness on every
measurement, plus the fused-negacyclic gate: the ψ-fused plans must be
bit-identical to the explicit-twist ``loop``-kernel oracle and at
least as fast as the unfused limb-matmul route on a full
forward+pointwise+inverse ring product.  The permutation-free gate
(ISSUE 6) additionally pits the decimated DIF/DIT convolution
pipeline against the permuted (natural-order) one: bit-identical to
the loop oracle, never slower, and on full runs the best batched
64K-point case must clear the acceptance speedup.  Results go to two
places:

- ``BENCH_ntt_kernels.json`` at the repo root — the machine-readable
  perf-trajectory point (first of its series);
- ``benchmarks/output/ntt_kernels.txt`` — the human-readable table.

Usage::

    python benchmarks/bench_ntt_kernels.py            # full: 64K points
    python benchmarks/bench_ntt_kernels.py --smoke    # CI: 4K points

Exit status is non-zero if the limb-matmul backend loses bit-exactness
anywhere, regresses below 1× the loop backend, the fused negacyclic
path loses bit-identity / drops below 1× the unfused path, or the
permutation-free pipeline loses bit-identity / regresses below its
floor; the full run additionally enforces the ≥3× acceptance threshold
on the single-shot (batch = 1) 64K-point transform and the ≥1.05×
ordering acceptance on the best batched 64K convolution.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from typing import List, Optional

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.field.solinas import P  # noqa: E402
from repro.ntt.convolution import cyclic_convolution_many  # noqa: E402
from repro.ntt.kernels import (  # noqa: E402
    KERNEL_LIMB_MATMUL,
    KERNEL_LOOP,
)
from repro.ntt.negacyclic import (  # noqa: E402
    negacyclic_convolution_many,
)
from repro.ntt.plan import (  # noqa: E402
    ORDER_DECIMATED,
    TWIST_NEGACYCLIC,
    plan_for_size,
)
from repro.ntt.staged import execute_plan_batch  # noqa: E402

DEFAULT_JSON = REPO_ROOT / "BENCH_ntt_kernels.json"
OUTPUT_DIR = Path(__file__).resolve().parent / "output"

#: Acceptance thresholds (see ISSUE 2): the fast backend must never be
#: slower than the reference, and the full run must show ≥3× on the
#: single-shot 64K transform.
MIN_SPEEDUP = 1.0
ACCEPTANCE_SPEEDUP = 3.0
ACCEPTANCE_N = 65536
#: The fused negacyclic route strictly removes vector passes, so it
#: must never lose to the explicit-twist route (ISSUE 5).
MIN_NEGACYCLIC_SPEEDUP = 1.0
#: The permutation-free (decimated DIF/DIT) convolution pipeline also
#: strictly removes passes — the digit-reversal gathers, plus the
#: trailing ``n^{-1}`` scale on unfused plans — so it must never lose
#: to the permuted pipeline (ISSUE 6).  The floor is strict where the
#: removed work is a few percent of the pipeline (unfused cyclic:
#: gathers + scale pass); flavors whose only saving is the gathers
#: (~1% of a limb-matmul convolution — fused plans already fold the
#: scale) get a timer-jitter allowance so a sub-noise-floor effect
#: cannot flake CI, while real regressions still trip the gate.
MIN_ORDERING_SPEEDUP = 1.0
ORDERING_JITTER = 0.05
#: Full runs gate the headline ISSUE 6 number: the best batched
#: 64K-point permutation-free convolution must clear this.
ORDERING_ACCEPTANCE_SPEEDUP = 1.05


def _best_time(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _interleaved_best(fn_a, fn_b, repeats: int):
    """Best-of timing with A/B samples interleaved.

    Alternating the two pipelines makes both sample the same slow/fast
    phases of a noisy machine, so the best-vs-best ratio reflects the
    work difference instead of which side drew the quieter window.
    """
    best_a = best_b = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn_a()
        best_a = min(best_a, time.perf_counter() - start)
        start = time.perf_counter()
        fn_b()
        best_b = min(best_b, time.perf_counter() - start)
    return best_a, best_b


def run_case(n: int, radices, batch: int, repeats: int, seed: int) -> dict:
    """Time both backends on one ``(n, batch)`` point; verify exactness."""
    loop_plan = plan_for_size(n, radices, kernel=KERNEL_LOOP)
    fast_plan = plan_for_size(n, radices, kernel=KERNEL_LIMB_MATMUL)
    rng = np.random.default_rng(seed)
    data = rng.integers(0, P, size=(batch, n), dtype=np.uint64)

    loop_out = execute_plan_batch(data, loop_plan)  # warm + reference
    fast_out = execute_plan_batch(data, fast_plan)
    bit_exact = bool(np.array_equal(loop_out, fast_out))

    loop_s = _best_time(lambda: execute_plan_batch(data, loop_plan), repeats)
    fast_s = _best_time(lambda: execute_plan_batch(data, fast_plan), repeats)
    return {
        "n": n,
        "radices": list(radices),
        "batch": batch,
        "loop_s": loop_s,
        "limb_matmul_s": fast_s,
        "speedup": loop_s / fast_s,
        "loop_transforms_per_s": batch / loop_s,
        "limb_matmul_transforms_per_s": batch / fast_s,
        "bit_exact": bit_exact,
    }


def run_negacyclic_case(
    n: int, radices, batch: int, repeats: int, seed: int
) -> dict:
    """Fused vs explicit-twist negacyclic ring product at one point.

    Exactness: the fused plans (both kernels) must reproduce the
    explicit-twist ``loop``-kernel oracle bit for bit.  Speed: the
    fused limb-matmul route is timed against the unfused limb-matmul
    route on a full ``negacyclic_convolution_many`` (forward +
    pointwise + inverse), the RLWE ring-product shape.
    """
    oracle_plan = plan_for_size(n, radices, kernel=KERNEL_LOOP)
    unfused_plan = plan_for_size(n, radices, kernel=KERNEL_LIMB_MATMUL)
    fused_plan = plan_for_size(
        n, radices, kernel=KERNEL_LIMB_MATMUL, twist=TWIST_NEGACYCLIC
    )
    fused_loop_plan = plan_for_size(
        n, radices, kernel=KERNEL_LOOP, twist=TWIST_NEGACYCLIC
    )
    rng = np.random.default_rng(seed)
    a = rng.integers(0, P, size=(batch, n), dtype=np.uint64)
    b = rng.integers(0, P, size=(batch, n), dtype=np.uint64)

    oracle = negacyclic_convolution_many(a, b, oracle_plan)
    fused_out = negacyclic_convolution_many(a, b, fused_plan)
    fused_loop_out = negacyclic_convolution_many(a, b, fused_loop_plan)
    unfused_out = negacyclic_convolution_many(a, b, unfused_plan)
    bit_exact = bool(
        np.array_equal(oracle, fused_out)
        and np.array_equal(oracle, fused_loop_out)
        and np.array_equal(oracle, unfused_out)
    )

    unfused_s, fused_s = _interleaved_best(
        lambda: negacyclic_convolution_many(a, b, unfused_plan),
        lambda: negacyclic_convolution_many(a, b, fused_plan),
        repeats,
    )
    return {
        "n": n,
        "radices": list(radices),
        "batch": batch,
        "unfused_s": unfused_s,
        "fused_s": fused_s,
        "speedup": unfused_s / fused_s,
        "fused_products_per_s": batch / fused_s,
        "bit_exact": bit_exact,
    }


def run_ordering_case(
    flavor: str, n: int, radices, batch: int, repeats: int, seed: int
) -> dict:
    """Permutation-free vs permuted convolution pipeline at one point.

    ``flavor`` is ``"cyclic"`` (unfused plans: the decimated pair skips
    three digit-reversal gathers *and* the trailing ``n^{-1}`` scale
    pass) or ``"negacyclic"`` (ψ-fused plans: only the gathers remain
    to skip).  Both pipelines run the limb-matmul kernel; bit-exactness
    is checked against the natural-order ``loop``-kernel oracle.
    """
    twist = TWIST_NEGACYCLIC if flavor == "negacyclic" else ""
    conv = (
        negacyclic_convolution_many
        if flavor == "negacyclic"
        else cyclic_convolution_many
    )
    oracle_plan = plan_for_size(n, radices, kernel=KERNEL_LOOP)
    permuted_plan = plan_for_size(
        n, radices, kernel=KERNEL_LIMB_MATMUL, twist=twist
    )
    free_plan = plan_for_size(
        n,
        radices,
        kernel=KERNEL_LIMB_MATMUL,
        twist=twist,
        ordering=ORDER_DECIMATED,
    )
    rng = np.random.default_rng(seed)
    a = rng.integers(0, P, size=(batch, n), dtype=np.uint64)
    b = rng.integers(0, P, size=(batch, n), dtype=np.uint64)

    oracle = conv(a, b, oracle_plan)
    permuted_out = conv(a, b, permuted_plan)  # warm + reference
    free_out = conv(a, b, free_plan)
    bit_exact = bool(
        np.array_equal(oracle, permuted_out)
        and np.array_equal(oracle, free_out)
    )

    permuted_s, free_s = _interleaved_best(
        lambda: conv(a, b, permuted_plan),
        lambda: conv(a, b, free_plan),
        repeats,
    )
    return {
        "flavor": flavor,
        "n": n,
        "radices": list(radices),
        "batch": batch,
        "permuted_s": permuted_s,
        "permutation_free_s": free_s,
        "speedup": permuted_s / free_s,
        "permutation_free_products_per_s": batch / free_s,
        "bit_exact": bit_exact,
        # Strict floor only where the skipped work is above the timer
        # noise floor; gather-only flavors get the jitter allowance.
        "strict_floor": flavor == "cyclic",
    }


def render_table(results: List[dict]) -> str:
    lines = [
        "NTT stage-kernel backends: loop vs limb-matmul (forward NTT)",
        "",
        f"{'n':>7} {'batch':>6} {'loop s':>10} {'limb-matmul s':>14} "
        f"{'speedup':>8} {'exact':>6}",
    ]
    for r in results:
        lines.append(
            f"{r['n']:>7} {r['batch']:>6} {r['loop_s']:>10.4f} "
            f"{r['limb_matmul_s']:>14.4f} {r['speedup']:>7.2f}x "
            f"{'yes' if r['bit_exact'] else 'NO':>6}"
        )
    return "\n".join(lines)


def render_negacyclic_table(results: List[dict]) -> str:
    lines = [
        "",
        "fused negacyclic ring products: psi-fused plans vs explicit twist",
        "",
        f"{'n':>7} {'batch':>6} {'unfused s':>10} {'fused s':>10} "
        f"{'speedup':>8} {'exact':>6}",
    ]
    for r in results:
        lines.append(
            f"{r['n']:>7} {r['batch']:>6} {r['unfused_s']:>10.4f} "
            f"{r['fused_s']:>10.4f} {r['speedup']:>7.2f}x "
            f"{'yes' if r['bit_exact'] else 'NO':>6}"
        )
    return "\n".join(lines)


def render_ordering_table(results: List[dict]) -> str:
    lines = [
        "",
        "permutation-free convolutions: decimated DIF/DIT pair vs permuted",
        "",
        f"{'flavor':>10} {'n':>7} {'batch':>6} {'permuted s':>11} "
        f"{'perm-free s':>12} {'speedup':>8} {'exact':>6}",
    ]
    for r in results:
        lines.append(
            f"{r['flavor']:>10} {r['n']:>7} {r['batch']:>6} "
            f"{r['permuted_s']:>11.4f} {r['permutation_free_s']:>12.4f} "
            f"{r['speedup']:>7.2f}x "
            f"{'yes' if r['bit_exact'] else 'NO':>6}"
        )
    return "\n".join(lines)


def evaluate(
    results: List[dict],
    smoke: bool,
    negacyclic: Optional[List[dict]] = None,
    ordering: Optional[List[dict]] = None,
) -> List[str]:
    """Gate failures (empty list == pass)."""
    failures = []
    for r in results:
        tag = f"n={r['n']} batch={r['batch']}"
        if not r["bit_exact"]:
            failures.append(f"{tag}: limb-matmul output diverged from loop")
        if r["speedup"] < MIN_SPEEDUP:
            failures.append(
                f"{tag}: limb-matmul regressed to "
                f"{r['speedup']:.2f}x (< {MIN_SPEEDUP}x loop)"
            )
    for r in negacyclic or []:
        tag = f"negacyclic n={r['n']} batch={r['batch']}"
        if not r["bit_exact"]:
            failures.append(
                f"{tag}: fused output diverged from the explicit-twist "
                f"loop oracle"
            )
        if r["speedup"] < MIN_NEGACYCLIC_SPEEDUP:
            failures.append(
                f"{tag}: fused route regressed to {r['speedup']:.2f}x "
                f"(< {MIN_NEGACYCLIC_SPEEDUP}x the unfused path)"
            )
    for r in ordering or []:
        tag = f"ordering {r['flavor']} n={r['n']} batch={r['batch']}"
        if not r["bit_exact"]:
            failures.append(
                f"{tag}: permutation-free output diverged from the "
                f"natural-order loop oracle"
            )
        floor = MIN_ORDERING_SPEEDUP - (
            0.0 if r["strict_floor"] else ORDERING_JITTER
        )
        if r["speedup"] < floor:
            failures.append(
                f"{tag}: permutation-free pipeline regressed to "
                f"{r['speedup']:.2f}x (< {floor:.2f}x the permuted path)"
            )
    if not smoke and ordering:
        batched = [
            r
            for r in ordering
            if r["n"] == ACCEPTANCE_N and r["batch"] > 1
        ]
        if not batched:
            failures.append(
                f"no batched {ACCEPTANCE_N}-point ordering measurement "
                f"present"
            )
        elif (
            max(r["speedup"] for r in batched)
            < ORDERING_ACCEPTANCE_SPEEDUP
        ):
            failures.append(
                f"best batched {ACCEPTANCE_N}-point permutation-free "
                f"speedup "
                f"{max(r['speedup'] for r in batched):.2f}x "
                f"< {ORDERING_ACCEPTANCE_SPEEDUP}x acceptance threshold"
            )
    if not smoke:
        single = [
            r
            for r in results
            if r["n"] == ACCEPTANCE_N and r["batch"] == 1
        ]
        if not single:
            failures.append(
                f"no batch-1 {ACCEPTANCE_N}-point measurement present"
            )
        elif single[0]["speedup"] < ACCEPTANCE_SPEEDUP:
            failures.append(
                f"single-shot {ACCEPTANCE_N}-point speedup "
                f"{single[0]['speedup']:.2f}x "
                f"< {ACCEPTANCE_SPEEDUP}x acceptance threshold"
            )
    return failures


def run_suite(smoke: bool, repeats: Optional[int], seed: int) -> dict:
    if smoke:
        cases = [(4096, (64, 64), b) for b in (1, 8)]
        negacyclic_cases = [(4096, (64, 64), 4)]
        ordering_cases = [
            ("cyclic", 4096, (64, 64), 4),
            ("negacyclic", 4096, (64, 64), 4),
        ]
        repeats = repeats or 2
    else:
        cases = [(65536, (64, 64, 16), b) for b in (1, 8, 32)]
        negacyclic_cases = [
            (65536, (64, 64, 16), 1),
            (65536, (64, 64, 16), 4),
        ]
        ordering_cases = [
            ("cyclic", 65536, (64, 64, 16), 4),
            ("cyclic", 65536, (64, 64, 16), 8),
            ("negacyclic", 65536, (64, 64, 16), 4),
        ]
        repeats = repeats or 3
    results = [
        run_case(n, radices, batch, repeats, seed + i)
        for i, (n, radices, batch) in enumerate(cases)
    ]
    # The fused-vs-unfused margin is a handful of vector passes, so
    # the negacyclic gate takes extra repeats: best-of-N timing keeps
    # scheduler noise from swamping a strictly-less-work comparison.
    negacyclic_results = [
        run_negacyclic_case(
            n, radices, batch, max(repeats, 5), seed + 100 + i
        )
        for i, (n, radices, batch) in enumerate(negacyclic_cases)
    ]
    # Same reasoning for the ordering gate: its margin is a few skipped
    # vector passes, so interleaved best-of-5-or-more keeps the ratio
    # honest on a noisy machine.
    ordering_results = [
        run_ordering_case(
            flavor, n, radices, batch, max(repeats, 5), seed + 200 + i
        )
        for i, (flavor, n, radices, batch) in enumerate(ordering_cases)
    ]
    failures = evaluate(results, smoke, negacyclic_results, ordering_results)
    return {
        "benchmark": "ntt_kernels",
        "schema_version": 3,
        "mode": "smoke" if smoke else "full",
        "created_unix": time.time(),
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "config": {
            "repeats": repeats,
            "seed": seed,
            "timer": "best-of-repeats wall clock",
        },
        "results": results,
        "negacyclic": negacyclic_results,
        "ordering": ordering_results,
        "acceptance": {
            "min_speedup": MIN_SPEEDUP,
            "min_negacyclic_speedup": MIN_NEGACYCLIC_SPEEDUP,
            "min_ordering_speedup": MIN_ORDERING_SPEEDUP,
            "ordering_jitter": ORDERING_JITTER,
            "single_shot_threshold": (
                None if smoke else ACCEPTANCE_SPEEDUP
            ),
            "ordering_threshold": (
                None if smoke else ORDERING_ACCEPTANCE_SPEEDUP
            ),
            "failures": failures,
            "passed": not failures,
        },
    }


def test_smoke_comparison():
    """Pytest hook: the smoke suite must pass its gates."""
    report = run_suite(smoke=True, repeats=1, seed=0xDA7E)
    assert report["acceptance"]["passed"], report["acceptance"]["failures"]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small sizes for CI; skips the 3x single-shot gate",
    )
    parser.add_argument(
        "--repeats", type=int, default=None, help="timing repeats per case"
    )
    parser.add_argument("--seed", type=int, default=0xDA7E)
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        help=(
            "where to write the JSON report (default: repo-root "
            "BENCH_ntt_kernels.json on full runs, nowhere on --smoke)"
        ),
    )
    args = parser.parse_args(argv)

    report = run_suite(args.smoke, args.repeats, args.seed)
    table = (
        render_table(report["results"])
        + "\n"
        + render_negacyclic_table(report["negacyclic"])
        + "\n"
        + render_ordering_table(report["ordering"])
    )
    print(table)

    json_path = args.json
    if json_path is None and not args.smoke:
        json_path = DEFAULT_JSON
    if json_path is not None:
        json_path.parent.mkdir(parents=True, exist_ok=True)
        json_path.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nwrote {json_path}")
    if not args.smoke:
        OUTPUT_DIR.mkdir(exist_ok=True)
        (OUTPUT_DIR / "ntt_kernels.txt").write_text(table + "\n")

    failures = report["acceptance"]["failures"]
    if failures:
        print("\nFAIL:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(
        "\nPASS: bit-exact everywhere (fused negacyclic and "
        "permutation-free pipelines included), speedup gates met"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
