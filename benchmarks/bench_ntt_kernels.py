"""E10 — software NTT kernel throughput (supporting measurements).

Times the actual Python/numpy kernels that power the functional models:
the vectorized radix-2 path, the paper's staged radix-64/64/16 path,
the scalar shift-only radix-64 kernels, and field-arithmetic
primitives.  These are the library's real performance numbers (the
hardware numbers come from the cycle model, not from these).
"""

import numpy as np
import pytest

from repro.field.solinas import P
from repro.field.vector import to_field_array, vmul
from repro.hw.modmul import ModularMultiplier
from repro.ntt.plan import paper_64k_plan, plan_for_size
from repro.ntt.radix2 import ntt_radix2_numpy
from repro.ntt.radix64 import ntt64_two_stage, ntt_shift_radix
from repro.ntt.staged import execute_plan


@pytest.fixture(scope="module")
def vec64k():
    rng = np.random.default_rng(7)
    return rng.integers(0, P, size=65536, dtype=np.uint64)


def test_vmul_64k(benchmark, vec64k):
    """Vectorized Goldilocks multiply, 64K elements."""
    benchmark(vmul, vec64k, vec64k[::-1].copy())


def test_radix2_ntt_64k(benchmark, vec64k):
    """Radix-2 numpy NTT, 64K points."""
    benchmark(ntt_radix2_numpy, vec64k)


def test_staged_ntt_64k_paper_plan(benchmark, vec64k):
    """The paper's three-stage 64·64·16 plan, 64K points."""
    plan = paper_64k_plan()
    benchmark(execute_plan, vec64k, plan)


def test_staged_ntt_4k(benchmark):
    rng = np.random.default_rng(3)
    data = rng.integers(0, P, size=4096, dtype=np.uint64)
    plan = plan_for_size(4096, (64, 64))
    benchmark(execute_plan, data, plan)


def test_scalar_radix64_direct(benchmark, rng):
    """Baseline 64-chain evaluation (Eq. 3), scalar."""
    x = [rng.randrange(P) for _ in range(64)]
    benchmark(ntt_shift_radix, x, 64)


def test_scalar_radix64_two_stage(benchmark, rng):
    """Optimized Eq. 5 dataflow, scalar."""
    x = [rng.randrange(P) for _ in range(64)]
    benchmark(ntt64_two_stage, x)


def test_modmul_datapath(benchmark, rng):
    """One DSP-style modular multiply through the 32-bit limb path."""
    m = ModularMultiplier()
    a, b = rng.randrange(P), rng.randrange(P)
    benchmark(m.multiply, a, b)
