"""RLWE homomorphic-pipeline perf trajectory (ISSUE 10).

Standalone benchmark (also importable under pytest) timing the full
BV-style RLWE pipeline behind the unified :class:`~repro.fhe.HEScheme`
API — the encrypted-analytics workload the ct×ct machinery exists for:

- **multiply**: batched ``multiply_many`` (tensor + relinearization)
  throughput at production batch sizes, single-modulus and RNS/CRT,
  every product decrypted against schoolbook negacyclic truth and the
  batched path checked bit-identical to the one-at-a-time loop;
- **chain**: a depth-2 circuit ``(m1·m2)·m3`` on the 3-prime RNS
  chain with BGV modulus switching between levels — the ISSUE 10
  acceptance circuit — gated on a positive remaining noise budget;
- **aggregate**: an encrypted sum-of-products analytic (k ct×ct
  products folded with homomorphic adds into one ciphertext before a
  single decrypt) — the canonical private-aggregation query shape;
- **modeled**: one ct×ct multiply on the ``hw-model`` backend so the
  relinearized ring products carry accelerator cycle counts.

Results go to two places:

- ``BENCH_rlwe_pipeline.json`` at the repo root — the machine-readable
  perf-trajectory point (RLWE-pipeline series, one point per PR);
- ``benchmarks/output/rlwe_pipeline.txt`` — the human-readable table.

Usage::

    python benchmarks/bench_rlwe_pipeline.py            # full
    python benchmarks/bench_rlwe_pipeline.py --smoke    # CI gate
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.engine import Engine  # noqa: E402
from repro.fhe.rlwe import (  # noqa: E402
    RLWE,
    RLWEParams,
    default_rns_primes,
)

DEFAULT_JSON = REPO_ROOT / "BENCH_rlwe_pipeline.json"
OUTPUT_DIR = Path(__file__).resolve().parent / "output"

#: Plaintext modulus shared by every case: prime, so the RNS prime
#: search (``q ≡ 1 (mod t)``) stays fast, and small enough that the
#: depth-2 noise fits the 3-prime chain at every benchmarked ``n``.
PLAINTEXT_T = 17
NOISE_BOUND = 4
#: ``multiply_many`` batches the tensor/relin ring products into
#: ``*_many`` passes; it must not regress below the one-at-a-time
#: ``multiply`` loop on full runs (smoke checks bit-identity only).
#: At large ``n`` the convolutions dominate and batching only saves
#: Python dispatch, so the ratio hovers near 1x — the allowance keeps
#: that honest flatness (and timer jitter) from flaking the gate while
#: a real regression (e.g. batching forcing extra copies) still trips.
BATCH_SPEEDUP_FLOOR = 1.0
BATCH_SPEEDUP_JITTER = 0.25
#: Full runs must include at least one production-size measurement.
FULL_MIN_RING = 1024


def _best_time(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def school_negacyclic(
    a: Sequence[int], b: Sequence[int], t: int
) -> List[int]:
    """Schoolbook negacyclic product in ``Z_t[x]/(x^n + 1)``."""
    n = len(a)
    acc = [0] * n
    for i, ai in enumerate(a):
        for j, bj in enumerate(b):
            k = i + j
            if k < n:
                acc[k] += ai * bj
            else:
                acc[k - n] -= ai * bj
    return [x % t for x in acc]


def _params(n: int, primes: int = 0) -> RLWEParams:
    rns = (
        default_rns_primes(n, PLAINTEXT_T, primes) if primes else None
    )
    return RLWEParams(
        n=n, t=PLAINTEXT_T, noise_bound=NOISE_BOUND, rns_primes=rns
    )


def _messages(rng: random.Random, n: int, count: int) -> List[List[int]]:
    return [
        [rng.randrange(PLAINTEXT_T) for _ in range(n)]
        for _ in range(count)
    ]


def multiply_case(
    n: int, primes: int, batch: int, repeats: int, seed: int
) -> dict:
    """Batched ct×ct ``multiply_many`` throughput at one ring size.

    Every product is relinearized back to degree 1 and decrypted
    against schoolbook truth; the batched path must be bit-identical
    to looping ``multiply`` one pair at a time.
    """
    params = _params(n, primes)
    scheme = RLWE(params, rng=random.Random(seed))
    keys = scheme.keygen()
    rng = random.Random(seed + 1)
    lefts = _messages(rng, n, batch)
    rights = _messages(rng, n, batch)
    pairs = list(
        zip(
            scheme.encrypt_many(keys, lefts),
            scheme.encrypt_many(keys, rights),
        )
    )
    truth = [
        school_negacyclic(a, b, params.t)
        for a, b in zip(lefts, rights)
    ]

    batched = scheme.multiply_many(keys, pairs)
    looped = [scheme.multiply(keys, x, y) for x, y in pairs]
    identical = all(
        np.array_equal(p.c0, q.c0) and np.array_equal(p.c1, q.c1)
        for p, q in zip(batched, looped)
    )
    correct = scheme.decrypt_many(keys, batched) == truth

    batched_s = _best_time(
        lambda: scheme.multiply_many(keys, pairs), repeats
    )
    looped_s = _best_time(
        lambda: [scheme.multiply(keys, x, y) for x, y in pairs],
        repeats,
    )
    return {
        "n": n,
        "rns_primes": primes,
        "batch": batch,
        "batched_s": batched_s,
        "looped_s": looped_s,
        "batch_speedup": looped_s / batched_s,
        "ct_products_per_s": batch / batched_s,
        "identical": identical,
        "correct": correct,
    }


def chain_case(n: int, batch: int, repeats: int, seed: int) -> dict:
    """Depth-2 ``(m1·m2)·m3`` on the 3-prime RNS chain (ISSUE 10).

    Each level transition is a BGV modulus switch; both operands of
    the second multiply are switched so they meet at level 2, and the
    final product is switched once more before decrypting at level 1.
    """
    params = _params(n, primes=3)
    scheme = RLWE(params, rng=random.Random(seed))
    keys = scheme.keygen()
    rng = random.Random(seed + 1)
    m1s = _messages(rng, n, batch)
    m2s = _messages(rng, n, batch)
    m3s = _messages(rng, n, batch)
    c1s = scheme.encrypt_many(keys, m1s)
    c2s = scheme.encrypt_many(keys, m2s)
    c3s = scheme.encrypt_many(keys, m3s)
    truth = [
        school_negacyclic(
            school_negacyclic(a, b, params.t), c, params.t
        )
        for a, b, c in zip(m1s, m2s, m3s)
    ]

    def circuit():
        p12 = scheme.multiply_many(keys, list(zip(c1s, c2s)))
        lhs = scheme.mod_switch_many(p12)
        rhs = scheme.mod_switch_many(c3s)
        p123 = scheme.multiply_many(keys, list(zip(lhs, rhs)))
        return scheme.mod_switch_many(p123)

    out = circuit()
    correct = scheme.decrypt_many(keys, out) == truth
    budget = min(scheme.noise_budget(keys, ct) for ct in out)
    fresh_budget = min(
        scheme.noise_budget(keys, ct) for ct in c1s
    )
    chain_s = _best_time(circuit, repeats)
    return {
        "n": n,
        "rns_primes": 3,
        "batch": batch,
        "depth": 2,
        "chain_s": chain_s,
        "circuits_per_s": batch / chain_s,
        "fresh_budget_bits": fresh_budget,
        "final_budget_bits": budget,
        "correct": correct,
    }


def aggregate_case(
    n: int, terms: int, repeats: int, seed: int
) -> dict:
    """Encrypted sum-of-products: ``Σ aᵢ·bᵢ`` under one decrypt.

    ``terms`` ct×ct products fold through homomorphic adds into a
    single ciphertext — the private-aggregation query shape — and the
    one decrypt must equal the plaintext sum of schoolbook products.
    """
    params = _params(n)
    scheme = RLWE(params, rng=random.Random(seed))
    keys = scheme.keygen()
    rng = random.Random(seed + 1)
    lefts = _messages(rng, n, terms)
    rights = _messages(rng, n, terms)
    pairs = list(
        zip(
            scheme.encrypt_many(keys, lefts),
            scheme.encrypt_many(keys, rights),
        )
    )
    truth = [0] * n
    for a, b in zip(lefts, rights):
        for k, v in enumerate(school_negacyclic(a, b, params.t)):
            truth[k] = (truth[k] + v) % params.t

    def query():
        products = scheme.multiply_many(keys, pairs)
        acc = products[0]
        for ct in products[1:]:
            acc = scheme.add(acc, ct)
        return acc

    out = query()
    correct = scheme.decrypt(keys, out) == truth
    budget = scheme.noise_budget(keys, out)
    query_s = _best_time(query, repeats)
    return {
        "n": n,
        "terms": terms,
        "query_s": query_s,
        "terms_per_s": terms / query_s,
        "final_budget_bits": budget,
        "correct": correct,
    }


def modeled_multiply(n: int, seed: int) -> dict:
    """One ct×ct multiply on ``hw-model``: cycles for the ring products."""
    engine = Engine(backend="hw-model")
    try:
        scheme = engine.fhe(_params(n, primes=2), rng=random.Random(seed))
        keys = scheme.keygen()
        rng = random.Random(seed + 1)
        m1, m2 = _messages(rng, n, 2)
        c1, c2 = scheme.encrypt_many(keys, [m1, m2])
        product = scheme.multiply(keys, c1, c2)
        report = engine.last_report
        cycles = report.total_cycles if report is not None else 0
        if callable(cycles):
            cycles = cycles()
        correct = scheme.decrypt(keys, product) == school_negacyclic(
            m1, m2, PLAINTEXT_T
        )
    finally:
        engine.close()
    return {
        "n": n,
        "ring_product_cycles": int(cycles),
        "correct": correct,
    }


def render_table(report: dict) -> str:
    lines = [
        "RLWE pipeline: ct x ct multiply_many (tensor + relinearize)",
        "",
        f"{'n':>6} {'primes':>6} {'batch':>6} {'batched s':>10} "
        f"{'looped s':>10} {'speedup':>8} {'ct/s':>8} {'ok':>4}",
    ]
    for r in report["multiply"]:
        ok = r["correct"] and r["identical"]
        lines.append(
            f"{r['n']:>6} {r['rns_primes']:>6} {r['batch']:>6} "
            f"{r['batched_s']:>10.4f} {r['looped_s']:>10.4f} "
            f"{r['batch_speedup']:>7.2f}x "
            f"{r['ct_products_per_s']:>8.1f} "
            f"{'yes' if ok else 'NO':>4}"
        )
    lines += [
        "",
        "depth-2 circuit (m1*m2)*m3 on the 3-prime RNS chain, "
        "mod-switched per level",
        "",
        f"{'n':>6} {'batch':>6} {'chain s':>9} {'circ/s':>8} "
        f"{'fresh bits':>11} {'final bits':>11} {'ok':>4}",
    ]
    for r in report["chain"]:
        lines.append(
            f"{r['n']:>6} {r['batch']:>6} {r['chain_s']:>9.4f} "
            f"{r['circuits_per_s']:>8.1f} "
            f"{r['fresh_budget_bits']:>11.1f} "
            f"{r['final_budget_bits']:>11.1f} "
            f"{'yes' if r['correct'] else 'NO':>4}"
        )
    lines += [
        "",
        "encrypted aggregation: sum of k ct x ct products, one decrypt",
        "",
        f"{'n':>6} {'terms':>6} {'query s':>9} {'terms/s':>8} "
        f"{'final bits':>11} {'ok':>4}",
    ]
    for r in report["aggregate"]:
        lines.append(
            f"{r['n']:>6} {r['terms']:>6} {r['query_s']:>9.4f} "
            f"{r['terms_per_s']:>8.1f} "
            f"{r['final_budget_bits']:>11.1f} "
            f"{'yes' if r['correct'] else 'NO':>4}"
        )
    model = report["modeled"]
    lines += [
        "",
        "cycle model context:",
        f"  hw-model ct x ct multiply (n={model['n']}, 2-prime RNS): "
        f"{model['ring_product_cycles']} cycles for the last ring "
        f"product batch",
    ]
    return "\n".join(lines)


def evaluate(report: dict, smoke: bool) -> List[str]:
    failures = []
    for r in report["multiply"]:
        tag = (
            f"multiply n={r['n']} primes={r['rns_primes']} "
            f"batch={r['batch']}"
        )
        if not r["correct"]:
            failures.append(
                f"{tag}: relinearized products decrypted wrong"
            )
        if not r["identical"]:
            failures.append(
                f"{tag}: multiply_many diverged from the one-at-a-time "
                f"multiply loop"
            )
        floor = BATCH_SPEEDUP_FLOOR - BATCH_SPEEDUP_JITTER
        if not smoke and r["batch_speedup"] < floor:
            failures.append(
                f"{tag}: batched path regressed to "
                f"{r['batch_speedup']:.2f}x the looped path "
                f"(< {floor:.2f}x floor)"
            )
    for r in report["chain"]:
        tag = f"chain n={r['n']} batch={r['batch']}"
        if not r["correct"]:
            failures.append(
                f"{tag}: depth-2 circuit decrypted wrong after "
                f"modulus switching"
            )
        if r["final_budget_bits"] <= 0:
            failures.append(
                f"{tag}: noise budget exhausted "
                f"({r['final_budget_bits']:.1f} bits) at depth 2"
            )
    for r in report["aggregate"]:
        tag = f"aggregate n={r['n']} terms={r['terms']}"
        if not r["correct"]:
            failures.append(
                f"{tag}: encrypted sum-of-products decrypted wrong"
            )
        if r["final_budget_bits"] <= 0:
            failures.append(
                f"{tag}: noise budget exhausted after aggregation"
            )
    if not report["modeled"]["correct"]:
        failures.append("hw-model ct x ct multiply decrypted wrong")
    if report["modeled"]["ring_product_cycles"] <= 0:
        failures.append(
            "hw-model reported no cycles for the RLWE ring products"
        )
    if not smoke and not any(
        r["n"] >= FULL_MIN_RING for r in report["multiply"]
    ):
        failures.append(
            f"no n >= {FULL_MIN_RING} multiply measurement present"
        )
    return failures


def run_suite(smoke: bool, repeats: Optional[int], seed: int) -> dict:
    if smoke:
        multiply_cases = [(64, 0, 4), (64, 2, 4)]
        chain_cases = [(64, 2)]
        aggregate_cases = [(64, 8)]
        modeled_n = 64
        repeats = repeats or 2
    else:
        multiply_cases = [
            (256, 0, 16),
            (1024, 0, 8),
            (1024, 3, 8),
        ]
        chain_cases = [(1024, 4)]
        aggregate_cases = [(256, 32)]
        modeled_n = 256
        repeats = repeats or 3
    multiply_results = [
        multiply_case(n, primes, batch, repeats, seed + i)
        for i, (n, primes, batch) in enumerate(multiply_cases)
    ]
    chain_results = [
        chain_case(n, batch, repeats, seed + 40 + i)
        for i, (n, batch) in enumerate(chain_cases)
    ]
    aggregate_results = [
        aggregate_case(n, terms, repeats, seed + 60 + i)
        for i, (n, terms) in enumerate(aggregate_cases)
    ]
    report = {
        "benchmark": "rlwe_pipeline",
        "schema_version": 1,
        "mode": "smoke" if smoke else "full",
        "created_unix": time.time(),
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpus": os.cpu_count(),
        },
        "config": {
            "t": PLAINTEXT_T,
            "noise_bound": NOISE_BOUND,
            "repeats": repeats,
            "seed": seed,
            "timer": "best-of-repeats wall clock",
        },
        "multiply": multiply_results,
        "chain": chain_results,
        "aggregate": aggregate_results,
        "modeled": modeled_multiply(modeled_n, seed + 90),
    }
    failures = evaluate(report, smoke)
    report["acceptance"] = {
        "batch_speedup_floor": (
            None if smoke else BATCH_SPEEDUP_FLOOR
        ),
        "batch_speedup_jitter": BATCH_SPEEDUP_JITTER,
        "failures": failures,
        "passed": not failures,
    }
    return report


def test_smoke_workload():
    """Pytest hook: the smoke suite must pass its gates."""
    report = run_suite(smoke=True, repeats=1, seed=0xA0)
    assert report["acceptance"]["passed"], report["acceptance"]["failures"]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small rings for CI; no timing floors",
    )
    parser.add_argument(
        "--repeats", type=int, default=None, help="timing repeats per case"
    )
    parser.add_argument("--seed", type=int, default=0xA0)
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        help=(
            "where to write the JSON report (default: repo-root "
            "BENCH_rlwe_pipeline.json on full runs, nowhere on --smoke)"
        ),
    )
    args = parser.parse_args(argv)

    report = run_suite(args.smoke, args.repeats, args.seed)
    table = render_table(report)
    print(table)

    json_path = args.json
    if json_path is None and not args.smoke:
        json_path = DEFAULT_JSON
    if json_path is not None:
        json_path.parent.mkdir(parents=True, exist_ok=True)
        json_path.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nwrote {json_path}")
    if not args.smoke:
        OUTPUT_DIR.mkdir(exist_ok=True)
        (OUTPUT_DIR / "rlwe_pipeline.txt").write_text(table + "\n")

    failures = report["acceptance"]["failures"]
    if failures:
        print("\nFAIL:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(
        "\nPASS: every product decrypts to schoolbook truth, "
        "noise budgets positive, cycle model engaged"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
