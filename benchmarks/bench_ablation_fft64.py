"""E8 — ablation of the Section IV-b optimizations.

The paper itemizes its FFT-64 optimizations (shared first stage, halved
chains, 4-shift twiddles, merged carry-save, 8 shared reductors, input
normalize) and attributes "around 60% saving in hardware costs" to
their combination.  The ablation disables one flag at a time from the
proposed configuration and one at a time *enables* each from the
baseline, attributing ALM/register savings to each optimization —
while asserting bit-exact functionality throughout.
"""

from dataclasses import replace

from benchmarks.conftest import write_artifact
from repro.field.solinas import P
from repro.hw.fft64_unit import FFT64Config, FFT64Unit
from repro.ntt.radix64 import ntt_shift_radix

FLAGS = [
    "shared_first_stage",
    "halved_chains",
    "reduced_twiddle_shifts",
    "merged_carry_save",
    "shared_reductors",
    "input_normalize",
]


def test_fft64_optimization_ablation(benchmark, artifact_dir, rng):
    x = [rng.randrange(P) for _ in range(64)]
    want = ntt_shift_radix(list(x), 64)

    def census():
        return {
            "proposed": FFT64Unit(config=FFT64Config.proposed()).resources(),
            "baseline": FFT64Unit(config=FFT64Config.baseline()).resources(),
        }

    totals = benchmark(census)
    proposed, baseline = totals["proposed"], totals["baseline"]

    lines = [
        "FFT-64 unit ablation (per-unit census)",
        "",
        f"{'configuration':<36}{'ALMs':>10}{'regs':>10}{'d ALMs':>10}",
        f"{'proposed (all optimizations)':<36}{proposed.alms:>10.0f}"
        f"{proposed.registers:>10.0f}{'':>10}",
    ]

    for flag in FLAGS:
        config = replace(FFT64Config.proposed(), **{flag: False})
        unit = FFT64Unit(config=config)
        assert unit.transform(list(x)) == want, f"{flag}: values changed!"
        est = unit.resources()
        lines.append(
            f"{'  - ' + flag:<36}{est.alms:>10.0f}{est.registers:>10.0f}"
            f"{est.alms - proposed.alms:>+10.0f}"
        )

    lines.append(
        f"{'baseline (no optimizations)':<36}{baseline.alms:>10.0f}"
        f"{baseline.registers:>10.0f}{baseline.alms - proposed.alms:>+10.0f}"
    )

    lines += ["", "single optimizations applied to the baseline:"]
    for flag in FLAGS:
        config = replace(FFT64Config.baseline(), **{flag: True})
        unit = FFT64Unit(config=config)
        assert unit.transform(list(x)) == want
        est = unit.resources()
        lines.append(
            f"{'  + ' + flag:<36}{est.alms:>10.0f}{est.registers:>10.0f}"
            f"{est.alms - baseline.alms:>+10.0f}"
        )

    saving = 1 - proposed.alms / baseline.alms
    lines += [
        "",
        f"combined per-unit ALM saving: {saving:.0%} "
        "(system-level Table I saving ≈ 55-65%)",
    ]
    write_artifact(artifact_dir, "ablation_fft64.txt", "\n".join(lines))

    assert saving > 0.5
    assert proposed.registers < baseline.registers
