"""Architecture design-space exploration trajectory — ISSUE 9.

Standalone benchmark (also importable under pytest) driving the
:mod:`repro.arch` explorer over the declarative hardware model:

- **sweep**: enumerate the default :class:`~repro.arch.explore.DesignSpace`
  (PE count × FFT units × dot/carry widths × exchange topology ×
  radix plan), price every candidate through the cycle model on the
  paper 64K-SSA and RLWE-4096 workloads, and prune to the Pareto
  frontier of total cycles vs the area proxy;
- **paper anchor**: the DATE'16 operating point (4 PEs, hypercube,
  64×64×16 plan) is always evaluated and located against the frontier
  — the acceptance gate requires it to be on the frontier or strictly
  dominated (fewer cycles at equal-or-lower area);
- **overlap**: the pipelined batch schedule's cross-row stall hiding,
  reported at the paper point (exchanges fully hidden — 0% headroom)
  and at 16 PEs where the exchange becomes the bottleneck and the
  overlap recovers ~23% of the serial schedule;
- **determinism**: the sweep runs twice (jobs-parallel and inline) and
  the two reports must be byte-identical.

Results go to two places:

- ``BENCH_arch_dse.json`` at the repo root — the machine-readable
  perf-trajectory point (arch-DSE series, one point per PR);
- ``benchmarks/output/arch_dse.txt`` — the human-readable table
  (plus ``arch_dse.png`` when matplotlib is available).

Usage::

    python benchmarks/bench_arch_dse.py            # full
    python benchmarks/bench_arch_dse.py --smoke    # CI gate
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import List, Optional

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.arch.explore import (  # noqa: E402
    DEFAULT_WORKLOADS,
    DesignSpace,
    ExplorationResult,
    explore,
    plot_frontier,
)
from repro.arch.spec import ArchSpec  # noqa: E402
from repro.hw.accelerator import HEAccelerator  # noqa: E402
from repro.ntt.plan import plan_for_size  # noqa: E402

DEFAULT_JSON = REPO_ROOT / "BENCH_arch_dse.json"
OUTPUT_DIR = Path(__file__).resolve().parent / "output"

#: Smoke trims the enumeration to keep the CI gate under a second.
SMOKE_MAX_CANDIDATES = 24


def overlap_case(pes: int, rows: int) -> dict:
    """Cross-row stall hiding of the pipelined batch schedule.

    Prices a ``rows``-row 64K batch at ``pes`` PEs and reports how many
    exchange cycles the steady-state overlap hides relative to the
    serial back-to-back schedule.
    """
    arch = ArchSpec.paper_default().with_overrides(
        pes=pes, name=f"hypercube-p{pes}"
    )
    accelerator = HEAccelerator(
        plan=plan_for_size(65536, (64, 64, 16)), arch=arch
    )
    batch = accelerator.batch_schedule(rows)
    serial = batch.serial_total_cycles
    hidden = batch.hidden_stall_cycles
    return {
        "pes": pes,
        "rows": rows,
        "total_cycles": batch.total_cycles,
        "serial_cycles": serial,
        "hidden_stall_cycles": hidden,
        "improvement_pct": 100.0 * hidden / serial if serial else 0.0,
        "time_us": batch.time_us,
    }


def evaluate(report: dict) -> List[str]:
    """Acceptance gates; returns human-readable failure strings."""
    failures: List[str] = []
    results = report["results"]
    if not results["frontier"]:
        failures.append("Pareto frontier is empty")
    if not (results["paper_on_frontier"] or results["dominating_paper"]):
        failures.append(
            "paper point is neither on the frontier nor strictly "
            "dominated by a frontier member"
        )
    if not report["determinism"]["runs_identical"]:
        failures.append(
            "jobs-parallel and inline sweeps produced different reports"
        )
    return failures


def run_suite(smoke: bool) -> "tuple[dict, ExplorationResult]":
    """One trajectory point: sweep twice, compare, gate, report."""
    max_candidates = SMOKE_MAX_CANDIDATES if smoke else 512
    space = DesignSpace(max_candidates=max_candidates)
    start = time.perf_counter()
    first = explore(space, use_jobs=not smoke)
    sweep_s = time.perf_counter() - start
    second = explore(space, use_jobs=False)
    runs_identical = first.to_json() == second.to_json()

    overlap = [overlap_case(4, 8)]
    if not smoke:
        overlap.append(overlap_case(16, 16))

    report = {
        "benchmark": "arch_dse",
        "schema_version": 1,
        "mode": "smoke" if smoke else "full",
        "created_unix": time.time(),
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpus": os.cpu_count(),
        },
        "config": {
            "max_candidates": max_candidates,
            "workloads": [w.name for w in DEFAULT_WORKLOADS],
            "first_run_used_jobs": not smoke,
            "sweep_seconds": sweep_s,
        },
        "results": first.to_dict(),
        "overlap": overlap,
        "determinism": {"runs_identical": runs_identical},
    }
    failures = evaluate(report)
    report["acceptance"] = {
        "failures": failures,
        "passed": not failures,
    }
    return report, first


def render_table(report: dict, result: ExplorationResult) -> str:
    lines = [
        f"architecture design-space exploration ({report['mode']})",
        "",
        result.render(limit=14),
        "",
        "batch overlap (pipelined cross-row schedule vs serial):",
        f"{'PEs':>4} {'rows':>5} {'total':>10} {'serial':>10} "
        f"{'hidden':>8} {'saved':>7}",
    ]
    for case in report["overlap"]:
        lines.append(
            f"{case['pes']:>4} {case['rows']:>5} "
            f"{case['total_cycles']:>10,} {case['serial_cycles']:>10,} "
            f"{case['hidden_stall_cycles']:>8,} "
            f"{case['improvement_pct']:>6.1f}%"
        )
    lines.append(
        "(at the paper point the exchanges are fully hidden inside "
        "compute, so the overlap saves 0%; at 16 PEs the exchange "
        "dominates and the overlap recovers the difference)"
    )
    lines.append("")
    lines.append(
        "determinism: jobs vs inline sweeps "
        + (
            "byte-identical"
            if report["determinism"]["runs_identical"]
            else "DIVERGED"
        )
    )
    return "\n".join(lines)


def test_smoke_arch_dse():
    """Pytest hook: the smoke sweep must pass its gates."""
    report, _ = run_suite(smoke=True)
    assert report["acceptance"]["passed"], report["acceptance"]["failures"]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="trimmed enumeration for CI; no JSON artifact",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        help=(
            "where to write the JSON report (default: repo-root "
            "BENCH_arch_dse.json on full runs, nowhere on --smoke)"
        ),
    )
    args = parser.parse_args(argv)

    report, result = run_suite(args.smoke)
    table = render_table(report, result)
    print(table)

    json_path = args.json
    if json_path is None and not args.smoke:
        json_path = DEFAULT_JSON
    if json_path is not None:
        json_path.parent.mkdir(parents=True, exist_ok=True)
        json_path.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nwrote {json_path}")
    if not args.smoke:
        OUTPUT_DIR.mkdir(exist_ok=True)
        (OUTPUT_DIR / "arch_dse.txt").write_text(table + "\n")
        png = plot_frontier(result, str(OUTPUT_DIR / "arch_dse.png"))
        if png:
            print(f"wrote {png}")

    failures = report["acceptance"]["failures"]
    if failures:
        print("\nFAIL:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nall arch-DSE gates passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
