"""Shared benchmark helpers.

Every benchmark both *times* a representative computation (via
pytest-benchmark) and *regenerates* the corresponding table/figure of
the paper, writing the artifact to ``benchmarks/output/`` so the
reproduction evidence persists after the run.
"""

import random
from pathlib import Path

import pytest

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def artifact_dir():
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture
def rng():
    return random.Random(0xDA7E2016)


def write_artifact(directory: Path, name: str, text: str) -> None:
    """Persist a regenerated table/figure and echo it to the log."""
    path = directory / name
    path.write_text(text + "\n")
    print(f"\n--- {name} ---")
    print(text)
