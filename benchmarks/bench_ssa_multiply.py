"""SSA-multiply perf trajectory, driven through the Engine façade.

Standalone benchmark (also importable under pytest) timing
``Engine().multiply`` on the software backend: the paper's single
786,432-bit product plus looped-vs-batched throughput at service-like
batch sizes — every measurement cross-checked bit-exact against
Python's big integers.  Results go to two places:

- ``BENCH_ssa_multiply.json`` at the repo root — the machine-readable
  perf-trajectory point (SSA-multiply series, one point per PR);
- ``benchmarks/output/ssa_multiply.txt`` — the human-readable table.

Usage::

    python benchmarks/bench_ssa_multiply.py            # full: paper size
    python benchmarks/bench_ssa_multiply.py --smoke    # CI: small sizes

Exit status is non-zero if any product loses bit-exactness or the
batched path regresses below the mode's speedup floor over looped
multiplication.
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import sys
import time
from pathlib import Path
from typing import List, Optional

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.engine import Engine  # noqa: E402

DEFAULT_JSON = REPO_ROOT / "BENCH_ssa_multiply.json"
OUTPUT_DIR = Path(__file__).resolve().parent / "output"

#: The batched path must never lose to looping the scalar path on a
#: full run; the smoke floor is lenient because CI boxes are noisy and
#: the sizes tiny.
FULL_MIN_SPEEDUP = 1.0
SMOKE_MIN_SPEEDUP = 0.5


def _best_time(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_case(
    engine: Engine, bits: int, count: int, repeats: int, seed: int
) -> dict:
    """Time looped vs batched products of one ``(bits, count)`` point."""
    rng = random.Random(seed)
    left = [rng.getrandbits(bits) for _ in range(count)]
    right = [rng.getrandbits(bits) for _ in range(count)]
    truth = [a * b for a, b in zip(left, right)]

    batched = engine.multiply(left, right)  # warm plans + verify
    looped = [engine.multiply(a, b) for a, b in zip(left, right)]
    bit_exact = batched == truth and looped == truth

    looped_s = _best_time(
        lambda: [engine.multiply(a, b) for a, b in zip(left, right)],
        repeats,
    )
    batched_s = _best_time(lambda: engine.multiply(left, right), repeats)
    return {
        "bits": bits,
        "count": count,
        "looped_s": looped_s,
        "batched_s": batched_s,
        "speedup": looped_s / batched_s,
        "batched_ops_per_s": count / batched_s,
        "bit_exact": bit_exact,
    }


def render_table(results: List[dict]) -> str:
    lines = [
        "SSA multiplication through Engine(): looped vs batched",
        "",
        f"{'bits':>8} {'count':>6} {'looped s':>10} {'batched s':>10} "
        f"{'speedup':>8} {'ops/s':>10} {'exact':>6}",
    ]
    for r in results:
        lines.append(
            f"{r['bits']:>8} {r['count']:>6} {r['looped_s']:>10.4f} "
            f"{r['batched_s']:>10.4f} {r['speedup']:>7.2f}x "
            f"{r['batched_ops_per_s']:>10.1f} "
            f"{'yes' if r['bit_exact'] else 'NO':>6}"
        )
    return "\n".join(lines)


def evaluate(results: List[dict], smoke: bool) -> List[str]:
    """Gate failures (empty list == pass)."""
    floor = SMOKE_MIN_SPEEDUP if smoke else FULL_MIN_SPEEDUP
    failures = []
    for r in results:
        tag = f"bits={r['bits']} count={r['count']}"
        if not r["bit_exact"]:
            failures.append(f"{tag}: products diverged from big-int truth")
        if r["count"] > 1 and r["speedup"] < floor:
            failures.append(
                f"{tag}: batched path regressed to "
                f"{r['speedup']:.2f}x (< {floor}x looped)"
            )
    return failures


def run_suite(smoke: bool, repeats: Optional[int], seed: int) -> dict:
    engine = Engine()
    if smoke:
        cases = [(2048, 1), (2048, 8)]
        repeats = repeats or 2
    else:
        cases = [(786_432, 1), (4096, 32), (16384, 16)]
        repeats = repeats or 3
    results = [
        run_case(engine, bits, count, repeats, seed + i)
        for i, (bits, count) in enumerate(cases)
    ]
    failures = evaluate(results, smoke)
    return {
        "benchmark": "ssa_multiply",
        "schema_version": 1,
        "mode": "smoke" if smoke else "full",
        "created_unix": time.time(),
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "config": {
            "engine_kernel": engine.config.kernel,
            "repeats": repeats,
            "seed": seed,
            "timer": "best-of-repeats wall clock",
        },
        "results": results,
        "acceptance": {
            "min_batched_speedup": (
                SMOKE_MIN_SPEEDUP if smoke else FULL_MIN_SPEEDUP
            ),
            "failures": failures,
            "passed": not failures,
        },
    }


def test_smoke_comparison():
    """Pytest hook: the smoke suite must pass its gates."""
    report = run_suite(smoke=True, repeats=1, seed=0x55A)
    assert report["acceptance"]["passed"], report["acceptance"]["failures"]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small sizes for CI; lenient speedup floor",
    )
    parser.add_argument(
        "--repeats", type=int, default=None, help="timing repeats per case"
    )
    parser.add_argument("--seed", type=int, default=0x55A)
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        help=(
            "where to write the JSON report (default: repo-root "
            "BENCH_ssa_multiply.json on full runs, nowhere on --smoke)"
        ),
    )
    args = parser.parse_args(argv)

    report = run_suite(args.smoke, args.repeats, args.seed)
    table = render_table(report["results"])
    print(table)

    json_path = args.json
    if json_path is None and not args.smoke:
        json_path = DEFAULT_JSON
    if json_path is not None:
        json_path.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nwrote {json_path}")
    if not args.smoke:
        OUTPUT_DIR.mkdir(exist_ok=True)
        (OUTPUT_DIR / "ssa_multiply.txt").write_text(table + "\n")

    failures = report["acceptance"]["failures"]
    if failures:
        print("\nFAIL:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nPASS: bit-exact everywhere, speedup gates met")
    return 0


if __name__ == "__main__":
    sys.exit(main())
