"""SSA-multiply perf trajectory, driven through the Engine façade.

Standalone benchmark (also importable under pytest) timing
``Engine().multiply`` on the software backend: the paper's single
786,432-bit product plus looped-vs-batched throughput at service-like
batch sizes — every measurement cross-checked bit-exact against
Python's big integers.  Batched cases additionally time the jobs API
(looped ``JobScheduler.submit`` vs chunked ``JobScheduler.map``) and
cross-check the ``software-mp`` sharding backend bit-identical against
``software``.  Results go to two places:

- ``BENCH_ssa_multiply.json`` at the repo root — the machine-readable
  perf-trajectory point (SSA-multiply series, one point per PR);
- ``benchmarks/output/ssa_multiply.txt`` — the human-readable table.

Usage::

    python benchmarks/bench_ssa_multiply.py            # full: paper size
    python benchmarks/bench_ssa_multiply.py --smoke    # CI: small sizes

Exit status is non-zero if any product loses bit-exactness or the
batched path regresses below the mode's speedup floor over looped
multiplication.
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import sys
import time
from pathlib import Path
from typing import List, Optional

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.engine import Engine, ExecutionConfig  # noqa: E402
from repro.jobs import MultiplyJob  # noqa: E402

DEFAULT_JSON = REPO_ROOT / "BENCH_ssa_multiply.json"
OUTPUT_DIR = Path(__file__).resolve().parent / "output"

#: The batched path must never lose to looping the scalar path on a
#: full run; the smoke floor is lenient because CI boxes are noisy and
#: the sizes tiny.
FULL_MIN_SPEEDUP = 1.0
SMOKE_MIN_SPEEDUP = 0.5
#: ``JobScheduler.map`` must beat looped per-pair submission (the
#: acceptance gate holds on >= 2 cores; single-core boxes still record
#: the numbers but only the lenient floor is enforced).
JOBS_MIN_SPEEDUP = 1.0
JOBS_MIN_SPEEDUP_1CORE = 0.5


def _best_time(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_case(
    engine: Engine,
    bits: int,
    count: int,
    repeats: int,
    seed: int,
    mp_engine: Optional[Engine] = None,
) -> dict:
    """Time looped vs batched products of one ``(bits, count)`` point.

    Batched cases also time the jobs API — per-pair ``submit`` loops
    vs chunked ``map`` over the same series — and, when ``mp_engine``
    is given, cross-check the ``software-mp`` products bit-identical.
    """
    rng = random.Random(seed)
    left = [rng.getrandbits(bits) for _ in range(count)]
    right = [rng.getrandbits(bits) for _ in range(count)]
    pairs = list(zip(left, right))
    truth = [a * b for a, b in pairs]

    batched = engine.multiply(left, right)  # warm plans + verify
    looped = [engine.multiply(a, b) for a, b in zip(left, right)]
    bit_exact = batched == truth and looped == truth

    looped_s = _best_time(
        lambda: [engine.multiply(a, b) for a, b in zip(left, right)],
        repeats,
    )
    batched_s = _best_time(lambda: engine.multiply(left, right), repeats)
    entry = {
        "bits": bits,
        "count": count,
        "looped_s": looped_s,
        "batched_s": batched_s,
        "speedup": looped_s / batched_s,
        "batched_ops_per_s": count / batched_s,
        "bit_exact": bit_exact,
    }

    if mp_engine is not None:
        entry["mp_bit_identical"] = (
            mp_engine.multiply(left, right) == truth
        )

    if count > 1:
        scheduler = engine.scheduler()

        def submit_looped():
            handles = [
                scheduler.submit(MultiplyJob.of(a, b)) for a, b in pairs
            ]
            return [h.result()[0] for h in handles]

        def submit_map():
            return scheduler.map("multiply", pairs)

        jobs_exact = submit_looped() == truth and submit_map() == truth
        jobs_looped_s = _best_time(submit_looped, repeats)
        jobs_map_s = _best_time(submit_map, repeats)
        entry["jobs"] = {
            "looped_submit_s": jobs_looped_s,
            "map_s": jobs_map_s,
            "map_speedup": jobs_looped_s / jobs_map_s,
            "map_ops_per_s": count / jobs_map_s,
            "bit_exact": jobs_exact,
        }
    return entry


def render_table(results: List[dict]) -> str:
    lines = [
        "SSA multiplication through Engine(): looped vs batched",
        "",
        f"{'bits':>8} {'count':>6} {'looped s':>10} {'batched s':>10} "
        f"{'speedup':>8} {'ops/s':>10} {'exact':>6}",
    ]
    for r in results:
        lines.append(
            f"{r['bits']:>8} {r['count']:>6} {r['looped_s']:>10.4f} "
            f"{r['batched_s']:>10.4f} {r['speedup']:>7.2f}x "
            f"{r['batched_ops_per_s']:>10.1f} "
            f"{'yes' if r['bit_exact'] else 'NO':>6}"
        )
    jobs_rows = [r for r in results if "jobs" in r]
    if jobs_rows:
        lines += [
            "",
            "jobs API: looped JobScheduler.submit vs chunked .map",
            "",
            f"{'bits':>8} {'count':>6} {'submit s':>10} {'map s':>10} "
            f"{'speedup':>8} {'ops/s':>10} {'exact':>6}",
        ]
        for r in jobs_rows:
            j = r["jobs"]
            lines.append(
                f"{r['bits']:>8} {r['count']:>6} "
                f"{j['looped_submit_s']:>10.4f} {j['map_s']:>10.4f} "
                f"{j['map_speedup']:>7.2f}x {j['map_ops_per_s']:>10.1f} "
                f"{'yes' if j['bit_exact'] else 'NO':>6}"
            )
    if any("mp_bit_identical" in r for r in results):
        identical = all(
            r.get("mp_bit_identical", True) for r in results
        )
        lines += [
            "",
            "software-mp vs software: "
            + ("bit-identical" if identical else "DIVERGED"),
        ]
    return "\n".join(lines)


def evaluate(results: List[dict], smoke: bool) -> List[str]:
    """Gate failures (empty list == pass)."""
    import os

    floor = SMOKE_MIN_SPEEDUP if smoke else FULL_MIN_SPEEDUP
    # The map-vs-looped-submission gate is the acceptance criterion on
    # multi-core hosts; single-core boxes only enforce a sanity floor.
    jobs_floor = (
        JOBS_MIN_SPEEDUP
        if (os.cpu_count() or 1) >= 2 and not smoke
        else JOBS_MIN_SPEEDUP_1CORE
    )
    failures = []
    for r in results:
        tag = f"bits={r['bits']} count={r['count']}"
        if not r["bit_exact"]:
            failures.append(f"{tag}: products diverged from big-int truth")
        if not r.get("mp_bit_identical", True):
            failures.append(
                f"{tag}: software-mp diverged from the software backend"
            )
        if r["count"] > 1 and r["speedup"] < floor:
            failures.append(
                f"{tag}: batched path regressed to "
                f"{r['speedup']:.2f}x (< {floor}x looped)"
            )
        jobs = r.get("jobs")
        if jobs is not None:
            if not jobs["bit_exact"]:
                failures.append(
                    f"{tag}: jobs API diverged from big-int truth"
                )
            if jobs["map_speedup"] < jobs_floor:
                failures.append(
                    f"{tag}: JobScheduler.map regressed to "
                    f"{jobs['map_speedup']:.2f}x "
                    f"(< {jobs_floor}x looped submission)"
                )
    return failures


def run_suite(smoke: bool, repeats: Optional[int], seed: int) -> dict:
    import os

    engine = Engine()
    mp_engine = Engine(backend="software-mp")
    if smoke:
        cases = [(2048, 1), (2048, 8)]
        repeats = repeats or 2
    else:
        cases = [(786_432, 1), (4096, 32), (16384, 16)]
        repeats = repeats or 3
    try:
        results = [
            run_case(
                engine, bits, count, repeats, seed + i, mp_engine=mp_engine
            )
            for i, (bits, count) in enumerate(cases)
        ]
    finally:
        mp_engine.close()
        engine.close()
    failures = evaluate(results, smoke)
    return {
        "benchmark": "ssa_multiply",
        "schema_version": 2,
        "mode": "smoke" if smoke else "full",
        "created_unix": time.time(),
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpus": os.cpu_count(),
        },
        "config": {
            "engine_kernel": engine.config.kernel,
            "mp_workers": mp_engine.backend.workers(mp_engine),
            "repeats": repeats,
            "seed": seed,
            "timer": "best-of-repeats wall clock",
        },
        "results": results,
        "acceptance": {
            "min_batched_speedup": (
                SMOKE_MIN_SPEEDUP if smoke else FULL_MIN_SPEEDUP
            ),
            "failures": failures,
            "passed": not failures,
        },
    }


def test_smoke_comparison():
    """Pytest hook: the smoke suite must pass its gates."""
    report = run_suite(smoke=True, repeats=1, seed=0x55A)
    assert report["acceptance"]["passed"], report["acceptance"]["failures"]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small sizes for CI; lenient speedup floor",
    )
    parser.add_argument(
        "--repeats", type=int, default=None, help="timing repeats per case"
    )
    parser.add_argument("--seed", type=int, default=0x55A)
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        help=(
            "where to write the JSON report (default: repo-root "
            "BENCH_ssa_multiply.json on full runs, nowhere on --smoke)"
        ),
    )
    args = parser.parse_args(argv)

    report = run_suite(args.smoke, args.repeats, args.seed)
    table = render_table(report["results"])
    print(table)

    json_path = args.json
    if json_path is None and not args.smoke:
        json_path = DEFAULT_JSON
    if json_path is not None:
        json_path.parent.mkdir(parents=True, exist_ok=True)
        json_path.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nwrote {json_path}")
    if not args.smoke:
        OUTPUT_DIR.mkdir(exist_ok=True)
        (OUTPUT_DIR / "ssa_multiply.txt").write_text(table + "\n")

    failures = report["acceptance"]["failures"]
    if failures:
        print("\nFAIL:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nPASS: bit-exact everywhere, speedup gates met")
    return 0


if __name__ == "__main__":
    sys.exit(main())
