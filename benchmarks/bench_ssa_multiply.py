"""SSA-multiply perf trajectory, driven through the Engine façade.

Standalone benchmark (also importable under pytest) timing
``Engine().multiply`` on the software backend: the paper's single
786,432-bit product plus looped-vs-batched throughput at service-like
batch sizes — every measurement cross-checked bit-exact against
Python's big integers.  Batched cases additionally time the jobs API
(looped ``JobScheduler.submit`` vs chunked ``JobScheduler.map``) and
cross-check the ``software-mp`` sharding backend bit-identical against
``software``.  The ordering gate (ISSUE 6) times ``multiply_many`` on
the permutation-free (decimated DIF/DIT) multiplier against the
natural-ordering one — on full runs the best batched paper 64K-plan
case must clear the acceptance speedup.  Results go to two places:

- ``BENCH_ssa_multiply.json`` at the repo root — the machine-readable
  perf-trajectory point (SSA-multiply series, one point per PR);
- ``benchmarks/output/ssa_multiply.txt`` — the human-readable table.

Usage::

    python benchmarks/bench_ssa_multiply.py            # full: paper size
    python benchmarks/bench_ssa_multiply.py --smoke    # CI: small sizes

Exit status is non-zero if any product loses bit-exactness or the
batched path regresses below the mode's speedup floor over looped
multiplication.
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import sys
import time
from pathlib import Path
from typing import List, Optional

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.engine import Engine, ExecutionConfig  # noqa: E402
from repro.jobs import MultiplyJob  # noqa: E402

DEFAULT_JSON = REPO_ROOT / "BENCH_ssa_multiply.json"
OUTPUT_DIR = Path(__file__).resolve().parent / "output"

#: The batched path must never lose to looping the scalar path on a
#: full run; the smoke floor is lenient because CI boxes are noisy and
#: the sizes tiny.
FULL_MIN_SPEEDUP = 1.0
SMOKE_MIN_SPEEDUP = 0.5
#: ``JobScheduler.map`` must beat looped per-pair submission (the
#: acceptance gate holds on >= 2 cores; single-core boxes still record
#: the numbers but only the lenient floor is enforced).
JOBS_MIN_SPEEDUP = 1.0
JOBS_MIN_SPEEDUP_1CORE = 0.5
#: The permutation-free (decimated DIF/DIT) multiplier must never lose
#: to the natural-ordering one — it strictly skips the digit-reversal
#: gathers and the trailing ``n^{-1}`` scale pass — and the full run
#: gates the ISSUE 6 acceptance on the *best* batched paper 64K-plan
#: case, matching the bench_ntt_kernels gate: the margin is a few
#: skipped vector passes, so individual batch sizes sit within timer
#: jitter of the threshold while the best batched case clears it
#: (smoke sizes are SSA-overhead-dominated, so only the lenient floor
#: holds there).
ORDERING_MIN_SPEEDUP = 1.0
ORDERING_SMOKE_MIN_SPEEDUP = 0.5
ORDERING_ACCEPTANCE_SPEEDUP = 1.05
ORDERING_ACCEPTANCE_BITS = 786_432


def _best_time(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _interleaved_best(fn_a, fn_b, repeats: int):
    """Best-of timing with A/B samples interleaved (noise-robust)."""
    best_a = best_b = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn_a()
        best_a = min(best_a, time.perf_counter() - start)
        start = time.perf_counter()
        fn_b()
        best_b = min(best_b, time.perf_counter() - start)
    return best_a, best_b


def run_ordering_case(
    bits: int, count: int, repeats: int, seed: int
) -> dict:
    """Natural-ordering vs permutation-free ``multiply_many``.

    Two multipliers share the same parameters; one pins the historical
    natural-order convolution plan, the other the decimated DIF/DIT
    pair (the new default).  Products are cross-checked against
    Python's big integers on both, and the timing ratio is the
    permutation-free speedup on the SSA hot path.
    """
    from repro.ntt.plan import ORDER_NATURAL
    from repro.ssa.multiplier import SSAMultiplier

    rng = random.Random(seed)
    pairs = [
        (rng.getrandbits(bits), rng.getrandbits(bits))
        for _ in range(count)
    ]
    truth = [a * b for a, b in pairs]
    natural = SSAMultiplier.for_bits(bits, ordering=ORDER_NATURAL)
    free = SSAMultiplier.for_bits(bits)

    bit_exact = (
        natural.multiply_many(pairs) == truth
        and free.multiply_many(pairs) == truth
    )
    natural_s, free_s = _interleaved_best(
        lambda: natural.multiply_many(pairs),
        lambda: free.multiply_many(pairs),
        repeats,
    )
    return {
        "bits": bits,
        "count": count,
        "transform_n": free.plan.n,
        "natural_s": natural_s,
        "permutation_free_s": free_s,
        "speedup": natural_s / free_s,
        "permutation_free_ops_per_s": count / free_s,
        "bit_exact": bit_exact,
    }


def run_case(
    engine: Engine,
    bits: int,
    count: int,
    repeats: int,
    seed: int,
    mp_engine: Optional[Engine] = None,
) -> dict:
    """Time looped vs batched products of one ``(bits, count)`` point.

    Batched cases also time the jobs API — per-pair ``submit`` loops
    vs chunked ``map`` over the same series — and, when ``mp_engine``
    is given, cross-check the ``software-mp`` products bit-identical.
    """
    rng = random.Random(seed)
    left = [rng.getrandbits(bits) for _ in range(count)]
    right = [rng.getrandbits(bits) for _ in range(count)]
    pairs = list(zip(left, right))
    truth = [a * b for a, b in pairs]

    batched = engine.multiply(left, right)  # warm plans + verify
    looped = [engine.multiply(a, b) for a, b in zip(left, right)]
    bit_exact = batched == truth and looped == truth

    looped_s = _best_time(
        lambda: [engine.multiply(a, b) for a, b in zip(left, right)],
        repeats,
    )
    batched_s = _best_time(lambda: engine.multiply(left, right), repeats)
    entry = {
        "bits": bits,
        "count": count,
        "looped_s": looped_s,
        "batched_s": batched_s,
        "speedup": looped_s / batched_s,
        "batched_ops_per_s": count / batched_s,
        "bit_exact": bit_exact,
    }

    if mp_engine is not None:
        entry["mp_bit_identical"] = (
            mp_engine.multiply(left, right) == truth
        )

    if count > 1:
        scheduler = engine.scheduler()

        def submit_looped():
            handles = [
                scheduler.submit(MultiplyJob.of(a, b)) for a, b in pairs
            ]
            return [h.result()[0] for h in handles]

        def submit_map():
            return scheduler.map("multiply", pairs)

        jobs_exact = submit_looped() == truth and submit_map() == truth
        jobs_looped_s = _best_time(submit_looped, repeats)
        jobs_map_s = _best_time(submit_map, repeats)
        entry["jobs"] = {
            "looped_submit_s": jobs_looped_s,
            "map_s": jobs_map_s,
            "map_speedup": jobs_looped_s / jobs_map_s,
            "map_ops_per_s": count / jobs_map_s,
            "bit_exact": jobs_exact,
        }
    return entry


def render_table(results: List[dict]) -> str:
    lines = [
        "SSA multiplication through Engine(): looped vs batched",
        "",
        f"{'bits':>8} {'count':>6} {'looped s':>10} {'batched s':>10} "
        f"{'speedup':>8} {'ops/s':>10} {'exact':>6}",
    ]
    for r in results:
        lines.append(
            f"{r['bits']:>8} {r['count']:>6} {r['looped_s']:>10.4f} "
            f"{r['batched_s']:>10.4f} {r['speedup']:>7.2f}x "
            f"{r['batched_ops_per_s']:>10.1f} "
            f"{'yes' if r['bit_exact'] else 'NO':>6}"
        )
    jobs_rows = [r for r in results if "jobs" in r]
    if jobs_rows:
        lines += [
            "",
            "jobs API: looped JobScheduler.submit vs chunked .map",
            "",
            f"{'bits':>8} {'count':>6} {'submit s':>10} {'map s':>10} "
            f"{'speedup':>8} {'ops/s':>10} {'exact':>6}",
        ]
        for r in jobs_rows:
            j = r["jobs"]
            lines.append(
                f"{r['bits']:>8} {r['count']:>6} "
                f"{j['looped_submit_s']:>10.4f} {j['map_s']:>10.4f} "
                f"{j['map_speedup']:>7.2f}x {j['map_ops_per_s']:>10.1f} "
                f"{'yes' if j['bit_exact'] else 'NO':>6}"
            )
    if any("mp_bit_identical" in r for r in results):
        identical = all(
            r.get("mp_bit_identical", True) for r in results
        )
        lines += [
            "",
            "software-mp vs software: "
            + ("bit-identical" if identical else "DIVERGED"),
        ]
    return "\n".join(lines)


def render_ordering_table(results: List[dict]) -> str:
    lines = [
        "",
        "multiply_many orderings: permutation-free DIF/DIT vs natural",
        "",
        f"{'bits':>8} {'count':>6} {'n':>7} {'natural s':>10} "
        f"{'perm-free s':>12} {'speedup':>8} {'exact':>6}",
    ]
    for r in results:
        lines.append(
            f"{r['bits']:>8} {r['count']:>6} {r['transform_n']:>7} "
            f"{r['natural_s']:>10.4f} {r['permutation_free_s']:>12.4f} "
            f"{r['speedup']:>7.2f}x "
            f"{'yes' if r['bit_exact'] else 'NO':>6}"
        )
    return "\n".join(lines)


def evaluate(
    results: List[dict],
    smoke: bool,
    ordering: Optional[List[dict]] = None,
) -> List[str]:
    """Gate failures (empty list == pass)."""
    import os

    floor = SMOKE_MIN_SPEEDUP if smoke else FULL_MIN_SPEEDUP
    # The map-vs-looped-submission gate is the acceptance criterion on
    # multi-core hosts; single-core boxes only enforce a sanity floor.
    jobs_floor = (
        JOBS_MIN_SPEEDUP
        if (os.cpu_count() or 1) >= 2 and not smoke
        else JOBS_MIN_SPEEDUP_1CORE
    )
    failures = []
    for r in results:
        tag = f"bits={r['bits']} count={r['count']}"
        if not r["bit_exact"]:
            failures.append(f"{tag}: products diverged from big-int truth")
        if not r.get("mp_bit_identical", True):
            failures.append(
                f"{tag}: software-mp diverged from the software backend"
            )
        if r["count"] > 1 and r["speedup"] < floor:
            failures.append(
                f"{tag}: batched path regressed to "
                f"{r['speedup']:.2f}x (< {floor}x looped)"
            )
        jobs = r.get("jobs")
        if jobs is not None:
            if not jobs["bit_exact"]:
                failures.append(
                    f"{tag}: jobs API diverged from big-int truth"
                )
            if jobs["map_speedup"] < jobs_floor:
                failures.append(
                    f"{tag}: JobScheduler.map regressed to "
                    f"{jobs['map_speedup']:.2f}x "
                    f"(< {jobs_floor}x looped submission)"
                )
    ordering_floor = (
        ORDERING_SMOKE_MIN_SPEEDUP if smoke else ORDERING_MIN_SPEEDUP
    )
    for r in ordering or []:
        tag = f"ordering bits={r['bits']} count={r['count']}"
        if not r["bit_exact"]:
            failures.append(
                f"{tag}: products diverged from big-int truth"
            )
        if r["speedup"] < ordering_floor:
            failures.append(
                f"{tag}: permutation-free multiplier regressed to "
                f"{r['speedup']:.2f}x (< {ordering_floor}x natural)"
            )
    if not smoke:
        paper_cases = [
            r
            for r in ordering or []
            if r["bits"] == ORDERING_ACCEPTANCE_BITS
        ]
        if not paper_cases:
            failures.append(
                f"no {ORDERING_ACCEPTANCE_BITS}-bit ordering "
                f"measurement present"
            )
        else:
            best = max(r["speedup"] for r in paper_cases)
            if best < ORDERING_ACCEPTANCE_SPEEDUP:
                failures.append(
                    f"ordering bits={ORDERING_ACCEPTANCE_BITS}: best "
                    f"batched permutation-free speedup {best:.2f}x "
                    f"< {ORDERING_ACCEPTANCE_SPEEDUP}x acceptance "
                    f"threshold"
                )
    return failures


def run_suite(smoke: bool, repeats: Optional[int], seed: int) -> dict:
    import os

    engine = Engine()
    mp_engine = Engine(backend="software-mp")
    if smoke:
        cases = [(2048, 1), (2048, 8)]
        ordering_cases = [(2048, 8)]
        repeats = repeats or 2
    else:
        cases = [(786_432, 1), (4096, 32), (16384, 16)]
        ordering_cases = [
            (ORDERING_ACCEPTANCE_BITS, 4),
            (ORDERING_ACCEPTANCE_BITS, 8),
            (16384, 16),
        ]
        repeats = repeats or 3
    try:
        results = [
            run_case(
                engine, bits, count, repeats, seed + i, mp_engine=mp_engine
            )
            for i, (bits, count) in enumerate(cases)
        ]
    finally:
        mp_engine.close()
        engine.close()
    # The ordering margin is a few skipped vector passes, so the gate
    # takes extra interleaved repeats to keep the ratio honest on a
    # noisy machine.
    ordering_results = [
        run_ordering_case(bits, count, max(repeats, 7), seed + 300 + i)
        for i, (bits, count) in enumerate(ordering_cases)
    ]
    failures = evaluate(results, smoke, ordering_results)
    return {
        "benchmark": "ssa_multiply",
        "schema_version": 3,
        "mode": "smoke" if smoke else "full",
        "created_unix": time.time(),
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpus": os.cpu_count(),
        },
        "config": {
            "engine_kernel": engine.config.kernel,
            "mp_workers": mp_engine.backend.workers(mp_engine),
            "repeats": repeats,
            "seed": seed,
            "timer": "best-of-repeats wall clock",
        },
        "results": results,
        "ordering": ordering_results,
        "acceptance": {
            "min_batched_speedup": (
                SMOKE_MIN_SPEEDUP if smoke else FULL_MIN_SPEEDUP
            ),
            "min_ordering_speedup": (
                ORDERING_SMOKE_MIN_SPEEDUP if smoke else ORDERING_MIN_SPEEDUP
            ),
            "ordering_threshold": (
                None if smoke else ORDERING_ACCEPTANCE_SPEEDUP
            ),
            "failures": failures,
            "passed": not failures,
        },
    }


def test_smoke_comparison():
    """Pytest hook: the smoke suite must pass its gates."""
    report = run_suite(smoke=True, repeats=1, seed=0x55A)
    assert report["acceptance"]["passed"], report["acceptance"]["failures"]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small sizes for CI; lenient speedup floor",
    )
    parser.add_argument(
        "--repeats", type=int, default=None, help="timing repeats per case"
    )
    parser.add_argument("--seed", type=int, default=0x55A)
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        help=(
            "where to write the JSON report (default: repo-root "
            "BENCH_ssa_multiply.json on full runs, nowhere on --smoke)"
        ),
    )
    args = parser.parse_args(argv)

    report = run_suite(args.smoke, args.repeats, args.seed)
    table = render_table(report["results"]) + "\n" + render_ordering_table(
        report["ordering"]
    )
    print(table)

    json_path = args.json
    if json_path is None and not args.smoke:
        json_path = DEFAULT_JSON
    if json_path is not None:
        json_path.parent.mkdir(parents=True, exist_ok=True)
        json_path.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nwrote {json_path}")
    if not args.smoke:
        OUTPUT_DIR.mkdir(exist_ok=True)
        (OUTPUT_DIR / "ssa_multiply.txt").write_text(table + "\n")

    failures = report["acceptance"]["failures"]
    if failures:
        print("\nFAIL:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nPASS: bit-exact everywhere, speedup gates met")
    return 0


if __name__ == "__main__":
    sys.exit(main())
