"""Tests for the analysis helpers (sweeps, shape checks)."""

import pytest

from repro.analysis.sweep import (
    crossover_point,
    karatsuba_ops,
    operand_size_sweep,
    pe_scaling_sweep,
    radix_plan_sweep,
    schoolbook_ops,
    ssa_ops,
)
from repro.analysis.tables import shape_check


class TestShapeCheck:
    def test_within_tolerance(self):
        assert shape_check("x", 102.0, 100.0, tolerance=0.05).ok

    def test_outside_tolerance(self):
        assert not shape_check("x", 120.0, 100.0, tolerance=0.05).ok

    def test_zero_reference_rejected(self):
        with pytest.raises(ValueError):
            shape_check("x", 1.0, 0.0)

    def test_render(self):
        text = shape_check("fft", 30.72, 30.7).render()
        assert "OK" in text and "fft" in text


class TestPeScaling:
    def test_monotone_and_efficient(self):
        points = pe_scaling_sweep()
        for prev, cur in zip(points, points[1:]):
            assert cur.fft_us < prev.fft_us
        # Compute partitions perfectly in this model.
        assert all(p.parallel_efficiency == pytest.approx(1.0) for p in points)

    def test_paper_point_present(self):
        points = {p.pes: p for p in pe_scaling_sweep()}
        assert points[4].fft_us == pytest.approx(30.72)
        assert points[1].fft_us == pytest.approx(122.88)


class TestRadixPlans:
    def test_all_plans_same_latency_at_8_points_per_cycle(self):
        """Any radix mix with the same total size and 8 points/cycle
        throughput lands at the same latency — radix choice trades
        area, not cycles, in this regime."""
        sweep = radix_plan_sweep()
        values = set(round(v, 2) for v in sweep.values())
        assert values == {30.72}


class TestCrossover:
    def test_paper_claim_order_of_magnitude(self):
        """SSA wins from ~100,000 bits (Section III) — accept the
        bracket [30K, 300K] for the Karatsuba crossover."""
        point = crossover_point("karatsuba")
        assert 30_000 <= point <= 300_000

    def test_schoolbook_crossover_earlier(self):
        assert crossover_point("schoolbook") < crossover_point("karatsuba")

    def test_ssa_wins_at_paper_size(self):
        bits = 786_432
        assert ssa_ops(bits) < karatsuba_ops(bits) < schoolbook_ops(bits)

    def test_schoolbook_wins_small(self):
        assert schoolbook_ops(1024) < ssa_ops(1024)

    def test_sweep_is_monotone(self):
        points = operand_size_sweep()
        for prev, cur in zip(points, points[1:]):
            assert cur.ssa > prev.ssa
            assert cur.schoolbook > prev.schoolbook
