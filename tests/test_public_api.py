"""Lock the public API surface: everything README documents must exist."""

import importlib

import pytest


class TestTopLevel:
    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize(
        "name",
        [
            "P",
            "SSAMultiplier",
            "ssa_multiply",
            "PAPER_PARAMETERS",
            "paper_64k_plan",
            "plan_for_size",
            "HEAccelerator",
            "AcceleratorTiming",
            "PAPER_TIMING",
            "table1_report",
            "table2_report",
            "DGHV",
            "SMALL_DGHV",
            "TOY",
        ],
    )
    def test_top_level_exports(self, name):
        import repro

        assert hasattr(repro, name)
        assert name in repro.__all__


class TestSubpackageExports:
    @pytest.mark.parametrize(
        "module,names",
        [
            ("repro.field", ["P", "mul", "mul_by_pow2", "vmul", "omega_64k"]),
            (
                "repro.ntt",
                [
                    "dft_reference",
                    "ntt_radix2",
                    "ntt_cooley_tukey",
                    "ntt64_two_stage",
                    "paper_64k_plan",
                    "execute_plan",
                    "cyclic_convolution",
                    "negacyclic_convolution",
                ],
            ),
            (
                "repro.ssa",
                [
                    "SSAMultiplier",
                    "decompose",
                    "recompose",
                    "carry_recover",
                    "karatsuba_multiply",
                ],
            ),
            ("repro.sim", ["Component", "Simulator", "Fifo", "Timeline"]),
            (
                "repro.hw",
                [
                    "HEAccelerator",
                    "FFT64Unit",
                    "BankedMemory",
                    "ProcessingElement",
                    "HypercubeTopology",
                    "FFT64Pipeline",
                    "evaluate_deployment",
                    "schedule_batch",
                    "estimate_power",
                    "AcceleratorController",
                ],
            ),
            ("repro.fhe", ["DGHV", "he_add", "he_mult", "RLWE"]),
            ("repro.analysis", ["shape_check", "pe_scaling_sweep"]),
        ],
    )
    def test_exports_exist(self, module, names):
        mod = importlib.import_module(module)
        for name in names:
            assert hasattr(mod, name), f"{module}.{name} missing"

    def test_all_lists_are_accurate(self):
        """Every name in __all__ is actually defined."""
        for module in (
            "repro",
            "repro.field",
            "repro.ntt",
            "repro.ssa",
            "repro.sim",
            "repro.hw",
            "repro.fhe",
            "repro.analysis",
        ):
            mod = importlib.import_module(module)
            for name in getattr(mod, "__all__", []):
                assert hasattr(mod, name), f"{module}.__all__ lies: {name}"


class TestDocstrings:
    def test_every_public_module_documented(self):
        for module in (
            "repro",
            "repro.field.solinas",
            "repro.field.vector",
            "repro.ntt.plan",
            "repro.ntt.staged",
            "repro.ssa.multiplier",
            "repro.hw.fft64_unit",
            "repro.hw.accelerator",
            "repro.hw.timing",
            "repro.fhe.dghv",
            "repro.cli",
            "repro.verify",
        ):
            mod = importlib.import_module(module)
            assert mod.__doc__ and len(mod.__doc__) > 40, module
