"""Tests for the hardware reduction paths (repro.field.reduction)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.field.reduction import (
    addmod_correct,
    normalize_eq4,
    reduce_128,
    reduce_192,
    split_words_128,
)
from repro.field.solinas import P


class TestSplitWords:
    def test_layout(self):
        x = (0xA << 96) | (0xB << 64) | (0xC << 32) | 0xD
        assert split_words_128(x) == (0xA, 0xB, 0xC, 0xD)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            split_words_128(-1)

    def test_rejects_wide(self):
        with pytest.raises(ValueError):
            split_words_128(1 << 128)


class TestEq4:
    def test_formula_on_words(self):
        """Eq. 4: a·2^96 + b·2^64 + c·2^32 + d ≡ 2^32(b+c) − a − b + d."""
        a, b, c, d = 7, 11, 13, 17
        x = (a << 96) | (b << 64) | (c << 32) | d
        assert normalize_eq4(x) == ((b + c) << 32) - a - b + d

    @settings(max_examples=200)
    @given(x=st.integers(min_value=0, max_value=(1 << 128) - 1))
    def test_normalize_congruent(self, x):
        assert normalize_eq4(x) % P == x % P

    @settings(max_examples=100)
    @given(x=st.integers(min_value=0, max_value=(1 << 128) - 1))
    def test_normalize_output_narrow(self, x):
        """Normalize output fits a short signed range (one AddMod step)."""
        y = normalize_eq4(x)
        assert -(1 << 34) < y < (1 << 66)


class TestFullReduction:
    @settings(max_examples=200)
    @given(x=st.integers(min_value=0, max_value=(1 << 128) - 1))
    def test_reduce_128(self, x):
        assert reduce_128(x) == x % P

    @settings(max_examples=200)
    @given(x=st.integers(min_value=0, max_value=(1 << 192) - 1))
    def test_reduce_192(self, x):
        assert reduce_192(x) == x % P

    def test_reduce_192_rejects_wide(self):
        with pytest.raises(ValueError):
            reduce_192(1 << 192)

    def test_reduce_edges(self):
        for x in (0, 1, P - 1, P, P + 1, (1 << 128) - 1, 1 << 96, 1 << 64):
            assert reduce_128(x) == x % P
        for x in (0, (1 << 192) - 1, 1 << 191, (1 << 128), P * P):
            assert reduce_192(x) == x % P

    def test_addmod_correct_handles_negatives(self):
        assert addmod_correct(-1) == P - 1
        assert addmod_correct(-(1 << 34)) == -(1 << 34) % P
        assert addmod_correct(P) == 0
        assert addmod_correct(2 * P + 3) == 3
