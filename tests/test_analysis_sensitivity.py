"""Tests for the calibration sensitivity analysis and the self-check."""

import pytest

from repro.analysis.sensitivity import (
    perturbed_unit_costs,
    render_sensitivity,
    savings_envelope,
    savings_sensitivity,
)
from repro.hw import resources as rc
from repro.verify import run_self_check


class TestPerturbation:
    def test_constants_restored(self):
        before = (
            rc.ALM_PER_ADDER_BIT,
            rc.ALM_PER_CSA_BIT,
            rc.ALM_PER_MUX4_BIT,
            rc.CONTROL_OVERHEAD,
        )
        with perturbed_unit_costs(adder=2.0, csa=0.5):
            assert rc.ALM_PER_ADDER_BIT == before[0] * 2.0
            assert rc.ALM_PER_CSA_BIT == before[1] * 0.5
        after = (
            rc.ALM_PER_ADDER_BIT,
            rc.ALM_PER_CSA_BIT,
            rc.ALM_PER_MUX4_BIT,
            rc.CONTROL_OVERHEAD,
        )
        assert after == before

    def test_restored_on_exception(self):
        before = rc.ALM_PER_CSA_BIT
        with pytest.raises(RuntimeError):
            with perturbed_unit_costs(csa=3.0):
                raise RuntimeError("boom")
        assert rc.ALM_PER_CSA_BIT == before


class TestSensitivity:
    def test_savings_robust_to_calibration(self):
        """The ~60% saving conclusion survives ±30% on every unit cost
        — it is structural, not an artifact of the constants."""
        points = savings_sensitivity()
        low, high = savings_envelope(points)
        assert low > 0.45
        assert high < 0.75

    def test_sweep_covers_all_knobs(self):
        points = savings_sensitivity(scales=(0.8, 1.0, 1.2))
        labels = {p.label for p in points}
        assert len(labels) == 4
        assert len(points) == 12

    def test_render(self):
        text = render_sensitivity(savings_sensitivity(scales=(1.0,)))
        assert "envelope" in text


class TestSelfCheck:
    def test_all_checks_pass(self):
        ok, results = run_self_check()
        failing = [r.name for r in results if not r.ok]
        assert ok, f"self-check failures: {failing}"
        assert len(results) == 13

    def test_render(self):
        _, results = run_self_check()
        assert all("PASS" in r.render() for r in results)
