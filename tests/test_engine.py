"""Tests for the :mod:`repro.engine` façade.

Covers the ISSUE 3 surface: scalar-vs-batch polymorphism of
``engine.ring(n)``, bit-identity of the ``software`` and ``hw-model``
backends, per-engine plan caching, the one-shot ``REPRO_NTT_KERNEL``
environment read with its documented precedence, FHE context binding,
and the top-level deprecation shims.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.engine import (
    Engine,
    ExecutionConfig,
    available_backends,
    create_backend,
    default_engine,
    register_backend,
)
from repro.engine.backends import SoftwareBackend
from repro.field.solinas import P
from repro.fhe.ops import he_mult, he_mult_many
from repro.fhe.params import TOY
from repro.fhe.rlwe import RLWE, RLWEParams
from repro.ntt.convolution import cyclic_convolution
from repro.ntt.kernels import KERNEL_ENV_VAR, KERNEL_LIMB_MATMUL, KERNEL_LOOP
from repro.ntt.negacyclic import negacyclic_convolution
from repro.ntt.plan import plan_cache_stats
from repro.ntt.staged import execute_plan, execute_plan_inverse


def _rows(rng, batch, n):
    return rng.integers(0, P, size=(batch, n), dtype=np.uint64)


class TestExecutionConfig:
    def test_defaults(self, monkeypatch):
        monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)
        config = ExecutionConfig.default()
        assert config.kernel == KERNEL_LIMB_MATMUL
        assert config.cache == "private"
        assert config.pes == 4

    def test_env_read_once_at_construction(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, KERNEL_LOOP)
        config = ExecutionConfig()
        assert config.kernel == KERNEL_LOOP
        # Later environment changes do not rewrite a built config.
        monkeypatch.setenv(KERNEL_ENV_VAR, KERNEL_LIMB_MATMUL)
        assert config.kernel == KERNEL_LOOP

    def test_explicit_kernel_beats_env(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, KERNEL_LOOP)
        assert ExecutionConfig(kernel=KERNEL_LIMB_MATMUL).kernel == (
            KERNEL_LIMB_MATMUL
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kernel": "nope"},
            {"batch_chunk": 0},
            {"pes": 3},
            {"fidelity": "exactly"},
            {"cache": "sometimes"},
            {"coefficient_bits": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ExecutionConfig(**kwargs)

    def test_cache_aliases_and_overrides(self):
        assert ExecutionConfig(cache=True).cache == "private"
        assert ExecutionConfig(cache=False).cache == "off"
        base = ExecutionConfig()
        assert base.with_overrides(pes=8).pes == 8
        assert base.pes == 4

    def test_hashable_and_comparable(self):
        one = ExecutionConfig(kernel=KERNEL_LOOP, workers=2)
        two = ExecutionConfig(kernel=KERNEL_LOOP, workers=2)
        other = ExecutionConfig(kernel=KERNEL_LOOP, workers=3)
        assert one == two
        assert hash(one) == hash(two)
        assert one != other
        assert len({one, two, other}) == 2  # usable as a dict/pool key

    def test_pickle_round_trip_stable(self, monkeypatch):
        import pickle

        monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)
        config = ExecutionConfig(batch_chunk=16, pes=8, workers=2)
        # Unpickling in an environment demanding a different kernel
        # must NOT re-resolve: the construction-time choice travels.
        monkeypatch.setenv(KERNEL_ENV_VAR, KERNEL_LOOP)
        clone = pickle.loads(pickle.dumps(config))
        assert clone == config
        assert hash(clone) == hash(config)
        assert clone.kernel == KERNEL_LIMB_MATMUL
        # double round-trip (what a respawned worker would see)
        again = pickle.loads(pickle.dumps(clone))
        assert again == config

    def test_workers_validation_and_default(self):
        assert ExecutionConfig().workers is None
        assert ExecutionConfig(workers=4).workers == 4
        with pytest.raises(ValueError):
            ExecutionConfig(workers=-1)


class TestBackendRegistry:
    def test_stock_backends_registered(self):
        assert "software" in available_backends()
        assert "hw-model" in available_backends()

    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            Engine(backend="warp-drive")

    def test_custom_backend_instance(self):
        engine = Engine(backend=SoftwareBackend())
        assert engine.multiply(6, 7) == 42

    def test_register_and_create(self):
        class Probe(SoftwareBackend):
            name = "probe"

        register_backend("probe", Probe)
        try:
            assert "probe" in available_backends()
            assert isinstance(create_backend("probe"), Probe)
            assert Engine(backend="probe").multiply(2, 3) == 6
        finally:
            from repro.engine import backends as backends_mod

            backends_mod._REGISTRY.pop("probe", None)


class TestPlanCacheIsolation:
    def test_private_cache_does_not_touch_global(self):
        before = plan_cache_stats()
        engine = Engine()
        engine.plan(128)
        engine.plan(128)
        after = plan_cache_stats()
        assert (after.size, after.misses) == (before.size, before.misses)
        stats = engine.cache_stats()
        assert stats.size == 1
        assert stats.hits == 1

    def test_engines_are_isolated(self):
        one, two = Engine(), Engine()
        assert one.plan(128) is not two.plan(128)
        assert one.plan(128) is one.plan(128)

    def test_shared_cache_aliases_module_plans(self):
        from repro.ntt.plan import plan_for_size

        engine = Engine(config=ExecutionConfig(cache="shared"))
        assert engine.plan(256) is plan_for_size(256)

    def test_cache_off_still_correct(self):
        engine = Engine(config=ExecutionConfig(cache="off"))
        assert engine.cache_stats().size == 0
        assert engine.multiply(123456789, 987654321) == (
            123456789 * 987654321
        )
        assert engine.cache_stats().size == 0

    def test_clear_cache(self):
        engine = Engine()
        engine.ring(64)
        engine.multiplier(bits=256)
        assert engine.cache_stats().size > 0
        engine.clear_cache()
        assert engine.cache_stats().size == 0

    def test_clear_cache_drops_accelerator_pool(self):
        engine = Engine(backend="hw-model")
        engine.multiply(3, 5)
        assert len(engine.backend._accelerators) == 1
        engine.clear_cache()
        assert len(engine.backend._accelerators) == 0
        engine.multiply(3, 5)
        assert len(engine.backend._accelerators) == 1

    def test_cache_off_does_not_grow_accelerator_pool(self):
        engine = Engine(
            config=ExecutionConfig(cache="off"), backend="hw-model"
        )
        for _ in range(3):
            engine.hardware(plan=engine.plan(64))
        assert len(engine.backend._accelerators) == 0


class TestRingPolymorphism:
    @settings(deadline=None, max_examples=20)
    @given(
        n=st.sampled_from([16, 64, 256]),
        batch=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_scalar_vs_batch_bit_identical(self, n, batch, seed):
        rng = np.random.default_rng(seed)
        engine = Engine()
        ring = engine.ring(n)
        rows = _rows(rng, batch, n)
        spectra = ring.forward(rows)
        assert spectra.shape == rows.shape
        for i in range(batch):
            assert np.array_equal(spectra[i], ring.forward(rows[i]))
        back = ring.inverse(spectra)
        assert np.array_equal(back, rows)

    @settings(deadline=None, max_examples=15)
    @given(
        n=st.sampled_from([16, 64]),
        batch=st.integers(min_value=1, max_value=4),
        negacyclic=st.booleans(),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_convolve_matches_legacy(self, n, batch, negacyclic, seed):
        rng = np.random.default_rng(seed)
        ring = Engine().ring(n)
        a = _rows(rng, batch, n)
        b = _rows(rng, batch, n)
        got = ring.convolve(a, b, negacyclic=negacyclic)
        oracle = negacyclic_convolution if negacyclic else cyclic_convolution
        for i in range(batch):
            assert np.array_equal(got[i], oracle(a[i], b[i]))

    def test_flat_in_flat_out(self):
        rng = np.random.default_rng(7)
        ring = Engine().ring(64)
        a = _rows(rng, 1, 64)[0]
        b = _rows(rng, 1, 64)[0]
        assert ring.convolve(a, b).shape == (64,)
        assert ring.forward(a).shape == (64,)

    def test_broadcast_one_fixed_operand(self):
        rng = np.random.default_rng(11)
        ring = Engine().ring(64)
        batch = _rows(rng, 3, 64)
        fixed = _rows(rng, 1, 64)[0]
        got = ring.convolve(batch, fixed, negacyclic=True)
        swapped = ring.convolve(fixed, batch, negacyclic=True)
        assert np.array_equal(got, swapped)
        for i in range(3):
            assert np.array_equal(
                got[i], negacyclic_convolution(batch[i], fixed)
            )

    def test_spectrum_reuse_roundtrip(self):
        rng = np.random.default_rng(13)
        ring = Engine().ring(64)
        a = _rows(rng, 2, 64)
        spec = ring.negacyclic_forward(a)
        assert np.array_equal(ring.negacyclic_inverse(spec), a)

    def test_shape_errors(self):
        ring = Engine().ring(64)
        with pytest.raises(ValueError):
            ring.forward(np.zeros(65, dtype=np.uint64))
        with pytest.raises(ValueError):
            ring.convolve(
                np.zeros((2, 64), dtype=np.uint64),
                np.zeros((3, 64), dtype=np.uint64),
            )

    def test_rings_are_cached(self):
        engine = Engine()
        assert engine.ring(64) is engine.ring(64)
        assert engine.ring(64) is not engine.ring(64, (8, 8))


class TestBackendEquivalence:
    """``software`` and ``hw-model`` must produce identical bits."""

    @settings(deadline=None, max_examples=10)
    @given(
        bits=st.sampled_from([96, 1024, 4096]),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_multiply_bit_identical(self, bits, seed):
        rng = random.Random(seed)
        a, b = rng.getrandbits(bits), rng.getrandbits(bits)
        software = Engine().multiply(a, b)
        hw_engine = Engine(backend="hw-model")
        hardware = hw_engine.multiply(a, b)
        assert software == hardware == a * b
        assert hw_engine.last_report is not None
        assert hw_engine.last_report.total_cycles > 0

    def test_paper_size_multiply_bit_identical(self):
        """Acceptance: the paper's 786,432-bit product, both backends."""
        rng = random.Random(0xDA7E2016)
        a = rng.getrandbits(786_432)
        b = rng.getrandbits(786_432)
        software = Engine()
        hardware = Engine(backend="hw-model")
        product_sw = software.multiply(a, b)
        product_hw, report = hardware.multiply_with_report(a, b)
        assert product_sw == product_hw == a * b
        assert software.multiplier(bits=786_432).plan.radices == (64, 64, 16)
        # The hw-model additionally reproduces the ≈122.88 us figure.
        assert abs(report.time_us - 122.88) < 1.0

    def test_ring_transform_bit_identical(self):
        rng = np.random.default_rng(17)
        rows = _rows(rng, 2, 1024)
        soft = Engine().ring(1024)
        hard = Engine(backend="hw-model").ring(1024)
        assert np.array_equal(soft.forward(rows), hard.forward(rows))
        assert np.array_equal(soft.inverse(rows), hard.inverse(rows))

    def test_ring_matches_staged_executor(self):
        rng = np.random.default_rng(19)
        x = _rows(rng, 1, 1024)[0]
        ring = Engine(backend="hw-model").ring(1024)
        assert np.array_equal(ring.forward(x), execute_plan(x, ring.plan))
        assert np.array_equal(
            ring.inverse(x), execute_plan_inverse(x, ring.plan)
        )

    def test_hw_ring_batch_single_call_report(self):
        """Batched hw-model transforms run as ONE accelerator call."""
        from repro.hw.accelerator import (
            DistributedFFTBatchReport,
            DistributedFFTReport,
        )

        rng = np.random.default_rng(43)
        engine = Engine(backend="hw-model")
        ring = engine.ring(1024)
        rows = _rows(rng, 4, 1024)
        ring.forward(rows)
        report = engine.last_report
        assert isinstance(report, DistributedFFTBatchReport)
        assert report.rows == 4
        assert report.total_cycles == 4 * report.per_row.total_cycles
        assert "x4 rows" in report.render()
        ring.forward(rows[0])
        assert isinstance(engine.last_report, DistributedFFTReport)

    def test_hw_ring_batch_datapath_bit_identical(self):
        rng = np.random.default_rng(47)
        rows = _rows(rng, 3, 256)
        fast = Engine(
            config=ExecutionConfig(fidelity="fast"), backend="hw-model"
        )
        datapath = Engine(
            config=ExecutionConfig(fidelity="datapath"), backend="hw-model"
        )
        assert np.array_equal(
            fast.ring(256).forward(rows), datapath.ring(256).forward(rows)
        )

    def test_hw_multiply_many_reports(self):
        engine = Engine(backend="hw-model")
        products = engine.multiply([3, 5, 7], [11, 13, 17])
        assert products == [33, 65, 119]
        assert isinstance(engine.last_report, list)
        assert len(engine.last_report) == 3

    def test_hardware_requires_hw_backend(self):
        with pytest.raises(ValueError, match="hw-model"):
            Engine().hardware()

    def test_hardware_pool_reuses_accelerators(self):
        engine = Engine(backend="hw-model")
        plan = engine.plan(1024, (64, 16))
        params = engine._params_for_plan(plan)
        assert engine.hardware(plan, params) is engine.hardware(plan, params)


class TestEngineMultiply:
    def test_type_mismatch(self):
        with pytest.raises(TypeError):
            Engine().multiply(3, [4])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            Engine().multiply([1, 2], [3])

    def test_empty_batch(self):
        assert Engine().multiply([], []) == []

    def test_batch_chunking_bit_identical(self):
        rng = random.Random(23)
        a = [rng.getrandbits(512) for _ in range(5)]
        b = [rng.getrandbits(512) for _ in range(5)]
        plain = Engine().multiply(a, b)
        chunked = Engine(config=ExecutionConfig(batch_chunk=2)).multiply(a, b)
        assert plain == chunked == [x * y for x, y in zip(a, b)]

    def test_multiplier_pooled_and_pinned(self):
        engine = Engine()
        m1 = engine.multiplier(bits=1000)
        m2 = engine.multiplier(bits=1000)
        assert m1 is m2
        assert m1.plan is engine.plan(m1.params.transform_size)

    def test_multiplier_sizing_matches_for_bits(self):
        from repro.ssa.multiplier import SSAMultiplier

        engine = Engine()
        for bits in (1, 24, 1000, 50_000, 786_432):
            assert engine.multiplier(bits=bits).params == (
                SSAMultiplier.for_bits(bits).params
            )

    def test_multiplier_repr_stays_small(self):
        assert len(repr(Engine().multiplier(bits=1024))) < 500

    def test_plan_kernel_consistency_checked(self):
        from repro.ssa.multiplier import SSAMultiplier

        engine = Engine()
        plan = engine.plan(128, kernel=KERNEL_LOOP)
        with pytest.raises(ValueError, match="kernel"):
            SSAMultiplier(
                params=m_params(),
                kernel=KERNEL_LIMB_MATMUL,
                plan=plan,
            )

    def test_multiplier_arg_validation(self):
        engine = Engine()
        with pytest.raises(ValueError):
            engine.multiplier()
        with pytest.raises(ValueError):
            engine.multiplier(bits=64, params=m_params())


def m_params():
    from repro.ssa.encode import SSAParameters

    return SSAParameters(coefficient_bits=24, operand_coefficients=64)


class TestEngineFHE:
    def test_dghv_gate_through_engine(self):
        engine = Engine()
        scheme = engine.fhe(TOY, rng=random.Random(29))
        keys = scheme.generate_keys()
        ca = scheme.encrypt(keys, 1)
        cb = scheme.encrypt(keys, 1)
        product = he_mult(scheme, ca, cb, x0=keys.x0)
        assert scheme.decrypt(keys, product) == 1

    def test_dghv_batched_gates(self):
        engine = Engine()
        scheme = engine.fhe(TOY, rng=random.Random(31))
        keys = scheme.generate_keys()
        pairs = [
            (scheme.encrypt(keys, a), scheme.encrypt(keys, b))
            for a, b in [(0, 0), (0, 1), (1, 0), (1, 1)]
        ]
        ands = he_mult_many(scheme, pairs, x0=keys.x0)
        assert [scheme.decrypt(keys, c) for c in ands] == [0, 0, 0, 1]

    def test_rlwe_bound_to_engine_plan(self):
        from repro.ntt.plan import ORDER_DECIMATED, TWIST_NEGACYCLIC

        engine = Engine()
        params = RLWEParams(n=64, t=64, noise_bound=4)
        scheme = engine.fhe(params, rng=random.Random(37))
        assert scheme.plan is engine.plan(
            64, twist=TWIST_NEGACYCLIC, ordering=ORDER_DECIMATED
        )
        assert scheme.plan.twist == TWIST_NEGACYCLIC
        assert scheme.plan.ordering == ORDER_DECIMATED
        assert scheme.plan.base_plan is engine.plan(
            64, twist=TWIST_NEGACYCLIC
        )
        secret = scheme.generate_secret()
        message = [i % params.t for i in range(params.n)]
        assert scheme.decrypt(secret, scheme.encrypt(secret, message)) == (
            message
        )

    def test_rlwe_matches_unbound_scheme(self):
        params = RLWEParams(n=64, t=64, noise_bound=4)
        bound = Engine().fhe(params, rng=random.Random(41))
        free = RLWE(params, rng=random.Random(41))
        secret_b = bound.generate_secret()
        secret_f = free.generate_secret()
        assert np.array_equal(secret_b, secret_f)
        message = [3] * params.n
        ct_b = bound.encrypt(secret_b, message)
        ct_f = free.encrypt(secret_f, message)
        assert np.array_equal(ct_b.c0, ct_f.c0)
        assert np.array_equal(ct_b.c1, ct_f.c1)

    def test_rlwe_plan_dimension_checked(self):
        with pytest.raises(ValueError):
            RLWE(RLWEParams(n=64), plan=Engine().plan(128))

    def test_bad_params_type(self):
        with pytest.raises(TypeError):
            Engine().fhe(params=object())


class TestDeprecationShims:
    def test_ssa_multiply_warns_and_matches(self):
        from repro.ssa import ssa_multiply as modern

        a, b = 12345678901234567890, 98765432109876543210
        with pytest.warns(DeprecationWarning):
            legacy = repro.ssa_multiply(a, b)
        assert legacy == modern(a, b) == a * b

    def test_plan_for_size_warns_and_aliases(self):
        from repro.ntt.plan import plan_for_size as modern

        with pytest.warns(DeprecationWarning):
            legacy = repro.plan_for_size(512)
        assert legacy is modern(512)

    def test_paper_64k_plan_warns_and_aliases(self):
        from repro.ntt import paper_64k_plan as modern

        with pytest.warns(DeprecationWarning):
            legacy = repro.paper_64k_plan()
        assert legacy is modern()

    def test_default_engine_is_a_singleton(self):
        assert default_engine() is default_engine()
        assert default_engine().config.cache == "shared"
