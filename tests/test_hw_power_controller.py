"""Tests for the power model and the microcoded controller."""

import pytest

from repro.hw.controller import (
    AcceleratorController,
    MicroOp,
    multiply_program,
)
from repro.hw.power import (
    EnergyRow,
    energy_comparison,
    estimate_power,
    render_energy_table,
)
from repro.hw.resources import ResourceEstimate
from repro.hw.timing import PAPER_TIMING
from repro.sim.kernel import Simulator


class TestPowerModel:
    def test_buckets_positive(self):
        p = estimate_power()
        assert p.logic_w > 0 and p.dsp_w > 0 and p.memory_w > 0
        assert p.total_w == pytest.approx(
            p.dynamic_w + p.static_w + p.board_w
        )

    def test_design_power_plausible_for_fpga(self):
        """A mid-size 28-nm FPGA design: single-digit watts dynamic,
        total well below a 238 W GPU."""
        p = estimate_power()
        assert 1.0 < p.dynamic_w < 15.0
        assert p.total_w < 25.0

    def test_activity_scaling(self):
        idle = estimate_power(activity=0.0)
        busy = estimate_power(activity=1.0)
        assert idle.dynamic_w == 0
        assert idle.total_w < busy.total_w

    def test_activity_bounds(self):
        with pytest.raises(ValueError):
            estimate_power(activity=-0.1)

    def test_custom_resources(self):
        tiny = estimate_power(ResourceEstimate(alms=1000))
        assert tiny.dynamic_w == pytest.approx(0.006)


class TestEnergyComparison:
    def test_fpga_wins_energy_vs_gpu(self):
        """The [28]-cited claim: faster than the GPU *and* lower power
        — hence far lower energy per multiplication."""
        rows = {r.design: r for r in energy_comparison()}
        ours = rows["proposed"].energy_mj
        assert rows["wang_gpu[26]"].energy_mj > 50 * ours
        assert rows["wang_gpu[27]"].energy_mj > 50 * ours

    def test_asic_wins_energy_vs_fpga(self):
        """Honest shape: the 90 nm ASIC [30] is slower but burns far
        less power, so it beats the FPGA on energy."""
        rows = {r.design: r for r in energy_comparison()}
        assert rows["wang_vlsi_asic[30]"].energy_mj < rows["proposed"].energy_mj

    def test_render(self):
        text = render_energy_table(energy_comparison())
        assert "proposed" in text and "mJ" in text


class TestController:
    def _run(self, program):
        sim = Simulator()
        ctrl = sim.add(AcceleratorController(program))
        sim.run_until(lambda: ctrl.done, max_cycles=200_000)
        return ctrl

    def test_phase_sequence(self):
        ctrl = self._run(multiply_program())
        labels = [label for label, _, _ in ctrl.executed]
        assert labels == [
            "LOAD_A",
            "FFT_A",
            "LOAD_B",
            "FFT_B",
            "DOT",
            "IFFT",
            "CARRY",
            "STORE",
        ]

    def test_compute_cycles_match_timing_model(self):
        """The clocked FSM's compute phases reproduce the Section V
        budget (third timing view after formula and ledger)."""
        ctrl = self._run(multiply_program())
        spans = {label: end - start for label, start, end in ctrl.executed}
        assert spans["FFT_A"] == PAPER_TIMING.fft_cycles()
        assert spans["FFT_B"] == PAPER_TIMING.fft_cycles()
        assert spans["IFFT"] == PAPER_TIMING.fft_cycles()
        assert spans["DOT"] == PAPER_TIMING.dot_product_cycles()
        assert spans["CARRY"] == PAPER_TIMING.carry_recovery_cycles()
        compute = sum(
            spans[k] for k in ("FFT_A", "FFT_B", "DOT", "IFFT", "CARRY")
        )
        assert compute == pytest.approx(
            PAPER_TIMING.multiplication_cycles(), abs=8
        )

    def test_overlapped_loads_partially_hidden(self):
        """LOAD_B (8192 cycles) hides under FFT_A (6144): only the
        2048-cycle excess is visible."""
        ctrl = self._run(multiply_program())
        spans = {label: end - start for label, start, end in ctrl.executed}
        assert spans["LOAD_B"] == 8192 - PAPER_TIMING.fft_cycles()
        assert spans["STORE"] == 8192 - spans["CARRY"]

    def test_fully_hidden_phase_costs_zero(self):
        program = [
            MicroOp("BIG", 100),
            MicroOp("SMALL", 10, overlaps_previous=True),
            MicroOp("TAIL", 5),
        ]
        ctrl = self._run(program)
        spans = {label: end - start for label, start, end in ctrl.executed}
        assert spans["SMALL"] == 0
        assert ctrl.total_cycles() == 105

    def test_empty_program_rejected(self):
        with pytest.raises(ValueError):
            AcceleratorController([])

    def test_timeline_recorded(self):
        ctrl = self._run(multiply_program())
        assert len(ctrl.timeline.intervals) == len(ctrl.executed)
