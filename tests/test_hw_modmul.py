"""Tests for the DSP modular multiplier model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.field.solinas import P
from repro.hw.modmul import (
    DSP_PER_32X32,
    PARTIAL_PRODUCTS,
    PIPELINE_DEPTH,
    ModularMultiplier,
)

residues = st.integers(min_value=0, max_value=P - 1)


class TestFunctional:
    def test_simple(self):
        assert ModularMultiplier().multiply(3, 5) == 15

    def test_wrap(self):
        m = ModularMultiplier()
        assert m.multiply(P - 1, P - 1) == 1  # (-1)² = 1

    def test_edges(self):
        m = ModularMultiplier()
        for a in (0, 1, P - 1, (1 << 32) - 1, 1 << 32, 1 << 63):
            for b in (0, 1, P - 1, (1 << 32), (1 << 63) + 12345):
                assert m.multiply(a, b) == a * b % P

    @settings(max_examples=150)
    @given(a=residues, b=residues)
    def test_matches_reference(self, a, b):
        assert ModularMultiplier().multiply(a, b) == a * b % P

    def test_rejects_non_canonical(self):
        with pytest.raises(ValueError):
            ModularMultiplier().multiply(P, 1)
        with pytest.raises(ValueError):
            ModularMultiplier().multiply(1, -1)

    def test_counts_operations(self):
        m = ModularMultiplier()
        for _ in range(7):
            m.multiply(2, 3)
        assert m.operations == 7


class TestTimingAndCost:
    def test_busy_cycles_pipelined(self):
        m = ModularMultiplier()
        assert m.busy_cycles(0) == 0
        assert m.busy_cycles(1) == PIPELINE_DEPTH
        assert m.busy_cycles(100) == 100 + PIPELINE_DEPTH - 1

    def test_dsp_count(self):
        """Section IV-d: four 32×32 DSP multipliers, two blocks each."""
        est = ModularMultiplier.resources()
        assert est.dsp_blocks == PARTIAL_PRODUCTS * DSP_PER_32X32 == 8

    def test_soft_logic_nonzero(self):
        est = ModularMultiplier.resources()
        assert est.alms > 0
        assert est.registers > 0
        assert est.m20k_bits == 0
