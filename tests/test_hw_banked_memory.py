"""Tests for the 2-D banked memory (paper Fig. 5)."""

import pytest

from repro.hw.banked_memory import (
    ACCESS_WIDTH,
    ARRAY_POINTS,
    BANK_COLS,
    BANK_DEPTH,
    BANK_ROWS,
    BankConflictError,
    BankedMemory,
    M20K_PER_BANK,
    linear_bank,
    skewed_bank,
)
from repro.hw.data_route import column_read_beats, reductor_write_beats


class TestGeometry:
    def test_paper_dimensions(self):
        """4×4 banks of 256×64-bit words = 4096 points = 256 Kbit."""
        assert BANK_ROWS * BANK_COLS == 16
        assert BANK_DEPTH == 256
        assert ARRAY_POINTS == 4096
        assert ARRAY_POINTS * 64 == 256 * 1024

    def test_two_m20k_per_bank(self):
        assert M20K_PER_BANK == 2

    def test_mapping_bijective(self):
        m = BankedMemory()
        seen = set()
        for i in range(ARRAY_POINTS):
            key = m.map_address(i)
            assert key not in seen
            seen.add(key)

    def test_out_of_range(self):
        m = BankedMemory()
        with pytest.raises(IndexError):
            m.map_address(ARRAY_POINTS)
        with pytest.raises(IndexError):
            m.map_address(-1)


class TestConflictFreedom:
    @pytest.mark.parametrize("stride", [1, 2, 4, 8])
    def test_aligned_strided_octets(self, stride):
        """Every access shape of the radix-8/16/32/64 dataflows."""
        m = BankedMemory()
        block = 8 * stride
        for base in range(0, ARRAY_POINTS - block + 1, block):
            for j in range(stride):
                indices = [base + stride * k + j for k in range(8)]
                m._check_conflicts(indices, "test")

    def test_linear_interleave_collides_on_stride8(self):
        """The motivating claim: a linear bank map breaks on the FFT
        write pattern."""
        m = BankedMemory(skew=False)
        with pytest.raises(BankConflictError):
            m._check_conflicts([8 * k for k in range(8)], "write")

    def test_linear_interleave_fine_on_sequential(self):
        m = BankedMemory(skew=False)
        m._check_conflicts(list(range(8)), "read")

    def test_conflict_reported_with_points(self):
        m = BankedMemory(skew=False)
        with pytest.raises(BankConflictError, match="points 0 and 16"):
            m._check_conflicts([0, 16], "write")


class TestBeats:
    def test_write_then_read_roundtrip(self):
        m = BankedMemory()
        values = list(range(100, 108))
        indices = list(range(8, 16))
        m.write_beat(indices, values)
        assert m.read_beat(indices) == values

    def test_beat_width_limit(self):
        m = BankedMemory()
        with pytest.raises(ValueError):
            m.read_beat(list(range(9)))
        with pytest.raises(ValueError):
            m.write_beat(list(range(9)), list(range(9)))

    def test_length_mismatch(self):
        m = BankedMemory()
        with pytest.raises(ValueError):
            m.write_beat([0, 1], [5])

    def test_beat_counters(self):
        m = BankedMemory()
        m.write_beat([0], [1])
        m.read_beat([0])
        m.read_beat([1])
        assert m.write_beats == 1
        assert m.read_beats == 2

    def test_fft_block_pattern_roundtrip(self):
        """Reductor-order writes then column-order reads restore a
        64-point block — the inter-stage handoff."""
        m = BankedMemory()
        block = list(range(1000, 1064))
        for beat in reductor_write_beats(256, 64):
            m.write_beat(beat.indices, [block[i - 256] for i in beat.indices])
        collected = {}
        for beat in column_read_beats(256, 64):
            for i, v in zip(beat.indices, m.read_beat(beat.indices)):
                collected[i - 256] = v
        assert [collected[i] for i in range(64)] == block

    def test_backdoor_load_dump(self):
        m = BankedMemory()
        data = list(range(50))
        m.load(data, base=100)
        assert m.dump(50, base=100) == data


class TestResources:
    def test_m20k_accounting(self):
        est = BankedMemory().resources()
        assert est.m20k_bits == ARRAY_POINTS * 64
        assert est.m20k_blocks == 16 * M20K_PER_BANK
