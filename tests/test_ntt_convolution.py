"""Tests for NTT-based cyclic convolution."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.field.solinas import P
from repro.field.vector import from_field_array, to_field_array
from repro.ntt.convolution import cyclic_convolution, pointwise_mul
from repro.ntt.plan import plan_for_size


def direct_cyclic(a, b):
    n = len(a)
    out = [0] * n
    for i in range(n):
        for j in range(n):
            out[(i + j) % n] = (out[(i + j) % n] + a[i] * b[j]) % P
    return out


class TestPointwise:
    def test_values(self):
        a = to_field_array([2, 3, P - 1])
        b = to_field_array([5, 7, 2])
        assert from_field_array(pointwise_mul(a, b)) == [
            10,
            21,
            (P - 1) * 2 % P,
        ]

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            pointwise_mul(to_field_array([1]), to_field_array([1, 2]))


class TestCyclicConvolution:
    @pytest.mark.parametrize("n", [2, 4, 16, 64])
    def test_matches_direct(self, n, rng):
        a = [rng.randrange(1 << 20) for _ in range(n)]
        b = [rng.randrange(1 << 20) for _ in range(n)]
        got = cyclic_convolution(to_field_array(a), to_field_array(b))
        assert from_field_array(got) == direct_cyclic(a, b)

    def test_identity_element(self, rng):
        """Convolving with the unit impulse is the identity."""
        n = 64
        a = [rng.randrange(P) for _ in range(n)]
        impulse = [1] + [0] * (n - 1)
        got = cyclic_convolution(to_field_array(a), to_field_array(impulse))
        assert from_field_array(got) == a

    def test_shift_by_impulse(self, rng):
        """Convolving with a shifted impulse rotates the vector."""
        n = 16
        a = [rng.randrange(P) for _ in range(n)]
        e3 = [0] * n
        e3[3] = 1
        got = from_field_array(
            cyclic_convolution(to_field_array(a), to_field_array(e3))
        )
        assert got == a[-3:] + a[:-3]

    @settings(max_examples=25)
    @given(
        data=st.lists(
            st.integers(min_value=0, max_value=(1 << 24) - 1),
            min_size=4,
            max_size=4,
        )
    )
    def test_commutative(self, data):
        a = to_field_array(data)
        b = to_field_array(list(reversed(data)))
        ab = cyclic_convolution(a, b)
        ba = cyclic_convolution(b, a)
        assert np.array_equal(ab, ba)

    def test_explicit_plan(self, rng):
        n = 256
        plan = plan_for_size(n, (16, 16))
        a = [rng.randrange(1 << 20) for _ in range(n)]
        b = [rng.randrange(1 << 20) for _ in range(n)]
        got = cyclic_convolution(
            to_field_array(a), to_field_array(b), plan=plan
        )
        assert from_field_array(got) == direct_cyclic(a, b)

    def test_plan_size_mismatch(self):
        plan = plan_for_size(16, (4, 4))
        with pytest.raises(ValueError):
            cyclic_convolution(
                to_field_array([1] * 8), to_field_array([1] * 8), plan=plan
            )

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            cyclic_convolution(to_field_array([1, 2]), to_field_array([1]))
