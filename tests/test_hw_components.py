"""Tests for the smaller hardware components: adder tree, shifter bank,
data route, baseline unit, PE, device catalog, resource primitives."""

import pytest

from repro.field.solinas import P
from repro.hw import resources as rc
from repro.hw.adder_tree import AdderTree, csa_compress, csa_reduce
from repro.hw.data_route import (
    DataRoute,
    column_read_beats,
    reductor_write_beats,
)
from repro.hw.device import CYCLONE_V_PROTOTYPE, STRATIX_V_GSMD8
from repro.hw.fft64_baseline import BaselineFFT64Unit
from repro.hw.fft64_unit import FFT64Config, FFT64Unit
from repro.hw.pe import TWIDDLE_MULTIPLIERS, ProcessingElement
from repro.hw.shifter_bank import ShifterBank, signed_shift
from repro.ntt.reference import dft_reference


class TestCarrySave:
    def test_compress_invariant(self, rng):
        for _ in range(50):
            a, b, c = (rng.randrange(1 << 190) for _ in range(3))
            s, carry = csa_compress(a, b, c)
            assert s + carry == a + b + c

    def test_reduce_invariant(self, rng):
        values = [rng.randrange(1 << 100) for _ in range(8)]
        s, carry = csa_reduce(values)
        assert s + carry == sum(values)

    def test_reduce_few_inputs(self):
        assert sum(csa_reduce([5])) == 5
        assert sum(csa_reduce([5, 7])) == 12

    def test_tree_sums(self, rng):
        tree = AdderTree(name="t", width=96)
        inputs = [rng.randrange(1 << 90) for _ in range(8)]
        total, diff = tree.sums(inputs)
        assert total == sum(inputs)
        assert diff == sum(inputs[0::2]) - sum(inputs[1::2])

    def test_tree_input_count(self):
        with pytest.raises(ValueError):
            AdderTree(name="t", width=8).sums([1, 2, 3])

    def test_dual_output_costs_more(self):
        plain = AdderTree(name="a", width=100, dual_output=False).resources()
        dual = AdderTree(name="b", width=100, dual_output=True).resources()
        assert dual.alms > plain.alms


class TestShifterBank:
    def test_signed_shift_folding(self):
        assert signed_shift(50) == (50, False)
        assert signed_shift(96) == (0, True)
        assert signed_shift(100) == (4, True)
        assert signed_shift(192) == (0, False)

    def test_apply_matches_field(self, rng):
        bank = ShifterBank(name="s", width=64, shift_sets=[[0, 24, 48]])
        a = rng.randrange(P)
        assert bank.apply(0, a, 24) == a * (1 << 24) % P

    def test_unwired_shift_rejected(self):
        bank = ShifterBank(name="s", width=64, shift_sets=[[0, 24]])
        with pytest.raises(ValueError):
            bank.apply(0, 5, 12)

    def test_fixed_shift_is_free(self):
        fixed = ShifterBank(name="f", width=64, shift_sets=[[24]] * 8)
        assert fixed.resources().alms == 0

    def test_selectable_shift_costs(self):
        sel = ShifterBank(
            name="s", width=64, shift_sets=[[0, 24, 48, 72]] * 8
        )
        assert sel.resources().alms > 0


class TestDataRoute:
    def test_column_beats_cover_block(self):
        indices = set()
        for beat in column_read_beats(128, 64):
            assert len(beat.indices) == 8
            indices.update(beat.indices)
        assert indices == set(range(128, 192))

    def test_write_beats_cover_block(self):
        indices = set()
        for beat in reductor_write_beats(0, 64):
            indices.update(beat.indices)
        assert indices == set(range(64))

    def test_radix16_beats(self):
        reads = list(column_read_beats(0, 16))
        writes = list(reductor_write_beats(0, 16))
        assert len(reads) == 2 and len(writes) == 2
        assert set(reads[0].indices + reads[1].indices) == set(range(16))

    def test_write_beats_are_8_spaced(self):
        """The shared-reductor ordering: one point per block per cycle."""
        first = next(iter(reductor_write_beats(0, 64)))
        assert first.indices == [0, 8, 16, 24, 32, 40, 48, 56]

    def test_route_counts(self):
        route = DataRoute()
        route.generate(column_read_beats(0, 64))
        assert route.beats_generated == 8


class TestBaselineUnit:
    def test_functional_equivalence(self, rng):
        x = [rng.randrange(P) for _ in range(64)]
        baseline = BaselineFFT64Unit()
        optimized = FFT64Unit()
        assert baseline.transform(x) == optimized.transform(x)
        assert baseline.transform(x) == dft_reference(x)

    def test_same_throughput(self):
        assert BaselineFFT64Unit.initiation_interval(64) == 8
        assert BaselineFFT64Unit.initiation_interval(16) == 2

    def test_costs_more_than_proposed(self):
        baseline = BaselineFFT64Unit().resources()
        proposed = FFT64Unit().resources()
        assert baseline.alms > 2 * proposed.alms


class TestProcessingElement:
    def test_structure(self):
        pe = ProcessingElement(0, 16384)
        assert len(pe.twiddle_multipliers) == TWIDDLE_MULTIPLIERS == 8
        assert len(pe.buffers) == 2  # double buffering
        assert len(pe.buffers[0]) == 4  # 16K points / 4096 per array

    def test_buffer_swap(self):
        pe = ProcessingElement(0, 4096)
        assert pe.active_buffer == 0
        pe.swap_buffers()
        assert pe.active_buffer == 1

    def test_sub_transform_counts_cycles(self, rng):
        pe = ProcessingElement(1, 4096)
        x = [rng.randrange(P) for _ in range(64)]
        pe.run_sub_transform(x)
        pe.run_sub_transform(x[:16], 16)
        assert pe.counters.fft_cycles == 10

    def test_apply_twiddles(self, rng):
        pe = ProcessingElement(0, 4096)
        values = [rng.randrange(P) for _ in range(8)]
        twiddles = [rng.randrange(1, P) for _ in range(8)]
        out = pe.apply_twiddles(values, twiddles)
        assert out == [v * t % P for v, t in zip(values, twiddles)]

    def test_unity_twiddle_skips_multiplier(self):
        pe = ProcessingElement(0, 4096)
        pe.apply_twiddles([5], [1])
        assert pe.counters.twiddle_products == 0

    def test_resource_breakdown_sums_to_total(self):
        pe = ProcessingElement(0, 16384)
        total = pe.resources()
        parts = pe.resource_breakdown()
        assert total.alms == pytest.approx(
            sum(p.alms for p in parts.values())
        )


class TestDeviceCatalog:
    def test_stratix_v_capacities(self):
        dev = STRATIX_V_GSMD8
        assert dev.alms == 262_400
        assert dev.registers == 4 * dev.alms
        assert dev.dsp_blocks == 1_963

    def test_utilization(self):
        est = rc.ResourceEstimate(alms=26_240, dsp_blocks=196)
        util = STRATIX_V_GSMD8.utilization(est)
        assert util["alms"] == pytest.approx(0.10)

    def test_cyclone_is_smaller(self):
        assert CYCLONE_V_PROTOTYPE.alms < STRATIX_V_GSMD8.alms / 5


class TestResourcePrimitives:
    def test_estimate_add_and_scale(self):
        a = rc.ResourceEstimate(alms=10, registers=4)
        b = rc.ResourceEstimate(alms=5, dsp_blocks=2)
        s = (a + b).scale(2)
        assert s.alms == 30 and s.registers == 8 and s.dsp_blocks == 4

    def test_mux_grows_with_ways(self):
        assert rc.mux(64, 16).alms > rc.mux(64, 4).alms
        assert rc.mux(64, 1).alms == 0

    def test_csa_tree_rows(self):
        assert rc.csa_tree(8, 100).alms == pytest.approx(6 * rc.csa(100).alms)
        assert rc.csa_tree(2, 100).alms == 0

    def test_report_render(self):
        report = rc.ResourceReport(title="x")
        report.add("part", rc.ResourceEstimate(alms=100))
        text = report.render(device=STRATIX_V_GSMD8)
        assert "part" in text and "TOTAL" in text and "%" in text
