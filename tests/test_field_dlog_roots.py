"""Tests for discrete logs and the root-of-unity ladder."""

import pytest

from repro.field.dlog import (
    TWO_SYLOW_ORDER,
    dlog_pow2,
    two_sylow_generator,
)
from repro.field.roots import (
    inverse_root_of_unity,
    is_primitive_root,
    omega_64k,
    root_of_unity,
    shift_amount_for_power,
)
from repro.field.solinas import P, pow_mod


class TestDlog:
    def test_sylow_generator_has_full_order(self):
        g = two_sylow_generator()
        assert pow_mod(g, TWO_SYLOW_ORDER) == 1
        assert pow_mod(g, TWO_SYLOW_ORDER // 2) == P - 1

    def test_dlog_roundtrip_small(self):
        g = two_sylow_generator()
        for exponent in (0, 1, 2, 3, 12345, TWO_SYLOW_ORDER - 1):
            element = pow_mod(g, exponent)
            assert dlog_pow2(element, g, TWO_SYLOW_ORDER) == exponent

    def test_dlog_of_eight(self):
        """8 = η^(2^26·u) with u odd — the structure the anchor needs."""
        g = two_sylow_generator()
        e = dlog_pow2(8, g, TWO_SYLOW_ORDER)
        assert pow_mod(g, e) == 8
        assert e % (1 << 26) == 0
        assert (e >> 26) % 2 == 1

    def test_dlog_rejects_non_power_of_two_order(self):
        with pytest.raises(ValueError):
            dlog_pow2(8, two_sylow_generator(), 3)

    def test_dlog_rejects_outside_subgroup(self):
        g = two_sylow_generator()
        # An element of odd order cannot be a power of g (unless 1).
        odd_element = pow_mod(7, 1 << 32)
        if odd_element != 1:
            with pytest.raises(ValueError):
                dlog_pow2(odd_element, g, TWO_SYLOW_ORDER)


class TestRootLadder:
    def test_anchor(self):
        """root_of_unity(64) is exactly 8 (paper Eq. 3)."""
        assert root_of_unity(64) == 8

    @pytest.mark.parametrize("n", [1, 2, 4, 8, 16, 64, 1024, 65536, 1 << 20])
    def test_primitive(self, n):
        assert is_primitive_root(root_of_unity(n), n)

    @pytest.mark.parametrize("n", [2, 4, 8, 64, 65536])
    def test_ladder_compatibility(self, n):
        """root(n)^2 == root(n/2) for the whole chain."""
        if n >= 2:
            assert pow_mod(root_of_unity(n), 2) == root_of_unity(n // 2)

    def test_omega_64k_power_is_eight(self):
        """ω^1024 = 8 makes every sub-transform shift-only (Eq. 2)."""
        w = omega_64k()
        assert pow_mod(w, 1024) == 8
        assert is_primitive_root(w, 65536)

    def test_inverse_roots(self):
        for n in (2, 64, 65536):
            w = root_of_unity(n)
            assert w * inverse_root_of_unity(n) % P == 1

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            root_of_unity(3)
        with pytest.raises(ValueError):
            root_of_unity(0)

    def test_rejects_too_large(self):
        with pytest.raises(ValueError):
            root_of_unity(1 << 33)

    def test_shift_radix_roots_are_powers_of_two(self):
        """Radix-8/16/32/64 roots are 2^24, 2^12, 2^6, 2^3."""
        assert root_of_unity(8) == pow(2, 24, P)
        assert root_of_unity(16) == pow(2, 12, P)
        assert root_of_unity(32) == pow(2, 6, P)
        assert root_of_unity(64) == pow(2, 3, P)


class TestShiftAmounts:
    def test_basic(self):
        assert shift_amount_for_power(8, 1) == 3
        assert shift_amount_for_power(8, 2) == 6
        assert shift_amount_for_power(8, 64) == 0  # 8^64 = 1

    def test_matches_value(self):
        for e in range(0, 130, 7):
            s = shift_amount_for_power(8, e)
            assert pow(2, s, P) == pow(8, e, P)

    def test_rejects_non_power_of_two_root(self):
        with pytest.raises(ValueError):
            shift_amount_for_power(5, 1)
