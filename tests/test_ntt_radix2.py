"""Tests for the radix-2 NTT (scalar and numpy paths)."""

import numpy as np
import pytest

from repro.field.solinas import P
from repro.field.vector import from_field_array, to_field_array
from repro.ntt.radix2 import (
    intt_radix2,
    intt_radix2_numpy,
    ntt_radix2,
    ntt_radix2_numpy,
)
from repro.ntt.reference import dft_reference


@pytest.mark.parametrize("n", [2, 4, 8, 16, 64, 256])
def test_matches_reference(n, rng):
    x = [rng.randrange(P) for _ in range(n)]
    assert ntt_radix2(x) == dft_reference(x)


@pytest.mark.parametrize("n", [2, 4, 8, 64, 512])
def test_numpy_matches_scalar(n, rng):
    x = [rng.randrange(P) for _ in range(n)]
    got = from_field_array(ntt_radix2_numpy(to_field_array(x)))
    assert got == ntt_radix2(x)


@pytest.mark.parametrize("n", [2, 16, 128])
def test_inverse_roundtrip_scalar(n, rng):
    x = [rng.randrange(P) for _ in range(n)]
    assert intt_radix2(ntt_radix2(x)) == x


@pytest.mark.parametrize("n", [2, 16, 4096])
def test_inverse_roundtrip_numpy(n, rng):
    x = to_field_array([rng.randrange(P) for _ in range(n)])
    back = intt_radix2_numpy(ntt_radix2_numpy(x))
    assert np.array_equal(back, x)


def test_rejects_non_power_of_two():
    with pytest.raises(ValueError):
        ntt_radix2([1, 2, 3])
    with pytest.raises(ValueError):
        ntt_radix2_numpy(to_field_array([1, 2, 3]))


def test_rejects_empty():
    with pytest.raises(ValueError):
        ntt_radix2([])


def test_large_transform_consistency(rng):
    """64K-point numpy radix-2 agrees with itself through the inverse."""
    x = to_field_array([rng.randrange(P) for _ in range(65536)])
    spectrum = ntt_radix2_numpy(x)
    assert np.array_equal(intt_radix2_numpy(spectrum), x)


def test_input_not_mutated(rng):
    x = [rng.randrange(P) for _ in range(16)]
    arr = to_field_array(x)
    ntt_radix2_numpy(arr)
    assert from_field_array(arr) == x
