"""Tests for the declarative architecture subsystem (``repro.arch``).

Covers spec validation, JSON round-trips, the golden bit-identity of
``ArchSpec.paper_default()`` against the pre-refactor hardware model,
the pipelined batch overlap schedule, routing sanity of the non-paper
topologies, Pareto pruning on a synthetic frontier, and the engine
wiring (``ExecutionConfig(arch=...)``).
"""

import json

import pytest

from repro.arch import (
    ArchSpec,
    DesignSpace,
    ExchangeSpec,
    PESpec,
    enumerate_candidates,
    evaluate_candidate,
    explore,
    pareto_frontier,
)
from repro.arch.explore import (
    CandidateMetrics,
    DesignPoint,
    paper_point,
)
from repro.hw.accelerator import (
    DistributedFFTBatchReport,
    HEAccelerator,
    plan_schedule,
)
from repro.hw.timing import AcceleratorTiming
from repro.ntt.plan import paper_64k_plan


class TestSpecValidation:
    def test_paper_default(self):
        spec = ArchSpec.paper_default()
        assert spec.pes == 4
        assert spec.clock_ns == 5.0
        assert spec.pe.fft_units == 1
        assert spec.exchange.topology == "hypercube"
        assert spec.dot_product_multipliers == 32
        assert spec.carry_words_per_cycle == 16

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"pes": 3},  # hypercube needs a power of two
            {"pes": 0},
            {"clock_ns": 0.0},
            {"clock_ns": -5.0},
            {"dot_product_multipliers": 0},
            {"carry_words_per_cycle": 0},
            {"name": ""},
        ],
    )
    def test_bad_spec_fields(self, kwargs):
        with pytest.raises(ValueError):
            ArchSpec(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"fft_units": 0},
            {"banks": 12},
            {"bank_port_words": 3},
            {"bank_port_words": 32, "banks": 16},  # port > banks
            {"twiddle_multipliers": 0},
        ],
    )
    def test_bad_pe_fields(self, kwargs):
        with pytest.raises(ValueError):
            PESpec(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"topology": "torus"},
            {"link_words_per_cycle": 0},
            {"hop_latency_cycles": -1},
        ],
    )
    def test_bad_exchange_fields(self, kwargs):
        with pytest.raises(ValueError):
            ExchangeSpec(**kwargs)

    def test_ring_allows_odd_pe_counts(self):
        spec = ArchSpec.paper_default().with_overrides(topology="ring")
        # Validation is per-topology: the ring itself has no
        # power-of-two constraint.
        spec.exchange.validate_nodes(6)

    def test_spec_is_hashable(self):
        a = ArchSpec.paper_default()
        b = ArchSpec.paper_default()
        assert a == b and hash(a) == hash(b)
        assert a.with_overrides(pes=8) != a

    def test_with_overrides_routes_nested_fields(self):
        spec = ArchSpec.paper_default().with_overrides(
            fft_units=2, topology="ring", pes=8, link_words_per_cycle=16
        )
        assert spec.pe.fft_units == 2
        assert spec.exchange.topology == "ring"
        assert spec.exchange.link_words_per_cycle == 16
        assert spec.pes == 8


class TestSerialization:
    def test_json_round_trip(self):
        spec = ArchSpec.paper_default().with_overrides(
            pes=8,
            fft_units=2,
            topology="ring",
            hop_latency_cycles=2,
            dot_product_multipliers=64,
            name="round-trip",
        )
        again = ArchSpec.from_json(spec.to_json())
        assert again == spec

    def test_json_is_stable(self):
        spec = ArchSpec.paper_default()
        assert spec.to_json() == ArchSpec.from_json(spec.to_json()).to_json()

    def test_dict_shape(self):
        data = ArchSpec.paper_default().to_dict()
        assert data["pes"] == 4
        assert data["pe"]["banks"] == 16
        assert data["exchange"]["topology"] == "hypercube"
        # Plain-JSON serializable.
        json.dumps(data)

    @pytest.mark.parametrize(
        "data",
        [
            {},  # missing pes / clock
            {"pes": 4},  # missing clock
            {"pes": 4, "clock_ns": 5.0, "pe": {"bogus": 1}},
            {"pes": 4, "clock_ns": 5.0, "exchange": {"bogus": 1}},
        ],
    )
    def test_malformed_dict(self, data):
        with pytest.raises(ValueError):
            ArchSpec.from_dict(data)


class TestDerivedQuantities:
    def test_hypercube_graph(self):
        spec = ArchSpec.paper_default()
        edges = spec.edges()
        assert len(edges) == 8  # 4 nodes x log2(4) dims, directed
        assert spec.delay_table() == {edge: 0 for edge in edges}
        assert spec.aggregate_bandwidth_words_per_cycle() == 64
        assert spec.bisection_words_per_cycle() == 32

    def test_ring_and_all_to_all_graphs(self):
        ring = ArchSpec.paper_default().with_overrides(topology="ring")
        assert len(ring.edges()) == 8  # 4 nodes x 2 neighbors
        full = ArchSpec.paper_default().with_overrides(
            topology="all-to-all"
        )
        assert len(full.edges()) == 12  # 4 x 3

    def test_area_proxy_positive_and_monotone_in_pes(self):
        p4 = ArchSpec.paper_default()
        p8 = p4.with_overrides(pes=8)
        assert 0 < p4.area_proxy() < p8.area_proxy()

    def test_render_mentions_the_headline_quantities(self):
        text = ArchSpec.paper_default().render()
        assert "200 MHz" in text
        assert "hypercube" in text
        assert "area proxy" in text


class TestGoldenBitIdentity:
    """paper_default() must reproduce the pre-refactor cycle reports."""

    def test_paper_fft_schedule(self):
        acc = HEAccelerator()
        report = acc._timing_report(acc.plan)
        assert report.total_cycles == 6144
        assert report.time_us == pytest.approx(30.72)
        assert report.stall_cycles == 0
        per_stage = [
            (s.radix, s.compute_cycles_per_pe, s.exchange_words_per_link,
             s.exchange_cycles, s.overlapped)
            for s in report.stages
        ]
        assert per_stage == [
            (64, 2048, 16384, 2048, True),
            (64, 2048, 0, 0, True),
            (16, 2048, 0, 0, True),
        ]

    def test_paper_multiply_phases(self):
        acc = HEAccelerator()
        product, report = acc.multiply(123456789, 987654321)
        assert product == 123456789 * 987654321
        assert report.total_cycles == 24580
        assert report.time_us == pytest.approx(122.9)
        phases = {p.name: p.cycles for p in report.phases}
        assert phases == {
            "fft_a": 6144,
            "fft_b": 6144,
            "dot_product": 2052,
            "inverse_fft": 6144,
            "carry_recovery": 4096,
        }

    @pytest.mark.parametrize(
        "pes,total", [(8, 3584), (16, 2048), (64, 640)]
    )
    def test_stressed_pe_counts(self, pes, total):
        acc = HEAccelerator(pes=pes)
        assert acc._timing_report(acc.plan).total_cycles == total

    def test_plan_schedule_matches_accelerator(self):
        spec = ArchSpec.paper_default().with_overrides(
            pes=16, name="p16"
        )
        acc = HEAccelerator(pes=16)
        via_spec = plan_schedule(spec, paper_64k_plan())
        via_acc = acc._timing_report(acc.plan)
        assert via_spec.total_cycles == via_acc.total_cycles
        assert [s.exchange_cycles for s in via_spec.stages] == [
            s.exchange_cycles for s in via_acc.stages
        ]

    def test_for_arch_matches_scalar_timing(self):
        spec = ArchSpec.paper_default()
        assert (
            AcceleratorTiming.for_arch(spec).multiplication_cycles()
            == AcceleratorTiming().multiplication_cycles()
        )
        p8 = spec.with_overrides(pes=8, name="p8")
        assert (
            AcceleratorTiming.for_arch(p8).fft_cycles()
            == AcceleratorTiming(pes=8).fft_cycles()
        )


class TestBatchOverlap:
    def test_paper_point_unchanged(self):
        # Every exchange is hidden at P=4, so the pipelined schedule is
        # bit-identical to the serial one.
        acc = HEAccelerator()
        batch = acc.batch_schedule(8)
        assert batch.total_cycles == batch.serial_total_cycles == 8 * 6144
        assert batch.hidden_stall_cycles == 0

    def test_single_row_is_serial(self):
        acc = HEAccelerator(pes=16)
        batch = acc.batch_schedule(1)
        assert batch.total_cycles == batch.per_row.total_cycles

    def test_stressed_point_overlaps_cross_row(self):
        # At P=16 the stage-0 exchange is exposed; rows 2..N hide it
        # behind the next row's compute.
        acc = HEAccelerator(pes=16)
        batch = acc.batch_schedule(16)
        assert batch.serial_total_cycles == 16 * 2048
        assert batch.total_cycles == 25088
        assert batch.hidden_stall_cycles == 32768 - 25088
        assert batch.steady_interval_cycles == max(
            batch.per_row.compute_cycles,
            batch.per_row.exchange_total_cycles,
        )

    def test_batch_report_from_transform_call(self):
        import numpy as np

        acc = HEAccelerator(pes=16)
        data = np.zeros((4, 65536), dtype=np.uint64)
        _, report = acc.distributed_ntt_batch(data)
        assert isinstance(report, DistributedFFTBatchReport)
        assert report.total_cycles == acc.batch_schedule(4).total_cycles

    def test_render_mentions_pipeline(self):
        text = HEAccelerator(pes=16).batch_schedule(4).render()
        assert "steady state" in text
        assert "hidden cross-row" in text


class TestRoutingModels:
    def test_ring_exchange_is_costed(self):
        import numpy as np

        spec = ExchangeSpec(topology="ring")
        src = np.array([0, 0, 1, 2], dtype=np.int64)
        dst = np.array([1, 2, 0, 0], dtype=np.int64)
        words, cycles = spec.route_cycles(src, dst, 4)
        assert words >= 1 and cycles >= 1

    def test_hop_latency_adds_cycles(self):
        import numpy as np

        fast = ExchangeSpec(topology="hypercube", hop_latency_cycles=0)
        slow = ExchangeSpec(topology="hypercube", hop_latency_cycles=4)
        src = np.arange(8, dtype=np.int64) % 4
        dst = (np.arange(8, dtype=np.int64) + 1) % 4
        _, fast_cycles = fast.route_cycles(src, dst, 4)
        _, slow_cycles = slow.route_cycles(src, dst, 4)
        assert slow_cycles > fast_cycles

    def test_all_to_all_single_phase(self):
        import numpy as np

        spec = ExchangeSpec(topology="all-to-all", link_words_per_cycle=8)
        src = np.zeros(64, dtype=np.int64)
        dst = np.ones(64, dtype=np.int64)
        words, cycles = spec.route_cycles(src, dst, 4)
        assert (words, cycles) == (64, 8)


def _metric(cycles, area, tag="x"):
    spec = ArchSpec.paper_default().with_overrides(name=tag)
    return CandidateMetrics(
        point=DesignPoint(spec, (64, 64, 16)),
        workload_cycles=(("synthetic", cycles),),
        area_proxy=float(area),
    )


class TestParetoPruning:
    def test_synthetic_frontier(self):
        a = _metric(100, 50.0, "a")   # frontier
        b = _metric(80, 80.0, "b")    # frontier
        c = _metric(120, 60.0, "c")   # dominated by a
        d = _metric(100, 70.0, "d")   # dominated by a
        e = _metric(60, 120.0, "e")   # frontier
        frontier = pareto_frontier([a, b, c, d, e])
        assert [m.spec.name for m in frontier] == ["e", "b", "a"]

    def test_duplicate_objectives_kept_once(self):
        a = _metric(100, 50.0, "a")
        b = _metric(100, 50.0, "b")
        assert len(pareto_frontier([a, b])) == 1

    def test_dominance_relations(self):
        better = _metric(90, 50.0)
        paper = _metric(100, 50.0)
        assert better.dominates(paper)
        assert better.strictly_faster_not_larger(paper)
        assert not paper.dominates(paper)


class TestExploration:
    def test_enumeration_is_deterministic(self):
        space = DesignSpace()
        first = enumerate_candidates(space)
        second = enumerate_candidates(space)
        assert first == second
        assert len(first) == space.size()  # nothing invalid by default

    def test_max_candidates_stride_samples(self):
        space = DesignSpace(max_candidates=10)
        points = enumerate_candidates(space)
        assert len(points) <= 10

    def test_evaluate_paper_point(self):
        metrics = evaluate_candidate(paper_point())
        assert metrics is not None
        cycles = dict(metrics.workload_cycles)
        # 24 rows x 6144 cycles (fully hidden exchanges) plus 8 dot +
        # carry passes: 8 x (2052 + 4096).
        assert cycles["ssa-64k-x8"] == 24 * 6144 + 8 * (2052 + 4096)
        assert metrics.area_proxy == pytest.approx(
            ArchSpec.paper_default().area_proxy()
        )

    def test_infeasible_candidate_returns_none(self):
        spec = ArchSpec.paper_default().with_overrides(
            pes=128, name="p128"
        )
        # 64K plan stage 2 has 1024 radix-64 sub-transforms at radices
        # (16, 64, 64)? Use a point whose stage count does not divide.
        point = DesignPoint(spec, (64, 64, 16))
        metrics = evaluate_candidate(point)
        # 65536/64 = 1024 sub-transforms divide by 128, so this one is
        # feasible; shrink the workload instead via the RLWE plan
        # (4096/64 = 64 < 128).
        assert metrics is None

    def test_small_exploration_inline(self):
        space = DesignSpace(
            pes=(2, 4),
            fft_units=(1, 2),
            dot_product_multipliers=(32, 64),
            carry_words_per_cycle=(16, 64),
            topologies=("hypercube",),
            radix_plans_64k=((64, 64, 16),),
        )
        result = explore(space=space, use_jobs=False)
        assert result.evaluated
        assert result.frontier
        # The paper point is evaluated even when outside the space.
        assert result.paper.total_cycles > 0
        # Acceptance criterion: something strictly dominates the paper
        # point (P=2 with two FFT units has the identical schedule at
        # lower area, and wider dot/carry strictly cuts cycles).
        assert result.dominating_paper()

    def test_exploration_is_deterministic(self):
        space = DesignSpace(
            pes=(2, 4),
            fft_units=(1,),
            dot_product_multipliers=(32,),
            carry_words_per_cycle=(16,),
            topologies=("hypercube", "ring"),
            radix_plans_64k=((64, 64, 16),),
        )
        first = explore(space=space, use_jobs=False)
        second = explore(space=space, use_jobs=True)
        assert first.to_json() == second.to_json()


class TestEngineWiring:
    def test_config_arch_overrides_scalars(self):
        from repro.engine import ExecutionConfig

        spec = ArchSpec.paper_default().with_overrides(
            pes=8, name="p8"
        )
        config = ExecutionConfig(arch=spec, pes=2, clock_ns=3.0)
        assert config.pes == 8
        assert config.clock_ns == 5.0
        assert config.resolved_arch() == spec

    def test_config_scalars_build_a_spec(self):
        from repro.engine import ExecutionConfig

        config = ExecutionConfig(pes=8)
        spec = config.resolved_arch()
        assert spec.pes == 8
        assert spec.exchange.topology == "hypercube"

    def test_engine_uses_the_spec(self):
        from repro.engine import Engine, ExecutionConfig

        spec = ArchSpec.paper_default().with_overrides(
            pes=2, fft_units=2, name="p2-u2"
        )
        engine = Engine(
            config=ExecutionConfig(arch=spec), backend="hw-model"
        )
        try:
            accelerator = engine.hardware()
            assert accelerator.arch.pe.fft_units == 2
            assert accelerator.pe_count == 2
            # P=2 with two FFT units keeps the paper's 6144-cycle
            # transform schedule.
            report = accelerator._timing_report(accelerator.plan)
            assert report.total_cycles == 6144
        finally:
            engine.close()

    def test_accelerator_pool_keyed_by_arch(self):
        from repro.engine import Engine, ExecutionConfig

        engine = Engine(config=ExecutionConfig(), backend="hw-model")
        try:
            first = engine.hardware()
            second = engine.hardware()
            assert first is second
        finally:
            engine.close()
