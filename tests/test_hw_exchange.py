"""Tests for the clocked exchange engine (compute/comm overlap)."""

import pytest

from repro.hw.exchange import (
    ComputeLoad,
    ExchangeEngine,
    run_overlapped_exchange,
)
from repro.hw.hypercube import LINK_WORDS_PER_CYCLE
from repro.sim.kernel import Fifo, Simulator


class TestDataIntegrity:
    def test_words_arrive_intact_and_ordered(self):
        a = list(range(1000, 1100))
        b = list(range(2000, 2100))
        got_a, got_b, _, _, _ = run_overlapped_exchange(a, b, 0)
        assert got_a == b
        assert got_b == a

    def test_asymmetric_sizes(self):
        a = list(range(64))
        b = list(range(16))
        sim = Simulator()
        ab = sim.add_fifo(Fifo("ab"))
        ba = sim.add_fifo(Fifo("ba"))
        ea = sim.add(ExchangeEngine("a", a, ab, ba))
        eb = sim.add(ExchangeEngine("b", b, ba, ab))
        # Each side expects what the other sends.
        ea.expected = len(b)
        eb.expected = len(a)
        sim.run_until(lambda: ea.done and eb.done, max_cycles=1000)
        assert ea.received == b
        assert eb.received == a


class TestTiming:
    def test_transfer_cycles_match_link_width(self):
        """8192 words at 8 words/cycle ≈ 1024 cycles + pipeline edge."""
        words = list(range(8192))
        _, _, done, _, _ = run_overlapped_exchange(words, words, 0)
        expected = 8192 // LINK_WORDS_PER_CYCLE
        assert expected <= done <= expected + 2

    def test_overlap_total_is_max_not_sum(self):
        """The double-buffering claim: total time = max(compute, comm)."""
        words = list(range(800))  # 100 cycles of transfer
        transfer_cycles = len(words) // LINK_WORDS_PER_CYCLE
        compute_cycles = 300
        _, _, comm_done, compute_done, total = run_overlapped_exchange(
            words, words, compute_cycles
        )
        assert total <= max(transfer_cycles, compute_cycles) + 3
        assert total < transfer_cycles + compute_cycles

    def test_comm_bound_case(self):
        words = list(range(4000))  # 500 cycles
        _, _, _, _, total = run_overlapped_exchange(words, words, 100)
        assert 500 <= total <= 503

    def test_compute_bound_case(self):
        """The paper's operating point: exchange hides entirely."""
        words = list(range(80))  # 10 cycles
        _, _, comm_done, _, total = run_overlapped_exchange(
            words, words, 2048
        )
        assert comm_done < 15
        assert 2048 <= total <= 2050


class TestComputeLoad:
    def test_counts_down(self):
        sim = Simulator()
        load = sim.add(ComputeLoad("c", 5))
        sim.step(5)
        assert load.done
        assert load.finished_at == 4
