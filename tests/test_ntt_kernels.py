"""Property tests: the limb-matmul kernel is bit-identical to the loop
kernel (repro.ntt.kernels) across radices, stage shapes and batches."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.field.solinas import P
from repro.ntt.kernels import (
    KERNEL_ENV_VAR,
    KERNEL_LIMB_MATMUL,
    KERNEL_LOOP,
    available_kernels,
    default_kernel,
    limb_decompose_matrix,
    resolve_kernel,
    stage_dft_limb_matmul,
    stage_dft_loop,
)
from repro.ntt.negacyclic import (
    negacyclic_convolution_many,
    negacyclic_inverse_many,
    negacyclic_transform_many,
)
from repro.ntt.plan import StageSpec, plan_for_size
from repro.ntt.staged import (
    execute_plan_batch,
    execute_plan_inverse_batch,
)

#: Values straddling every limb boundary of the 16-bit decomposition.
EDGE_RESIDUES = [
    0,
    1,
    (1 << 16) - 1,
    1 << 16,
    (1 << 32) - 1,
    1 << 32,
    (1 << 48) - 1,
    1 << 48,
    P - 1,
    P - 2,
    P - (1 << 32),
]


def _random_block(rng, b, radix, tail, edge_bias=0.25):
    """Canonical residues with edge values salted in."""
    data = rng.integers(0, P, size=(b, radix, tail), dtype=np.uint64)
    mask = rng.random(size=data.shape) < edge_bias
    edges = rng.choice(
        np.array(EDGE_RESIDUES, dtype=np.uint64), size=data.shape
    )
    data[mask] = edges[mask]
    return data


class TestStageKernelEquivalence:
    """stage_dft_limb_matmul == stage_dft_loop on raw stage shapes."""

    @settings(max_examples=40, deadline=None)
    @given(
        radix=st.sampled_from([2, 4, 8, 16, 32, 64]),
        b=st.integers(min_value=1, max_value=4),
        tail=st.sampled_from([1, 2, 7, 16]),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_random_matrices(self, radix, b, tail, seed):
        """Arbitrary canonical matrices — not just DFT matrices — so the
        partial-product bounds are exercised at full operand range."""
        rng = np.random.default_rng(seed)
        matrix = _random_block(rng, 1, radix, radix)[0]
        data = _random_block(rng, b, radix, tail)
        want = stage_dft_loop(data, matrix)
        got = stage_dft_limb_matmul(data, limb_decompose_matrix(matrix))
        assert np.array_equal(want, got)

    def test_all_max_residues(self):
        """Worst case for the accumulation bounds: every operand p−1."""
        radix = 64
        matrix = np.full((radix, radix), np.uint64(P - 1))
        data = np.full((2, radix, 3), np.uint64(P - 1))
        want = stage_dft_loop(data, matrix)
        got = stage_dft_limb_matmul(data, limb_decompose_matrix(matrix))
        assert np.array_equal(want, got)

    def test_out_parameter_returned_and_filled(self):
        rng = np.random.default_rng(3)
        matrix = _random_block(rng, 1, 8, 8)[0]
        data = _random_block(rng, 2, 8, 5)
        want = stage_dft_loop(data, matrix)
        for kernel in (
            lambda d, o: stage_dft_loop(d, matrix, out=o),
            lambda d, o: stage_dft_limb_matmul(
                d, limb_decompose_matrix(matrix), out=o
            ),
        ):
            out = np.empty_like(data)
            assert kernel(data, out) is out
            assert np.array_equal(out, want)

    def test_chunking_boundary(self):
        """Blocks larger than the cache chunk split without seams."""
        from repro.ntt import kernels

        rng = np.random.default_rng(5)
        radix, tail = 16, 64
        rows_per_chunk = max(1, kernels._CHUNK_ELEMS // (radix * tail))
        b = 2 * rows_per_chunk + 1
        matrix = _random_block(rng, 1, radix, radix)[0]
        data = _random_block(rng, b, radix, tail)
        want = stage_dft_loop(data, matrix)
        got = stage_dft_limb_matmul(data, limb_decompose_matrix(matrix))
        assert np.array_equal(want, got)

    def test_oversized_radix_rejected(self):
        from repro.ntt.kernels import MAX_LIMB_MATMUL_RADIX

        bad_radix = MAX_LIMB_MATMUL_RADIX + 1
        data = np.zeros((1, bad_radix, 1), dtype=np.uint64)
        limbs = np.zeros((4, 1, 1))
        with pytest.raises(ValueError):
            stage_dft_limb_matmul(data, limbs)


#: (size, radices) spanning radix shapes and stage counts (2–64).
CONFIGS = [
    (16, (4, 4)),
    (64, (8, 8)),
    (64, (64,)),
    (64, (2, 32)),
    (256, (16, 16)),
    (512, (2, 4, 8, 8)),
    (1024, (64, 16)),
    (1024, (16, 64)),
]


class TestPlanEquivalence:
    """Full plans: limb-matmul transforms == loop transforms."""

    @settings(max_examples=30, deadline=None)
    @given(
        config=st.sampled_from(CONFIGS),
        batch=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_forward_and_inverse(self, config, batch, seed):
        n, radices = config
        loop_plan = plan_for_size(n, radices, kernel=KERNEL_LOOP)
        fast_plan = plan_for_size(n, radices, kernel=KERNEL_LIMB_MATMUL)
        rng = np.random.default_rng(seed)
        matrix = rng.integers(0, P, size=(batch, n), dtype=np.uint64)
        want = execute_plan_batch(matrix, loop_plan)
        got = execute_plan_batch(matrix, fast_plan)
        assert np.array_equal(want, got)
        assert np.array_equal(
            execute_plan_inverse_batch(want, loop_plan),
            execute_plan_inverse_batch(got, fast_plan),
        )

    @settings(max_examples=15, deadline=None)
    @given(
        config=st.sampled_from(CONFIGS[:6]),
        batch=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_negacyclic_wrappers(self, config, batch, seed):
        n, radices = config
        loop_plan = plan_for_size(n, radices, kernel=KERNEL_LOOP)
        fast_plan = plan_for_size(n, radices, kernel=KERNEL_LIMB_MATMUL)
        rng = np.random.default_rng(seed)
        a = rng.integers(0, P, size=(batch, n), dtype=np.uint64)
        b = rng.integers(0, P, size=(batch, n), dtype=np.uint64)
        assert np.array_equal(
            negacyclic_convolution_many(a, b, loop_plan),
            negacyclic_convolution_many(a, b, fast_plan),
        )
        spectra_loop = negacyclic_transform_many(a, loop_plan)
        spectra_fast = negacyclic_transform_many(a, fast_plan)
        assert np.array_equal(spectra_loop, spectra_fast)
        assert np.array_equal(
            negacyclic_inverse_many(spectra_loop, loop_plan),
            negacyclic_inverse_many(spectra_fast, fast_plan),
        )


class TestBackendSelection:
    def test_available(self):
        assert set(available_kernels()) == {KERNEL_LOOP, KERNEL_LIMB_MATMUL}

    def test_default_is_limb_matmul(self, monkeypatch):
        monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)
        assert default_kernel() == KERNEL_LIMB_MATMUL

    def test_env_var_override(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, KERNEL_LOOP)
        assert default_kernel() == KERNEL_LOOP
        assert resolve_kernel(None) == KERNEL_LOOP
        plan = plan_for_size(16, (4, 4), kernel=None)
        assert plan.kernel == KERNEL_LOOP

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, KERNEL_LOOP)
        plan = plan_for_size(16, (4, 4), kernel=KERNEL_LIMB_MATMUL)
        assert plan.kernel == KERNEL_LIMB_MATMUL

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError):
            resolve_kernel("vliw")
        with pytest.raises(ValueError):
            plan_for_size(16, (4, 4), kernel="vliw")

    def test_plans_cached_per_kernel(self):
        loop_plan = plan_for_size(64, (8, 8), kernel=KERNEL_LOOP)
        fast_plan = plan_for_size(64, (8, 8), kernel=KERNEL_LIMB_MATMUL)
        assert loop_plan is not fast_plan
        assert loop_plan is plan_for_size(64, (8, 8), kernel=KERNEL_LOOP)
        assert loop_plan.inverse_plan.kernel == KERNEL_LOOP
        assert fast_plan.inverse_plan.kernel == KERNEL_LIMB_MATMUL

    def test_plan_precomputes_limb_matrices(self):
        plan = plan_for_size(64, (8, 8), kernel=KERNEL_LIMB_MATMUL)
        for stage in plan.stages:
            assert stage.dft_limbs is not None
            assert stage.dft_limbs.shape == (4, stage.radix, stage.radix)
            assert np.array_equal(
                stage.dft_limbs, limb_decompose_matrix(stage.dft_matrix)
            )

    def test_hand_built_stage_decomposed_at_construction(self):
        """StageSpecs built without cached limbs get them in
        ``__post_init__`` and execute on the fast kernel."""
        rng = np.random.default_rng(9)
        matrix = rng.integers(0, P, size=(4, 4), dtype=np.uint64)
        stage = StageSpec(
            radix=4, sub_transforms=1, dft_matrix=matrix, twiddles=None
        )
        assert stage.dft_limbs is not None
        assert np.array_equal(
            stage.dft_limbs, limb_decompose_matrix(matrix)
        )
        from repro.ntt.kernels import stage_executor

        data = rng.integers(0, P, size=(2, 4, 3), dtype=np.uint64)
        out = np.empty_like(data)
        stage_executor(KERNEL_LIMB_MATMUL)(data, stage, out)
        assert np.array_equal(out, stage_dft_loop(data, matrix))
