"""Every shipped example must actually run to completion."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_populated():
    """The deliverable: at least a quickstart plus domain scenarios."""
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{script.name} failed:\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script.name} printed nothing"
