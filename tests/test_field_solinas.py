"""Tests for scalar GF(p) arithmetic (repro.field.solinas)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.field import solinas as f
from repro.field.solinas import P

residues = st.integers(min_value=0, max_value=P - 1)


class TestPrimeStructure:
    def test_prime_value(self):
        assert P == 2**64 - 2**32 + 1

    def test_p_is_prime(self):
        # Deterministic Miller-Rabin witnesses for 64-bit integers.
        witnesses = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37]
        d, s = P - 1, 0
        while d % 2 == 0:
            d //= 2
            s += 1
        for a in witnesses:
            x = pow(a, d, P)
            if x in (1, P - 1):
                continue
            for _ in range(s - 1):
                x = x * x % P
                if x == P - 1:
                    break
            else:
                pytest.fail(f"witness {a} says composite")

    def test_two_to_96_is_minus_one(self):
        assert pow(2, 96, P) == P - 1

    def test_order_of_two(self):
        assert pow(2, f.ORDER_OF_TWO, P) == 1
        assert pow(2, f.ORDER_OF_TWO // 2, P) != 1
        assert pow(2, f.ORDER_OF_TWO // 3, P) != 1

    def test_eight_is_64th_root(self):
        """Paper Eq. 3: 8 is the 64th root of unity."""
        assert pow(8, 64, P) == 1
        assert pow(8, 32, P) != 1

    def test_two_sylow_divides_group_order(self):
        assert (P - 1) % (1 << 32) == 0
        assert (P - 1) // (1 << 32) % 2 == 1


class TestBasicOps:
    def test_add_wraps(self):
        assert f.add(P - 1, 1) == 0
        assert f.add(P - 1, P - 1) == P - 2

    def test_sub_wraps(self):
        assert f.sub(0, 1) == P - 1
        assert f.sub(5, 7) == P - 2

    def test_neg(self):
        assert f.neg(0) == 0
        assert f.neg(1) == P - 1
        assert f.neg(P - 1) == 1

    def test_mul_matches_int(self, field_elements):
        for a in field_elements[:16]:
            for b in field_elements[:16]:
                assert f.mul(a, b) == a * b % P

    def test_sqr(self, field_elements):
        for a in field_elements:
            assert f.sqr(a) == a * a % P

    def test_pow_negative_exponent(self):
        assert f.pow_mod(3, -1) == f.inverse(3)
        assert f.pow_mod(3, -2) == f.inverse(9)

    def test_inverse_of_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            f.inverse(0)
        with pytest.raises(ZeroDivisionError):
            f.inverse(P)

    def test_is_canonical(self):
        assert f.is_canonical(0)
        assert f.is_canonical(P - 1)
        assert not f.is_canonical(P)
        assert not f.is_canonical(-1)


class TestHypothesisProperties:
    @settings(max_examples=60)
    @given(a=residues, b=residues)
    def test_add_commutes_and_matches(self, a, b):
        assert f.add(a, b) == f.add(b, a) == (a + b) % P

    @settings(max_examples=60)
    @given(a=residues, b=residues)
    def test_sub_is_add_neg(self, a, b):
        assert f.sub(a, b) == f.add(a, f.neg(b))

    @settings(max_examples=60)
    @given(a=residues, b=residues, c=residues)
    def test_mul_distributes(self, a, b, c):
        left = f.mul(a, f.add(b, c))
        right = f.add(f.mul(a, b), f.mul(a, c))
        assert left == right

    @settings(max_examples=60)
    @given(a=st.integers(min_value=1, max_value=P - 1))
    def test_inverse_roundtrip(self, a):
        assert f.mul(a, f.inverse(a)) == 1

    @settings(max_examples=100)
    @given(a=residues, shift=st.integers(min_value=0, max_value=1000))
    def test_mul_by_pow2_matches_pow(self, a, shift):
        assert f.mul_by_pow2(a, shift) == a * pow(2, shift, P) % P

    @settings(max_examples=60)
    @given(a=residues, shift=st.integers(min_value=-400, max_value=-1))
    def test_mul_by_pow2_negative_shift(self, a, shift):
        """Negative shifts divide — used by inverse transforms."""
        expected = a * f.pow_mod(2, shift) % P
        assert f.mul_by_pow2(a, shift) == expected

    @settings(max_examples=60)
    @given(a=residues)
    def test_shift_by_96_negates(self, a):
        assert f.mul_by_pow2(a, 96) == f.neg(a)

    @settings(max_examples=60)
    @given(a=residues)
    def test_shift_by_192_is_identity(self, a):
        assert f.mul_by_pow2(a, 192) == a
