"""Tests for the shift-only radix kernels and the Eq. 5 dataflow."""

import pytest

from repro.field.solinas import P
from repro.ntt.radix64 import (
    SHIFT_RADICES,
    accumulator_twiddle,
    ntt64_two_stage,
    ntt_shift_radix,
    shift_root_exponent,
    stage1_mid_twiddle,
    stage1_partial_sums,
)
from repro.ntt.reference import dft_reference


class TestShiftRadix:
    @pytest.mark.parametrize("radix", SHIFT_RADICES)
    def test_matches_reference(self, radix, rng):
        x = [rng.randrange(P) for _ in range(radix)]
        assert ntt_shift_radix(x, radix) == dft_reference(x)

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            ntt_shift_radix([1, 2, 3], 64)

    def test_rejects_unsupported_radix(self):
        with pytest.raises(ValueError):
            ntt_shift_radix([1, 2, 3, 4], 4)

    def test_root_exponents(self):
        assert shift_root_exponent(64) == 3
        assert shift_root_exponent(32) == 6
        assert shift_root_exponent(16) == 12
        assert shift_root_exponent(8) == 24


class TestTwoStage:
    def test_matches_reference(self, rng):
        x = [rng.randrange(P) for _ in range(64)]
        assert ntt64_two_stage(x) == dft_reference(x)

    def test_matches_direct_chains(self, rng):
        """The optimized dataflow equals the baseline evaluation —
        the functional-equivalence claim behind Table I."""
        x = [rng.randrange(P) for _ in range(64)]
        assert ntt64_two_stage(x) == ntt_shift_radix(x, 64)

    def test_impulse(self):
        x = [0] * 64
        x[0] = 1
        assert ntt64_two_stage(x) == [1] * 64

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            ntt64_two_stage([1] * 63)


class TestStage1:
    def test_halved_chains_symmetry(self, rng):
        """u[k+4] from the even/odd split equals the direct chain."""
        column = [rng.randrange(P) for _ in range(8)]
        partials = stage1_partial_sums(column)
        w8 = pow(2, 24, P)
        for k1 in range(8):
            direct = (
                sum(
                    column[i] * pow(w8, i * k1, P) for i in range(8)
                )
                % P
            )
            assert partials[k1] == direct

    def test_mid_twiddle_values(self, rng):
        """Twiddled chains match ω64^{j·k1} including the ω16^j factor
        for the derived chains."""
        column = [rng.randrange(P) for _ in range(8)]
        partials = stage1_partial_sums(column)
        for j in range(8):
            twiddled = stage1_mid_twiddle(dict(partials), j)
            for k1 in range(8):
                want = partials[k1] * pow(8, j * k1, P) % P
                assert twiddled[k1] == want

    def test_stage1_rejects_short_column(self):
        with pytest.raises(ValueError):
            stage1_partial_sums([1, 2, 3])


class TestAccumulatorTwiddle:
    def test_only_four_shifts(self):
        """Paper: the eight twiddles reduce to shifts {0,24,48,72}."""
        shifts = set()
        for j in range(8):
            for k2 in range(8):
                shift, _ = accumulator_twiddle(j, k2)
                shifts.add(shift)
        assert shifts == {0, 24, 48, 72}

    def test_subtract_flag_matches_sign(self):
        """subtract ⇔ ω8^{j·k2} = −2^shift."""
        for j in range(8):
            for k2 in range(8):
                shift, subtract = accumulator_twiddle(j, k2)
                value = pow(2, 24 * ((j * k2) % 8), P)
                wired = pow(2, shift, P)
                if subtract:
                    assert value == P - wired
                else:
                    assert value == wired
