"""Fused negacyclic plans: bit-identity against the explicit-twist
``loop``-kernel oracle across kernels, shapes, radix mixes and compute
backends (repro.ntt.plan / negacyclic / engine / hw-model)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Engine
from repro.field.solinas import P
from repro.ntt.convolution import cyclic_convolution_many
from repro.ntt.kernels import KERNEL_LIMB_MATMUL, KERNEL_LOOP
from repro.ntt.negacyclic import (
    negacyclic_convolution,
    negacyclic_convolution_broadcast,
    negacyclic_convolution_many,
    negacyclic_inverse_many,
    negacyclic_transform_many,
    twist_tables,
)
from repro.ntt.plan import TWIST_NEGACYCLIC, plan_for_size
from repro.ntt.staged import execute_plan_batch, execute_plan_inverse_batch

#: (n, radices) points covering single-stage, two-stage, three-stage
#: and deliberately odd radix mixes next to the shift-only defaults.
SHAPES = [
    (4, (4,)),
    (8, (8,)),
    (16, (4, 4)),
    (64, (2, 4, 8)),
    (64, (8, 8)),
    (128, (16, 8)),
    (256, (4, 4, 4, 4)),
    (512, (8, 8, 8)),
    (1024, (64, 16)),
]


def _rows(rng, batch, n):
    return rng.integers(0, P, size=(batch, n), dtype=np.uint64)


def _oracle_plan(n, radices):
    """The explicit-twist bit-exactness oracle: unfused loop kernel."""
    return plan_for_size(n, radices, kernel=KERNEL_LOOP)


class TestFusedPlanConstruction:
    def test_fused_plan_is_cached_and_marked(self):
        fused = plan_for_size(64, twist=TWIST_NEGACYCLIC)
        assert fused is plan_for_size(64, twist=TWIST_NEGACYCLIC)
        assert fused.twist == TWIST_NEGACYCLIC
        assert fused.inverse_plan.twist == TWIST_NEGACYCLIC
        assert fused is not plan_for_size(64)
        assert fused.base_plan is plan_for_size(64)

    def test_fused_keying_includes_kernel(self):
        loop = plan_for_size(
            64, kernel=KERNEL_LOOP, twist=TWIST_NEGACYCLIC
        )
        fast = plan_for_size(
            64, kernel=KERNEL_LIMB_MATMUL, twist=TWIST_NEGACYCLIC
        )
        assert loop is not fast
        assert loop.kernel == KERNEL_LOOP and fast.kernel == KERNEL_LIMB_MATMUL

    def test_fused_limb_planes_precomputed(self):
        fused = plan_for_size(128, (16, 8), twist=TWIST_NEGACYCLIC)
        for plan in (fused, fused.inverse_plan):
            for stage in plan.stages:
                assert stage.dft_limbs is not None
                assert stage.dft_limbs.shape == (
                    4,
                    stage.radix,
                    stage.radix,
                )

    def test_unknown_twist_rejected(self):
        with pytest.raises(ValueError):
            plan_for_size(64, twist="moebius")

    def test_custom_omega_rejected(self):
        from repro.field.roots import root_of_unity
        from repro.field.solinas import pow_mod

        # A different primitive root has no canonical psi; the fuse
        # must refuse rather than silently use the wrong twist.
        other = pow_mod(root_of_unity(128), 3)  # order still 128
        with pytest.raises(ValueError):
            plan_for_size(128, omega=other, twist=TWIST_NEGACYCLIC)

    def test_cyclic_convolution_rejects_fused_plan(self):
        fused = plan_for_size(64, twist=TWIST_NEGACYCLIC)
        rows = np.ones((2, 64), dtype=np.uint64)
        with pytest.raises(ValueError):
            cyclic_convolution_many(rows, rows, fused)


class TestFusedEquivalence:
    """Fused plans == explicit-twist loop oracle, bit for bit."""

    @pytest.mark.parametrize("n,radices", SHAPES)
    @pytest.mark.parametrize("kernel", [KERNEL_LOOP, KERNEL_LIMB_MATMUL])
    def test_forward_inverse_roundtrip(self, n, radices, kernel):
        rng = np.random.default_rng(n * 7 + len(radices))
        fused = plan_for_size(n, radices, kernel=kernel, twist=TWIST_NEGACYCLIC)
        oracle = _oracle_plan(n, radices)
        for batch in (1, 3):
            rows = _rows(rng, batch, n)
            want = negacyclic_transform_many(rows, oracle)
            got = negacyclic_transform_many(rows, fused)
            assert np.array_equal(want, got)
            back = negacyclic_inverse_many(got, fused)
            assert np.array_equal(back, rows)
            assert np.array_equal(
                back, negacyclic_inverse_many(want, oracle)
            )

    @pytest.mark.parametrize("n,radices", SHAPES)
    def test_convolution_many_and_broadcast(self, n, radices):
        rng = np.random.default_rng(n * 13)
        fused = plan_for_size(n, radices, twist=TWIST_NEGACYCLIC)
        oracle = _oracle_plan(n, radices)
        a, b = _rows(rng, 4, n), _rows(rng, 4, n)
        assert np.array_equal(
            negacyclic_convolution_many(a, b, oracle),
            negacyclic_convolution_many(a, b, fused),
        )
        fixed = _rows(rng, 1, n)[0]
        assert np.array_equal(
            negacyclic_convolution_broadcast(a, fixed, oracle),
            negacyclic_convolution_broadcast(a, fixed, fused),
        )

    def test_flat_convolution_defaults_to_fused(self):
        rng = np.random.default_rng(3)
        a, b = _rows(rng, 1, 128)[0], _rows(rng, 1, 128)[0]
        assert np.array_equal(
            negacyclic_convolution(a, b),
            negacyclic_convolution(a, b, _oracle_plan(128, (16, 8))),
        )

    @given(data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_hypothesis_kernel_equivalence(self, data):
        n, radices = data.draw(st.sampled_from(SHAPES))
        batch = data.draw(st.integers(min_value=1, max_value=4))
        seed = data.draw(st.integers(min_value=0, max_value=2**31))
        rng = np.random.default_rng(seed)
        rows = _rows(rng, batch, n)
        oracle = negacyclic_transform_many(rows, _oracle_plan(n, radices))
        for kernel in (KERNEL_LOOP, KERNEL_LIMB_MATMUL):
            fused = plan_for_size(
                n, radices, kernel=kernel, twist=TWIST_NEGACYCLIC
            )
            assert np.array_equal(
                oracle, negacyclic_transform_many(rows, fused)
            )
            assert np.array_equal(
                rows, negacyclic_inverse_many(oracle, fused)
            )

    def test_spectra_interchangeable_between_flavors(self):
        # Fused and explicit-twist spectra are the same bits, so a
        # spectrum from one flavor inverts through the other.
        rng = np.random.default_rng(11)
        rows = _rows(rng, 2, 256)
        fused = plan_for_size(256, twist=TWIST_NEGACYCLIC)
        spectra = negacyclic_transform_many(rows, fused)
        assert np.array_equal(
            rows, negacyclic_inverse_many(spectra, plan_for_size(256))
        )


class TestFusedExecutorContract:
    def test_fused_forward_is_plain_plan_execution(self):
        rng = np.random.default_rng(5)
        rows = _rows(rng, 2, 128)
        fused = plan_for_size(128, twist=TWIST_NEGACYCLIC)
        forward, _ = twist_tables(128)
        from repro.field.vector import vmul

        want = execute_plan_batch(
            vmul(rows, forward[np.newaxis, :]), plan_for_size(128)
        )
        assert np.array_equal(want, execute_plan_batch(rows, fused))

    def test_fused_inverse_skips_scale_pass(self):
        rng = np.random.default_rng(6)
        rows = _rows(rng, 2, 64)
        fused = plan_for_size(64, twist=TWIST_NEGACYCLIC)
        spectra = execute_plan_batch(rows, fused)
        assert np.array_equal(
            rows, execute_plan_inverse_batch(spectra, fused)
        )


class TestFusedAcrossBackends:
    def test_software_vs_hw_model_ring_identity(self):
        rng = np.random.default_rng(21)
        rows = _rows(rng, 3, 256)
        other = _rows(rng, 3, 256)
        sw = Engine().ring(256)
        hw = Engine(backend="hw-model").ring(256)
        assert np.array_equal(
            sw.negacyclic_forward(rows), hw.negacyclic_forward(rows)
        )
        assert np.array_equal(
            sw.negacyclic_convolve(rows, other),
            hw.negacyclic_convolve(rows, other),
        )
        spectra = sw.negacyclic_forward(rows)
        assert np.array_equal(
            sw.negacyclic_inverse(spectra), hw.negacyclic_inverse(spectra)
        )
        assert np.array_equal(sw.negacyclic_inverse(spectra), rows)

    def test_hw_model_datapath_matches_fused_fast(self):
        from repro.engine import ExecutionConfig

        rng = np.random.default_rng(22)
        rows = _rows(rng, 1, 64)
        fast = Engine(backend="hw-model").ring(64)
        beat = Engine(
            config=ExecutionConfig(fidelity="datapath"), backend="hw-model"
        ).ring(64)
        want = fast.negacyclic_forward(rows[0])
        assert np.array_equal(want, beat.negacyclic_forward(rows[0]))
        assert np.array_equal(
            fast.negacyclic_inverse(want), beat.negacyclic_inverse(want)
        )
        assert np.array_equal(beat.negacyclic_inverse(want), rows[0])

    def test_hw_model_reports_unchanged_schedule(self):
        # Fusing changes stage constants, never the stage schedule: the
        # fused negacyclic transform reports the same cycle count as
        # the plain cyclic transform of the same shape.
        engine = Engine(backend="hw-model")
        ring = engine.ring(256)
        rows = np.ones((2, 256), dtype=np.uint64)
        ring.forward(rows)
        cyclic_cycles = engine.last_report.total_cycles
        ring.negacyclic_forward(rows)
        assert engine.last_report.total_cycles == cyclic_cycles

    def test_software_mp_fused_transform_identity(self):
        from repro.engine import ExecutionConfig

        rng = np.random.default_rng(23)
        rows = _rows(rng, 4, 128)
        mp_engine = Engine(
            config=ExecutionConfig(workers=2), backend="software-mp"
        )
        try:
            assert np.array_equal(
                Engine().ring(128).negacyclic_forward(rows),
                mp_engine.ring(128).negacyclic_forward(rows),
            )
        finally:
            mp_engine.close()


class TestFusedRLWE:
    def test_multiply_plain_many_fused_vs_unfused(self):
        import random

        from repro.fhe.rlwe import RLWE, RLWEParams

        params = RLWEParams(n=128, t=64, noise_bound=4)
        fused = RLWE(
            params,
            rng=random.Random(1),
            plan=plan_for_size(128, twist=TWIST_NEGACYCLIC),
        )
        unfused = RLWE(
            params, rng=random.Random(1), plan=plan_for_size(128)
        )
        rng = random.Random(2)
        secret = fused.generate_secret()
        messages = [
            [rng.randrange(params.t) for _ in range(params.n)]
            for _ in range(3)
        ]
        plains = [
            [rng.randrange(params.t) for _ in range(params.n)]
            for _ in range(3)
        ]
        cts = fused.encrypt_many(secret, messages)
        out_f = fused.multiply_plain_many(cts, plains)
        out_u = unfused.multiply_plain_many(cts, plains)
        for cf, cu in zip(out_f, out_u):
            assert np.array_equal(cf.c0, cu.c0)
            assert np.array_equal(cf.c1, cu.c1)
        want = [
            _schoolbook_negacyclic_mod_t(
                messages[i], plains[i], params.n, params.t
            )
            for i in range(3)
        ]
        got = [fused.decrypt(secret, ct) for ct in out_f]
        assert got == want

    def test_engine_bound_rlwe_roundtrip(self):
        import random

        from repro.fhe.rlwe import RLWEParams

        params = RLWEParams(n=64, t=16, noise_bound=2)
        scheme = Engine().fhe(params, rng=random.Random(7))
        assert scheme.plan.twist == TWIST_NEGACYCLIC
        secret = scheme.generate_secret()
        message = [i % params.t for i in range(params.n)]
        assert scheme.decrypt(secret, scheme.encrypt(secret, message)) == (
            message
        )


def _schoolbook_negacyclic_mod_t(a, b, n, t):
    """Schoolbook product in ``Z_t[x]/(x^n + 1)`` — the decrypt truth."""
    out = [0] * n
    for i, x in enumerate(a):
        for j, y in enumerate(b):
            k = i + j
            if k < n:
                out[k] += x * y
            else:
                out[k - n] -= x * y
    return [c % t for c in out]
