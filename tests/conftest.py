"""Shared fixtures for the test suite."""

import random

import pytest

from repro.field.solinas import P


@pytest.fixture
def rng():
    """Deterministic RNG for reproducible tests."""
    return random.Random(0xC0FFEE)


@pytest.fixture
def field_elements(rng):
    """A mixed bag of canonical residues: edges plus random values."""
    edges = [
        0,
        1,
        2,
        P - 1,
        P - 2,
        (1 << 32) - 1,
        1 << 32,
        (1 << 32) + 1,
        (1 << 63),
        P >> 1,
    ]
    return edges + [rng.randrange(P) for _ in range(64)]
