"""Tests for the full accelerator model (distributed FFT + SSA)."""

import numpy as np
import pytest

from repro.field.solinas import P
from repro.field.vector import to_field_array
from repro.hw.accelerator import HEAccelerator
from repro.hw.fft64_unit import FFT64Config
from repro.hw.timing import PAPER_TIMING
from repro.ntt.plan import paper_64k_plan, plan_for_size
from repro.ntt.staged import execute_plan, execute_plan_inverse
from repro.ssa.encode import SSAParameters


SMALL_PARAMS = SSAParameters(coefficient_bits=24, operand_coefficients=512)


@pytest.fixture
def small_acc():
    plan = plan_for_size(1024, (64, 16))
    return HEAccelerator(pes=4, plan=plan, params=SMALL_PARAMS)


class TestDistributedNTTSmall:
    @pytest.mark.parametrize("pes", [1, 2, 4, 8])
    def test_fast_matches_executor(self, pes, rng):
        plan = plan_for_size(1024, (64, 16))
        acc = HEAccelerator(pes=pes, plan=plan, params=SMALL_PARAMS)
        x = to_field_array([rng.randrange(P) for _ in range(1024)])
        got, _ = acc.distributed_ntt(x)
        assert np.array_equal(got, execute_plan(x, plan))

    def test_datapath_matches_executor(self, small_acc, rng):
        """Every sub-transform through the shift-only unit, every
        twiddle through the DSP multiplier, every beat bank-checked."""
        x = to_field_array([rng.randrange(P) for _ in range(1024)])
        got, _ = small_acc.distributed_ntt(x, fidelity="datapath")
        assert np.array_equal(got, execute_plan(x, small_acc.plan))

    def test_datapath_inverse(self, small_acc, rng):
        x = to_field_array([rng.randrange(P) for _ in range(1024)])
        spectrum = execute_plan(x, small_acc.plan)
        back, _ = small_acc.distributed_ntt(
            spectrum, inverse=True, fidelity="datapath"
        )
        assert np.array_equal(back, x)

    def test_roundtrip(self, small_acc, rng):
        x = to_field_array([rng.randrange(P) for _ in range(1024)])
        spectrum, _ = small_acc.distributed_ntt(x)
        back, _ = small_acc.distributed_ntt(spectrum, inverse=True)
        assert np.array_equal(back, x)

    def test_wrong_length_rejected(self, small_acc):
        with pytest.raises(ValueError):
            small_acc.distributed_ntt(to_field_array([1, 2, 3]))

    def test_unknown_fidelity_rejected(self, small_acc):
        x = to_field_array([0] * 1024)
        with pytest.raises(ValueError):
            small_acc.distributed_ntt(x, fidelity="rtl")

    def test_datapath_cycles_match_analytic(self, small_acc, rng):
        """The component-activity ledger equals the closed form."""
        x = to_field_array([rng.randrange(P) for _ in range(1024)])
        _, report = small_acc.distributed_ntt(x, fidelity="datapath")
        per_pe = [
            (16 // 4) * 8,  # stage 0: 16 radix-64 over 4 PEs
            (64 // 4) * 2,  # stage 1: 64 radix-16 over 4 PEs
        ]
        got = [s.compute_cycles_per_pe for s in report.stages]
        assert got == per_pe
        unit_busy = small_acc.pes[0].fft_unit.busy_cycles
        assert unit_busy == sum(per_pe)


class TestExchangeAccounting:
    def test_single_pe_no_exchange(self, rng):
        plan = plan_for_size(1024, (64, 16))
        acc = HEAccelerator(pes=1, plan=plan, params=SMALL_PARAMS)
        x = to_field_array([rng.randrange(P) for _ in range(1024)])
        _, report = acc.distributed_ntt(x)
        assert all(s.exchange_cycles == 0 for s in report.stages)

    def test_exchange_hidden_at_paper_point(self, rng):
        plan = plan_for_size(1024, (64, 16))
        acc = HEAccelerator(pes=4, plan=plan, params=SMALL_PARAMS)
        x = to_field_array([rng.randrange(P) for _ in range(1024)])
        _, report = acc.distributed_ntt(x)
        for stage in report.stages:
            if stage.exchange_cycles:
                assert stage.overlapped

    def test_uneven_partition_rejected(self):
        plan = plan_for_size(1024, (64, 16))
        with pytest.raises(ValueError):
            HEAccelerator(pes=32, plan=plan, params=SMALL_PARAMS)


class TestMultiplySmall:
    def test_exact_product(self, small_acc, rng):
        a, b = rng.getrandbits(12000), rng.getrandbits(12000)
        product, report = small_acc.multiply(a, b)
        assert product == a * b
        assert len(report.phases) == 5

    def test_datapath_product(self, small_acc, rng):
        a, b = rng.getrandbits(12000), rng.getrandbits(12000)
        product, _ = small_acc.multiply(a, b, fidelity="datapath")
        assert product == a * b

    def test_zero_operands(self, small_acc):
        assert small_acc.multiply(0, 0)[0] == 0
        assert small_acc.multiply(0, 12345)[0] == 0

    def test_phase_names(self, small_acc, rng):
        _, report = small_acc.multiply(1, 1)
        names = [p.name for p in report.phases]
        assert names == [
            "fft_a",
            "fft_b",
            "dot_product",
            "inverse_fft",
            "carry_recovery",
        ]

    def test_ablation_config_still_exact(self, rng):
        """Baseline-config units compute the same products."""
        plan = plan_for_size(1024, (64, 16))
        acc = HEAccelerator(
            pes=2,
            plan=plan,
            params=SMALL_PARAMS,
            config=FFT64Config.baseline(),
        )
        a, b = rng.getrandbits(10000), rng.getrandbits(10000)
        assert acc.multiply(a, b, fidelity="datapath")[0] == a * b


class TestPaperScale:
    def test_full_64k_fast_ntt(self, rng):
        acc = HEAccelerator()
        x = to_field_array([rng.randrange(P) for _ in range(65536)])
        got, report = acc.distributed_ntt(x)
        assert np.array_equal(got, execute_plan(x, paper_64k_plan()))
        assert report.time_us == pytest.approx(30.72)

    def test_full_multiply_matches_paper_timing(self, rng):
        acc = HEAccelerator()
        a, b = rng.getrandbits(786_432), rng.getrandbits(786_432)
        product, report = acc.multiply(a, b)
        assert product == a * b
        assert report.time_us == pytest.approx(
            PAPER_TIMING.multiplication_time_us(), rel=0.01
        )

    def test_exchange_volume_at_64k(self, rng):
        """Redistribution moves 3/4 of each PE's 16K points; the
        two e-cube hops drain in 2048 cycles — exactly one compute
        stage, hence hidden (l > d holds with l=3, d=2)."""
        acc = HEAccelerator()
        x = to_field_array([rng.randrange(P) for _ in range(65536)])
        _, report = acc.distributed_ntt(x)
        moving = [s for s in report.stages if s.exchange_cycles]
        assert len(moving) == 1
        assert moving[0].exchange_cycles == 2048
        assert moving[0].overlapped
