"""Tests for the cycle-based simulation kernel."""

import pytest

from repro.sim.kernel import Component, Fifo, Simulator


class Counter(Component):
    """Test component: counts its own ticks."""

    def __init__(self, name, parent=None):
        super().__init__(name, parent)
        self.ticks = 0

    def tick(self, cycle):
        self.ticks += 1


class Producer(Component):
    def __init__(self, name, fifo):
        super().__init__(name)
        self.fifo = fifo

    def tick(self, cycle):
        self.fifo.push(cycle)


class Consumer(Component):
    def __init__(self, name, fifo):
        super().__init__(name)
        self.fifo = fifo
        self.received = []

    def tick(self, cycle):
        if self.fifo.can_pop():
            self.received.append((cycle, self.fifo.pop()))


class TestFifo:
    def test_push_invisible_until_commit(self):
        f = Fifo("f")
        f.push(1)
        assert not f.can_pop()
        f.commit()
        assert f.can_pop()
        assert f.pop() == 1

    def test_fifo_order(self):
        f = Fifo("f")
        for i in range(5):
            f.push(i)
        f.commit()
        assert [f.pop() for _ in range(5)] == list(range(5))

    def test_underflow_raises(self):
        f = Fifo("f")
        with pytest.raises(IndexError):
            f.pop()

    def test_peek(self):
        f = Fifo("f")
        f.push("x")
        f.commit()
        assert f.peek() == "x"
        assert len(f) == 1

    def test_capacity_overflow(self):
        f = Fifo("f", capacity=2)
        f.push(1)
        f.push(2)
        with pytest.raises(OverflowError):
            f.push(3)


class TestComponentHierarchy:
    def test_path(self):
        top = Counter("top")
        mid = Counter("mid", parent=top)
        leaf = Counter("leaf", parent=mid)
        assert leaf.path == "top.mid.leaf"

    def test_iter_tree(self):
        top = Counter("top")
        Counter("a", parent=top)
        b = Counter("b", parent=top)
        Counter("c", parent=b)
        names = [c.name for c in top.iter_tree()]
        assert names == ["top", "a", "b", "c"]


class TestSimulator:
    def test_ticks_once_per_cycle(self):
        sim = Simulator()
        c = sim.add(Counter("c"))
        sim.step(10)
        assert c.ticks == 10
        assert sim.cycle == 10

    def test_registered_communication_delay(self):
        """Data pushed in cycle t is visible in cycle t+1."""
        sim = Simulator()
        fifo = sim.add_fifo(Fifo("link"))
        sim.add(Producer("p", fifo))
        consumer = sim.add(Consumer("c", fifo))
        sim.step(3)
        # Values produced at cycles 0,1 are consumed at cycles 1,2.
        assert consumer.received == [(1, 0), (2, 1)]

    def test_run_until(self):
        sim = Simulator()
        c = sim.add(Counter("c"))
        elapsed = sim.run_until(lambda: c.ticks >= 7)
        assert elapsed == 7

    def test_run_until_timeout(self):
        sim = Simulator()
        with pytest.raises(TimeoutError):
            sim.run_until(lambda: False, max_cycles=5)
