"""Property tests: the batched executor is bit-identical to the
per-vector paths (repro.ntt.staged / convolution / negacyclic)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.field.solinas import P
from repro.field.vector import from_field_array
from repro.ntt.convolution import cyclic_convolution, cyclic_convolution_many
from repro.ntt.negacyclic import (
    negacyclic_convolution,
    negacyclic_convolution_broadcast,
    negacyclic_convolution_many,
)
from repro.ntt.plan import (
    clear_plan_cache,
    plan_cache_stats,
    plan_for_size,
)
from repro.ntt.reference import dft_reference
from repro.ntt.staged import (
    execute_plan,
    execute_plan_batch,
    execute_plan_inverse,
    execute_plan_inverse_batch,
)

#: (size, radices) configurations spanning radix shapes and stage counts.
CONFIGS = [
    (16, (4, 4)),
    (64, (8, 8)),
    (64, (64,)),
    (256, (16, 16)),
    (512, (8, 8, 8)),
    (1024, (64, 16)),
    (1024, (16, 64)),
]


def _random_matrix(batch: int, n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, P, size=(batch, n), dtype=np.uint64)


@settings(max_examples=40, deadline=None)
@given(
    config=st.sampled_from(CONFIGS),
    batch=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_batched_forward_matches_per_vector(config, batch, seed):
    n, radices = config
    plan = plan_for_size(n, radices)
    matrix = _random_matrix(batch, n, seed)
    got = execute_plan_batch(matrix, plan)
    want = np.vstack([execute_plan(matrix[i], plan) for i in range(batch)])
    assert np.array_equal(got, want)


@settings(max_examples=40, deadline=None)
@given(
    config=st.sampled_from(CONFIGS),
    batch=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_batched_inverse_roundtrip(config, batch, seed):
    n, radices = config
    plan = plan_for_size(n, radices)
    matrix = _random_matrix(batch, n, seed)
    spectrum = execute_plan_batch(matrix, plan)
    assert np.array_equal(execute_plan_inverse_batch(spectrum, plan), matrix)


@settings(max_examples=20, deadline=None)
@given(
    batch=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_batched_matches_dft_reference(batch, seed):
    n, radices = 16, (4, 4)
    plan = plan_for_size(n, radices)
    matrix = _random_matrix(batch, n, seed)
    got = execute_plan_batch(matrix, plan)
    for row_in, row_out in zip(matrix, got):
        assert from_field_array(row_out) == dft_reference(
            [int(v) for v in row_in]
        )


@settings(max_examples=25, deadline=None)
@given(
    config=st.sampled_from(CONFIGS[:5]),
    batch=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_convolution_many_matches_looped(config, batch, seed):
    n, radices = config
    plan = plan_for_size(n, radices)
    a = _random_matrix(batch, n, seed)
    b = _random_matrix(batch, n, seed + 1)
    cyc = cyclic_convolution_many(a, b, plan)
    neg = negacyclic_convolution_many(a, b, plan)
    for i in range(batch):
        assert np.array_equal(cyc[i], cyclic_convolution(a[i], b[i], plan))
        assert np.array_equal(
            neg[i], negacyclic_convolution(a[i], b[i], plan)
        )


@settings(max_examples=25, deadline=None)
@given(
    config=st.sampled_from(CONFIGS[:5]),
    batch=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_convolution_broadcast_matches_looped(config, batch, seed):
    n, radices = config
    plan = plan_for_size(n, radices)
    a = _random_matrix(batch, n, seed)
    fixed = _random_matrix(1, n, seed + 1)[0]
    got = negacyclic_convolution_broadcast(a, fixed, plan)
    for i in range(batch):
        assert np.array_equal(
            got[i], negacyclic_convolution(a[i], fixed, plan)
        )


class TestDispatch:
    def test_matrix_through_execute_plan(self):
        plan = plan_for_size(64, (8, 8))
        matrix = _random_matrix(3, 64, 7)
        assert np.array_equal(
            execute_plan(matrix, plan), execute_plan_batch(matrix, plan)
        )
        assert np.array_equal(
            execute_plan_inverse(matrix, plan),
            execute_plan_inverse_batch(matrix, plan),
        )

    def test_flat_vector_stays_flat(self):
        plan = plan_for_size(64, (8, 8))
        x = _random_matrix(1, 64, 11)[0]
        out = execute_plan(x, plan)
        assert out.shape == (64,)
        assert np.array_equal(execute_plan_inverse(out, plan), x)

    def test_empty_batch(self):
        plan = plan_for_size(64, (8, 8))
        empty = np.zeros((0, 64), dtype=np.uint64)
        assert execute_plan_batch(empty, plan).shape == (0, 64)

    @pytest.mark.parametrize(
        "shape", [(3,), (2, 63), (2, 2, 64)]
    )
    def test_bad_shapes_rejected(self, shape):
        plan = plan_for_size(64, (8, 8))
        with pytest.raises(ValueError):
            execute_plan(np.zeros(shape, dtype=np.uint64), plan)

    def test_convolution_many_shape_mismatch(self):
        a = np.zeros((2, 64), dtype=np.uint64)
        b = np.zeros((3, 64), dtype=np.uint64)
        with pytest.raises(ValueError):
            cyclic_convolution_many(a, b)
        with pytest.raises(ValueError):
            negacyclic_convolution_many(a, b)


class TestPlanCache:
    def test_stats_and_clear(self):
        clear_plan_cache()
        stats = plan_cache_stats()
        assert (stats.size, stats.hits, stats.misses) == (0, 0, 0)
        plan_for_size(64, (8, 8))
        plan_for_size(64, (8, 8))
        plan_for_size(64, (64,))
        stats = plan_cache_stats()
        assert stats.size == 2
        assert stats.hits == 1
        assert stats.misses == 2
        clear_plan_cache()
        stats = plan_cache_stats()
        assert (stats.size, stats.hits, stats.misses) == (0, 0, 0)

    def test_inverse_scale_precomputed(self):
        plan = plan_for_size(64, (8, 8))
        assert int(plan.n_inv) == pow(64, P - 2, P)
