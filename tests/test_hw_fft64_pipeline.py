"""Tests for the clocked FFT-64 pipeline (repro.hw.fft64_pipeline)."""

import pytest

from repro.field.solinas import P
from repro.hw.fft64_pipeline import FFT64Pipeline
from repro.hw.fft64_unit import PIPELINE_LATENCY
from repro.ntt.radix64 import ntt_shift_radix
from repro.sim.kernel import Simulator


def _feed_blocks(pipe, blocks):
    """Queue the column streams of several 64-point blocks."""
    for block in blocks:
        for j in range(8):
            pipe.push_column([block[8 * i + j] for i in range(8)])


def _run_and_collect(blocks, rng=None):
    sim = Simulator()
    pipe = sim.add(FFT64Pipeline())
    _feed_blocks(pipe, blocks)
    results = []
    sim.run_until(
        lambda: pipe.blocks_finished == len(blocks),
        max_cycles=100 * len(blocks) + 100,
    )
    for _ in blocks:
        results.append(pipe.drain_block())
    return sim, pipe, results


class TestFunctionalByExecution:
    def test_single_block_matches_reference(self, rng):
        block = [rng.randrange(P) for _ in range(64)]
        _, _, results = _run_and_collect([block])
        assert results[0] == ntt_shift_radix(block, 64)

    def test_back_to_back_blocks(self, rng):
        blocks = [
            [rng.randrange(P) for _ in range(64)] for _ in range(4)
        ]
        _, _, results = _run_and_collect(blocks)
        for block, got in zip(blocks, results):
            assert got == ntt_shift_radix(block, 64)

    def test_impulse(self):
        block = [0] * 64
        block[0] = 1
        _, _, results = _run_and_collect([block])
        assert results[0] == [1] * 64


class TestMicroarchitecture:
    def test_first_output_latency(self, rng):
        """First beat emerges PIPELINE_LATENCY cycles after the first
        column enters the pipe."""
        sim = Simulator()
        pipe = sim.add(FFT64Pipeline())
        block = [rng.randrange(P) for _ in range(64)]
        _feed_blocks(pipe, [block])
        first_out = None
        for _ in range(50):
            sim.step()
            if pipe.output.can_pop() and first_out is None:
                first_out = sim.cycle
        # sim.cycle is one past the tick that emitted; the first column
        # is popped on tick 1 (registered input FIFO).
        emit_tick = first_out - 1
        pop_tick = 1
        assert emit_tick - pop_tick == PIPELINE_LATENCY

    def test_sustained_throughput_8_cycles_per_block(self, rng):
        """Section V: 'the FFT-64 unit is able to output an FFT every
        eight clock cycles' — verified by clocked execution."""
        sim = Simulator()
        pipe = sim.add(FFT64Pipeline())
        blocks = [[rng.randrange(P) for _ in range(64)] for _ in range(5)]
        _feed_blocks(pipe, blocks)
        finish_cycles = []
        seen = 0
        while len(finish_cycles) < 5:
            sim.step()
            if pipe.blocks_finished > seen:
                finish_cycles.append(sim.cycle)
                seen = pipe.blocks_finished
        gaps = [
            b - a for a, b in zip(finish_cycles, finish_cycles[1:])
        ]
        assert gaps == [8, 8, 8, 8]

    def test_beats_are_eight_wide_and_ordered(self, rng):
        sim = Simulator()
        pipe = sim.add(FFT64Pipeline())
        block = [rng.randrange(P) for _ in range(64)]
        _feed_blocks(pipe, [block])
        sim.run_until(lambda: pipe.blocks_finished == 1, max_cycles=100)
        ts = []
        while pipe.output.can_pop():
            t, beat = pipe.output.pop()
            assert len(beat) == 8
            ts.append(t)
        assert ts == list(range(8))

    def test_rejects_bad_column(self):
        with pytest.raises(ValueError):
            FFT64Pipeline().push_column([1, 2, 3])
