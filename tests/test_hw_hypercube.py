"""Tests for the hypercube topology model."""

import pytest

from repro.hw.hypercube import LINK_WORDS_PER_CYCLE, HypercubeTopology


class TestTopology:
    @pytest.mark.parametrize("nodes,dim", [(1, 0), (2, 1), (4, 2), (8, 3), (16, 4)])
    def test_dimension(self, nodes, dim):
        assert HypercubeTopology(nodes).dimension == dim

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            HypercubeTopology(3)
        with pytest.raises(ValueError):
            HypercubeTopology(0)

    def test_neighbors_differ_in_one_bit(self):
        cube = HypercubeTopology(8)
        for node in range(8):
            for neighbor in cube.neighbors(node):
                assert bin(node ^ neighbor).count("1") == 1

    def test_neighbor_count_is_dimension(self):
        cube = HypercubeTopology(16)
        assert len(cube.neighbors(5)) == 4

    def test_partner_symmetry(self):
        cube = HypercubeTopology(4)
        for node in range(4):
            for dim in range(2):
                partner = cube.partner(node, dim)
                assert cube.partner(partner, dim) == node

    def test_partner_out_of_range(self):
        cube = HypercubeTopology(4)
        with pytest.raises(ValueError):
            cube.partner(0, 2)
        with pytest.raises(ValueError):
            cube.partner(4, 0)

    def test_single_node_partner_is_self(self):
        assert HypercubeTopology(1).partner(0, 0) == 0


class TestExchangeSchedule:
    def test_one_step_per_dimension(self):
        """Paper: 'the number of communication stages ... is the
        hypercube dimension d'."""
        cube = HypercubeTopology(8)
        schedule = cube.exchange_schedule()
        assert len(schedule) == 3

    def test_every_node_paired_once_per_step(self):
        cube = HypercubeTopology(8)
        for step in cube.exchange_schedule():
            seen = set()
            for a, b in step.pairs:
                seen.update((a, b))
            assert seen == set(range(8))

    def test_interleaving_condition(self):
        """l > d: 3 compute stages suffice for up to 4 PEs."""
        assert HypercubeTopology(4).validate_interleaving(3)
        assert not HypercubeTopology(8).validate_interleaving(3)
        assert HypercubeTopology(16).validate_interleaving(5)


class TestTransfers:
    def test_transfer_cycles(self):
        assert HypercubeTopology.transfer_cycles(0) == 0
        assert HypercubeTopology.transfer_cycles(8) == 1
        assert HypercubeTopology.transfer_cycles(9) == 2
        assert HypercubeTopology.transfer_cycles(8192) == 1024

    def test_link_width_matches_buffer_port(self):
        assert LINK_WORDS_PER_CYCLE == 8
