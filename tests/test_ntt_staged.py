"""Tests for the vectorized staged executor (repro.ntt.staged)."""

import numpy as np
import pytest

from repro.field.solinas import P
from repro.field.vector import from_field_array, to_field_array
from repro.ntt.plan import paper_64k_plan, plan_for_size
from repro.ntt.radix2 import ntt_radix2_numpy
from repro.ntt.reference import dft_reference
from repro.ntt.staged import execute_plan, execute_plan_inverse


@pytest.mark.parametrize(
    "n,radices",
    [
        (16, (4, 4)),
        (64, (8, 8)),
        (64, (64,)),
        (256, (16, 16)),
        (512, (8, 8, 8)),
        (1024, (64, 16)),
        (1024, (16, 64)),
        (4096, (64, 64)),
    ],
)
def test_matches_radix2(n, radices, rng):
    x = to_field_array([rng.randrange(P) for _ in range(n)])
    plan = plan_for_size(n, radices)
    assert np.array_equal(execute_plan(x, plan), ntt_radix2_numpy(x))


def test_small_matches_reference(rng):
    x = [rng.randrange(P) for _ in range(64)]
    plan = plan_for_size(64, (8, 8))
    got = from_field_array(execute_plan(to_field_array(x), plan))
    assert got == dft_reference(x)


@pytest.mark.parametrize("radices", [(64, 16), (16, 64), (64, 4, 4)])
def test_inverse_roundtrip(radices, rng):
    n = 1024
    x = to_field_array([rng.randrange(P) for _ in range(n)])
    plan = plan_for_size(n, radices)
    assert np.array_equal(execute_plan_inverse(execute_plan(x, plan), plan), x)


def test_paper_64k_plan_full_size(rng):
    """The headline configuration: 64K points, radices 64/64/16."""
    x = to_field_array([rng.randrange(P) for _ in range(65536)])
    plan = paper_64k_plan()
    spectrum = execute_plan(x, plan)
    assert np.array_equal(spectrum, ntt_radix2_numpy(x))
    assert np.array_equal(execute_plan_inverse(spectrum, plan), x)


def test_wrong_length_rejected():
    plan = plan_for_size(64, (8, 8))
    with pytest.raises(ValueError):
        execute_plan(to_field_array([1, 2, 3]), plan)


def test_impulse_and_constant(rng):
    plan = plan_for_size(256, (16, 16))
    impulse = to_field_array([1] + [0] * 255)
    assert from_field_array(execute_plan(impulse, plan)) == [1] * 256
    const = to_field_array([3] * 256)
    spectrum = from_field_array(execute_plan(const, plan))
    assert spectrum[0] == 3 * 256
    assert all(v == 0 for v in spectrum[1:])
