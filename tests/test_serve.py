"""Service-tier tests: protocol, ops, fair scheduling, TCP front end.

The acceptance invariants of the serving tier live here:

- coalesced batches are **bit-identical** to individual submission
  (multiply, RLWE ``multiply_plain``);
- backpressure is **bounded and typed**: queue caps hold under a
  flooding tenant, overflow resolves to ``REJECTED`` immediately, and
  the light tenant's p99 stays within 2× its unloaded p99;
- priorities order dispatch, weighted-fair queues prevent starvation;
- PR 7 faults (worker kill) propagate into per-request responses;
- shutdown is clean with jobs in flight, and
  :meth:`JobScheduler.drain` surfaces terminal state from any thread.
"""

import asyncio
import random
import threading
import time

import numpy as np
import pytest

from repro.engine import Engine, ExecutionConfig, faultinject
from repro.engine.jobs import JobScheduler, MultiplyJob
from repro.engine.resilience import JobTimeoutError
from repro.fhe.params import TOY
from repro.fhe.rlwe import RLWEParams
from repro.field.solinas import P
from repro.serve import (
    REJECT_GLOBAL_FULL,
    REJECT_SHUTDOWN,
    REJECT_TENANT_FULL,
    STATUS_OK,
    STATUS_REJECTED,
    STATUS_TIMEOUT,
    AsyncServiceClient,
    ComputeService,
    MultiplyOp,
    ProtocolError,
    Response,
    RingTransformOp,
    ServiceClient,
    ServiceConfig,
    ServiceServer,
    decode_op,
)
from repro.serve.metrics import percentile
from repro.serve.ops import ConvolveOp, DGHVMultOp, RLWEMultiplyPlainOp
from repro.serve.protocol import decode_body, encode_frame


@pytest.fixture(autouse=True)
def _disarm_faults():
    faultinject.deactivate()
    yield
    faultinject.deactivate()


def _service(**config) -> ComputeService:
    return ComputeService(config=ServiceConfig(**config))


# -- protocol --------------------------------------------------------------


class TestProtocol:
    def test_frame_roundtrip(self):
        message = {"type": "submit", "x": [1, 2 ** 200]}
        frame = encode_frame(message)
        assert decode_body(frame[4:]) == message

    def test_bad_json_rejected(self):
        with pytest.raises(ProtocolError):
            decode_body(b"\xff\xfe not json")
        with pytest.raises(ProtocolError):
            decode_body(b"[1, 2]")  # not an object

    def test_response_wire_roundtrip(self):
        response = Response(
            status=STATUS_OK,
            request_id=7,
            coalesced=4,
            queue_wait_s=0.25,
            latency_s=0.5,
        )
        wire = response.to_wire(encoded_result=[21])
        back = Response.from_wire(wire)
        assert back.ok and back.request_id == 7
        assert back.result == [21] and back.coalesced == 4

    def test_error_response_carries_type_and_faults(self):
        response = Response(
            status="error",
            request_id="a",
            error="boom",
            error_type="WorkerCrashError",
            fault_events=["[worker-crash] pid 1"],
            dead_lettered=True,
        )
        back = Response.from_wire(response.to_wire())
        assert back.error_type == "WorkerCrashError"
        assert back.dead_lettered and back.fault_events


# -- op vocabulary ---------------------------------------------------------


class TestOps:
    def test_unknown_op_rejected(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            decode_op("nope", {})

    def test_multiply_payload_validation(self):
        with pytest.raises(ProtocolError):
            decode_op("multiply", {"pairs": [[1]]})
        with pytest.raises(ProtocolError):
            decode_op("multiply", {"pairs": [[-1, 2]]})
        with pytest.raises(ProtocolError):
            decode_op("multiply", {})

    def test_multiply_coalesce_key_buckets_width(self):
        small_a = MultiplyOp.of([(3, 5)])
        small_b = MultiplyOp.of([(7, 2)])
        big = MultiplyOp.of([(1 << 600, 3)])
        assert small_a.coalesce_key() == small_b.coalesce_key()
        assert small_a.coalesce_key() != big.coalesce_key()

    def test_ring_keys_split_on_direction_and_size(self):
        fwd = RingTransformOp.of(8, [list(range(8))])
        inv = RingTransformOp.of(8, [list(range(8))], inverse=True)
        other = RingTransformOp.of(16, [list(range(16))])
        assert fwd.coalesce_key() != inv.coalesce_key()
        assert fwd.coalesce_key() != other.coalesce_key()

    def test_broadcast_convolve_not_coalescible(self):
        a = np.ones((3, 8), dtype=np.uint64)
        b = np.ones((1, 8), dtype=np.uint64)
        op = ConvolveOp.of(8, a, b)
        assert not op.coalescible
        assert ConvolveOp.of(8, a, a).coalescible

    def test_dghv_noise_bits_must_be_numeric(self):
        params = {
            "name": "toy",
            "lam": 8,
            "rho": 8,
            "eta": 96,
            "gamma": 2048,
            "tau": 8,
        }
        with pytest.raises(ProtocolError, match="noise_bits"):
            decode_op(
                "dghv-mult",
                {
                    "params": params,
                    "pairs": [[[5, "loud"], [7, 1.0]]],
                },
            )


# -- in-process service basics ---------------------------------------------


class TestServiceBasics:
    def test_multiply(self):
        with _service() as service:
            client = ServiceClient(service, tenant="t")
            response = client.multiply([(3, 5), (1 << 100, 3)])
            assert response.ok
            assert response.result == [15, 3 << 100]
            assert response.coalesced == 1

    def test_ring_transform_matches_engine(self):
        rng = np.random.default_rng(5)
        rows = rng.integers(0, P, size=(3, 64), dtype=np.uint64)
        with Engine() as engine:
            oracle = engine.ring(64).negacyclic_forward(rows)
        with _service() as service:
            got = ServiceClient(service).ring_transform(
                64, rows, negacyclic=True
            )
            assert got.ok and np.array_equal(got.result, oracle)

    def test_dghv_mult_decrypts(self):
        engine = Engine()
        scheme = engine.fhe(TOY, rng=random.Random(11))
        keys = scheme.generate_keys()
        plain = [(0, 0), (0, 1), (1, 0), (1, 1)]
        pairs = [
            (scheme.encrypt(keys, a), scheme.encrypt(keys, b))
            for a, b in plain
        ]
        engine.close()
        with _service() as service:
            response = ServiceClient(service).dghv_mult(pairs, x0=keys.x0)
            assert response.ok
            assert [
                scheme.decrypt(keys, ct) for ct in response.result
            ] == [0, 0, 0, 1]

    def test_stats_counters(self):
        with _service() as service:
            client = ServiceClient(service, tenant="alice")
            for _ in range(3):
                assert client.multiply([(2, 3)]).ok
            snapshot = client.stats()
            alice = snapshot["tenants"]["alice"]
            assert alice["completed"] == 3
            assert alice["items_completed"] == 3
            assert snapshot["totals"]["completed"] == 3
            assert snapshot["coalescing"]["batches"] >= 1
            assert alice["latency"]["p99_ms"] > 0


# -- coalescing ------------------------------------------------------------


class TestCoalescing:
    def test_multiply_coalesces_and_matches_individual(self):
        # Same-width operands: one coalesce bucket, one engine pass.
        pairs = [(100 + i, 200 + i) for i in range(6)]
        # Individual submissions, coalescing disabled: the oracle.
        with _service(coalesce=False) as service:
            client = ServiceClient(service)
            oracle = [
                client.multiply([pair]).result[0] for pair in pairs
            ]
        with _service() as service:
            client = ServiceClient(service)
            with service.scheduler.paused():
                futures = [
                    client.submit(
                        MultiplyOp.of([pair]), tenant=f"t{i % 3}"
                    )
                    for i, pair in enumerate(pairs)
                ]
            responses = [f.result(timeout=30) for f in futures]
            assert all(r.ok for r in responses)
            assert [r.result[0] for r in responses] == oracle
            assert [r.coalesced for r in responses] == [6] * 6
            snapshot = service.stats()
            assert snapshot["coalescing"]["batches"] == 1
            assert snapshot["coalescing"]["batched_requests"] == 6

    def test_rlwe_coalesced_bit_identical(self):
        params = RLWEParams(n=64, t=64, noise_bound=4)
        engine = Engine()
        scheme = engine.fhe(params, rng=random.Random(13))
        secret = scheme.generate_secret()
        rng = random.Random(17)
        messages = [
            [rng.randrange(params.t) for _ in range(params.n)]
            for _ in range(4)
        ]
        plains = [
            [rng.randrange(params.t) for _ in range(params.n)]
            for _ in range(4)
        ]
        cts = [scheme.encrypt(secret, m) for m in messages]
        engine.close()
        with _service(coalesce=False) as service:
            client = ServiceClient(service)
            oracle = [
                client.rlwe_multiply_plain(params, [ct], [plain]).result[
                    0
                ]
                for ct, plain in zip(cts, plains)
            ]
        with _service() as service:
            client = ServiceClient(service)
            with service.scheduler.paused():
                futures = [
                    client.submit(
                        RLWEMultiplyPlainOp.of(params, [ct], [plain]),
                        tenant=f"t{i}",
                    )
                    for i, (ct, plain) in enumerate(zip(cts, plains))
                ]
            responses = [f.result(timeout=30) for f in futures]
        assert all(r.ok for r in responses)
        assert {r.coalesced for r in responses} == {4}
        for response, want in zip(responses, oracle):
            got = response.result[0]
            assert np.array_equal(got.c0, want.c0)
            assert np.array_equal(got.c1, want.c1)

    def test_rlwe_ct_multiply_coalesced_bit_identical(self):
        from repro.fhe.rlwe import default_rns_primes
        from repro.serve.ops import RLWEMultiplyOp

        params = RLWEParams(
            n=64,
            t=17,
            noise_bound=4,
            rns_primes=default_rns_primes(64, 17, 2),
        )
        engine = Engine()
        scheme = engine.fhe(params, rng=random.Random(19))
        keys = scheme.keygen()
        rng = random.Random(23)
        messages = [
            [rng.randrange(params.t) for _ in range(params.n)]
            for _ in range(8)
        ]
        cts = scheme.encrypt_many(keys, messages)
        pairs = [(cts[i], cts[i + 1]) for i in range(0, 8, 2)]
        engine.close()
        with _service(coalesce=False) as service:
            client = ServiceClient(service)
            oracle = [
                client.rlwe_multiply(params, keys, [pair]).result[0]
                for pair in pairs
            ]
        with _service() as service:
            client = ServiceClient(service)
            with service.scheduler.paused():
                futures = [
                    client.submit(
                        RLWEMultiplyOp.of(params, keys, [pair]),
                        tenant=f"t{i}",
                    )
                    for i, pair in enumerate(pairs)
                ]
            responses = [f.result(timeout=30) for f in futures]
        assert all(r.ok for r in responses)
        assert {r.coalesced for r in responses} == {4}
        for response, want in zip(responses, oracle):
            got = response.result[0]
            assert np.array_equal(got.c0, want.c0)
            assert np.array_equal(got.c1, want.c1)

    def test_rlwe_ct_multiply_different_keysets_do_not_merge(self):
        from repro.serve.ops import RLWEMultiplyOp

        params = RLWEParams(n=64, t=17, noise_bound=4)
        scheme_a = Engine().fhe(params, rng=random.Random(31))
        keys_a = scheme_a.keygen()
        scheme_b = Engine().fhe(params, rng=random.Random(32))
        keys_b = scheme_b.keygen()
        ct_a = scheme_a.encrypt(keys_a, [1] * params.n)
        ct_b = scheme_b.encrypt(keys_b, [1] * params.n)
        with _service() as service:
            client = ServiceClient(service)
            with service.scheduler.paused():
                f_a = client.submit(
                    RLWEMultiplyOp.of(params, keys_a, [(ct_a, ct_a)]),
                    tenant="alice",
                )
                f_b = client.submit(
                    RLWEMultiplyOp.of(params, keys_b, [(ct_b, ct_b)]),
                    tenant="bob",
                )
            r_a = f_a.result(timeout=30)
            r_b = f_b.result(timeout=30)
        assert r_a.ok and r_b.ok
        assert r_a.coalesced == 1 and r_b.coalesced == 1

    def test_different_keys_do_not_merge(self):
        with _service() as service:
            client = ServiceClient(service)
            with service.scheduler.paused():
                f_small = client.submit(MultiplyOp.of([(3, 5)]))
                f_ring = client.submit(
                    RingTransformOp.of(8, [list(range(8))])
                )
            r_small = f_small.result(timeout=30)
            r_ring = f_ring.result(timeout=30)
        assert r_small.ok and r_ring.ok
        assert r_small.coalesced == 1 and r_ring.coalesced == 1

    def test_item_budget_caps_batches(self):
        with _service(max_coalesce_items=4) as service:
            client = ServiceClient(service)
            with service.scheduler.paused():
                futures = [
                    client.submit(MultiplyOp.of([(i, i + 1)]))
                    for i in range(10)
                ]
            responses = [f.result(timeout=30) for f in futures]
        assert all(r.ok for r in responses)
        assert max(r.coalesced for r in responses) <= 4


# -- priorities and fairness -----------------------------------------------


class TestPriorityAndFairness:
    def test_priority_orders_dispatch(self):
        order = []
        with _service(coalesce=False) as service:
            client = ServiceClient(service)
            with service.scheduler.paused():
                futures = {
                    prio: client.submit(
                        MultiplyOp.of([(prio + 2, 3)]), priority=prio
                    )
                    for prio in (0, 5, 1)
                }
                for prio, future in futures.items():
                    future.add_done_callback(
                        lambda _f, p=prio: order.append(p)
                    )
            for future in futures.values():
                assert future.result(timeout=30).ok
        assert order == [5, 1, 0]

    def test_hog_tenant_cannot_starve_light_tenant(self):
        """The backpressure acceptance: bounded, typed, p99 ≤ 2×.

        A hog floods tiny single-item multiplies open-loop while a
        light tenant runs a closed loop of heavier batched multiplies.
        Queue caps must hold (typed REJECTED for the overflow), and
        the light tenant's loaded p99 must stay within 2× unloaded.
        """
        config = dict(
            max_queue_per_tenant=32,
            max_queue_global=64,
            max_coalesce_requests=8,
            max_coalesce_items=8,
            weights={"light": 4.0},
        )
        rng = random.Random(7)
        pairs = [
            (rng.getrandbits(2048) | 1, rng.getrandbits(2048) | 1)
            for _ in range(8)
        ]

        def measure(client, samples, depths=None):
            latencies = []
            for _ in range(samples):
                start = time.perf_counter()
                response = client.multiply(pairs, tenant="light")
                latencies.append(time.perf_counter() - start)
                assert response.ok
                if depths is not None:
                    depths.append(client.service.scheduler.queue_depth)
            return latencies

        with _service(**config) as service:
            client = ServiceClient(service)
            measure(client, 3)  # warm plans and pools
            unloaded = measure(client, 12)

            stop = threading.Event()
            rejected = {
                REJECT_TENANT_FULL: 0,
                REJECT_GLOBAL_FULL: 0,
            }
            accepted_futures = []

            def flood():
                while not stop.is_set():
                    future = service.submit(
                        MultiplyOp.of([(3, 5)]), tenant="hog"
                    )
                    if future.done():
                        response = future.result()
                        if response.rejected:
                            rejected[response.error] += 1
                            time.sleep(0.0005)
                            continue
                    accepted_futures.append(future)

            hog = threading.Thread(target=flood, daemon=True)
            hog.start()
            depths = []
            try:
                loaded = measure(client, 12, depths)
            finally:
                stop.set()
                hog.join(timeout=30)

            # Bounded: the queue never exceeded the global cap, and the
            # overflow came back as *typed* rejections, immediately.
            assert max(depths) <= config["max_queue_global"]
            assert sum(rejected.values()) > 0
            # Isolated: the light tenant's tail is within 2x unloaded
            # (floor guards sub-25ms baselines against timer noise).
            unloaded_p99 = percentile(sorted(unloaded), 0.99)
            loaded_p99 = percentile(sorted(loaded), 0.99)
            assert loaded_p99 <= 2.0 * max(unloaded_p99, 0.025), (
                f"hog starved the light tenant: loaded p99 "
                f"{loaded_p99 * 1e3:.1f}ms vs unloaded "
                f"{unloaded_p99 * 1e3:.1f}ms"
            )
            for future in accepted_futures:
                assert future.result(timeout=60).ok


# -- backpressure ----------------------------------------------------------


class TestBackpressure:
    def test_caps_are_typed_and_bounded(self):
        with _service(
            max_queue_per_tenant=3, max_queue_global=5
        ) as service:
            client = ServiceClient(service)
            with service.scheduler.paused():
                alice = [
                    client.submit(MultiplyOp.of([(i, 2)]), tenant="a")
                    for i in range(5)
                ]
                bob = [
                    client.submit(MultiplyOp.of([(i, 3)]), tenant="b")
                    for i in range(4)
                ]
                # Tenant cap: alice's 4th/5th rejected immediately.
                tenant_rejects = [
                    f.result() for f in alice[3:] if f.done()
                ]
                assert len(tenant_rejects) == 2
                assert {r.status for r in tenant_rejects} == {
                    STATUS_REJECTED
                }
                assert {r.error for r in tenant_rejects} == {
                    REJECT_TENANT_FULL
                }
                # Global cap: 3 + 2 fills it; bob's later submits get
                # the *global* rejection.
                global_rejects = [
                    f.result() for f in bob[2:] if f.done()
                ]
                assert len(global_rejects) == 2
                assert {r.error for r in global_rejects} == {
                    REJECT_GLOBAL_FULL
                }
                assert service.scheduler.queue_depth == 5
            # Resume: everything admitted completes normally.
            for future in alice[:3] + bob[:2]:
                assert future.result(timeout=30).ok
            snapshot = service.stats()
            assert snapshot["totals"]["rejected"] == 4
            assert snapshot["tenants"]["a"]["rejected"] == 2

    def test_submit_after_shutdown_rejected(self):
        service = _service()
        client = ServiceClient(service)
        assert client.multiply([(2, 3)]).ok
        service.shutdown()
        response = client.multiply([(5, 7)])
        assert response.status == STATUS_REJECTED
        assert response.error == REJECT_SHUTDOWN


# -- faults and deadlines --------------------------------------------------


class TestFaultsAndDeadlines:
    def test_worker_kill_propagates_fault_events(self):
        service = ComputeService(
            ExecutionConfig(workers=2),
            backend="software-mp",
            config=ServiceConfig(),
        )
        try:
            client = ServiceClient(service)
            pairs = [(3 << 64, 5), (7, 11 << 32)]
            truth = [a * b for a, b in pairs]
            # Warm the pool so the kill hits an established worker.
            assert client.multiply(pairs).result == truth
            with faultinject.inject("worker-kill:0"):
                response = client.multiply(pairs)
            assert response.ok and response.result == truth
            assert any(
                "worker-crash" in event
                for event in response.fault_events
            ), response.fault_events
        finally:
            service.shutdown()

    def test_queued_request_times_out_typed(self):
        with _service() as service:
            client = ServiceClient(service)
            with service.scheduler.paused():
                future = client.submit(
                    MultiplyOp.of([(3, 5)]), timeout=0.05
                )
                time.sleep(0.15)
            response = future.result(timeout=30)
        assert response.status == STATUS_TIMEOUT
        assert response.error_type == JobTimeoutError.__name__


# -- drain and shutdown ----------------------------------------------------


class _SleepJob:
    kind = "sleep"

    def __init__(self, seconds):
        self.seconds = seconds

    def run(self, engine):
        time.sleep(self.seconds)
        return "slept"


class TestDrainAndShutdown:
    def test_drain_waits_and_returns_dead_letters(self):
        with JobScheduler(Engine()) as jobs:
            handles = [
                jobs.submit(MultiplyJob.of(i, i + 1)) for i in range(4)
            ]
            dead = jobs.drain(timeout=30)
            assert dead == []
            assert all(h.done() for h in handles)
            # The scheduler is still usable after draining.
            assert jobs.submit(MultiplyJob.of(6, 7)).result() == [42]

    def test_drain_timeout_raises(self):
        with JobScheduler(Engine()) as jobs:
            handle = jobs.submit(_SleepJob(0.5))
            with pytest.raises(JobTimeoutError):
                jobs.drain(timeout=0.05)
            assert handle.result(timeout=30) == "slept"

    def test_shutdown_with_in_flight_jobs_is_clean(self):
        service = _service()
        client = ServiceClient(service)
        futures = [
            client.submit(MultiplyOp.of([(i + 2, i + 5)]))
            for i in range(8)
        ]
        dead = service.shutdown(drain=True, timeout=60)
        assert dead == []
        for i, future in enumerate(futures):
            response = future.result(timeout=1)
            assert response.ok
            assert response.result == [(i + 2) * (i + 5)]

    def test_shutdown_without_drain_rejects_queued(self):
        service = _service()
        client = ServiceClient(service)
        with service.scheduler.paused():
            futures = [
                client.submit(MultiplyOp.of([(i, 2)])) for i in range(4)
            ]
            service.shutdown(drain=False, timeout=30)
        statuses = {f.result(timeout=5).status for f in futures}
        assert statuses <= {STATUS_REJECTED, STATUS_OK}
        assert STATUS_REJECTED in statuses


# -- TCP front end (asyncio) -----------------------------------------------


class TestTCPService:
    def test_concurrent_multi_tenant_clients(self):
        service = _service()

        async def scenario():
            server = await ServiceServer(service, port=0).start()

            async def tenant_load(name, count):
                async with await AsyncServiceClient.connect(
                    port=server.port, tenant=name
                ) as client:
                    responses = await asyncio.gather(
                        *(
                            client.submit(
                                "multiply",
                                {"pairs": [[i + 2, i + 3]]},
                            )
                            for i in range(count)
                        )
                    )
                    return responses

            loads = await asyncio.gather(
                tenant_load("alice", 6),
                tenant_load("bob", 6),
                tenant_load("carol", 6),
            )
            async with await AsyncServiceClient.connect(
                port=server.port
            ) as client:
                snapshot = await client.stats()
            server.request_stop()
            await server.serve_until_done()
            return loads, snapshot

        try:
            loads, snapshot = asyncio.run(scenario())
        finally:
            service.shutdown()
        for responses in loads:
            assert all(r.ok for r in responses)
            for i, response in enumerate(responses):
                assert response.result == [(i + 2) * (i + 3)]
        assert set(snapshot["tenants"]) >= {"alice", "bob", "carol"}
        assert snapshot["totals"]["completed"] == 18

    def test_tcp_rlwe_multiply_roundtrip(self):
        """Wire-level smoke: keygen → encrypt → submit rlwe-multiply
        over TCP → decode → decrypt equals the schoolbook product."""
        from repro.fhe.rlwe import (
            RLWE,
            RLWECiphertext,
            default_rns_primes,
        )
        from repro.field.vector import to_field_matrix

        params = RLWEParams(
            n=64,
            t=17,
            noise_bound=4,
            rns_primes=default_rns_primes(64, 17, 2),
        )
        scheme = RLWE(params, rng=random.Random(47))
        keys = scheme.keygen()
        rng = random.Random(48)
        m1 = [rng.randrange(params.t) for _ in range(params.n)]
        m2 = [rng.randrange(params.t) for _ in range(params.n)]
        c1, c2 = scheme.encrypt_many(keys, [m1, m2])

        def encode(ct):
            return [
                [[int(v) for v in row] for row in ct.c0],
                [[int(v) for v in row] for row in ct.c1],
            ]

        payload = {
            "n": params.n,
            "t": params.t,
            "noise_bound": params.noise_bound,
            "rns_primes": list(params.rns_primes),
            "relin": keys.relin.to_payload(),
            "pairs": [[encode(c1), encode(c2)]],
        }
        service = _service()

        async def scenario():
            server = await ServiceServer(service, port=0).start()
            async with await AsyncServiceClient.connect(
                port=server.port, tenant="tcp-rlwe"
            ) as client:
                response = await client.submit("rlwe-multiply", payload)
            server.request_stop()
            await server.serve_until_done()
            return response

        try:
            response = asyncio.run(scenario())
        finally:
            service.shutdown()
        assert response.ok
        (raw_c0, raw_c1), = response.result
        product = RLWECiphertext(
            c0=to_field_matrix(raw_c0),
            c1=to_field_matrix(raw_c1),
            params=params,
            level=2,
        )
        truth = [0] * params.n
        for i in range(params.n):
            for j in range(params.n):
                k = i + j
                if k < params.n:
                    truth[k] += m1[i] * m2[j]
                else:
                    truth[k - params.n] -= m1[i] * m2[j]
        truth = [x % params.t for x in truth]
        assert scheme.decrypt(keys, product) == truth

    def test_tcp_bad_payload_is_typed_error(self):
        service = _service()

        async def scenario():
            server = await ServiceServer(service, port=0).start()
            async with await AsyncServiceClient.connect(
                port=server.port
            ) as client:
                response = await client.submit(
                    "multiply", {"pairs": "nope"}
                )
            server.request_stop()
            await server.serve_until_done()
            return response

        try:
            response = asyncio.run(scenario())
        finally:
            service.shutdown()
        assert response.status == "error"
        assert response.error_type == "ProtocolError"
