"""Tests for carry recovery (repro.ssa.carry)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ssa.carry import carry_recover, carry_recover_blocked
from repro.ssa.encode import recompose

coeff_lists = st.lists(
    st.integers(min_value=0, max_value=(1 << 63) - 1), min_size=1, max_size=40
)


class TestCarryRecover:
    def test_no_carries(self):
        assert carry_recover([1, 2, 3], 24) == [1, 2, 3]

    def test_single_carry(self):
        assert carry_recover([1 << 24, 0], 24) == [0, 1]

    def test_carry_chain_ripples(self):
        m = 24
        top = (1 << m) - 1
        digits = carry_recover([top + 1, top, top], m)
        assert digits == [0, 0, 0, 1]

    def test_carry_out_extends(self):
        digits = carry_recover([1 << 60], 24)
        assert recompose(digits, 24) == 1 << 60
        assert len(digits) > 1

    def test_digits_in_range(self):
        digits = carry_recover([(1 << 63) - 1] * 10, 24)
        assert all(0 <= d < (1 << 24) for d in digits)

    @settings(max_examples=60)
    @given(coeffs=coeff_lists)
    def test_value_preserved(self, coeffs):
        """Normalization never changes the represented integer."""
        value = sum(c << (24 * i) for i, c in enumerate(coeffs))
        digits = carry_recover(coeffs, 24)
        assert recompose(digits, 24) == value

    def test_empty(self):
        assert carry_recover([], 24) == []


class TestBlockedVariant:
    @settings(max_examples=40)
    @given(coeffs=coeff_lists, block=st.sampled_from([1, 4, 8, 64]))
    def test_matches_plain(self, coeffs, block):
        """The hardware-style blocked adder is value-identical."""
        plain = carry_recover(coeffs, 24)
        blocked = carry_recover_blocked(coeffs, 24, block_size=block)
        # Allow differing trailing-zero padding only.
        while len(blocked) > len(plain):
            assert blocked.pop() == 0
        while len(plain) > len(blocked):
            assert plain.pop() == 0
        assert plain == blocked

    def test_block_boundary_carry(self):
        """A carry produced at a block edge crosses into the next."""
        m = 24
        coeffs = [(1 << m) - 1] * 8 + [1]
        blocked = carry_recover_blocked(coeffs, m, block_size=8)
        value = sum(c << (m * i) for i, c in enumerate(coeffs))
        assert recompose(blocked, m) == value
