"""Tests for negacyclic convolution (repro.ntt.negacyclic)."""

import numpy as np
import pytest

from repro.field.solinas import P
from repro.field.vector import from_field_array, to_field_array
from repro.ntt.negacyclic import negacyclic_convolution
from repro.ntt.plan import plan_for_size


def direct_negacyclic(a, b):
    n = len(a)
    out = [0] * n
    for i in range(n):
        for j in range(n):
            k = i + j
            if k < n:
                out[k] = (out[k] + a[i] * b[j]) % P
            else:
                out[k - n] = (out[k - n] - a[i] * b[j]) % P
    return out


@pytest.mark.parametrize("n", [2, 4, 16, 64, 128])
def test_matches_direct(n, rng):
    a = [rng.randrange(1 << 20) for _ in range(n)]
    b = [rng.randrange(1 << 20) for _ in range(n)]
    got = negacyclic_convolution(to_field_array(a), to_field_array(b))
    assert from_field_array(got) == direct_negacyclic(a, b)


def test_x_to_the_n_is_minus_one(rng):
    """Multiplying by x^(n-1) then x once more must negate + rotate."""
    n = 16
    a = [rng.randrange(P) for _ in range(n)]
    x1 = [0] * n
    x1[1] = 1
    rotated = from_field_array(
        negacyclic_convolution(to_field_array(a), to_field_array(x1))
    )
    # x·a: coefficient k of the product is a[k-1], with a[n-1] wrapping
    # to position 0 negated.
    expected = [(P - a[n - 1]) % P] + a[: n - 1]
    assert rotated == expected


def test_identity(rng):
    n = 64
    a = [rng.randrange(P) for _ in range(n)]
    one = [1] + [0] * (n - 1)
    got = negacyclic_convolution(to_field_array(a), to_field_array(one))
    assert from_field_array(got) == a


def test_commutative(rng):
    n = 32
    a = to_field_array([rng.randrange(P) for _ in range(n)])
    b = to_field_array([rng.randrange(P) for _ in range(n)])
    assert np.array_equal(
        negacyclic_convolution(a, b), negacyclic_convolution(b, a)
    )


def test_differs_from_cyclic(rng):
    """Wrap-around terms get the −1 sign: for generic inputs the
    negacyclic and cyclic products differ."""
    from repro.ntt.convolution import cyclic_convolution

    n = 16
    a = to_field_array([rng.randrange(2, P) for _ in range(n)])
    b = to_field_array([rng.randrange(2, P) for _ in range(n)])
    nega = negacyclic_convolution(a, b)
    cyc = cyclic_convolution(a, b)
    assert not np.array_equal(nega, cyc)


def test_explicit_plan(rng):
    n = 256
    plan = plan_for_size(n, (16, 16))
    a = [rng.randrange(1 << 16) for _ in range(n)]
    b = [rng.randrange(1 << 16) for _ in range(n)]
    got = negacyclic_convolution(
        to_field_array(a), to_field_array(b), plan=plan
    )
    assert from_field_array(got) == direct_negacyclic(a, b)


def test_bad_inputs():
    with pytest.raises(ValueError):
        negacyclic_convolution(to_field_array([1, 2]), to_field_array([1]))
    with pytest.raises(ValueError):
        negacyclic_convolution(
            to_field_array([1, 2, 3]), to_field_array([1, 2, 3])
        )
