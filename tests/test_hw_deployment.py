"""Tests for the deployment models (Stratix vs Cyclone prototype)."""

import pytest

from repro.hw.deployment import (
    CYCLONE_MULTI_BOARD,
    STRATIX_ON_CHIP,
    DeploymentSpec,
    evaluate_deployment,
)
from repro.hw.device import CYCLONE_V_PROTOTYPE


class TestStratixOnChip:
    def test_matches_paper_numbers(self):
        report = evaluate_deployment(STRATIX_ON_CHIP)
        assert report.fft_time_us == pytest.approx(30.72)
        assert report.multiplication_time_us(65536) == pytest.approx(
            122.88
        )

    def test_fits(self):
        report = evaluate_deployment(STRATIX_ON_CHIP)
        assert report.fits
        assert report.fit_notes == ()

    def test_exchange_fully_hidden(self):
        report = evaluate_deployment(STRATIX_ON_CHIP)
        assert all(s.exposed_cycles == 0 for s in report.stages)

    def test_single_device(self):
        assert STRATIX_ON_CHIP.devices_needed == 1


class TestCyclonePrototype:
    def test_needs_four_boards(self):
        assert CYCLONE_MULTI_BOARD.devices_needed == 4

    def test_pe_fits_one_cyclone(self):
        report = evaluate_deployment(CYCLONE_MULTI_BOARD)
        assert report.fits, report.fit_notes

    def test_offchip_links_expose_communication(self):
        """The quantitative reason the paper moved to a big device:
        board-to-board links cannot hide the redistribution."""
        report = evaluate_deployment(CYCLONE_MULTI_BOARD)
        exposed = sum(s.exposed_cycles for s in report.stages)
        assert exposed > 0

    def test_slower_than_final_design(self):
        proto = evaluate_deployment(CYCLONE_MULTI_BOARD)
        final = evaluate_deployment(STRATIX_ON_CHIP)
        assert proto.fft_time_us > 3 * final.fft_time_us


class TestCustomSpecs:
    def test_two_pes_per_cyclone_overflows(self):
        """Two PEs worth of DSP/memory exceed one Cyclone V."""
        spec = DeploymentSpec(
            name="overpacked",
            device=CYCLONE_V_PROTOTYPE,
            pes=4,
            pes_per_device=2,
            clock_ns=10.0,
            link_words_per_cycle=1,
            dot_product_multipliers=8,
        )
        report = evaluate_deployment(spec)
        assert not report.fits
        assert report.fit_notes

    def test_faster_links_reduce_exposure(self):
        slow = evaluate_deployment(CYCLONE_MULTI_BOARD)
        fast_spec = DeploymentSpec(
            name="fast-links",
            device=CYCLONE_V_PROTOTYPE,
            pes=4,
            pes_per_device=1,
            clock_ns=10.0,
            link_words_per_cycle=8,
            dot_product_multipliers=8,
        )
        fast = evaluate_deployment(fast_spec)
        assert fast.fft_cycles < slow.fft_cycles

    def test_single_pe_no_exchange(self):
        spec = DeploymentSpec(
            name="solo",
            device=CYCLONE_V_PROTOTYPE,
            pes=1,
            pes_per_device=1,
            clock_ns=10.0,
            link_words_per_cycle=1,
            dot_product_multipliers=8,
        )
        report = evaluate_deployment(spec)
        assert all(s.exchange_cycles == 0 for s in report.stages)

    def test_render(self):
        text = evaluate_deployment(CYCLONE_MULTI_BOARD).render()
        assert "EXPOSED" in text and "Cyclone" in text
