"""Tests for the general Cooley–Tukey decomposition (paper Eq. 1)."""

import pytest

from repro.field.solinas import P
from repro.ntt.cooley_tukey import intt_cooley_tukey, ntt_cooley_tukey
from repro.ntt.radix2 import ntt_radix2
from repro.ntt.reference import dft_reference


@pytest.mark.parametrize("n", [2, 4, 8, 16, 64, 128])
def test_default_split_matches_reference(n, rng):
    x = [rng.randrange(P) for _ in range(n)]
    assert ntt_cooley_tukey(x) == dft_reference(x)


@pytest.mark.parametrize(
    "n,radices",
    [
        (16, [4, 4]),
        (64, [8, 8]),
        (64, [16, 4]),
        (256, [16, 16]),
        (512, [64, 8]),
        (1024, [64, 16]),
        (1024, [16, 64]),
        (4096, [64, 64]),
    ],
)
def test_explicit_radices(n, radices, rng):
    """Any factorization computes the same transform (Eq. 1 validity)."""
    x = [rng.randrange(P) for _ in range(n)]
    assert ntt_cooley_tukey(x, radices=radices) == ntt_radix2(x)


def test_three_stage_paper_shape(rng):
    """The Eq. 2 shape at reduced size: radices 64·64·16 over 64K is
    checked in the staged executor; here 16·8·8 = 1024 scalar."""
    x = [rng.randrange(P) for _ in range(1024)]
    got = ntt_cooley_tukey(x, radices=[16, 8, 8])
    assert got == ntt_radix2(x)


@pytest.mark.parametrize("n,radices", [(64, [8, 8]), (256, [16, 16])])
def test_inverse_roundtrip(n, radices, rng):
    x = [rng.randrange(P) for _ in range(n)]
    spectrum = ntt_cooley_tukey(x, radices=radices)
    assert intt_cooley_tukey(spectrum, radices=radices) == x


def test_bad_radices_rejected(rng):
    x = [rng.randrange(P) for _ in range(16)]
    with pytest.raises(ValueError):
        ntt_cooley_tukey(x, radices=[3, 5])


def test_rejects_non_power_of_two():
    with pytest.raises(ValueError):
        ntt_cooley_tukey([1, 2, 3])
