"""Permutation-free (decimated) plan pairs: DIF forward / DIT inverse
equivalence against the natural-order ``loop`` oracle across radix
mixes, shapes, fused plans and compute backends."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Engine, ExecutionConfig
from repro.field.solinas import P
from repro.ntt.convolution import cyclic_convolution_many
from repro.ntt.kernels import KERNEL_LIMB_MATMUL, KERNEL_LOOP
from repro.ntt.negacyclic import (
    negacyclic_convolution_broadcast,
    negacyclic_convolution_many,
)
from repro.ntt.order import reorder_to_decimated, reorder_to_natural
from repro.ntt.plan import (
    ORDER_DECIMATED,
    ORDER_NATURAL,
    TWIST_NEGACYCLIC,
    decimated_companion,
    plan_for_size,
)
from repro.ntt.staged import execute_plan_batch, execute_plan_inverse_batch
from repro.ssa.multiplier import SSAMultiplier

#: Radix mixes covering single-stage, uneven multi-stage, the
#: deliberately odd (2, 4, 8) mix and a deep uniform (4, 4, 4, 4).
SHAPES = [
    (8, (8,)),
    (16, (4, 4)),
    (64, (2, 4, 8)),
    (128, (16, 8)),
    (256, (4, 4, 4, 4)),
    (1024, (64, 16)),
]

KERNELS = [KERNEL_LOOP, KERNEL_LIMB_MATMUL]


def _rows(rng, batch, n):
    return rng.integers(0, P, size=(batch, n), dtype=np.uint64)


def _natural(n, radices):
    return plan_for_size(n, radices, kernel=KERNEL_LOOP)


class TestDecimatedPlanConstruction:
    def test_cache_returns_companion_identity(self):
        natural = plan_for_size(64, (8, 8))
        decimated = plan_for_size(64, (8, 8), ordering=ORDER_DECIMATED)
        assert decimated is decimated_companion(natural)
        assert decimated is plan_for_size(
            64, (8, 8), ordering=ORDER_DECIMATED
        )
        assert decimated is not natural

    def test_orderings_and_linkage(self):
        natural = plan_for_size(64, (8, 8))
        decimated = decimated_companion(natural)
        assert natural.ordering == ORDER_NATURAL
        assert decimated.ordering == ORDER_DECIMATED
        assert decimated.base_plan is natural
        assert decimated.inverse_plan.ordering == ORDER_DECIMATED
        assert decimated.inverse_plan.dit
        assert not decimated.dit

    def test_decimated_of_decimated_is_itself(self):
        decimated = plan_for_size(64, (8, 8), ordering=ORDER_DECIMATED)
        assert decimated_companion(decimated) is decimated

    def test_dit_inverse_reverses_radices(self):
        decimated = plan_for_size(
            1024, (64, 16), ordering=ORDER_DECIMATED
        )
        assert decimated.radices == (64, 16)
        assert decimated.inverse_plan.radices == (16, 64)

    def test_invalid_ordering_rejected(self):
        with pytest.raises(ValueError):
            plan_for_size(64, (8, 8), ordering="bitrev")

    def test_forward_shares_natural_stage_constants(self):
        natural = plan_for_size(256, (16, 16))
        decimated = decimated_companion(natural)
        assert decimated.stages is natural.stages


class TestForwardSpectrumPermutation:
    @pytest.mark.parametrize("n,radices", SHAPES)
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_decimated_forward_is_permuted_natural(
        self, n, radices, kernel
    ):
        rng = np.random.default_rng(n)
        rows = _rows(rng, 3, n)
        natural = plan_for_size(n, radices, kernel=kernel)
        decimated = decimated_companion(natural)
        dec = execute_plan_batch(rows, decimated)
        nat = execute_plan_batch(rows, natural)
        assert np.array_equal(dec[:, decimated.output_permutation], nat)
        assert np.array_equal(reorder_to_natural(dec, decimated), nat)

    @pytest.mark.parametrize("n,radices", SHAPES)
    def test_dit_inverse_roundtrip(self, n, radices):
        rng = np.random.default_rng(2 * n + 1)
        rows = _rows(rng, 4, n)
        decimated = plan_for_size(n, radices, ordering=ORDER_DECIMATED)
        spectra = execute_plan_batch(rows, decimated)
        assert np.array_equal(
            execute_plan_inverse_batch(spectra, decimated), rows
        )

    def test_input_rows_not_mutated(self):
        rng = np.random.default_rng(7)
        rows = _rows(rng, 2, 64)
        keep = rows.copy()
        decimated = plan_for_size(64, (8, 8), ordering=ORDER_DECIMATED)
        execute_plan_batch(rows, decimated)
        assert np.array_equal(rows, keep)
        spectra = execute_plan_batch(rows, decimated)
        keep_s = spectra.copy()
        execute_plan_inverse_batch(spectra, decimated)
        assert np.array_equal(spectra, keep_s)


class TestReorderHelpers:
    def test_roundtrip(self):
        rng = np.random.default_rng(11)
        decimated = plan_for_size(256, (16, 16), ordering=ORDER_DECIMATED)
        rows = _rows(rng, 5, 256)
        assert np.array_equal(
            reorder_to_decimated(
                reorder_to_natural(rows, decimated), decimated
            ),
            rows,
        )
        flat = rows[0]
        assert np.array_equal(
            reorder_to_natural(
                reorder_to_decimated(flat, decimated), decimated
            ),
            flat,
        )

    def test_natural_plan_rejected(self):
        natural = plan_for_size(64, (8, 8))
        rows = np.zeros((2, 64), dtype=np.uint64)
        with pytest.raises(ValueError, match="decimated"):
            reorder_to_natural(rows, natural)
        with pytest.raises(ValueError, match="decimated"):
            reorder_to_decimated(rows, natural)

    def test_wrong_length_rejected(self):
        decimated = plan_for_size(64, (8, 8), ordering=ORDER_DECIMATED)
        with pytest.raises(ValueError, match="last axis"):
            reorder_to_natural(np.zeros(32, dtype=np.uint64), decimated)

    def test_natural_spectra_fed_through_dit_inverse(self):
        rng = np.random.default_rng(13)
        rows = _rows(rng, 3, 128)
        natural = plan_for_size(128, (16, 8))
        decimated = decimated_companion(natural)
        nat_spectra = execute_plan_batch(rows, natural)
        assert np.array_equal(
            execute_plan_inverse_batch(
                reorder_to_decimated(nat_spectra, decimated), decimated
            ),
            rows,
        )


class TestConvolutionEquivalence:
    @pytest.mark.parametrize("n,radices", SHAPES)
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_cyclic_many(self, n, radices, kernel):
        rng = np.random.default_rng(3 * n)
        a, b = _rows(rng, 3, n), _rows(rng, 3, n)
        oracle = cyclic_convolution_many(a, b, _natural(n, radices))
        decimated = plan_for_size(
            n, radices, kernel=kernel, ordering=ORDER_DECIMATED
        )
        assert np.array_equal(
            cyclic_convolution_many(a, b, decimated), oracle
        )

    @pytest.mark.parametrize("n,radices", SHAPES)
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_fused_negacyclic_many(self, n, radices, kernel):
        rng = np.random.default_rng(5 * n)
        a, b = _rows(rng, 3, n), _rows(rng, 3, n)
        oracle = negacyclic_convolution_many(a, b, _natural(n, radices))
        fused = plan_for_size(
            n,
            radices,
            kernel=kernel,
            twist=TWIST_NEGACYCLIC,
            ordering=ORDER_DECIMATED,
        )
        assert np.array_equal(
            negacyclic_convolution_many(a, b, fused), oracle
        )

    def test_negacyclic_broadcast(self):
        rng = np.random.default_rng(17)
        n = 256
        rows, fixed = _rows(rng, 6, n), _rows(rng, 1, n)[0]
        oracle = negacyclic_convolution_broadcast(
            rows, fixed, _natural(n, (16, 16))
        )
        assert np.array_equal(
            negacyclic_convolution_broadcast(rows, fixed), oracle
        )

    def test_default_plans_are_decimated(self):
        rng = np.random.default_rng(19)
        n = 64
        a, b = _rows(rng, 2, n), _rows(rng, 2, n)
        # plan=None resolves to the decimated pair; the result still
        # matches the explicit natural oracle bit for bit.
        assert np.array_equal(
            cyclic_convolution_many(a, b),
            cyclic_convolution_many(a, b, _natural(n, (8, 8))),
        )

    @given(data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_hypothesis_equivalence(self, data):
        n, radices = data.draw(st.sampled_from(SHAPES))
        kernel = data.draw(st.sampled_from(KERNELS))
        negacyclic = data.draw(st.booleans())
        batch = data.draw(st.integers(min_value=1, max_value=3))
        elems = st.integers(min_value=0, max_value=P - 1)
        a = np.array(
            data.draw(
                st.lists(
                    st.lists(elems, min_size=n, max_size=n),
                    min_size=batch,
                    max_size=batch,
                )
            ),
            dtype=np.uint64,
        )
        b = np.array(
            data.draw(
                st.lists(
                    st.lists(elems, min_size=n, max_size=n),
                    min_size=batch,
                    max_size=batch,
                )
            ),
            dtype=np.uint64,
        )
        conv = (
            negacyclic_convolution_many
            if negacyclic
            else cyclic_convolution_many
        )
        decimated = plan_for_size(
            n,
            radices,
            kernel=kernel,
            twist=TWIST_NEGACYCLIC if negacyclic else "",
            ordering=ORDER_DECIMATED,
        )
        assert np.array_equal(
            conv(a, b, decimated), conv(a, b, _natural(n, radices))
        )


class TestSSAMultiplierOrdering:
    def test_default_is_decimated(self):
        mul = SSAMultiplier.for_bits(2048)
        assert mul.convolution_plan.ordering == ORDER_DECIMATED
        assert mul.convolution_plan.base_plan is mul.plan
        assert mul.plan.ordering == ORDER_NATURAL

    def test_orderings_agree_with_ints(self):
        import random

        rng = random.Random(23)
        pairs = [
            (rng.getrandbits(4096), rng.getrandbits(4096))
            for _ in range(3)
        ]
        truth = [a * b for a, b in pairs]
        decimated = SSAMultiplier.for_bits(4096)
        natural = SSAMultiplier.for_bits(4096, ordering=ORDER_NATURAL)
        assert natural.convolution_plan.ordering == ORDER_NATURAL
        assert decimated.multiply_many(pairs) == truth
        assert natural.multiply_many(pairs) == truth
        a, b = pairs[0]
        assert decimated.multiply(a, b) == natural.multiply(a, b) == a * b

    def test_forward_transform_stays_natural(self):
        mul = SSAMultiplier.for_bits(2048)
        nat = SSAMultiplier.for_bits(2048, ordering=ORDER_NATURAL)
        assert np.array_equal(
            mul.forward_transform(12345), nat.forward_transform(12345)
        )


class TestBackendIdentity:
    def test_engine_plan_ordering_keying(self):
        engine = Engine()
        natural = engine.plan(256)
        decimated = engine.plan(256, ordering=ORDER_DECIMATED)
        assert decimated is decimated_companion(natural)
        assert engine.plan(256, ordering=ORDER_DECIMATED) is decimated

    def test_ring_convolution_plans(self):
        ring = Engine().ring(256)
        assert ring.plan.ordering == ORDER_NATURAL
        assert ring.convolution_plan.ordering == ORDER_DECIMATED
        nega = ring.negacyclic_convolution_plan
        assert nega.ordering == ORDER_DECIMATED
        assert nega.twist == TWIST_NEGACYCLIC

    @pytest.mark.parametrize("negacyclic", [False, True])
    def test_software_vs_hw_model_rings(self, negacyclic):
        rng = np.random.default_rng(29)
        n = 128
        a, b = _rows(rng, 3, n), _rows(rng, 3, n)
        conv = (
            negacyclic_convolution_many
            if negacyclic
            else cyclic_convolution_many
        )
        oracle = conv(a, b, _natural(n, (16, 8)))
        for backend, config in (
            ("software", None),
            ("hw-model", ExecutionConfig(fidelity="fast")),
            ("hw-model", ExecutionConfig(fidelity="datapath")),
        ):
            engine = (
                Engine(config=config, backend=backend)
                if config
                else Engine(backend=backend)
            )
            got = engine.ring(n).convolve(a, b, negacyclic=negacyclic)
            assert np.array_equal(got, oracle), (backend, config)

    def test_software_mp_shared_memory_transfers(self):
        rng = np.random.default_rng(31)
        n, batch = 2048, 32
        a, b = _rows(rng, batch, n), _rows(rng, batch, n)
        software = Engine()
        mp_engine = Engine(
            config=ExecutionConfig(workers=2), backend="software-mp"
        )
        try:
            # convolve concatenates both operands: (64, 2048) rows of
            # uint64 = 1 MiB, exactly the shared-memory threshold.
            assert (
                2 * batch * n * 8 >= mp_engine.backend.min_shm_bytes
            )
            assert np.array_equal(
                mp_engine.ring(n).convolve(a, b),
                software.ring(n).convolve(a, b),
            )
            assert np.array_equal(
                mp_engine.ring(n).convolve(a, b, negacyclic=True),
                software.ring(n).convolve(a, b, negacyclic=True),
            )
        finally:
            mp_engine.close()

    def test_software_mp_small_batches_below_threshold(self):
        rng = np.random.default_rng(37)
        n = 128
        a, b = _rows(rng, 4, n), _rows(rng, 4, n)
        software = Engine()
        mp_engine = Engine(
            config=ExecutionConfig(workers=2), backend="software-mp"
        )
        try:
            assert np.array_equal(
                mp_engine.ring(n).convolve(a, b),
                software.ring(n).convolve(a, b),
            )
        finally:
            mp_engine.close()

    def test_hw_model_explicit_spectra_stay_natural(self):
        rng = np.random.default_rng(41)
        n = 128
        rows = _rows(rng, 2, n)
        hw = Engine(backend="hw-model").ring(n)
        sw = Engine().ring(n)
        assert np.array_equal(hw.forward(rows), sw.forward(rows))
        assert np.array_equal(hw.inverse(rows), sw.inverse(rows))
