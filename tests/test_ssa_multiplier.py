"""Tests for the SSA multiplier (repro.ssa.multiplier)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ssa.encode import SSAParameters
from repro.ssa.multiplier import SSAMultiplier, ssa_multiply


class TestForBits:
    def test_sizes_power_of_two(self):
        mul = SSAMultiplier.for_bits(4096)
        assert mul.params.operand_coefficients == 256
        assert mul.params.transform_size == 512

    def test_capacity_is_sufficient(self):
        for bits in (1, 24, 25, 1000, 4096, 100_000):
            mul = SSAMultiplier.for_bits(bits)
            assert mul.params.operand_bits >= bits


class TestCorrectness:
    @pytest.mark.parametrize(
        "a,b",
        [
            (0, 0),
            (0, 123456789),
            (1, 1),
            (2**24 - 1, 2**24 - 1),
            (2**24, 2**24),
            (2**1000 - 1, 2**1000 - 1),
            (3, 2**2000 + 1),
        ],
    )
    def test_known_products(self, a, b):
        assert ssa_multiply(a, b) == a * b

    @settings(max_examples=30, deadline=None)
    @given(
        a=st.integers(min_value=0, max_value=(1 << 3000) - 1),
        b=st.integers(min_value=0, max_value=(1 << 3000) - 1),
    )
    def test_random_products(self, a, b):
        assert ssa_multiply(a, b) == a * b

    @settings(max_examples=20, deadline=None)
    @given(a=st.integers(min_value=0, max_value=(1 << 2048) - 1))
    def test_square(self, a):
        mul = SSAMultiplier.for_bits(2048)
        assert mul.square(a) == a * a

    def test_reusable_context(self, rng):
        """One multiplier instance handles many products (plan reuse)."""
        mul = SSAMultiplier.for_bits(2048)
        for _ in range(5):
            a, b = rng.getrandbits(2048), rng.getrandbits(2048)
            assert mul.multiply(a, b) == a * b

    def test_commutative(self, rng):
        mul = SSAMultiplier.for_bits(1024)
        a, b = rng.getrandbits(1024), rng.getrandbits(1024)
        assert mul.multiply(a, b) == mul.multiply(b, a)

    def test_explicit_radices(self, rng):
        params = SSAParameters(coefficient_bits=24, operand_coefficients=512)
        for radices in [(64, 16), (16, 64), (32, 32), (4, 16, 16)]:
            mul = SSAMultiplier(params=params, radices=radices)
            a, b = rng.getrandbits(12000), rng.getrandbits(12000)
            assert mul.multiply(a, b) == a * b


class TestPaperScale:
    def test_full_786432_bit_multiply(self, rng):
        """The headline workload: two 786,432-bit operands through the
        64K-point radix-64/64/16 pipeline."""
        mul = SSAMultiplier()
        a = rng.getrandbits(786_432)
        b = rng.getrandbits(786_432)
        assert mul.multiply(a, b) == a * b

    def test_plan_is_paper_plan(self):
        mul = SSAMultiplier()
        assert mul.plan.radices == (64, 64, 16)
        assert mul.plan.n == 65536
