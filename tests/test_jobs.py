"""Tests for the jobs layer (ISSUE 4): ``repro.jobs`` and ``software-mp``.

Covers futures-style submission (submit/map/as_completed, ordering,
exception propagation, shutdown), the job types over every workload of
the stack (SSA, ring, DGHV, RLWE), and the sharded ``software-mp``
backend's bit-identity with ``software`` over mixed batch shapes.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    Engine,
    ExecutionConfig,
    available_backends,
)
from repro.engine.backends import SoftwareMPBackend
from repro.field.solinas import P
from repro.fhe.params import TOY
from repro.fhe.rlwe import RLWE, RLWEParams
from repro.jobs import (
    ConvolveJob,
    DGHVMultJob,
    JobScheduler,
    MultiplyJob,
    RingTransformJob,
    RLWEMultiplyPlainJob,
    as_completed,
)
from repro.ssa.multiplier import split_batch


@pytest.fixture(scope="module")
def mp_engine():
    """One software-mp engine for the whole module (pool reuse)."""
    engine = Engine(
        config=ExecutionConfig(workers=2), backend="software-mp"
    )
    yield engine
    engine.close()


def _pairs(rng, count, bits=512):
    return [
        (rng.getrandbits(bits), rng.getrandbits(bits))
        for _ in range(count)
    ]


class TestSplitBatch:
    def test_balanced_contiguous(self):
        slices = split_batch(7, 3)
        assert slices == [slice(0, 3), slice(3, 5), slice(5, 7)]

    def test_never_empty_never_more_than_count(self):
        for count in range(0, 9):
            for shards in range(1, 6):
                slices = split_batch(count, shards)
                assert len(slices) == min(count, shards)
                items = [i for s in slices for i in range(s.start, s.stop)]
                assert items == list(range(count))

    def test_validation(self):
        with pytest.raises(ValueError):
            split_batch(-1, 2)
        with pytest.raises(ValueError):
            split_batch(4, 0)


class TestSubmit:
    def test_submit_returns_immediately_resolves_correctly(self):
        with JobScheduler(Engine()) as jobs:
            handle = jobs.submit(MultiplyJob.of(6, 7))
            assert handle.result() == [42]
            assert handle.done()
            assert handle.exception() is None
            assert handle.report is None  # software backend: no timing

    def test_submission_order_is_execution_order(self):
        order = []

        class Probe:
            kind = "probe"

            def __init__(self, tag):
                self.tag = tag

            def run(self, engine):
                order.append(self.tag)
                return self.tag

        with JobScheduler(Engine()) as jobs:
            handles = [jobs.submit(Probe(i)) for i in range(8)]
            assert [h.result() for h in handles] == list(range(8))
        assert order == list(range(8))

    def test_exception_propagates(self):
        class Boom:
            kind = "boom"

            def run(self, engine):
                raise RuntimeError("kaput")

        with JobScheduler(Engine()) as jobs:
            handle = jobs.submit(Boom())
            with pytest.raises(RuntimeError, match="kaput"):
                handle.result()
            assert isinstance(handle.exception(), RuntimeError)
            # The queue survives a failing job.
            assert jobs.submit(MultiplyJob.of(2, 3)).result() == [6]

    def test_non_job_rejected(self):
        with JobScheduler(Engine()) as jobs:
            with pytest.raises(TypeError, match="run"):
                jobs.submit(object())

    def test_hw_model_jobs_carry_reports(self):
        with JobScheduler(Engine(backend="hw-model")) as jobs:
            handle = jobs.submit(MultiplyJob.batched([(3, 5), (7, 11)]))
            assert handle.result() == [15, 77]
            assert isinstance(handle.report, list)
            assert all(r.total_cycles > 0 for r in handle.report)


class TestSchedulerLifecycle:
    def test_construct_from_config(self):
        scheduler = JobScheduler(ExecutionConfig(kernel="loop"))
        try:
            assert scheduler.engine.config.kernel == "loop"
            assert scheduler.submit(MultiplyJob.of(4, 5)).result() == [20]
        finally:
            scheduler.shutdown()

    def test_construct_from_none_with_backend(self):
        scheduler = JobScheduler(backend="hw-model")
        try:
            assert scheduler.engine.backend.name == "hw-model"
        finally:
            scheduler.shutdown()

    def test_backend_kwarg_conflicts_with_engine(self):
        with pytest.raises(ValueError, match="backend"):
            JobScheduler(Engine(), backend="hw-model")

    def test_bad_source_type(self):
        with pytest.raises(TypeError):
            JobScheduler(42)

    def test_shutdown_drains_then_rejects(self):
        jobs = JobScheduler(Engine())
        handle = jobs.submit(MultiplyJob.of(9, 9))
        jobs.shutdown(wait=True)
        assert handle.result() == [81]
        assert not jobs.active
        with pytest.raises(RuntimeError, match="shut down"):
            jobs.submit(MultiplyJob.of(1, 1))
        jobs.shutdown()  # idempotent

    def test_engine_scheduler_is_lazy_and_rebuilt_after_close(self):
        engine = Engine()
        assert engine._scheduler is None
        first = engine.scheduler()
        assert engine.scheduler() is first
        assert engine.submit(MultiplyJob.of(2, 2)).result() == [4]
        engine.close()
        assert engine._scheduler is None
        # close() is idempotent and the engine recovers lazily
        engine.close()
        assert engine.map("multiply", [(2, 3)]) == [6]
        engine.close()

    def test_engine_context_manager(self):
        with Engine() as engine:
            assert engine.submit(MultiplyJob.of(3, 3)).result() == [9]

    def test_shutdown_closes_privately_built_engine(self):
        scheduler = JobScheduler(
            ExecutionConfig(workers=2), backend="software-mp"
        )
        pairs = _pairs(random.Random(51), 4, bits=256)
        assert scheduler.submit(MultiplyJob.batched(pairs)).result() == [
            a * b for a, b in pairs
        ]
        assert scheduler.engine.backend._pool is not None
        scheduler.shutdown()
        assert scheduler.engine.backend._pool is None

    def test_shutdown_leaves_caller_owned_engine_open(self):
        engine = Engine(
            config=ExecutionConfig(workers=2), backend="software-mp"
        )
        try:
            pairs = _pairs(random.Random(53), 4, bits=256)
            left = [a for a, _ in pairs]
            right = [b for _, b in pairs]
            with JobScheduler(engine) as jobs:
                jobs.submit(MultiplyJob.batched(pairs)).result()
            # The scheduler must not tear down an engine it was handed.
            assert engine.backend._pool is not None
            assert engine.multiply(left, right) == [
                a * b for a, b in pairs
            ]
        finally:
            engine.close()

    def test_shutdown_nowait_closes_owned_engine_after_drain(self):
        import time

        scheduler = JobScheduler(
            ExecutionConfig(workers=2), backend="software-mp"
        )
        pairs = _pairs(random.Random(57), 4, bits=256)
        handle = scheduler.submit(MultiplyJob.batched(pairs))
        scheduler.shutdown(wait=False)  # must not block on the queue
        assert handle.result() == [a * b for a, b in pairs]
        deadline = time.monotonic() + 30
        while (
            scheduler.engine.backend._pool is not None
            and time.monotonic() < deadline
        ):
            time.sleep(0.02)
        assert scheduler.engine.backend._pool is None

    def test_failed_job_does_not_inherit_previous_report(self):
        class Boom:
            kind = "boom"

            def run(self, engine):
                raise RuntimeError("no backend call made")

        with JobScheduler(Engine(backend="hw-model")) as jobs:
            good = jobs.submit(MultiplyJob.of(3, 5))
            assert good.result() == [15]
            assert good.report is not None
            bad = jobs.submit(Boom())
            with pytest.raises(RuntimeError):
                bad.result()
            assert bad.report is None  # not the previous job's report

    def test_reports_are_per_thread(self):
        """A job's report never clobbers the caller's last_report."""
        engine = Engine(backend="hw-model")
        engine.multiply(3, 5)
        own_report = engine.last_report
        assert own_report is not None
        with JobScheduler(engine) as jobs:
            handle = jobs.submit(MultiplyJob.batched([(7, 11), (13, 17)]))
            assert handle.result() == [77, 221]
        assert isinstance(handle.report, list)  # the job's own reports
        assert len(handle.report) == 2
        # ...while this thread still sees its own single-product report.
        assert engine.last_report is own_report


class TestMap:
    def test_map_ordered_and_flattened(self):
        rng = random.Random(1)
        pairs = _pairs(rng, 10)
        truth = [a * b for a, b in pairs]
        with JobScheduler(Engine()) as jobs:
            assert jobs.map("multiply", pairs, chunk=3) == truth
            assert jobs.map("multiply", pairs, chunk=100) == truth
            assert jobs.map("multiply", []) == []

    def test_map_chunk_validation_and_unknown_op(self):
        with JobScheduler(Engine()) as jobs:
            with pytest.raises(ValueError, match="chunk"):
                jobs.map("multiply", [(1, 2)], chunk=0)
            with pytest.raises(ValueError, match="unknown map op"):
                jobs.map("warp", [(1, 2)])

    def test_map_with_callable_factory(self):
        pairs = [(2, 3), (4, 5), (6, 7)]
        with JobScheduler(Engine()) as jobs:
            got = jobs.map(
                lambda chunk: MultiplyJob.batched(chunk), pairs, chunk=2
            )
        assert got == [6, 20, 42]

    def test_map_callable_receives_kwargs(self):
        """Extra kwargs reach a callable op (never silently dropped)."""
        rng = np.random.default_rng(7)
        rows = rng.integers(0, P, size=(4, 64), dtype=np.uint64)
        engine = Engine()
        oracle = engine.ring(64).negacyclic_forward(rows)
        with JobScheduler(engine) as jobs:
            got = jobs.map(
                lambda chunk, negacyclic: RingTransformJob(
                    n=64, values=np.vstack(chunk), negacyclic=negacyclic
                ),
                list(rows),
                chunk=2,
                negacyclic=True,
            )
            assert np.array_equal(got, oracle)
            # a callable that accepts no kwargs raises instead of
            # silently ignoring the caller's parameters
            with pytest.raises(TypeError):
                jobs.map(
                    lambda chunk: MultiplyJob.batched(chunk),
                    [(1, 2)],
                    x0=99,
                )

    def test_map_ring_rows_restacked(self):
        rng = np.random.default_rng(5)
        rows = rng.integers(0, P, size=(6, 64), dtype=np.uint64)
        engine = Engine()
        oracle = engine.ring(64).forward(rows)
        with JobScheduler(engine) as jobs:
            got = jobs.map("ring-forward", list(rows), chunk=2, n=64)
            assert isinstance(got, np.ndarray)
            assert np.array_equal(got, oracle)
            back = jobs.map("ring-inverse", list(got), chunk=4, n=64)
            assert np.array_equal(back, rows)

    def test_as_completed_yields_every_handle(self):
        pairs = _pairs(random.Random(2), 6, bits=128)
        with JobScheduler(Engine()) as jobs:
            handles = jobs.submit_map("multiply", pairs, chunk=2)
            seen = {h.job_id for h in as_completed(handles)}
        assert seen == {h.job_id for h in handles}
        assert [h.result() for h in handles] == [
            [a * b for a, b in pairs[i : i + 2]]
            for i in range(0, len(pairs), 2)
        ]

    def test_default_chunk_covers_items(self):
        with JobScheduler(Engine()) as jobs:
            assert jobs.default_chunk(10) >= 1
            pairs = _pairs(random.Random(3), 5, bits=64)
            assert jobs.map("multiply", pairs) == [a * b for a, b in pairs]


class TestFHEJobs:
    def test_dghv_layer_through_queue(self):
        engine = Engine()
        scheme = engine.fhe(TOY, rng=random.Random(11))
        keys = scheme.generate_keys()
        plain = [(0, 0), (0, 1), (1, 0), (1, 1)]
        pairs = [
            (scheme.encrypt(keys, a), scheme.encrypt(keys, b))
            for a, b in plain
        ]
        with JobScheduler(engine) as jobs:
            handle = jobs.submit(
                DGHVMultJob(pairs=tuple(pairs), x0=keys.x0)
            )
            ands = handle.result()
            mapped = jobs.map("dghv-mult", pairs, chunk=2, x0=keys.x0)
        assert [scheme.decrypt(keys, c) for c in ands] == [0, 0, 0, 1]
        assert [scheme.decrypt(keys, c) for c in mapped] == [0, 0, 0, 1]

    def test_rlwe_multiply_plain_job_matches_scheme(self):
        params = RLWEParams(n=64, t=64, noise_bound=4)
        engine = Engine()
        scheme = engine.fhe(params, rng=random.Random(13))
        secret = scheme.generate_secret()
        rng = random.Random(17)
        messages = [
            [rng.randrange(params.t) for _ in range(params.n)]
            for _ in range(3)
        ]
        plains = [
            [rng.randrange(params.t) for _ in range(params.n)]
            for _ in range(3)
        ]
        cts = [scheme.encrypt(secret, m) for m in messages]
        oracle = scheme.multiply_plain_many(cts, plains)
        with JobScheduler(engine) as jobs:
            got = jobs.submit(
                RLWEMultiplyPlainJob(
                    params=params,
                    ciphertexts=tuple(cts),
                    plains=tuple(tuple(p) for p in plains),
                )
            ).result()
        for got_ct, want_ct in zip(got, oracle):
            assert np.array_equal(got_ct.c0, want_ct.c0)
            assert np.array_equal(got_ct.c1, want_ct.c1)

    def test_convolve_job_matches_ring(self):
        rng = np.random.default_rng(19)
        a = rng.integers(0, P, size=(3, 64), dtype=np.uint64)
        b = rng.integers(0, P, size=(3, 64), dtype=np.uint64)
        engine = Engine()
        oracle = engine.ring(64).convolve(a, b, negacyclic=True)
        with JobScheduler(engine) as jobs:
            got = jobs.submit(
                ConvolveJob(n=64, a=a, b=b, negacyclic=True)
            ).result()
        assert np.array_equal(got, oracle)

    def test_ring_transform_job_negacyclic_roundtrip(self):
        rng = np.random.default_rng(23)
        rows = rng.integers(0, P, size=(2, 64), dtype=np.uint64)
        with JobScheduler(Engine()) as jobs:
            spec = jobs.submit(
                RingTransformJob(n=64, values=rows, negacyclic=True)
            ).result()
            back = jobs.submit(
                RingTransformJob(
                    n=64, values=spec, inverse=True, negacyclic=True
                )
            ).result()
        assert np.array_equal(back, rows)


class TestSoftwareMP:
    def test_registered(self):
        assert "software-mp" in available_backends()

    def test_small_batches_run_inline(self, mp_engine):
        # Below the shard floor no pool is spun up.
        assert mp_engine.multiply(3, 5) == 15
        assert mp_engine.multiply([2], [9]) == [18]

    def test_multiply_bit_identical(self, mp_engine):
        rng = random.Random(29)
        pairs = _pairs(rng, 7, bits=2048)
        left = [a for a, _ in pairs]
        right = [b for _, b in pairs]
        truth = [a * b for a, b in pairs]
        assert mp_engine.multiply(left, right) == truth
        assert Engine().multiply(left, right) == truth

    def test_transform_bit_identical(self, mp_engine):
        rng = np.random.default_rng(31)
        rows = rng.integers(0, P, size=(5, 256), dtype=np.uint64)
        soft = Engine().ring(256)
        spectra = mp_engine.ring(256).forward(rows)
        assert np.array_equal(spectra, soft.forward(rows))
        assert np.array_equal(mp_engine.ring(256).inverse(spectra), rows)

    def test_workers_resolution(self, mp_engine):
        assert mp_engine.backend.workers(mp_engine) == 2
        override = SoftwareMPBackend(workers=3)
        assert override.workers(mp_engine) == 3

    def test_pool_is_persistent_and_closable(self, mp_engine):
        pairs = _pairs(random.Random(37), 4, bits=256)
        left = [a for a, _ in pairs]
        right = [b for _, b in pairs]
        mp_engine.multiply(left, right)
        pool = mp_engine.backend._pool
        assert pool is not None
        mp_engine.multiply(left, right)
        assert mp_engine.backend._pool is pool  # same pool reused
        mp_engine.backend.close()
        assert mp_engine.backend._pool is None
        # and it comes back lazily
        assert mp_engine.multiply(left, right) == [
            a * b for a, b in pairs
        ]

    def test_scheduler_map_over_mp_engine(self, mp_engine):
        pairs = _pairs(random.Random(41), 6, bits=1024)
        truth = [a * b for a, b in pairs]
        assert mp_engine.map("multiply", pairs, chunk=3) == truth

    def test_workers_config_validation(self):
        with pytest.raises(ValueError, match="workers"):
            ExecutionConfig(workers=0)

    def test_batch_chunk_honored_in_workers(self):
        """The peak-working-set bound applies inside mp shards too."""
        rng = random.Random(43)
        pairs = _pairs(rng, 9, bits=512)
        left = [a for a, _ in pairs]
        right = [b for _, b in pairs]
        engine = Engine(
            config=ExecutionConfig(workers=2, batch_chunk=2),
            backend="software-mp",
        )
        try:
            assert engine.multiply(left, right) == [
                a * b for a, b in pairs
            ]
        finally:
            engine.close()

    @settings(deadline=None, max_examples=8)
    @given(
        bits=st.sampled_from([64, 256, 1024]),
        batch=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_hypothesis_equivalence_mixed_shapes(
        self, mp_engine, bits, batch, seed
    ):
        rng = random.Random(seed)
        pairs = _pairs(rng, batch, bits=bits)
        left = [a for a, _ in pairs]
        right = [b for _, b in pairs]
        truth = [a * b for a, b in pairs]
        assert mp_engine.multiply(left, right) == truth
        assert Engine().multiply(left, right) == truth
        n = 64
        rows = np.array(
            [[rng.randrange(P) for _ in range(n)] for _ in range(batch)],
            dtype=np.uint64,
        )
        assert np.array_equal(
            mp_engine.ring(n).forward(rows),
            Engine().ring(n).forward(rows),
        )
