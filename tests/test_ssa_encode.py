"""Tests for SSA operand encoding (repro.ssa.encode)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.field.solinas import P
from repro.ssa.encode import (
    PAPER_PARAMETERS,
    SSAParameters,
    decompose,
    decompose_many,
    recompose,
    recompose_many,
)


class TestParameters:
    def test_paper_operating_point(self):
        """Section III: 786,432-bit operands, 32K × 24-bit, 64K points."""
        assert PAPER_PARAMETERS.coefficient_bits == 24
        assert PAPER_PARAMETERS.operand_coefficients == 32768
        assert PAPER_PARAMETERS.operand_bits == 786_432
        assert PAPER_PARAMETERS.transform_size == 65_536

    def test_paper_no_overflow(self):
        """Convolution terms stay below p — SSA exactness condition."""
        PAPER_PARAMETERS.validate()
        assert PAPER_PARAMETERS.max_convolution_term < P

    def test_overflowing_parameters_rejected(self):
        bad = SSAParameters(coefficient_bits=32, operand_coefficients=32768)
        with pytest.raises(ValueError):
            bad.validate()

    def test_non_power_of_two_rejected(self):
        bad = SSAParameters(coefficient_bits=24, operand_coefficients=100)
        with pytest.raises(ValueError):
            bad.validate()


SMALL = SSAParameters(coefficient_bits=24, operand_coefficients=64)


class TestDecompose:
    def test_zero(self):
        coeffs = decompose(0, SMALL)
        assert coeffs.shape == (128,)
        assert not coeffs.any()

    def test_small_value(self):
        coeffs = decompose(5, SMALL)
        assert int(coeffs[0]) == 5
        assert not coeffs[1:].any()

    def test_coefficient_extraction(self):
        value = (7 << 48) | (3 << 24) | 1
        coeffs = decompose(value, SMALL)
        assert [int(c) for c in coeffs[:4]] == [1, 3, 7, 0]

    def test_top_half_zero_padding(self, rng):
        value = rng.getrandbits(SMALL.operand_bits)
        coeffs = decompose(value, SMALL)
        assert not coeffs[SMALL.operand_coefficients :].any()

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            decompose(-1, SMALL)

    def test_rejects_oversized(self):
        with pytest.raises(ValueError):
            decompose(1 << SMALL.operand_bits, SMALL)

    def test_max_value_accepted(self):
        value = (1 << SMALL.operand_bits) - 1
        coeffs = decompose(value, SMALL)
        assert all(
            int(c) == (1 << 24) - 1
            for c in coeffs[: SMALL.operand_coefficients]
        )

    def test_non_byte_aligned_width(self):
        params = SSAParameters(coefficient_bits=10, operand_coefficients=8)
        value = 0b1111111111_0000000001  # two 10-bit digits
        coeffs = decompose(value, params)
        assert int(coeffs[0]) == 1
        assert int(coeffs[1]) == 1023


class TestRecompose:
    @settings(max_examples=50)
    @given(value=st.integers(min_value=0, max_value=(1 << 1536) - 1))
    def test_roundtrip(self, value):
        coeffs = decompose(value, SMALL)
        assert recompose(coeffs, SMALL.coefficient_bits) == value

    def test_wide_coefficients(self):
        """Pre-carry convolution outputs recompose correctly too."""
        coeffs = [1 << 40, 1 << 40]
        want = (1 << 40) + (1 << 64)
        assert recompose(coeffs, 24) == want

    def test_rejects_negative_coefficient(self):
        with pytest.raises(ValueError):
            recompose([1, -2], 24)

    def test_empty(self):
        assert recompose([], 24) == 0

    def test_byte_fast_path_equals_generic(self, rng):
        coeffs = [rng.randrange(1 << 24) for _ in range(50)]
        fast = recompose(coeffs, 24)
        slow = sum(c << (24 * i) for i, c in enumerate(coeffs))
        assert fast == slow

    def test_ndarray_input_equals_list_input(self, rng):
        coeffs = [rng.randrange(1 << 24) for _ in range(50)]
        arr = np.array(coeffs, dtype=np.uint64)
        assert recompose(arr, 24) == recompose(coeffs, 24)


class TestRecomposeMany:
    def test_fast_path_matches_per_row(self, rng):
        rows = np.array(
            [[rng.randrange(1 << 24) for _ in range(20)] for _ in range(5)],
            dtype=np.uint64,
        )
        want = [recompose(row, 24) for row in rows]
        assert recompose_many(rows, 24) == want

    def test_slow_path_wide_digits(self, rng):
        """Digits above 2**m force the generic path; it must agree with
        per-row recompose without any per-element int() round-trip."""
        rows = np.array(
            [[rng.randrange(1 << 40) for _ in range(12)] for _ in range(4)],
            dtype=np.uint64,
        )
        want = [
            sum(int(c) << (24 * i) for i, c in enumerate(row))
            for row in rows
        ]
        assert recompose_many(rows, 24) == want

    def test_slow_path_non_byte_aligned(self, rng):
        rows = np.array(
            [[rng.randrange(1 << 10) for _ in range(8)] for _ in range(3)],
            dtype=np.uint64,
        )
        want = [
            sum(int(c) << (10 * i) for i, c in enumerate(row))
            for row in rows
        ]
        assert recompose_many(rows, 10) == want

    def test_roundtrip_against_decompose_many(self, rng):
        params = SSAParameters(coefficient_bits=24, operand_coefficients=64)
        values = [rng.getrandbits(params.operand_bits) for _ in range(6)]
        digits = decompose_many(values, params)
        assert recompose_many(digits, 24) == values

    def test_empty(self):
        assert recompose_many(np.zeros((0, 4), dtype=np.uint64), 24) == []
