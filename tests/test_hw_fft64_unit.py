"""Tests for the optimized FFT-64 unit (functional, cycles, cost)."""

import pytest

from repro.field.solinas import P
from repro.hw.fft64_unit import FFT64Config, FFT64Unit, POINTS_PER_CYCLE
from repro.ntt.radix64 import SHIFT_RADICES, ntt_shift_radix
from repro.ntt.reference import dft_reference


class TestFunctional:
    @pytest.mark.parametrize("radix", SHIFT_RADICES)
    def test_matches_reference(self, radix, rng):
        unit = FFT64Unit()
        x = [rng.randrange(P) for _ in range(radix)]
        assert unit.transform(x, radix) == dft_reference(x)

    def test_all_config_variants_bit_exact(self, rng):
        """Every ablation config computes identical values — the flags
        trade cost, never correctness."""
        x = [rng.randrange(P) for _ in range(64)]
        want = ntt_shift_radix(x, 64)
        for shared in (True, False):
            for halved in (True, False):
                for reduced in (True, False):
                    config = FFT64Config(
                        shared_first_stage=shared,
                        halved_chains=halved,
                        reduced_twiddle_shifts=reduced,
                    )
                    assert FFT64Unit(config=config).transform(x) == want

    @pytest.mark.parametrize("radix", (8, 16, 32))
    def test_small_radix_shared_datapath(self, radix, rng):
        """Radix-8/16/32 run through the same two-stage structure
        (Section IV-b's 'minor modifications'), bit-exact vs the
        direct chains."""
        unit = FFT64Unit()
        for _ in range(3):
            x = [rng.randrange(P) for _ in range(radix)]
            assert unit.transform(list(x), radix) == ntt_shift_radix(
                list(x), radix
            )

    def test_radix16_block_twiddle_degenerates_to_sign(self):
        """ω16^8 = 2^96 = −1: the second block accumulates with the
        subtract flag only."""
        from repro.hw.shifter_bank import signed_shift

        shift, negate = signed_shift(8 * (192 // 16))
        assert shift == 0 and negate

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            FFT64Unit().transform([1, 2, 3], 64)

    def test_unsupported_radix_rejected(self):
        with pytest.raises(ValueError):
            FFT64Unit().transform([1, 2, 3, 4], 4)


class TestTiming:
    def test_initiation_intervals(self):
        """Section V: an FFT-64 every 8 cycles, an FFT-16 every 2."""
        assert FFT64Unit.initiation_interval(64) == 8
        assert FFT64Unit.initiation_interval(16) == 2
        assert FFT64Unit.initiation_interval(32) == 4
        assert FFT64Unit.initiation_interval(8) == 1

    def test_throughput_is_eight_points_per_cycle(self):
        for radix in SHIFT_RADICES:
            interval = FFT64Unit.initiation_interval(radix)
            assert radix / interval == POINTS_PER_CYCLE

    def test_busy_ledger(self, rng):
        unit = FFT64Unit()
        x64 = [rng.randrange(P) for _ in range(64)]
        x16 = [rng.randrange(P) for _ in range(16)]
        unit.transform(x64)
        unit.transform(x64)
        unit.transform(x16, 16)
        assert unit.busy_cycles == 8 + 8 + 2
        assert unit.transforms == 3
        assert unit.radix_counts == {64: 2, 16: 1}


class TestCost:
    def test_proposed_cheaper_than_baseline(self):
        proposed = FFT64Unit(config=FFT64Config.proposed()).resources()
        baseline = FFT64Unit(config=FFT64Config.baseline()).resources()
        assert proposed.alms < baseline.alms
        assert proposed.registers < baseline.registers

    def test_each_optimization_saves_alms(self):
        """Toggling any single flag off from the proposed config must
        not reduce cost — each optimization pays for itself."""
        base = FFT64Unit(config=FFT64Config.proposed()).resources().alms
        for flag in (
            "shared_first_stage",
            "halved_chains",
            "reduced_twiddle_shifts",
            "merged_carry_save",
            "shared_reductors",
            "input_normalize",
        ):
            config = FFT64Config(**{flag: False})
            cost = FFT64Unit(config=config).resources().alms
            assert cost >= base, f"disabling {flag} got cheaper"

    def test_shared_reductors_save_most_of_reduction(self):
        shared = FFT64Unit(
            config=FFT64Config(shared_reductors=True)
        ).resources()
        private = FFT64Unit(
            config=FFT64Config(shared_reductors=False)
        ).resources()
        assert private.alms > shared.alms

    def test_no_dsp_in_unit(self):
        """The unit is shift-and-add only; DSPs live in the modmuls."""
        assert FFT64Unit().resources().dsp_blocks == 0
