"""Tests for the Table I / Table II generators — the shape checks."""

import pytest

from repro.analysis.tables import (
    PAPER_HARDWARE_SAVING,
    PAPER_MIN_SPEEDUP_OTHERS,
    PAPER_SPEEDUP_VS_28,
)
from repro.hw.reports import (
    PAPER_TABLE1,
    baseline_fft_census,
    proposed_fft_census,
    table1_report,
    table2_report,
)


class TestTable1:
    def test_dsp_counts_exact(self):
        """DSP blocks are a hard census: 4 PE × 8 modmul × 8 DSP = 256
        vs the baseline's published 720."""
        t1 = table1_report()
        assert t1.row("proposed").dsp_blocks == 256
        assert t1.row("baseline[28]").dsp_blocks == 720

    def test_m20k_bits_exact(self):
        """8 Mbit = 64K points × 64 bits × double buffering."""
        t1 = table1_report()
        assert t1.row("proposed").m20k_bits == 8 * 1024 * 1024

    def test_alms_within_15pct_of_paper(self):
        t1 = table1_report()
        for design in ("proposed", "baseline[28]"):
            computed = t1.row(design).alms
            printed = PAPER_TABLE1[design]["alms"]
            assert computed == pytest.approx(printed, rel=0.15)

    def test_registers_within_25pct_of_paper(self):
        t1 = table1_report()
        for design in ("proposed", "baseline[28]"):
            computed = t1.row(design).registers
            printed = PAPER_TABLE1[design]["registers"]
            assert computed == pytest.approx(printed, rel=0.25)

    def test_hardware_saving_around_60pct(self):
        """Section V: 'around 60% saving in hardware costs'."""
        t1 = table1_report()
        assert 0.45 <= t1.saving("alms") <= 0.70
        assert 0.45 <= t1.saving("registers") <= 0.70
        assert t1.saving("dsp_blocks") == pytest.approx(1 - 256 / 720)

    def test_fits_on_device(self):
        """Both designs must fit the 5SGSMD8 (the paper synthesized
        them), with the proposed far below full."""
        t1 = table1_report()
        dev = t1.device
        assert t1.row("proposed").alms < 0.5 * dev.alms
        assert t1.row("baseline[28]").alms < dev.alms

    def test_render_mentions_everything(self):
        text = table1_report().render()
        for token in ("proposed", "baseline[28]", "paper", "ALMs", "saving"):
            assert token in text


class TestCensusDetails:
    def test_proposed_census_entries(self):
        report = proposed_fft_census()
        names = [name for name, _ in report.entries]
        assert any("fft64" in n for n in names)
        assert any("banked_memory" in n for n in names)
        assert any("hypercube" in n for n in names)

    def test_census_scales_with_pes(self):
        two = proposed_fft_census(pes=2).total
        four = proposed_fft_census(pes=4).total
        assert four.dsp_blocks == 2 * two.dsp_blocks

    def test_baseline_census_has_pipeline_regs(self):
        report = baseline_fft_census()
        names = [name for name, _ in report.entries]
        assert any("pipeline" in n for n in names)


class TestTable2:
    def test_proposed_wins_everywhere(self):
        t2 = table2_report()
        ours = t2.row("proposed").mult_us
        for row in t2.rows[1:]:
            if row.mult_us is not None:
                assert ours < row.mult_us

    def test_speedup_vs_28(self):
        t2 = table2_report()
        assert t2.speedup_vs("wang_huang_fpga[28]") == pytest.approx(
            PAPER_SPEEDUP_VS_28, rel=0.05
        )

    def test_published_speedups_preserved(self):
        """'the other results are 1.69X larger, or more'."""
        t2 = table2_report()
        ours = t2.row("proposed").mult_us
        others = [
            "wang_vlsi_asic[30] (published)",
            "wang_gpu[26] (published)",
            "wang_gpu[27] (published)",
        ]
        for name in others:
            # 1% slack: the paper computes 206/122 ≈ 1.69 with its
            # rounded 122 µs where our model gives 122.88.
            ratio = t2.row(name).mult_us / ours
            assert ratio >= PAPER_MIN_SPEEDUP_OTHERS * 0.99

    def test_fft_speedup_vs_28(self):
        """Paper Table II: 30.7 µs vs 125 µs ≈ 4×."""
        t2 = table2_report()
        ratio = (
            t2.row("wang_huang_fpga[28]").fft_us / t2.row("proposed").fft_us
        )
        assert ratio == pytest.approx(4.0, rel=0.05)

    def test_render(self):
        text = table2_report().render()
        assert "TABLE II" in text and "speedup" in text
