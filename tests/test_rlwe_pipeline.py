"""The full RLWE homomorphic pipeline, checked against schoolbook truth.

Acceptance invariants of the ciphertext×ciphertext pipeline:

- tensor + relinearization decrypts to the schoolbook negacyclic
  product of the plaintexts (hypothesis-driven, single-modulus and
  RNS);
- BGV modulus switching preserves the plaintext and restores relative
  noise budget, enabling depth ≥ 2;
- the RNS channel arithmetic is the CRT image of single-modulus
  arithmetic over ``Z_q`` (big-int cross-check);
- the pipeline is bit-identical across ``software``, ``software-mp``
  and ``hw-model`` backends, with hw-model reporting cycle counts for
  the RLWE ring products;
- both `engine.fhe` bindings satisfy the :class:`HEScheme` protocol;
- ``RLWEParams`` has frozen-hash/pickle parity with
  ``ExecutionConfig``.
"""

import math
import pickle
import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import Engine, ExecutionConfig
from repro.fhe.dghv import DGHV
from repro.fhe.ops import HEScheme
from repro.fhe.params import TOY
from repro.fhe.rlwe import (
    RLWE,
    RLWECiphertext,
    RLWEKeyPair,
    RLWEParams,
    RelinKeys,
    default_rns_primes,
    _is_prime,
)
from repro.field.solinas import P


def school_negacyclic(a, b, modulus):
    """Schoolbook product in ``Z_modulus[x]/(x^n + 1)`` (exact ints)."""
    n = len(a)
    out = [0] * n
    for i in range(n):
        for j in range(n):
            k = i + j
            if k < n:
                out[k] += a[i] * b[j]
            else:
                out[k - n] -= a[i] * b[j]
    return [x % modulus for x in out]


def random_message(rng, params):
    return [rng.randrange(params.t) for _ in range(params.n)]


SINGLE = RLWEParams(n=32, t=17, noise_bound=4)
RNS = RLWEParams(
    n=32, t=17, noise_bound=4, rns_primes=default_rns_primes(32, 17, 3)
)


# -- hypothesis round trips -------------------------------------------------


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_multiply_relinearize_matches_schoolbook_single(seed):
    rng = random.Random(seed)
    scheme = RLWE(SINGLE, rng=random.Random(seed ^ 0x5EED))
    keys = scheme.keygen()
    m1 = random_message(rng, SINGLE)
    m2 = random_message(rng, SINGLE)
    c1, c2 = scheme.encrypt_many(keys, [m1, m2])
    truth = school_negacyclic(m1, m2, SINGLE.t)
    tensored = scheme.tensor(c1, c2)
    assert tensored.degree == 3
    assert scheme.decrypt(keys, tensored) == truth
    relinearized = scheme.relinearize(keys, tensored)
    assert relinearized.degree == 2
    assert scheme.decrypt(keys, relinearized) == truth
    # multiply == tensor ∘ relinearize, and only needs the evaluation
    # keys (never the secret).
    assert scheme.decrypt(keys, scheme.multiply(keys.relin, c1, c2)) == truth


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_multiply_and_mod_switch_match_schoolbook_rns(seed):
    rng = random.Random(seed)
    scheme = RLWE(RNS, rng=random.Random(seed ^ 0xC4A7))
    keys = scheme.keygen()
    m1 = random_message(rng, RNS)
    m2 = random_message(rng, RNS)
    c1, c2 = scheme.encrypt_many(keys, [m1, m2])
    truth = school_negacyclic(m1, m2, RNS.t)
    product = scheme.multiply(keys, c1, c2)
    assert scheme.decrypt(keys, product) == truth
    switched = scheme.mod_switch(product)
    assert switched.level == product.level - 1
    assert scheme.decrypt(keys, switched) == truth


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_mod_switch_preserves_fresh_plaintexts(seed):
    rng = random.Random(seed)
    scheme = RLWE(RNS, rng=random.Random(seed + 7))
    keys = scheme.keygen()
    message = random_message(rng, RNS)
    ct = scheme.encrypt(keys, message)
    while ct.level > 1:
        ct = scheme.mod_switch(ct)
        assert scheme.decrypt(keys, ct) == message


# -- depth and noise management --------------------------------------------


def test_depth_two_with_modulus_switching():
    """The acceptance-criterion circuit: ((m1·m2) switched) · m3."""
    scheme = RLWE(RNS, rng=random.Random(0xDEE9))
    keys = scheme.keygen()
    rng = random.Random(21)
    m1, m2, m3 = (random_message(rng, RNS) for _ in range(3))
    c1, c2, c3 = scheme.encrypt_many(keys, [m1, m2, m3])
    level1 = scheme.mod_switch(scheme.multiply(keys, c1, c2))
    c3_level = scheme.mod_switch(c3)
    deep = scheme.multiply(keys, level1, c3_level)
    truth = school_negacyclic(
        school_negacyclic(m1, m2, RNS.t), m3, RNS.t
    )
    assert scheme.decrypt(keys, deep) == truth
    assert scheme.noise_budget(keys, deep) > 0


def test_noise_budget_shrinks_with_depth_and_recovers_relatively():
    scheme = RLWE(RNS, rng=random.Random(77))
    keys = scheme.keygen()
    rng = random.Random(78)
    c1 = scheme.encrypt(keys, random_message(rng, RNS))
    c2 = scheme.encrypt(keys, random_message(rng, RNS))
    fresh = scheme.noise_budget(keys, c1)
    product = scheme.multiply(keys, c1, c2)
    after_mult = scheme.noise_budget(keys, product)
    assert after_mult < fresh
    # Switching scales noise down by ~q_k: the *absolute* noise
    # magnitude must shrink enough that the next multiply fits.
    switched = scheme.mod_switch(product)
    q_dropped = math.log2(RNS.rns_primes[product.level - 1])
    after_switch = scheme.noise_budget(keys, switched)
    # Budget is relative to the (now smaller) modulus: it must not
    # collapse — switching costs at most a few bits of budget.
    assert after_switch > after_mult - 8
    # Noise growth of one multiplication stays within the analytic
    # relinearization bound (~ n·q_max·t·noise_bound·k plus tensor
    # growth): conservatively, budget loss under 2·log2(n·t·q_max·k).
    q_max = max(RNS.rns_primes)
    bound = 2 * math.log2(RNS.n * RNS.t * q_max * len(RNS.rns_primes))
    assert fresh - after_mult < bound


def test_multiply_at_last_level_is_rejected():
    scheme = RLWE(RNS, rng=random.Random(5))
    keys = scheme.keygen()
    rng = random.Random(6)
    ct = scheme.encrypt(keys, random_message(rng, RNS))
    while ct.level > 1:
        ct = scheme.mod_switch(ct)
    with pytest.raises(ValueError, match="no relinearization key"):
        scheme.multiply(keys, ct, ct)


def test_mod_switch_requires_rns():
    scheme = RLWE(SINGLE, rng=random.Random(7))
    keys = scheme.keygen()
    ct = scheme.encrypt(keys, [0] * SINGLE.n)
    with pytest.raises(ValueError, match="RNS"):
        scheme.mod_switch(ct)


# -- RNS ≡ single-modulus (CRT image) --------------------------------------


def _crt_lift_component(component, primes):
    """Lift ``(k, n)`` residue rows to integers mod ``q = Π primes``."""
    q = math.prod(primes)
    out = []
    for j in range(component.shape[1]):
        x = 0
        for i, prime in enumerate(primes):
            qhat = q // prime
            x += int(component[i, j]) * qhat * pow(qhat % prime, -1, prime)
        out.append(x % q)
    return out


def test_rns_channels_are_crt_image_of_single_modulus_arithmetic():
    """Decrypting via per-channel arithmetic must agree with lifting
    the ciphertext to ``Z_q`` and running schoolbook big-int ring
    arithmetic there — the CRT isomorphism, checked end to end."""
    scheme = RLWE(RNS, rng=random.Random(0x11CE))
    keys = scheme.keygen()
    rng = random.Random(91)
    m1 = random_message(rng, RNS)
    m2 = random_message(rng, RNS)
    c1, c2 = scheme.encrypt_many(keys, [m1, m2])
    product = scheme.multiply(keys, c1, c2)
    primes = RNS.rns_primes[: product.level]
    q = math.prod(primes)
    c0 = _crt_lift_component(product.c0, primes)
    c1_int = _crt_lift_component(product.c1, primes)
    secret = [int(v) for v in keys.secret]
    phase = [
        (a + b) % q
        for a, b in zip(c0, school_negacyclic(c1_int, secret, q))
    ]
    centered = [x - q if x > q // 2 else x for x in phase]
    assert [x % RNS.t for x in centered] == school_negacyclic(
        m1, m2, RNS.t
    )


# -- batched forms ----------------------------------------------------------


def test_multiply_many_bit_identical_to_loop():
    scheme = RLWE(RNS, rng=random.Random(0xBA7C4))
    keys = scheme.keygen()
    rng = random.Random(12)
    cts = scheme.encrypt_many(
        keys, [random_message(rng, RNS) for _ in range(6)]
    )
    pairs = [(cts[i], cts[i + 1]) for i in range(0, 6, 2)]
    batched = scheme.multiply_many(keys, pairs)
    for (x, y), got in zip(pairs, batched):
        want = scheme.relinearize(keys, scheme.tensor(x, y))
        assert np.array_equal(got.c0, want.c0)
        assert np.array_equal(got.c1, want.c1)
    switched = scheme.mod_switch_many(batched)
    for ct, want in zip(switched, batched):
        assert np.array_equal(
            ct.c0, scheme.mod_switch(want).c0
        )
    assert scheme.multiply_many(keys, []) == []
    assert scheme.mod_switch_many([]) == []
    assert scheme.tensor_many([]) == []
    assert scheme.relinearize_many(keys, []) == []


def test_tensor_rejects_degree_two_operands():
    scheme = RLWE(SINGLE, rng=random.Random(3))
    keys = scheme.keygen()
    ct = scheme.encrypt(keys, [1] * SINGLE.n)
    tensored = scheme.tensor(ct, ct)
    with pytest.raises(ValueError, match="degree-1"):
        scheme.tensor(tensored, ct)
    with pytest.raises(ValueError, match="degree-2"):
        scheme.relinearize(keys, ct)


# -- backend bit-identity ---------------------------------------------------


class TestBackendBitIdentity:
    PARAMS = RLWEParams(
        n=64, t=17, noise_bound=4, rns_primes=default_rns_primes(64, 17, 2)
    )

    def _pipeline(self, backend):
        engine = Engine(config=ExecutionConfig(), backend=backend)
        try:
            scheme = engine.fhe(self.PARAMS, rng=random.Random(314))
            keys = scheme.keygen()
            rng = random.Random(15)
            m1 = random_message(rng, self.PARAMS)
            m2 = random_message(rng, self.PARAMS)
            c1, c2 = scheme.encrypt_many(keys, [m1, m2])
            product = scheme.multiply(keys, c1, c2)
            switched = scheme.mod_switch(product)
            report = engine.last_report
            plain = scheme.decrypt(keys, switched)
            return (
                (product.c0, product.c1, switched.c0, switched.c1),
                plain,
                report,
                school_negacyclic(m1, m2, self.PARAMS.t),
            )
        finally:
            engine.close()

    def test_software_mp_and_hw_model_match_software(self):
        base, plain, _, truth = self._pipeline("software")
        assert plain == truth
        for backend in ("software-mp", "hw-model"):
            arrays, other_plain, _, _ = self._pipeline(backend)
            assert other_plain == plain
            for a, b in zip(base, arrays):
                assert np.array_equal(a, b), backend

    def test_hw_model_reports_rlwe_ring_product_cycles(self):
        _, _, report, _ = self._pipeline("hw-model")
        assert report is not None
        total = report.total_cycles
        if callable(total):
            total = total()
        assert total > 0


# -- engine binding ---------------------------------------------------------


def test_engine_bound_scheme_routes_ring_products_through_backend():
    engine = Engine()
    scheme = engine.fhe(
        RLWEParams(n=64, t=17, noise_bound=4), rng=random.Random(1)
    )
    assert scheme.engine is engine
    free = RLWE(
        RLWEParams(n=64, t=17, noise_bound=4), rng=random.Random(1)
    )
    keys = scheme.keygen()
    keys_free = free.keygen()
    assert np.array_equal(keys.secret, keys_free.secret)
    rng = random.Random(2)
    message = [rng.randrange(17) for _ in range(64)]
    bound_ct = scheme.multiply(
        keys, *scheme.encrypt_many(keys, [message, message])
    )
    free_ct = free.multiply(
        keys_free, *free.encrypt_many(keys_free, [message, message])
    )
    assert np.array_equal(bound_ct.c0, free_ct.c0)
    assert np.array_equal(bound_ct.c1, free_ct.c1)
    engine.close()


# -- HEScheme protocol ------------------------------------------------------


def test_both_schemes_satisfy_hescheme_protocol():
    rlwe = RLWE(SINGLE, rng=random.Random(0))
    dghv = DGHV(TOY, rng=random.Random(0))
    assert isinstance(rlwe, HEScheme)
    assert isinstance(dghv, HEScheme)
    engine = Engine()
    assert isinstance(engine.fhe(), HEScheme)
    assert isinstance(engine.fhe(SINGLE), HEScheme)
    engine.close()


def test_dghv_protocol_methods_roundtrip():
    scheme = DGHV(TOY, rng=random.Random(41))
    keys = scheme.keygen()
    bits = [1, 0, 1, 1]
    cts = scheme.encrypt_many(keys, bits)
    assert scheme.decrypt_many(keys, cts) == bits
    c_and = scheme.multiply(keys, cts[0], cts[2])
    assert scheme.decrypt(keys, c_and) == 1
    many = scheme.multiply_many(keys, [(cts[0], cts[1]), (cts[2], cts[3])])
    assert scheme.decrypt_many(keys, many) == [0, 1]
    assert scheme.noise_budget(keys, cts[0]) > 0
    assert scheme.xor_and_eval(keys, [1, 0], [1, 1]) == [0, 1, 1, 0]


# -- parameters -------------------------------------------------------------


class TestRLWEParams:
    def test_frozen_hash_and_pickle_parity(self):
        """Same contract as ``ExecutionConfig``: hashable, equal by
        value, pickle-stable (the shapes ``software-mp`` workers and
        serve coalesce keys rely on)."""
        params = RLWEParams(
            n=64, t=17, noise_bound=4, rns_primes=[379624757, 379624519]
        )
        assert isinstance(params.rns_primes, tuple)  # normalized
        twin = RLWEParams(
            n=64,
            t=17,
            noise_bound=4,
            rns_primes=(379624757, 379624519),
        )
        assert params == twin and hash(params) == hash(twin)
        restored = pickle.loads(pickle.dumps(params))
        assert restored == params and hash(restored) == hash(params)
        config = ExecutionConfig()
        assert pickle.loads(pickle.dumps(config)) == config

    def test_validate_rejects_bad_chains(self):
        with pytest.raises(ValueError, match="distinct"):
            RLWEParams(
                n=64, t=17, rns_primes=(379624757, 379624757)
            ).validate()
        with pytest.raises(ValueError, match="1 \\(mod t"):
            RLWEParams(n=64, t=17, rns_primes=(379624741,)).validate()
        with pytest.raises(ValueError, match="not prime"):
            # 18 ≡ 1 (mod 17) but is composite.
            RLWEParams(n=64, t=17, rns_primes=(35,)).validate()
        with pytest.raises(ValueError, match="too large"):
            RLWEParams(
                n=64, t=17, rns_primes=(P - 2**32 + 1,)
            ).validate()
        with pytest.raises(ValueError, match="exceed the plaintext"):
            RLWEParams(n=64, t=17, rns_primes=(2,)).validate()
        with pytest.raises(ValueError, match="relin_base"):
            RLWEParams(n=64, t=17, relin_base=0).validate()

    def test_modulus_chain_accessors(self):
        assert SINGLE.level_count == 1 and not SINGLE.is_rns
        assert SINGLE.modulus() == P
        assert RNS.level_count == 3 and RNS.is_rns
        assert RNS.modulus() == math.prod(RNS.rns_primes)
        assert RNS.modulus(1) == RNS.rns_primes[0]
        with pytest.raises(ValueError):
            RNS.modulus(4)
        # Legacy MSB scaling factor survives for API compatibility.
        assert RLWEParams(t=256).delta == P // 256


def test_default_rns_primes_structure():
    primes = default_rns_primes(64, 17, count=3)
    assert len(primes) == len(set(primes)) == 3
    for q in primes:
        assert _is_prime(q)
        assert q % 17 == 1
        assert 64 * (q - 1) ** 2 <= (P - 1) // 2
    with pytest.raises(ValueError):
        default_rns_primes(64, 17, count=0)


# -- relinearization keys ---------------------------------------------------

def test_relin_keys_payload_roundtrip_and_digest():
    scheme = RLWE(RNS, rng=random.Random(0xFACE))
    keys = scheme.keygen()
    restored = RelinKeys.from_payload(RNS, keys.relin.to_payload())
    assert restored.digest() == keys.relin.digest()
    assert sorted(restored.levels) == sorted(keys.relin.levels)
    other = RLWE(RNS, rng=random.Random(0xFACE + 1)).keygen()
    assert other.relin.digest() != keys.relin.digest()
    # Relinearizing with the restored (wire-round-tripped) keys is
    # bit-identical.
    rng = random.Random(30)
    c1, c2 = scheme.encrypt_many(
        keys, [random_message(rng, RNS), random_message(rng, RNS)]
    )
    a = scheme.multiply(keys.relin, c1, c2)
    b = scheme.multiply(restored, c1, c2)
    assert np.array_equal(a.c0, b.c0) and np.array_equal(a.c1, b.c1)
