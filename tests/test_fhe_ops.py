"""Tests for homomorphic operations and noise bookkeeping."""

import random

import pytest

from repro.fhe.dghv import DGHV, Ciphertext
from repro.fhe.ops import NoiseBudgetError, he_add, he_mult, he_xor_and_eval
from repro.fhe.params import TOY
from repro.ssa.multiplier import SSAMultiplier


@pytest.fixture
def scheme():
    return DGHV(TOY, rng=random.Random(77))


@pytest.fixture
def keys(scheme):
    return scheme.generate_keys()


class TestHomomorphicTruthTables:
    @pytest.mark.parametrize("a", [0, 1])
    @pytest.mark.parametrize("b", [0, 1])
    def test_xor(self, scheme, keys, a, b):
        ca, cb = scheme.encrypt(keys, a), scheme.encrypt(keys, b)
        assert scheme.decrypt(keys, he_add(ca, cb, x0=keys.x0)) == a ^ b

    @pytest.mark.parametrize("a", [0, 1])
    @pytest.mark.parametrize("b", [0, 1])
    def test_and(self, scheme, keys, a, b):
        ca, cb = scheme.encrypt(keys, a), scheme.encrypt(keys, b)
        got = scheme.decrypt(keys, he_mult(scheme, ca, cb, x0=keys.x0))
        assert got == (a & b)

    def test_add_without_reduction(self, scheme, keys):
        ca, cb = scheme.encrypt(keys, 1), scheme.encrypt(keys, 1)
        assert scheme.decrypt(keys, he_add(ca, cb)) == 0

    def test_operator_sugar(self, scheme, keys):
        ca, cb = scheme.encrypt(keys, 1), scheme.encrypt(keys, 0)
        assert scheme.decrypt(keys, ca + cb) == 1


class TestNoiseBookkeeping:
    def test_add_noise_grows_slowly(self, scheme, keys):
        ca, cb = scheme.encrypt(keys, 0), scheme.encrypt(keys, 1)
        out = he_add(ca, cb, x0=keys.x0)
        assert out.noise_bits <= max(ca.noise_bits, cb.noise_bits) + 1

    def test_mult_noise_sums(self, scheme, keys):
        ca, cb = scheme.encrypt(keys, 1), scheme.encrypt(keys, 1)
        out = he_mult(scheme, ca, cb, x0=keys.x0)
        assert out.noise_bits == ca.noise_bits + cb.noise_bits + 1

    def test_actual_noise_within_tracked_bound(self, scheme, keys):
        ca, cb = scheme.encrypt(keys, 1), scheme.encrypt(keys, 1)
        c = he_mult(scheme, ca, cb, x0=keys.x0)
        assert scheme.noise_of(keys, c).bit_length() <= c.noise_bits

    def test_budget_exhaustion_raises(self, scheme, keys):
        c = scheme.encrypt(keys, 1)
        with pytest.raises(NoiseBudgetError):
            for _ in range(20):
                c = he_mult(scheme, c, c, x0=keys.x0)

    def test_depth_matches_params_estimate(self, scheme, keys):
        """Squaring chains survive at least the estimated depth."""
        depth = TOY.multiplicative_depth
        c = scheme.encrypt(keys, 1)
        for _ in range(depth):
            c = he_mult(scheme, c, scheme.encrypt(keys, 1), x0=keys.x0)
        assert scheme.decrypt(keys, c) == 1

    def test_mismatched_params_rejected(self, scheme, keys):
        from repro.fhe.params import MEDIUM

        other = Ciphertext(value=1, noise_bits=1, params=MEDIUM)
        mine = scheme.encrypt(keys, 0)
        with pytest.raises(ValueError):
            he_add(mine, other)
        with pytest.raises(ValueError):
            he_mult(scheme, mine, other)


class TestCircuitEval:
    def test_xor_and_vector(self, scheme, keys, rng):
        bits_a = [rng.getrandbits(1) for _ in range(16)]
        bits_b = [rng.getrandbits(1) for _ in range(16)]
        got = he_xor_and_eval(scheme, keys, bits_a, bits_b)
        want = []
        for a, b in zip(bits_a, bits_b):
            want += [a ^ b, a & b]
        assert got == want


class TestSSABackedFHE:
    def test_ciphertext_product_via_ssa(self, rng):
        """The integration the paper is about: DGHV AND gates running
        on the SSA multiplier."""
        ssa = SSAMultiplier.for_bits(TOY.gamma + 2)
        scheme = DGHV(TOY, multiplier=ssa.multiply, rng=random.Random(3))
        keys = scheme.generate_keys()
        for a in (0, 1):
            for b in (0, 1):
                ca, cb = scheme.encrypt(keys, a), scheme.encrypt(keys, b)
                c = he_mult(scheme, ca, cb, x0=keys.x0)
                assert scheme.decrypt(keys, c) == (a & b)


class TestDeprecationShims:
    """The pre-HEScheme free functions warn but stay behavior-identical."""

    def test_he_add_warns_and_delegates(self, scheme, keys):
        ca = scheme.encrypt(keys, 1)
        cb = scheme.encrypt(keys, 1)
        with pytest.warns(DeprecationWarning, match="he_add"):
            shimmed = he_add(ca, cb, x0=keys.x0)
        direct = scheme.add(ca, cb)
        assert shimmed.value == (ca.value + cb.value) % keys.x0
        assert shimmed.noise_bits == direct.noise_bits
        assert scheme.decrypt(keys, shimmed) == 0

    def test_he_mult_warns_and_matches_protocol_method(
        self, scheme, keys
    ):
        ca = scheme.encrypt(keys, 1)
        cb = scheme.encrypt(keys, 1)
        with pytest.warns(DeprecationWarning, match="he_mult"):
            shimmed = he_mult(scheme, ca, cb, x0=keys.x0)
        direct = scheme.multiply(keys, ca, cb)
        assert shimmed.value == direct.value
        assert shimmed.noise_bits == direct.noise_bits

    def test_he_mult_many_warns_and_matches(self, scheme, keys):
        from repro.fhe.ops import he_mult_many

        pairs = [
            (scheme.encrypt(keys, 1), scheme.encrypt(keys, 1)),
            (scheme.encrypt(keys, 1), scheme.encrypt(keys, 0)),
        ]
        with pytest.warns(DeprecationWarning, match="he_mult_many"):
            shimmed = he_mult_many(scheme, pairs, x0=keys.x0)
        direct = scheme.multiply_many(keys, pairs)
        assert [c.value for c in shimmed] == [c.value for c in direct]

    def test_he_xor_and_eval_warns(self, scheme, keys):
        with pytest.warns(DeprecationWarning, match="he_xor_and_eval"):
            got = he_xor_and_eval(scheme, keys, [1], [1])
        assert got == [0, 1]

    def test_protocol_methods_do_not_warn(self, scheme, keys, recwarn):
        ca = scheme.encrypt(keys, 1)
        cb = scheme.encrypt(keys, 0)
        scheme.add(ca, cb)
        scheme.multiply(keys, ca, cb)
        scheme.multiply_many(keys, [(ca, cb)])
        deprecations = [
            w for w in recwarn if w.category is DeprecationWarning
        ]
        assert not deprecations
