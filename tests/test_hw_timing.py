"""Tests for the analytic timing model against the paper's Section V."""

import pytest

from repro.hw.timing import (
    BASELINE_TIMING,
    PAPER_TIMING,
    AcceleratorTiming,
)
from repro.ntt.plan import plan_for_size


class TestPaperNumbers:
    def test_fft_time(self):
        """T_FFT = 2·(5ns·8·1024)/4 + (5ns·2)·4096/4 = 30.72 µs."""
        assert PAPER_TIMING.fft_time_us() == pytest.approx(30.72)

    def test_fft_terms(self):
        stages = PAPER_TIMING.fft_stage_cycles()
        assert stages == [(64, 2048), (64, 2048), (16, 2048)]

    def test_dot_product_time(self):
        """T_DOTPROD = 5ns·65536/32 = 10.24 µs."""
        assert PAPER_TIMING.dot_product_time_us() == pytest.approx(10.24)

    def test_carry_recovery_near_20us(self):
        assert PAPER_TIMING.carry_recovery_time_us() == pytest.approx(
            20.48
        )

    def test_multiplication_time(self):
        """3 FFTs + dot product + carry ≈ 122.9 µs (paper: ≈122)."""
        assert PAPER_TIMING.multiplication_time_us() == pytest.approx(
            122.88, abs=0.1
        )

    def test_phase_breakdown_sums(self):
        phases = PAPER_TIMING.phase_breakdown_us()
        assert sum(phases.values()) == pytest.approx(
            PAPER_TIMING.multiplication_time_us()
        )


class TestBaselineModel:
    def test_baseline_fft_near_published(self):
        """[28] published 125 µs; the P=1 model gives 122.88."""
        assert BASELINE_TIMING.fft_time_us() == pytest.approx(125.0, rel=0.05)

    def test_baseline_mult_near_published(self):
        """[28] published 405 µs."""
        assert BASELINE_TIMING.multiplication_time_us() == pytest.approx(
            405.0, rel=0.05
        )

    def test_speedup_matches_paper(self):
        """Paper: '[28] is 3.32X larger'."""
        speedup = (
            BASELINE_TIMING.multiplication_time_us()
            / PAPER_TIMING.multiplication_time_us()
        )
        assert speedup == pytest.approx(3.32, rel=0.05)


class TestScalingBehaviour:
    def test_fft_scales_inversely_with_pes(self):
        t1 = AcceleratorTiming(pes=1).fft_time_us()
        for pes in (2, 4, 8, 16):
            t = AcceleratorTiming(pes=pes).fft_time_us()
            assert t == pytest.approx(t1 / pes)

    def test_clock_scaling(self):
        fast = AcceleratorTiming(clock_ns=2.5)
        assert fast.fft_time_us() == pytest.approx(
            PAPER_TIMING.fft_time_us() / 2
        )

    def test_alternative_plan(self):
        plan = plan_for_size(65536, (16, 64, 64))
        timing = AcceleratorTiming(plan=plan)
        # 4096 radix-16 (2 cyc) + 2×1024 radix-64 (8 cyc) → same total.
        assert timing.fft_time_us() == pytest.approx(30.72)

    def test_smaller_transform(self):
        plan = plan_for_size(4096, (64, 64))
        timing = AcceleratorTiming(plan=plan, pes=4)
        # 2 stages × (64/4) sub-transforms/PE × 8 cycles = 256 cycles.
        assert timing.fft_cycles() == 256

    def test_more_dot_multipliers_cut_dot_time(self):
        wide = AcceleratorTiming(dot_product_multipliers=64)
        assert wide.dot_product_time_us() == pytest.approx(5.12)
