"""Tests for transform plans (repro.ntt.plan)."""

import numpy as np
import pytest

from repro.field.roots import root_of_unity
from repro.field.solinas import P, inverse
from repro.ntt.plan import (
    PAPER_RADICES,
    PAPER_TRANSFORM_SIZE,
    TransformPlan,
    paper_64k_plan,
    plan_for_size,
)


class TestPlanConstruction:
    def test_paper_plan_shape(self):
        plan = paper_64k_plan()
        assert plan.n == PAPER_TRANSFORM_SIZE == 65536
        assert plan.radices == PAPER_RADICES == (64, 64, 16)
        assert plan.stage_count == 3

    def test_paper_sub_transform_counts(self):
        """Eq. 2 workload: 1024 + 1024 radix-64, 4096 radix-16 — the
        counts in the T_FFT formula."""
        plan = paper_64k_plan()
        assert plan.sub_transform_counts() == [
            (64, 1024),
            (64, 1024),
            (16, 4096),
        ]

    def test_default_radices_prefer_64(self):
        assert plan_for_size(4096).radices == (64, 64)
        assert plan_for_size(1024).radices == (64, 16)
        assert plan_for_size(64).radices == (64,)
        assert plan_for_size(2).radices == (2,)

    def test_bad_factorization_rejected(self):
        with pytest.raises(ValueError):
            plan_for_size(1024, (64, 8))

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            plan_for_size(100)

    def test_plans_are_cached(self):
        assert plan_for_size(1024) is plan_for_size(1024)

    def test_inverse_companion(self):
        plan = plan_for_size(256, (16, 16))
        inv = plan.inverse_plan
        assert inv is not None
        assert inv.omega == inverse(plan.omega)
        assert inv.radices == plan.radices


class TestStageTables:
    def test_dft_matrix_entries(self):
        plan = plan_for_size(1024, (64, 16))
        stage = plan.stages[0]
        root = pow(plan.omega, 1024 // 64, P)
        for k in (0, 1, 7, 63):
            for i in (0, 1, 5, 63):
                assert int(stage.dft_matrix[k, i]) == pow(
                    root, (k * i) % 64, P
                )

    def test_first_stage_root_is_shift_only(self):
        """With the anchored ω, every stage's sub-DFT root is a power
        of two — the hardware shift property."""
        plan = paper_64k_plan()
        for stage in plan.stages:
            root = int(stage.dft_matrix[1, 1])
            # root must be 2^s for some s
            value, s = 1, None
            for e in range(192):
                if value == root:
                    s = e
                    break
                value = value * 2 % P
            assert s is not None, f"stage root {root} is not a 2-power"

    def test_twiddle_tables_shape(self):
        plan = paper_64k_plan()
        assert plan.stages[0].twiddles.shape == (64, 1024)
        assert plan.stages[1].twiddles.shape == (64, 16)
        assert plan.stages[2].twiddles is None

    def test_twiddle_values(self):
        plan = plan_for_size(256, (16, 16))
        tw = plan.stages[0].twiddles
        for k1 in (0, 3, 15):
            for n2 in (0, 1, 9):
                assert int(tw[k1, n2]) == pow(plan.omega, k1 * n2, P)


class TestOutputPermutation:
    def test_permutation_is_bijection(self):
        plan = plan_for_size(1024, (64, 16))
        perm = plan.output_permutation
        assert sorted(perm.tolist()) == list(range(1024))

    def test_two_stage_digit_reversal(self):
        """out[R1·k2 + k1] = blocks ordered (k1, k2)."""
        plan = plan_for_size(16, (4, 4))
        perm = plan.output_permutation
        for k1 in range(4):
            for k2 in range(4):
                assert perm[4 * k2 + k1] == 4 * k1 + k2
