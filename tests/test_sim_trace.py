"""Tests for trace recording and timelines."""

import pytest

from repro.sim.trace import Timeline, TraceEvent


class TestTimeline:
    def test_events(self):
        t = Timeline()
        t.emit(5, "pe0", "read", "beat 3")
        assert t.events == [TraceEvent(5, "pe0", "read", "beat 3")]

    def test_interval_duration(self):
        t = Timeline()
        t.begin(10, "pe0", "compute")
        interval = t.end(18, "pe0", "compute")
        assert interval.duration == 8

    def test_open_interval_duration_raises(self):
        t = Timeline()
        t.begin(0, "pe0", "x")
        with pytest.raises(ValueError):
            _ = t._open[("pe0", "x")].duration

    def test_double_begin_raises(self):
        t = Timeline()
        t.begin(0, "pe0", "x")
        with pytest.raises(ValueError):
            t.begin(1, "pe0", "x")

    def test_intervals_for_source(self):
        t = Timeline()
        t.begin(0, "pe0", "a")
        t.end(4, "pe0", "a")
        t.begin(0, "pe1", "a")
        t.end(6, "pe1", "a")
        assert len(t.intervals_for("pe0")) == 1
        assert t.intervals_for("pe1")[0].duration == 6

    def test_total_span(self):
        t = Timeline()
        t.begin(2, "pe0", "a")
        t.end(5, "pe0", "a")
        t.begin(4, "pe1", "b")
        t.end(9, "pe1", "b")
        assert t.total_span() == 7

    def test_render_contains_sources_and_labels(self):
        t = Timeline()
        t.begin(0, "pe0", "compute0")
        t.end(8, "pe0", "compute0")
        t.begin(8, "pe0", "exchange0")
        t.end(12, "pe0", "exchange0")
        text = t.render()
        assert "pe0" in text
        assert "compute0" in text
        assert "exchange0" in text

    def test_empty_span(self):
        assert Timeline().total_span() == 0
