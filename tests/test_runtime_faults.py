"""Runtime fault tolerance: supervision, retry, timeout, degradation.

Every scenario here is driven by the deterministic injection harness
(:mod:`repro.engine.faultinject`): a worker SIGKILLed mid-shard, a
shard hung past its deadline, a bit flipped in a shard result.  The
invariants under test are the tentpole guarantees of the resilience
layer:

- recovery is *bit-identical* — replayed shards, degraded in-process
  execution and retried jobs all produce exactly the bits the clean
  ``software`` backend produces;
- no resource is stranded — ``/dev/shm`` holds no ``repro-mp-*``
  block after any outcome (success, crash, timeout, cancellation);
- every fault and every recovery action is visible in a
  :class:`~repro.engine.resilience.FaultReport`.

Crash/recovery is exercised under both ``fork`` and ``spawn`` start
methods (the directive travels in the task payload, so behavior must
not depend on inherited parent state).
"""

import os
import random
import time

import numpy as np
import pytest

from repro.engine import Engine, ExecutionConfig, faultinject
from repro.engine.backends import SoftwareMPBackend
from repro.engine.jobs import JobScheduler, MultiplyJob
from repro.engine.resilience import (
    NO_RETRY,
    Deadline,
    FaultReport,
    JobTimeoutError,
    RetryPolicy,
    ShardVerificationError,
    WorkerCrashError,
    current_deadline,
    deadline_scope,
)
from repro.field.solinas import P


def _pairs(rng, count, bits):
    return [
        (rng.getrandbits(bits) | 1, rng.getrandbits(bits) | 1)
        for _ in range(count)
    ]


def _shm_residue():
    """Names of leaked repro shared-memory blocks (must stay empty)."""
    try:
        return sorted(
            name
            for name in os.listdir("/dev/shm")
            if name.startswith("repro-mp-")
        )
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return []


def _mp_engine(start_method=None, **config):
    config.setdefault("workers", 2)
    return Engine(
        config=ExecutionConfig(**config),
        backend=SoftwareMPBackend(start_method=start_method),
    )


@pytest.fixture(autouse=True)
def _disarm_faults():
    """No fault plan may leak between tests."""
    faultinject.deactivate()
    yield
    faultinject.deactivate()


# -- the resilience vocabulary --------------------------------------------


class TestRetryPolicy:
    def test_backoff_is_deterministic_and_capped(self):
        policy = RetryPolicy(
            max_retries=5,
            base_delay_s=0.01,
            backoff_factor=2.0,
            max_delay_s=0.05,
        )
        assert policy.delays() == [0.01, 0.02, 0.04, 0.05, 0.05]
        # A pure function of the policy: same schedule every time.
        assert policy.delays() == policy.delays()

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=1.0, max_delay_s=0.5)
        with pytest.raises(ValueError):
            RetryPolicy().delay(-1)

    def test_should_retry_gates_on_type_and_budget(self):
        policy = RetryPolicy(max_retries=2)
        assert policy.should_retry(WorkerCrashError("x"), 0)
        assert policy.should_retry(WorkerCrashError("x"), 1)
        assert not policy.should_retry(WorkerCrashError("x"), 2)
        # A blown deadline is not transient: retrying cannot help.
        assert not policy.should_retry(JobTimeoutError("x"), 0)
        assert not policy.should_retry(ValueError("x"), 0)
        assert not NO_RETRY.should_retry(WorkerCrashError("x"), 0)


class TestDeadline:
    def test_after_validates(self):
        with pytest.raises(ValueError):
            Deadline.after(0)
        with pytest.raises(ValueError):
            Deadline.after(-1)

    def test_remaining_and_expiry(self):
        deadline = Deadline.after(60.0)
        assert 0 < deadline.remaining() <= 60.0
        assert not deadline.expired
        past = Deadline(expires_at=time.monotonic() - 1.0)
        assert past.expired
        assert past.remaining() < 0

    def test_scope_nesting(self):
        assert current_deadline() is None
        outer, inner = Deadline.after(60.0), Deadline.after(30.0)
        with deadline_scope(outer):
            assert current_deadline() is outer
            with deadline_scope(inner):
                assert current_deadline() is inner
            with deadline_scope(None):  # None nests as a no-op
                assert current_deadline() is outer
            assert current_deadline() is outer
        assert current_deadline() is None


class TestFaultSpec:
    def test_parse_clauses(self):
        plan = faultinject.parse_spec(
            "worker-kill:1,shard-delay:2:0.25,corrupt-shard,repeat"
        )
        assert plan.kill_on_shard == 1
        assert plan.delay_on_shard == 2
        assert plan.delay_s == 0.25
        assert plan.corrupt_on_shard == 0
        assert plan.repeat

    def test_defaults_target_shard_zero(self):
        plan = faultinject.parse_spec("worker-kill")
        assert plan.kill_on_shard == 0
        assert plan.delay_on_shard is None
        assert not plan.repeat

    @pytest.mark.parametrize(
        "bad", ["", "explode", "worker-kill:x", "shard-delay:0:fast"]
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            faultinject.parse_spec(bad)

    def test_one_shot_consumption(self):
        plan = faultinject.parse_spec("worker-kill:0")
        assert plan.directive_for_shard(0) == "kill"
        # Consumed: the replayed shard runs clean.
        assert plan.directive_for_shard(0) == ""

    def test_repeat_refires(self):
        plan = faultinject.parse_spec("worker-kill:0,repeat")
        assert plan.directive_for_shard(0) == "kill"
        assert plan.directive_for_shard(0) == "kill"

    def test_env_activation(self, monkeypatch):
        monkeypatch.setenv(faultinject.FAULTS_ENV_VAR, "corrupt-shard:3")
        monkeypatch.setattr(faultinject, "_ACTIVE", None)
        monkeypatch.setattr(faultinject, "_ENV_CHECKED", False)
        assert faultinject.should_corrupt(3)


class TestFaultReport:
    def test_counts_and_render(self):
        report = FaultReport()
        assert report.clean
        assert "clean" in report.render()
        report.record("worker-crash", "boom", shards=(0,))
        report.record("respawn", "rebuild 1", shards=(0,))
        report.record("degraded", "gave up on the pool")
        assert report.respawns == 1
        assert report.degraded
        assert not report.clean
        text = report.render()
        assert "worker-crash" in text and "shards=[0]" in text


# -- worker crash recovery (fork AND spawn) -------------------------------


@pytest.mark.parametrize("start_method", ["fork", "spawn"])
class TestWorkerCrashRecovery:
    def test_multiply_recovers_bit_identically(self, start_method):
        rng = random.Random(21)
        pairs = _pairs(rng, 6, 512)
        truth = [a * b for a, b in pairs]
        engine = _mp_engine(start_method)
        try:
            before = _shm_residue()
            # Warm the pool so the kill hits an established worker.
            assert engine.multiply(
                [a for a, _ in pairs], [b for _, b in pairs]
            ) == truth
            pids_before = engine.backend.worker_pids
            with faultinject.inject("worker-kill:0"):
                recovered = engine.multiply(
                    [a for a, _ in pairs], [b for _, b in pairs]
                )
            assert recovered == truth
            report = engine.backend.fault_report
            assert report.respawns >= 1
            assert report.count("worker-crash") >= 1
            assert not report.degraded
            # The respawned pool is a different set of processes.
            assert engine.backend.worker_pids != pids_before
            assert _shm_residue() == before
        finally:
            engine.close()

    def test_transform_pickle_path_recovers(self, start_method):
        rng = random.Random(22)
        n, batch = 64, 4
        rows = np.array(
            [[rng.randrange(P) for _ in range(n)] for _ in range(batch)],
            dtype=np.uint64,
        )
        engine = _mp_engine(start_method)
        software = Engine()
        try:
            with faultinject.inject("worker-kill:0"):
                recovered = engine.ring(n).forward(rows)
            assert np.array_equal(
                recovered, software.ring(n).forward(rows)
            )
            assert engine.backend.fault_report.respawns >= 1
        finally:
            engine.close()


class TestSharedMemoryCrashRecovery:
    # One start method only: the shm workload is the expensive one,
    # and block lifecycle is identical either way (parent-owned).
    def test_shm_path_recovers_and_leaks_nothing(self):
        rng = np.random.default_rng(23)
        n, batch = 4096, 32  # 32*4096*8 B = 1 MiB: crosses min_shm_bytes
        rows = rng.integers(0, P, size=(batch, n), dtype=np.uint64)
        engine = _mp_engine("fork")
        software = Engine()
        try:
            assert rows.nbytes >= engine.backend.min_shm_bytes
            before = _shm_residue()
            with faultinject.inject("worker-kill:0"):
                recovered = engine.ring(n).forward(rows)
            assert np.array_equal(
                recovered, software.ring(n).forward(rows)
            )
            assert engine.backend.fault_report.respawns >= 1
            assert _shm_residue() == before
        finally:
            engine.close()
        assert _shm_residue() == []

    def test_generation_tag_in_block_names(self):
        engine = _mp_engine("fork")
        try:
            block = engine.backend._create_block(64)
            try:
                assert block.name.startswith(
                    f"repro-mp-{os.getpid()}-g{engine.backend._generation}-"
                )
            finally:
                block.close()
                block.unlink()
        finally:
            engine.close()


# -- timeouts --------------------------------------------------------------


class TestTimeout:
    def test_hung_shard_times_out_and_pool_recovers(self):
        rng = random.Random(24)
        pairs = _pairs(rng, 4, 512)
        truth = [a * b for a, b in pairs]
        engine = _mp_engine("fork")
        try:
            before = _shm_residue()
            with JobScheduler(engine) as jobs:
                with faultinject.inject("shard-delay:0:30"):
                    handle = jobs.submit(
                        MultiplyJob.batched(pairs), timeout=0.5
                    )
                    with pytest.raises(JobTimeoutError):
                        handle.result()
                assert handle.fault_report.count("timeout") >= 1
                # The scheduler (and a fresh lazily respawned pool)
                # stay usable after the hung pool was abandoned.
                ok = jobs.submit(MultiplyJob.batched(pairs))
                assert ok.result() == truth
            assert _shm_residue() == before
        finally:
            engine.close()

    def test_queued_job_expires_before_running(self):
        engine = _mp_engine("fork")

        class Slow:
            kind = "slow"

            def run(self, engine):
                time.sleep(0.6)
                return "slow-done"

        try:
            with JobScheduler(engine) as jobs:
                slow = jobs.submit(Slow())
                # Queued behind Slow with a budget Slow outlives: the
                # deadline clock starts at submission.
                starved = jobs.submit(MultiplyJob.of(3, 4), timeout=0.1)
                with pytest.raises(JobTimeoutError):
                    starved.result()
                assert slow.result() == "slow-done"
                assert starved in jobs.dead_letters
        finally:
            engine.close()


# -- graceful degradation --------------------------------------------------


class TestDegradation:
    def test_exhausting_respawns_degrades_bit_identically(self):
        rng = random.Random(25)
        pairs = _pairs(rng, 4, 512)
        truth = [a * b for a, b in pairs]
        engine = _mp_engine("fork", max_respawns=1)
        try:
            # repeat: the kill re-fires on every replay, exhausting
            # the respawn budget and forcing in-process execution.
            with faultinject.inject("worker-kill:0,repeat"):
                degraded = engine.multiply(
                    [a for a, _ in pairs], [b for _, b in pairs]
                )
            assert degraded == truth
            report = engine.backend.fault_report
            assert report.degraded
            assert report.respawns == 2  # max_respawns + the final try
        finally:
            engine.close()

    def test_max_respawns_zero_degrades_on_first_crash(self):
        rng = random.Random(26)
        pairs = _pairs(rng, 4, 256)
        engine = _mp_engine("fork", max_respawns=0)
        try:
            with faultinject.inject("worker-kill:0,repeat"):
                products = engine.multiply(
                    [a for a, _ in pairs], [b for _, b in pairs]
                )
            assert products == [a * b for a, b in pairs]
            assert engine.backend.fault_report.degraded
        finally:
            engine.close()


# -- shard verification ----------------------------------------------------


class TestShardVerification:
    def test_corrupted_shard_is_caught(self):
        rng = random.Random(27)
        pairs = _pairs(rng, 4, 512)
        engine = _mp_engine("fork", verify_shards=True)
        try:
            with faultinject.inject("corrupt-shard:0"):
                with pytest.raises(ShardVerificationError):
                    engine.multiply(
                        [a for a, _ in pairs], [b for _, b in pairs]
                    )
            assert (
                engine.backend.fault_report.count("shard-corruption") == 1
            )
        finally:
            engine.close()

    def test_corrupted_transform_shard_is_caught(self):
        rng = random.Random(28)
        n, batch = 64, 4
        rows = np.array(
            [[rng.randrange(P) for _ in range(n)] for _ in range(batch)],
            dtype=np.uint64,
        )
        engine = _mp_engine("fork", verify_shards=True)
        try:
            with faultinject.inject("corrupt-shard:1"):
                with pytest.raises(ShardVerificationError):
                    engine.ring(n).forward(rows)
        finally:
            engine.close()

    def test_clean_run_passes_verification(self):
        rng = random.Random(29)
        pairs = _pairs(rng, 4, 512)
        engine = _mp_engine("fork", verify_shards=True)
        try:
            assert engine.multiply(
                [a for a, _ in pairs], [b for _, b in pairs]
            ) == [a * b for a, b in pairs]
            assert engine.backend.fault_report.clean
        finally:
            engine.close()

    def test_corruption_without_verification_goes_unnoticed(self):
        # Control case: verify_shards is what catches the flip.
        rng = random.Random(30)
        pairs = _pairs(rng, 4, 512)
        truth = [a * b for a, b in pairs]
        engine = _mp_engine("fork", verify_shards=False)
        try:
            with faultinject.inject("corrupt-shard:0"):
                products = engine.multiply(
                    [a for a, _ in pairs], [b for _, b in pairs]
                )
            assert products != truth
            assert products[0] == truth[0] ^ 1
        finally:
            engine.close()


# -- scheduler-level retry / dead letters / cancellation -------------------


class _FlakyJob:
    kind = "flaky"

    def __init__(self, failures, error=WorkerCrashError):
        self.remaining = failures
        self.error = error
        self.attempts = 0

    def run(self, engine):
        self.attempts += 1
        if self.remaining > 0:
            self.remaining -= 1
            raise self.error("injected flake")
        return "ok"


class TestSchedulerResilience:
    def test_retry_recovers_flaky_job(self):
        with JobScheduler() as jobs:
            job = _FlakyJob(failures=2)
            handle = jobs.submit(
                job,
                retry=RetryPolicy(max_retries=3, base_delay_s=0.001),
            )
            assert handle.result() == "ok"
            assert job.attempts == 3
            assert handle.fault_report.retries == 2
            assert handle.fault_report.count("recovered") == 1

    def test_exhausted_retries_dead_letter(self):
        with JobScheduler() as jobs:
            handle = jobs.submit(
                _FlakyJob(failures=10),
                retry=RetryPolicy(max_retries=2, base_delay_s=0.001),
            )
            with pytest.raises(WorkerCrashError):
                handle.result()
            assert handle in jobs.dead_letters
            assert handle.fault_report.count("dead-letter") == 1

    def test_value_errors_are_not_retried(self):
        with JobScheduler() as jobs:
            job = _FlakyJob(failures=5, error=ValueError)
            handle = jobs.submit(
                job, retry=RetryPolicy(max_retries=3, base_delay_s=0.001)
            )
            with pytest.raises(ValueError):
                handle.result()
            assert job.attempts == 1  # the job's own math is not transient
            assert handle not in jobs.dead_letters

    def test_close_cancels_queued_jobs(self):
        from concurrent.futures import CancelledError

        class Slow:
            kind = "slow"

            def run(self, engine):
                time.sleep(0.5)
                return "done"

        before = _shm_residue()
        jobs = JobScheduler()
        running = jobs.submit(Slow())
        queued = [jobs.submit(MultiplyJob.of(i, i + 1)) for i in range(4)]
        cancelled = jobs.close()
        assert len(cancelled) == 4
        assert set(cancelled) == set(queued)
        for handle in queued:
            with pytest.raises(CancelledError):
                handle.result()
            assert handle in jobs.dead_letters
            assert handle.fault_report.count("dead-letter") == 1
        assert running.result() == "done"  # in-flight job completes
        assert not jobs.active
        assert _shm_residue() == before

    def test_close_is_idempotent(self):
        jobs = JobScheduler()
        assert jobs.close() == []
        assert jobs.close() == []

    def test_handle_fault_report_sees_backend_events(self):
        rng = random.Random(31)
        pairs = _pairs(rng, 4, 512)
        engine = _mp_engine("fork")
        try:
            with JobScheduler(engine) as jobs:
                with faultinject.inject("worker-kill:0"):
                    handle = jobs.submit(MultiplyJob.batched(pairs))
                    assert handle.result() == [a * b for a, b in pairs]
                assert handle.fault_report.respawns >= 1
        finally:
            engine.close()
