"""Tests for the O(n²) reference DFT."""

import pytest

from repro.field.roots import root_of_unity
from repro.field.solinas import P, pow_mod
from repro.ntt.reference import dft_reference, idft_reference


class TestReferenceDFT:
    def test_length_one(self):
        assert dft_reference([5]) == [5]

    def test_length_two(self):
        # ω_2 = -1: F = [a+b, a-b].
        assert dft_reference([3, 4]) == [7, (3 - 4) % P]

    def test_impulse_is_flat(self):
        """DFT of a unit impulse is all-ones."""
        assert dft_reference([1, 0, 0, 0]) == [1, 1, 1, 1]

    def test_constant_concentrates(self):
        """DFT of a constant is n·c at DC, zero elsewhere."""
        out = dft_reference([7] * 8)
        assert out[0] == 56
        assert all(v == 0 for v in out[1:])

    def test_shift_theorem(self, rng):
        """f[(n-1) mod n] ↔ F[k]·ω^k."""
        n = 16
        x = [rng.randrange(P) for _ in range(n)]
        shifted = x[-1:] + x[:-1]
        w = root_of_unity(n)
        lhs = dft_reference(shifted)
        rhs = [
            v * pow_mod(w, k) % P for k, v in enumerate(dft_reference(x))
        ]
        assert lhs == rhs

    def test_linearity(self, rng):
        n = 8
        x = [rng.randrange(P) for _ in range(n)]
        y = [rng.randrange(P) for _ in range(n)]
        s = [(a + b) % P for a, b in zip(x, y)]
        fx, fy, fs = dft_reference(x), dft_reference(y), dft_reference(s)
        assert fs == [(a + b) % P for a, b in zip(fx, fy)]

    @pytest.mark.parametrize("n", [1, 2, 4, 8, 32])
    def test_inverse_roundtrip(self, n, rng):
        x = [rng.randrange(P) for _ in range(n)]
        assert idft_reference(dft_reference(x)) == x

    def test_parseval_like_energy(self, rng):
        """Σ|f|² ≡ n^{-1}·Σ|F|² (mod p) — the NTT Parseval identity."""
        n = 16
        x = [rng.randrange(P) for _ in range(n)]
        spectrum = dft_reference(x)
        lhs = sum(v * v for v in x) % P
        rhs = (
            sum(
                a * b
                for a, b in zip(
                    spectrum, [spectrum[0]] + spectrum[1:][::-1]
                )
            )
            * pow_mod(n, P - 2)
        ) % P
        assert lhs == rhs

    def test_custom_omega(self, rng):
        n = 8
        w = root_of_unity(n)
        x = [rng.randrange(P) for _ in range(n)]
        assert dft_reference(x, omega=w) == dft_reference(x)
