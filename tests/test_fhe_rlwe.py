"""Tests for the RLWE layer (repro.fhe.rlwe)."""

import random

import pytest

from repro.fhe.rlwe import RLWE, RLWEParams
from repro.field.solinas import P


@pytest.fixture
def scheme():
    return RLWE(
        RLWEParams(n=64, t=16, noise_bound=4), rng=random.Random(31337)
    )


@pytest.fixture
def secret(scheme):
    return scheme.generate_secret()


class TestParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            RLWEParams(n=100).validate()
        with pytest.raises(ValueError):
            RLWEParams(t=1).validate()
        with pytest.raises(ValueError):
            RLWEParams(noise_bound=0).validate()

    def test_delta(self):
        assert RLWEParams(t=256).delta == P // 256


class TestEncryptDecrypt:
    def test_roundtrip(self, scheme, secret, rng):
        msg = [rng.randrange(16) for _ in range(64)]
        assert scheme.decrypt(secret, scheme.encrypt(secret, msg)) == msg

    def test_zero_message(self, scheme, secret):
        msg = [0] * 64
        assert scheme.decrypt(secret, scheme.encrypt(secret, msg)) == msg

    def test_max_message(self, scheme, secret):
        msg = [15] * 64
        assert scheme.decrypt(secret, scheme.encrypt(secret, msg)) == msg

    def test_randomized_ciphertexts(self, scheme, secret):
        msg = [1] * 64
        c1 = scheme.encrypt(secret, msg)
        c2 = scheme.encrypt(secret, msg)
        assert not (c1.c0 == c2.c0).all()

    def test_wrong_key_garbles(self, scheme, secret, rng):
        msg = [rng.randrange(16) for _ in range(64)]
        ct = scheme.encrypt(secret, msg)
        other = scheme.generate_secret()
        assert scheme.decrypt(other, ct) != msg

    def test_rejects_bad_message(self, scheme, secret):
        with pytest.raises(ValueError):
            scheme.encrypt(secret, [0] * 63)
        with pytest.raises(ValueError):
            scheme.encrypt(secret, [16] + [0] * 63)


class TestHomomorphic:
    def test_addition(self, scheme, secret, rng):
        a = [rng.randrange(16) for _ in range(64)]
        b = [rng.randrange(16) for _ in range(64)]
        ct = scheme.add(scheme.encrypt(secret, a), scheme.encrypt(secret, b))
        assert scheme.decrypt(secret, ct) == [
            (x + y) % 16 for x, y in zip(a, b)
        ]

    def test_many_additions_within_noise(self, scheme, secret):
        msg = [1] + [0] * 63
        acc = scheme.encrypt(secret, msg)
        for _ in range(7):
            acc = scheme.add(acc, scheme.encrypt(secret, msg))
        assert scheme.decrypt(secret, acc)[0] == 8

    def test_multiply_plain_by_monomial(self, scheme, secret, rng):
        """x-shift through plaintext multiplication (negacyclic wrap)."""
        msg = [rng.randrange(16) for _ in range(64)]
        shift = [0, 1] + [0] * 62  # multiply by x
        ct = scheme.multiply_plain(scheme.encrypt(secret, msg), shift)
        got = scheme.decrypt(secret, ct)
        expected = [(-msg[63]) % 16] + msg[:63]
        assert got == expected

    def test_multiply_plain_length_check(self, scheme, secret):
        ct = scheme.encrypt(secret, [0] * 64)
        with pytest.raises(ValueError):
            scheme.multiply_plain(ct, [1, 2, 3])

    def test_add_param_mismatch(self, scheme, secret):
        other_scheme = RLWE(
            RLWEParams(n=128, t=16, noise_bound=4),
            rng=random.Random(1),
        )
        other_secret = other_scheme.generate_secret()
        a = scheme.encrypt(secret, [0] * 64)
        b = other_scheme.encrypt(other_secret, [0] * 128)
        with pytest.raises(ValueError):
            scheme.add(a, b)
