"""Cross-module property-based tests: algebraic laws that must hold
across every implementation layer simultaneously."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.field.solinas import P, mul_by_pow2
from repro.field.vector import from_field_array, to_field_array, vmul
from repro.hw.fft64_unit import FFT64Unit
from repro.hw.modmul import ModularMultiplier
from repro.ntt.plan import plan_for_size
from repro.ntt.radix64 import ntt64_two_stage, ntt_shift_radix
from repro.ntt.staged import execute_plan, execute_plan_inverse
from repro.ssa.multiplier import SSAMultiplier

residues = st.integers(min_value=0, max_value=P - 1)


class TestTransformLinearity:
    @settings(max_examples=15, deadline=None)
    @given(
        data=st.lists(residues, min_size=64, max_size=64),
        scalar=residues,
    )
    def test_staged_plan_is_linear(self, data, scalar):
        """NTT(s·x) = s·NTT(x) through the vectorized executor."""
        plan = plan_for_size(64, (8, 8))
        x = to_field_array(data)
        s = np.full(64, np.uint64(scalar), dtype=np.uint64)
        lhs = execute_plan(vmul(x, s), plan)
        rhs = vmul(execute_plan(x, plan), s)
        assert np.array_equal(lhs, rhs)

    @settings(max_examples=15, deadline=None)
    @given(data=st.lists(residues, min_size=64, max_size=64))
    def test_roundtrip_all_paths(self, data):
        plan = plan_for_size(64, (8, 8))
        x = to_field_array(data)
        assert np.array_equal(
            execute_plan_inverse(execute_plan(x, plan), plan), x
        )


class TestHardwareSoftwareAgreement:
    @settings(max_examples=15, deadline=None)
    @given(data=st.lists(residues, min_size=64, max_size=64))
    def test_three_radix64_implementations_agree(self, data):
        """Direct chains (Eq. 3), the Eq. 5 dataflow, and the hardware
        unit model compute identical transforms."""
        direct = ntt_shift_radix(list(data), 64)
        two_stage = ntt64_two_stage(list(data))
        unit = FFT64Unit().transform(list(data))
        assert direct == two_stage == unit

    @settings(max_examples=40)
    @given(a=residues, b=residues, c=residues)
    def test_modmul_associativity(self, a, b, c):
        m = ModularMultiplier()
        lhs = m.multiply(m.multiply(a, b), c)
        rhs = m.multiply(a, m.multiply(b, c))
        assert lhs == rhs

    @settings(max_examples=40)
    @given(a=residues, s=st.integers(min_value=0, max_value=191))
    def test_modmul_matches_shifter(self, a, s):
        """A multiply by 2^s through the DSP path equals the shift path
        — the two twiddle mechanisms are interchangeable."""
        m = ModularMultiplier()
        assert m.multiply(a, pow(2, s, P)) == mul_by_pow2(a, s)


class TestMultiplierRing:
    @settings(max_examples=10, deadline=None)
    @given(
        a=st.integers(min_value=0, max_value=(1 << 1024) - 1),
        b=st.integers(min_value=0, max_value=(1 << 1024) - 1),
        c=st.integers(min_value=0, max_value=(1 << 1024) - 1),
    )
    def test_distributivity_through_ssa(self, a, b, c):
        """a·(b + c) = a·b + a·c with every product through SSA."""
        mul = SSAMultiplier.for_bits(1026)
        assert mul.multiply(a, b + c) == mul.multiply(a, b) + mul.multiply(
            a, c
        )

    @settings(max_examples=10, deadline=None)
    @given(a=st.integers(min_value=0, max_value=(1 << 2000) - 1))
    def test_square_is_self_multiply(self, a):
        mul = SSAMultiplier.for_bits(2000)
        assert mul.square(a) == mul.multiply(a, a)

    @settings(max_examples=10, deadline=None)
    @given(
        a=st.integers(min_value=0, max_value=(1 << 1500) - 1),
        k=st.integers(min_value=0, max_value=200),
    )
    def test_shift_compatibility(self, a, k):
        """(a·2^k) through SSA equals (a through SSA)·2^k."""
        mul = SSAMultiplier.for_bits(1701)
        assert mul.multiply(a, 1 << k) == a << k


class TestConvolutionAlgebra:
    @settings(max_examples=10, deadline=None)
    @given(
        data=st.lists(
            st.integers(min_value=0, max_value=(1 << 20) - 1),
            min_size=16,
            max_size=16,
        )
    )
    def test_cyclic_equals_polynomial_mod(self, data):
        """Cyclic convolution = polynomial product mod (x^n − 1)."""
        from repro.ntt.convolution import cyclic_convolution

        n = 16
        a = data
        b = list(reversed(data))
        got = from_field_array(
            cyclic_convolution(to_field_array(a), to_field_array(b))
        )
        poly = [0] * (2 * n)
        for i in range(n):
            for j in range(n):
                poly[i + j] += a[i] * b[j]
        want = [(poly[k] + poly[k + n]) % P for k in range(n)]
        assert got == want

    @settings(max_examples=10, deadline=None)
    @given(
        data=st.lists(
            st.integers(min_value=0, max_value=(1 << 20) - 1),
            min_size=16,
            max_size=16,
        )
    )
    def test_negacyclic_equals_polynomial_mod(self, data):
        """Negacyclic convolution = polynomial product mod (x^n + 1)."""
        from repro.ntt.negacyclic import negacyclic_convolution

        n = 16
        a = data
        b = list(reversed(data))
        got = from_field_array(
            negacyclic_convolution(to_field_array(a), to_field_array(b))
        )
        poly = [0] * (2 * n)
        for i in range(n):
            for j in range(n):
                poly[i + j] += a[i] * b[j]
        want = [(poly[k] - poly[k + n]) % P for k in range(n)]
        assert got == want
