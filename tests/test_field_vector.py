"""Tests for vectorized GF(p) arithmetic (repro.field.vector)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.field.solinas import P
from repro.field.vector import (
    from_field_array,
    to_field_array,
    vadd,
    vmul,
    vmul_scalar,
    vneg,
    vsub,
)

residues = st.integers(min_value=0, max_value=P - 1)
vectors = st.lists(residues, min_size=1, max_size=64)

#: Values near every carry/borrow boundary of the limb arithmetic.
EDGES = [
    0,
    1,
    2,
    (1 << 32) - 1,
    1 << 32,
    (1 << 32) + 1,
    (1 << 63) - 1,
    1 << 63,
    P - 1,
    P - 2,
    P - (1 << 32),
    P - (1 << 32) + 1,
]


class TestConversions:
    def test_roundtrip(self):
        arr = to_field_array(EDGES)
        assert from_field_array(arr) == EDGES

    def test_reduces_on_input(self):
        arr = to_field_array([P, P + 5, -1])
        assert from_field_array(arr) == [0, 5, P - 1]

    def test_dtype(self):
        assert to_field_array([1, 2]).dtype == np.uint64


class TestToFieldMatrix:
    def test_matches_per_row_oracle_int_lists(self):
        from repro.field.vector import to_field_matrix

        rows = [[0, 1, -1, P - 1], [P, P + 5, -(P - 1), 7]]
        want = np.stack([to_field_array(row) for row in rows])
        got = to_field_matrix(rows)
        assert got.dtype == np.uint64
        assert np.array_equal(got, want)

    def test_uint64_rows_canonicalized_exactly(self):
        from repro.field.vector import to_field_matrix

        # Residues >= 2**63 must survive: an unsafe int64 cast would
        # wrap them negative and corrupt the canonical value.
        row = np.array([P - 1, 1, P, np.uint64(2**64 - 1)], dtype=np.uint64)
        want = np.stack([to_field_array([int(v) for v in row])])
        assert np.array_equal(to_field_matrix([row]), want)

    def test_big_python_ints_fall_back_exactly(self):
        from repro.field.vector import to_field_matrix

        rows = [[2**100, -(2**80), 3]]
        want = np.stack([to_field_array(rows[0])])
        assert np.array_equal(to_field_matrix(rows), want)


class TestEdgeMatrix:
    """Exhaustive pairwise edge-value checks for every operation."""

    def setup_method(self):
        pairs = [(a, b) for a in EDGES for b in EDGES]
        self.a = to_field_array([p[0] for p in pairs])
        self.b = to_field_array([p[1] for p in pairs])
        self.ia = [p[0] for p in pairs]
        self.ib = [p[1] for p in pairs]

    def test_vadd(self):
        want = [(x + y) % P for x, y in zip(self.ia, self.ib)]
        assert from_field_array(vadd(self.a, self.b)) == want

    def test_vsub(self):
        want = [(x - y) % P for x, y in zip(self.ia, self.ib)]
        assert from_field_array(vsub(self.a, self.b)) == want

    def test_vmul(self):
        want = [x * y % P for x, y in zip(self.ia, self.ib)]
        assert from_field_array(vmul(self.a, self.b)) == want

    def test_vneg(self):
        want = [(-x) % P for x in self.ia]
        assert from_field_array(vneg(self.a)) == want


class TestHypothesisVectors:
    @settings(max_examples=50)
    @given(data=vectors)
    def test_add_matches_scalar(self, data):
        a = to_field_array(data)
        b = to_field_array(list(reversed(data)))
        want = [(x + y) % P for x, y in zip(data, reversed(data))]
        assert from_field_array(vadd(a, b)) == want

    @settings(max_examples=50)
    @given(data=vectors)
    def test_mul_matches_scalar(self, data):
        a = to_field_array(data)
        b = to_field_array(list(reversed(data)))
        want = [x * y % P for x, y in zip(data, reversed(data))]
        assert from_field_array(vmul(a, b)) == want

    @settings(max_examples=50)
    @given(data=vectors, scalar=residues)
    def test_mul_scalar(self, data, scalar):
        a = to_field_array(data)
        want = [x * scalar % P for x in data]
        assert from_field_array(vmul_scalar(a, scalar)) == want

    @settings(max_examples=50)
    @given(data=vectors)
    def test_sub_add_roundtrip(self, data):
        a = to_field_array(data)
        b = to_field_array(list(reversed(data)))
        assert from_field_array(vadd(vsub(a, b), b)) == data

    @settings(max_examples=30)
    @given(data=vectors)
    def test_results_canonical(self, data):
        a = to_field_array(data)
        b = to_field_array(list(reversed(data)))
        for out in (vadd(a, b), vsub(a, b), vmul(a, b), vneg(a)):
            assert all(v < P for v in from_field_array(out))


class TestBroadcasting:
    def test_vmul_broadcasts(self):
        a = to_field_array(list(range(12))).reshape(3, 4)
        row = to_field_array([5, 6, 7, 8]).reshape(1, 4)
        out = vmul(a, row)
        assert out.shape == (3, 4)
        assert int(out[2, 3]) == 11 * 8 % P

    def test_vmul_scalar_does_not_materialize(self):
        """The scalar operand is a zero-stride broadcast view."""
        a = to_field_array(EDGES)
        want = [x * 12345 % P for x in EDGES]
        assert from_field_array(vmul_scalar(a, 12345)) == want
        # Scalars are reduced mod p first.
        assert from_field_array(vmul_scalar(a, P + 2)) == [
            x * 2 % P for x in EDGES
        ]


class TestOutParameter:
    """In-place variants: `out=` may alias the operands."""

    def setup_method(self):
        pairs = [(a, b) for a in EDGES for b in EDGES]
        self.a = to_field_array([p[0] for p in pairs])
        self.b = to_field_array([p[1] for p in pairs])

    @pytest.mark.parametrize("op", [vadd, vsub, vmul])
    def test_fresh_out_matches_pure(self, op):
        want = op(self.a, self.b)
        out = np.empty_like(self.a)
        result = op(self.a, self.b, out=out)
        assert result is out
        assert np.array_equal(out, want)

    @pytest.mark.parametrize("op", [vadd, vsub, vmul])
    def test_out_aliases_first_operand(self, op):
        want = op(self.a, self.b)
        x = self.a.copy()
        op(x, self.b, out=x)
        assert np.array_equal(x, want)

    @pytest.mark.parametrize("op", [vadd, vsub, vmul])
    def test_out_aliases_second_operand(self, op):
        want = op(self.a, self.b)
        y = self.b.copy()
        op(self.a, y, out=y)
        assert np.array_equal(y, want)

    @pytest.mark.parametrize("op", [vadd, vsub, vmul])
    def test_out_aliases_both_operands(self, op):
        want = op(self.a, self.a)
        x = self.a.copy()
        op(x, x, out=x)
        assert np.array_equal(x, want)

    @pytest.mark.parametrize("op", [vadd, vsub, vmul])
    def test_out_aliases_through_distinct_view_objects(self, op):
        """Aliasing must be detected by memory, not object identity:
        x[:] is a different ndarray object over the same buffer."""
        want = op(self.a, self.a)
        x = self.a.copy()
        op(x, x[:], out=x)
        assert np.array_equal(x, want)
        y = self.a.copy()
        op(y[:], y, out=y[:])
        assert np.array_equal(y, want)

    def test_vmul_scalar_out(self):
        want = vmul_scalar(self.a, 99991)
        x = self.a.copy()
        assert vmul_scalar(x, 99991, out=x) is x
        assert np.array_equal(x, want)

    def test_accumulation_loop_stays_canonical(self):
        """The usage pattern of the loop kernel: acc reused in place."""
        acc = self.a.copy()
        term = np.empty_like(acc)
        total = [int(v) for v in self.a]
        for scalar in (P - 1, 1 << 32, 3):
            vmul(self.b, np.broadcast_to(np.uint64(scalar), self.b.shape),
                 out=term)
            vadd(acc, term, out=acc)
            total = [
                (t + int(y) * scalar) % P for t, y in zip(total, self.b)
            ]
        assert from_field_array(acc) == total

    def test_reduce_wide_out(self):
        from repro.field.vector import _mul_wide, _reduce_wide

        hi, lo = _mul_wide(self.a, self.b)
        want = _reduce_wide(hi, lo)
        out = np.empty_like(lo)
        assert _reduce_wide(hi, lo, out=out) is out
        assert np.array_equal(out, want)
        # out aliasing lo (the staged executor's fold does this)
        hi2, lo2 = _mul_wide(self.a, self.b)
        _reduce_wide(hi2, lo2, out=lo2)
        assert np.array_equal(lo2, want)
