"""Tests for vectorized GF(p) arithmetic (repro.field.vector)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.field.solinas import P
from repro.field.vector import (
    from_field_array,
    to_field_array,
    vadd,
    vmul,
    vmul_scalar,
    vneg,
    vsub,
)

residues = st.integers(min_value=0, max_value=P - 1)
vectors = st.lists(residues, min_size=1, max_size=64)

#: Values near every carry/borrow boundary of the limb arithmetic.
EDGES = [
    0,
    1,
    2,
    (1 << 32) - 1,
    1 << 32,
    (1 << 32) + 1,
    (1 << 63) - 1,
    1 << 63,
    P - 1,
    P - 2,
    P - (1 << 32),
    P - (1 << 32) + 1,
]


class TestConversions:
    def test_roundtrip(self):
        arr = to_field_array(EDGES)
        assert from_field_array(arr) == EDGES

    def test_reduces_on_input(self):
        arr = to_field_array([P, P + 5, -1])
        assert from_field_array(arr) == [0, 5, P - 1]

    def test_dtype(self):
        assert to_field_array([1, 2]).dtype == np.uint64


class TestEdgeMatrix:
    """Exhaustive pairwise edge-value checks for every operation."""

    def setup_method(self):
        pairs = [(a, b) for a in EDGES for b in EDGES]
        self.a = to_field_array([p[0] for p in pairs])
        self.b = to_field_array([p[1] for p in pairs])
        self.ia = [p[0] for p in pairs]
        self.ib = [p[1] for p in pairs]

    def test_vadd(self):
        want = [(x + y) % P for x, y in zip(self.ia, self.ib)]
        assert from_field_array(vadd(self.a, self.b)) == want

    def test_vsub(self):
        want = [(x - y) % P for x, y in zip(self.ia, self.ib)]
        assert from_field_array(vsub(self.a, self.b)) == want

    def test_vmul(self):
        want = [x * y % P for x, y in zip(self.ia, self.ib)]
        assert from_field_array(vmul(self.a, self.b)) == want

    def test_vneg(self):
        want = [(-x) % P for x in self.ia]
        assert from_field_array(vneg(self.a)) == want


class TestHypothesisVectors:
    @settings(max_examples=50)
    @given(data=vectors)
    def test_add_matches_scalar(self, data):
        a = to_field_array(data)
        b = to_field_array(list(reversed(data)))
        want = [(x + y) % P for x, y in zip(data, reversed(data))]
        assert from_field_array(vadd(a, b)) == want

    @settings(max_examples=50)
    @given(data=vectors)
    def test_mul_matches_scalar(self, data):
        a = to_field_array(data)
        b = to_field_array(list(reversed(data)))
        want = [x * y % P for x, y in zip(data, reversed(data))]
        assert from_field_array(vmul(a, b)) == want

    @settings(max_examples=50)
    @given(data=vectors, scalar=residues)
    def test_mul_scalar(self, data, scalar):
        a = to_field_array(data)
        want = [x * scalar % P for x in data]
        assert from_field_array(vmul_scalar(a, scalar)) == want

    @settings(max_examples=50)
    @given(data=vectors)
    def test_sub_add_roundtrip(self, data):
        a = to_field_array(data)
        b = to_field_array(list(reversed(data)))
        assert from_field_array(vadd(vsub(a, b), b)) == data

    @settings(max_examples=30)
    @given(data=vectors)
    def test_results_canonical(self, data):
        a = to_field_array(data)
        b = to_field_array(list(reversed(data)))
        for out in (vadd(a, b), vsub(a, b), vmul(a, b), vneg(a)):
            assert all(v < P for v in from_field_array(out))


class TestBroadcasting:
    def test_vmul_broadcasts(self):
        a = to_field_array(list(range(12))).reshape(3, 4)
        row = to_field_array([5, 6, 7, 8]).reshape(1, 4)
        out = vmul(a, row)
        assert out.shape == (3, 4)
        assert int(out[2, 3]) == 11 * 8 % P
