"""Property tests for the batched SSA pipeline: decompose_many /
carry_recover_many / recompose_many / SSAMultiplier.multiply_many."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ssa.carry import carry_recover, carry_recover_many
from repro.ssa.encode import (
    SSAParameters,
    decompose,
    decompose_many,
    recompose,
    recompose_many,
)
from repro.ssa.multiplier import SSAMultiplier


class TestDecomposeMany:
    @settings(max_examples=30, deadline=None)
    @given(
        values=st.lists(
            st.integers(min_value=0, max_value=(1 << 2048) - 1),
            min_size=0,
            max_size=5,
        )
    )
    def test_matches_per_value(self, values):
        params = SSAParameters(coefficient_bits=24, operand_coefficients=128)
        matrix = decompose_many(values, params)
        assert matrix.shape == (len(values), params.transform_size)
        for value, row in zip(values, matrix):
            assert np.array_equal(row, decompose(value, params))

    def test_non_byte_aligned_width(self):
        params = SSAParameters(coefficient_bits=10, operand_coefficients=16)
        values = [0, 1, (1 << params.operand_bits) - 1, 12345]
        matrix = decompose_many(values, params)
        for value, row in zip(values, matrix):
            assert np.array_equal(row, decompose(value, params))

    def test_oversize_operand_rejected(self):
        params = SSAParameters(coefficient_bits=24, operand_coefficients=128)
        with pytest.raises(ValueError):
            decompose_many([1 << params.operand_bits], params)


class TestCarryRecoverMany:
    @settings(max_examples=30, deadline=None)
    @given(
        m=st.sampled_from([8, 10, 24, 32]),
        batch=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_matches_per_row(self, m, batch, seed):
        rng = np.random.default_rng(seed)
        # Raw convolution magnitudes: anything below 2**63.
        coeffs = rng.integers(0, 1 << 63, size=(batch, 32), dtype=np.uint64)
        digit_rows = carry_recover_many(coeffs, m)
        for row_in, row_out in zip(coeffs, digit_rows):
            want = carry_recover([int(c) for c in row_in], m)
            got = [int(d) for d in row_out]
            assert got[: len(want)] == want
            assert all(d == 0 for d in got[len(want) :])

    def test_saturated_ripple(self):
        """A full row of maximal digits plus one carry ripples end-to-end."""
        m = 24
        mask = (1 << m) - 1
        row = np.full((1, 64), mask, dtype=np.uint64)
        row[0, 0] = mask + 1
        digit_rows = carry_recover_many(row, m)
        want = carry_recover([int(c) for c in row[0]], m)
        assert [int(d) for d in digit_rows[0][: len(want)]] == want

    def test_bad_shapes_rejected(self):
        with pytest.raises(ValueError):
            carry_recover_many(np.zeros(8, dtype=np.uint64), 24)
        with pytest.raises(ValueError):
            carry_recover_many(np.zeros((2, 8), dtype=np.uint64), 64)


class TestRecomposeMany:
    @settings(max_examples=30, deadline=None)
    @given(
        values=st.lists(
            st.integers(min_value=0, max_value=(1 << 1024) - 1),
            min_size=1,
            max_size=4,
        )
    )
    def test_roundtrip(self, values):
        params = SSAParameters(coefficient_bits=24, operand_coefficients=64)
        matrix = decompose_many(values, params)
        assert recompose_many(matrix, params.coefficient_bits) == values

    def test_unnormalized_falls_back(self):
        rows = np.array([[1 << 40, 5], [7, 0]], dtype=np.uint64)
        want = [recompose([int(c) for c in row], 24) for row in rows]
        assert recompose_many(rows, 24) == want


class TestMultiplyMany:
    @settings(max_examples=15, deadline=None)
    @given(
        pairs=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=(1 << 2048) - 1),
                st.integers(min_value=0, max_value=(1 << 2048) - 1),
            ),
            min_size=0,
            max_size=4,
        )
    )
    def test_matches_bigint_and_looped(self, pairs):
        multiplier = SSAMultiplier.for_bits(2048)
        got = multiplier.multiply_many(pairs)
        assert got == [a * b for a, b in pairs]
        assert got == [multiplier.multiply(a, b) for a, b in pairs]

    def test_edge_operands(self):
        multiplier = SSAMultiplier.for_bits(4096)
        pairs = [
            (0, 0),
            (1, 1),
            (2**4096 - 1, 1),
            (2**4000 - 1, 2**4000 - 1),
            (2**24, 2**24 - 1),
        ]
        assert multiplier.multiply_many(pairs) == [a * b for a, b in pairs]

    def test_empty_batch(self):
        assert SSAMultiplier.for_bits(1024).multiply_many([]) == []
