"""Tests for batch-pipelined multiplication scheduling."""

import pytest

from repro.hw.batch import schedule_batch
from repro.hw.timing import PAPER_TIMING, AcceleratorTiming


class TestSchedule:
    def test_empty_batch(self):
        s = schedule_batch(0)
        assert s.total_cycles == 0
        assert s.throughput_speedup == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            schedule_batch(-1)

    def test_single_equals_serial(self):
        s = schedule_batch(1)
        assert s.total_cycles == PAPER_TIMING.multiplication_cycles()
        assert s.throughput_speedup == pytest.approx(1.0)

    def test_stage_order_per_multiply(self):
        s = schedule_batch(4)
        for fft_start, dot_start, carry_start, finish in s.spans:
            assert fft_start < dot_start < carry_start < finish

    def test_resources_never_double_booked(self):
        s = schedule_batch(8)
        fft = 3 * PAPER_TIMING.fft_cycles()
        for prev, cur in zip(s.spans, s.spans[1:]):
            assert cur[0] >= prev[0] + fft  # FFT engine serialized
            assert cur[1] >= prev[1]  # dot bank in order
            assert cur[2] >= prev[2]

    def test_steady_state_is_fft_bound(self):
        """Throughput limit = 3 transforms/product on the FFT engine."""
        s = schedule_batch(16)
        assert s.steady_state_interval == 3 * PAPER_TIMING.fft_cycles()

    def test_speedup_approaches_serial_over_fft_ratio(self):
        s = schedule_batch(200)
        serial = PAPER_TIMING.multiplication_cycles()
        bound = serial / (3 * PAPER_TIMING.fft_cycles())
        assert s.throughput_speedup == pytest.approx(bound, rel=0.02)
        assert s.throughput_speedup > 1.25

    def test_monotone_in_count(self):
        assert (
            schedule_batch(10).throughput_speedup
            < schedule_batch(100).throughput_speedup
        )

    def test_custom_timing(self):
        timing = AcceleratorTiming(pes=8)
        s = schedule_batch(4, timing=timing)
        assert s.total_cycles < schedule_batch(4).total_cycles

    def test_render(self):
        text = schedule_batch(6).render()
        assert "steady-state" in text and "1." in text
