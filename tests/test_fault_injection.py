"""Fault injection: corrupted hardware state must be *detected*.

The functional models are only trustworthy if the surrounding checks
actually catch wrong values.  These tests flip bits in twiddle tables,
roots, reduction logic and memory mappings and assert the corruption
surfaces — as a wrong result against the oracle, or as a raised
invariant error — never as silent agreement.
"""

import numpy as np
import pytest

from repro.field.solinas import P
from repro.field.vector import to_field_array
from repro.hw.banked_memory import BankConflictError, BankedMemory
from repro.hw.fft64_unit import FFT64Unit
from repro.ntt.plan import StageSpec, TransformPlan, plan_for_size
from repro.ntt.radix2 import ntt_radix2_numpy
from repro.ntt.staged import execute_plan
from repro.ssa.carry import carry_recover
from repro.ssa.encode import SSAParameters, decompose, recompose


def _corrupt_plan_twiddle(plan: TransformPlan) -> TransformPlan:
    """A copy of the plan with one twiddle entry flipped."""
    stages = []
    for index, stage in enumerate(plan.stages):
        twiddles = stage.twiddles
        if index == 0:
            twiddles = twiddles.copy()
            twiddles[3, 5] ^= np.uint64(1)
        stages.append(
            StageSpec(
                radix=stage.radix,
                sub_transforms=stage.sub_transforms,
                dft_matrix=stage.dft_matrix,
                twiddles=twiddles,
            )
        )
    return TransformPlan(
        n=plan.n,
        radices=plan.radices,
        omega=plan.omega,
        stages=tuple(stages),
        output_permutation=plan.output_permutation,
    )


class TestNTTFaults:
    def test_corrupted_twiddle_changes_output(self, rng):
        plan = plan_for_size(1024, (64, 16))
        bad = _corrupt_plan_twiddle(plan)
        x = to_field_array([rng.randrange(P) for _ in range(1024)])
        good_out = execute_plan(x, plan)
        bad_out = execute_plan(x, bad)
        assert not np.array_equal(good_out, bad_out)
        # And the oracle pinpoints it.
        assert np.array_equal(good_out, ntt_radix2_numpy(x))

    def test_wrong_root_is_caught_by_oracle(self, rng):
        """Using a non-compatible root silently permutes the spectrum —
        the cross-check against radix-2 must flag it."""
        from repro.field.solinas import pow_mod
        from repro.field.roots import root_of_unity

        n = 256
        wrong_omega = pow_mod(root_of_unity(n), 3)  # still primitive
        plan = plan_for_size(n, (16, 16), omega=wrong_omega)
        x = to_field_array([rng.randrange(P) for _ in range(n)])
        assert not np.array_equal(execute_plan(x, plan), ntt_radix2_numpy(x))

    def test_unit_catches_wrong_sample_count(self):
        unit = FFT64Unit()
        with pytest.raises(ValueError):
            unit.transform([1] * 60, 64)


class TestMemoryFaults:
    def test_unskewed_memory_trips_on_fft_pattern(self):
        """Removing the skew (a plausible implementation bug) is caught
        on the first reductor write beat."""
        memory = BankedMemory(skew=False)
        from repro.hw.data_route import reductor_write_beats

        beat = next(iter(reductor_write_beats(0, 64)))
        with pytest.raises(BankConflictError):
            memory.write_beat(beat.indices, [0] * len(beat.indices))

    def test_double_write_same_bank_detected(self):
        memory = BankedMemory()
        row, col, _ = memory.map_address(0)
        # Find another point in the same bank.
        clash = next(
            i
            for i in range(1, 4096)
            if memory.map_address(i)[:2] == (row, col)
        )
        with pytest.raises(BankConflictError):
            memory.write_beat([0, clash], [1, 2])


class TestSSAFaults:
    def test_coefficient_overflow_rejected_up_front(self):
        """Parameters that would wrap the convolution mod p are refused
        at validation, not at (wrong-)result time."""
        bad = SSAParameters(coefficient_bits=28, operand_coefficients=32768)
        with pytest.raises(ValueError):
            bad.validate()

    def test_corrupted_convolution_breaks_roundtrip(self, rng):
        params = SSAParameters(coefficient_bits=24, operand_coefficients=64)
        value = rng.getrandbits(1000)
        coeffs = [int(c) for c in decompose(value, params)]
        coeffs[3] += 1  # single-coefficient upset
        digits = carry_recover(coeffs, 24)
        assert recompose(digits, 24) != value

    def test_dropped_carry_detected(self, rng):
        """A carry-recovery that truncates instead of extending loses
        the top digits — recompose exposes it."""
        coeffs = [(1 << 40)] * 4
        digits = carry_recover(coeffs, 24)
        truncated = digits[:4]
        value = sum(c << (24 * i) for i, c in enumerate(coeffs))
        assert recompose(digits, 24) == value
        assert recompose(truncated, 24) != value


class TestModmulFaults:
    def test_noncanonical_input_rejected(self):
        from repro.hw.modmul import ModularMultiplier

        m = ModularMultiplier()
        with pytest.raises(ValueError):
            m.multiply(P + 1, 2)

    def test_shifter_wiring_enforced(self):
        from repro.hw.shifter_bank import ShifterBank

        bank = ShifterBank(name="s", width=64, shift_sets=[[0, 24]])
        with pytest.raises(ValueError):
            bank.apply(0, 1, 48)  # plausible off-by-one twiddle index
