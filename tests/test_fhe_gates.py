"""Tests for the encrypted gate/circuit library."""

import random

import pytest

from repro.fhe.dghv import DGHV
from repro.fhe.gates import (
    GateCounter,
    encrypted_equality,
    encrypted_ripple_add,
    he_eq,
    he_mux,
    he_nand,
    he_not,
    he_or,
)
from repro.fhe.ops import NoiseBudgetError
from repro.fhe.params import FHEParams

#: Deeper-than-TOY parameters so multi-level circuits fit the budget.
GATES = FHEParams(name="gates", lam=16, rho=12, eta=1024, gamma=8192, tau=8)


@pytest.fixture(scope="module")
def scheme():
    return DGHV(GATES, rng=random.Random(4242))


@pytest.fixture(scope="module")
def keys(scheme):
    return scheme.generate_keys()


def enc(scheme, keys, bit):
    return scheme.encrypt(keys, bit)


class TestSingleGates:
    @pytest.mark.parametrize("a", [0, 1])
    def test_not(self, scheme, keys, a):
        out = he_not(scheme, keys, enc(scheme, keys, a))
        assert scheme.decrypt(keys, out) == 1 - a

    @pytest.mark.parametrize("a", [0, 1])
    @pytest.mark.parametrize("b", [0, 1])
    def test_or(self, scheme, keys, a, b):
        out = he_or(scheme, keys, enc(scheme, keys, a), enc(scheme, keys, b))
        assert scheme.decrypt(keys, out) == (a | b)

    @pytest.mark.parametrize("a", [0, 1])
    @pytest.mark.parametrize("b", [0, 1])
    def test_nand(self, scheme, keys, a, b):
        out = he_nand(
            scheme, keys, enc(scheme, keys, a), enc(scheme, keys, b)
        )
        assert scheme.decrypt(keys, out) == 1 - (a & b)

    @pytest.mark.parametrize("s", [0, 1])
    @pytest.mark.parametrize("x", [0, 1])
    @pytest.mark.parametrize("y", [0, 1])
    def test_mux(self, scheme, keys, s, x, y):
        out = he_mux(
            scheme,
            keys,
            enc(scheme, keys, s),
            enc(scheme, keys, x),
            enc(scheme, keys, y),
        )
        assert scheme.decrypt(keys, out) == (x if s else y)

    @pytest.mark.parametrize("a", [0, 1])
    @pytest.mark.parametrize("b", [0, 1])
    def test_eq(self, scheme, keys, a, b):
        out = he_eq(scheme, keys, enc(scheme, keys, a), enc(scheme, keys, b))
        assert scheme.decrypt(keys, out) == int(a == b)


class TestRippleAdder:
    @pytest.mark.parametrize("x,y", [(0, 0), (1, 1), (2, 3), (3, 3), (1, 2)])
    def test_two_bit_adds(self, scheme, keys, x, y):
        bits_x = [enc(scheme, keys, (x >> i) & 1) for i in range(2)]
        bits_y = [enc(scheme, keys, (y >> i) & 1) for i in range(2)]
        out = encrypted_ripple_add(scheme, keys, bits_x, bits_y)
        got = sum(
            scheme.decrypt(keys, bit) << i for i, bit in enumerate(out)
        )
        assert got == x + y

    def test_three_bit_random(self, scheme, keys, rng):
        for _ in range(3):
            x, y = rng.randrange(8), rng.randrange(8)
            bits_x = [enc(scheme, keys, (x >> i) & 1) for i in range(3)]
            bits_y = [enc(scheme, keys, (y >> i) & 1) for i in range(3)]
            out = encrypted_ripple_add(scheme, keys, bits_x, bits_y)
            got = sum(
                scheme.decrypt(keys, bit) << i for i, bit in enumerate(out)
            )
            assert got == x + y

    def test_width_mismatch(self, scheme, keys):
        with pytest.raises(ValueError):
            encrypted_ripple_add(
                scheme, keys, [enc(scheme, keys, 0)], []
            )

    def test_counts_multiplications(self, scheme, keys):
        counter = GateCounter()
        bits = [enc(scheme, keys, 1) for _ in range(3)]
        encrypted_ripple_add(scheme, keys, bits, bits, counter=counter)
        # 1 AND for the first carry + 2 per remaining position.
        assert counter.and_gates == 1 + 2 * 2
        assert counter.cost_us() == counter.and_gates * 122.88

    def test_noise_exhaustion_is_loud(self, scheme, keys):
        """Too-wide adders fail with NoiseBudgetError, never silently."""
        width = 64  # carry noise grows ~21 bits/position vs a 1022 budget
        bits = [enc(scheme, keys, 1) for _ in range(width)]
        with pytest.raises(NoiseBudgetError):
            encrypted_ripple_add(scheme, keys, bits, bits)


class TestEquality:
    def test_equal_vectors(self, scheme, keys, rng):
        bits = [rng.getrandbits(1) for _ in range(4)]
        ea = [enc(scheme, keys, b) for b in bits]
        eb = [enc(scheme, keys, b) for b in bits]
        out = encrypted_equality(scheme, keys, ea, eb)
        assert scheme.decrypt(keys, out) == 1

    def test_unequal_vectors(self, scheme, keys, rng):
        bits = [0, 1, 0, 1]
        other = [0, 1, 1, 1]
        ea = [enc(scheme, keys, b) for b in bits]
        eb = [enc(scheme, keys, b) for b in other]
        out = encrypted_equality(scheme, keys, ea, eb)
        assert scheme.decrypt(keys, out) == 0

    def test_empty_rejected(self, scheme, keys):
        with pytest.raises(ValueError):
            encrypted_equality(scheme, keys, [], [])
