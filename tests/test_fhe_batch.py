"""Tests for the batched FHE APIs (RLWE *_many, he_mult_many)."""

import random

import numpy as np
import pytest

from repro.fhe.dghv import DGHV
from repro.fhe.ops import he_mult, he_mult_many
from repro.fhe.params import TOY
from repro.fhe.rlwe import RLWE, RLWEParams
from repro.ssa.multiplier import SSAMultiplier


@pytest.fixture
def rlwe():
    return RLWE(RLWEParams(n=64, t=16), rng=random.Random(0xBA7C4))


class TestRLWEBatch:
    def test_encrypt_decrypt_many_roundtrip(self, rlwe, rng):
        secret = rlwe.generate_secret()
        messages = [
            [rng.randrange(rlwe.params.t) for _ in range(rlwe.params.n)]
            for _ in range(6)
        ]
        cts = rlwe.encrypt_many(secret, messages)
        assert rlwe.decrypt_many(secret, cts) == messages

    def test_batch_ciphertexts_decrypt_individually(self, rlwe, rng):
        secret = rlwe.generate_secret()
        messages = [
            [rng.randrange(rlwe.params.t) for _ in range(rlwe.params.n)]
            for _ in range(3)
        ]
        for ct, message in zip(rlwe.encrypt_many(secret, messages), messages):
            assert rlwe.decrypt(secret, ct) == message

    def test_multiply_plain_many_bit_identical(self, rlwe, rng):
        secret = rlwe.generate_secret()
        messages = [
            [rng.randrange(rlwe.params.t) for _ in range(rlwe.params.n)]
            for _ in range(4)
        ]
        plains = [
            [rng.randrange(rlwe.params.t) for _ in range(rlwe.params.n)]
            for _ in range(4)
        ]
        cts = rlwe.encrypt_many(secret, messages)
        batch = rlwe.multiply_plain_many(cts, plains)
        for ct, plain, got in zip(cts, plains, batch):
            want = rlwe.multiply_plain(ct, plain)
            assert np.array_equal(got.c0, want.c0)
            assert np.array_equal(got.c1, want.c1)

    def test_empty_batches(self, rlwe):
        secret = rlwe.generate_secret()
        assert rlwe.encrypt_many(secret, []) == []
        assert rlwe.decrypt_many(secret, []) == []
        assert rlwe.multiply_plain_many([], []) == []

    def test_bad_message_rejected(self, rlwe):
        secret = rlwe.generate_secret()
        with pytest.raises(ValueError):
            rlwe.encrypt_many(secret, [[0] * (rlwe.params.n - 1)])
        with pytest.raises(ValueError):
            rlwe.encrypt_many(secret, [[rlwe.params.t] * rlwe.params.n])

    def test_plain_count_mismatch_rejected(self, rlwe, rng):
        secret = rlwe.generate_secret()
        cts = rlwe.encrypt_many(secret, [[1] * rlwe.params.n])
        with pytest.raises(ValueError):
            rlwe.multiply_plain_many(cts, [])


class TestHeMultMany:
    def _truth_table(self, scheme, keys):
        pairs = []
        expected = []
        for a in (0, 1):
            for b in (0, 1):
                pairs.append(
                    (scheme.encrypt(keys, a), scheme.encrypt(keys, b))
                )
                expected.append(a & b)
        return pairs, expected

    def test_default_multiplier(self):
        scheme = DGHV(TOY, rng=random.Random(11))
        keys = scheme.generate_keys()
        pairs, expected = self._truth_table(scheme, keys)
        results = he_mult_many(scheme, pairs, x0=keys.x0)
        assert [scheme.decrypt(keys, c) for c in results] == expected

    def test_ssa_backed_multiplier_batches(self):
        multiplier = SSAMultiplier.for_bits(2 * TOY.gamma)
        scheme = DGHV(TOY, multiplier=multiplier.multiply, rng=random.Random(11))
        keys = scheme.generate_keys()
        pairs, expected = self._truth_table(scheme, keys)
        results = he_mult_many(scheme, pairs, x0=keys.x0)
        assert [scheme.decrypt(keys, c) for c in results] == expected

    def test_matches_looped_he_mult(self):
        scheme = DGHV(TOY, rng=random.Random(23))
        keys = scheme.generate_keys()
        pairs, _ = self._truth_table(scheme, keys)
        batch = he_mult_many(scheme, pairs, x0=keys.x0)
        looped = [he_mult(scheme, a, b, x0=keys.x0) for a, b in pairs]
        assert [c.value for c in batch] == [c.value for c in looped]
        assert [c.noise_bits for c in batch] == [c.noise_bits for c in looped]

    def test_empty_batch(self):
        scheme = DGHV(TOY, rng=random.Random(3))
        assert he_mult_many(scheme, []) == []

    def test_overridden_multiply_is_not_bypassed(self):
        """A subclass overriding multiply (but inheriting multiply_many)
        must have its override honoured, not the batched fast path."""
        calls = []

        class Counting(SSAMultiplier):
            def multiply(self, a, b):
                calls.append((a, b))
                return super().multiply(a, b)

        multiplier = Counting.for_bits(2 * TOY.gamma)
        scheme = DGHV(
            TOY, multiplier=multiplier.multiply, rng=random.Random(11)
        )
        keys = scheme.generate_keys()
        pairs, expected = self._truth_table(scheme, keys)
        results = he_mult_many(scheme, pairs, x0=keys.x0)
        assert [scheme.decrypt(keys, c) for c in results] == expected
        assert len(calls) == len(pairs)
