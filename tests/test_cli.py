"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])

    @pytest.mark.parametrize(
        "argv",
        [
            ["table1"],
            ["table2"],
            ["scaling"],
            ["batch", "--count", "3"],
        ],
    )
    def test_fast_commands_run(self, argv, capsys):
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert out.strip()

    def test_table1_output(self, capsys):
        main(["table1"])
        out = capsys.readouterr().out
        assert "TABLE I" in out and "proposed" in out

    def test_table2_output(self, capsys):
        main(["table2"])
        out = capsys.readouterr().out
        assert "TABLE II" in out and "speedup" in out

    def test_deployments_output(self, capsys):
        main(["deployments"])
        out = capsys.readouterr().out
        assert "Cyclone" in out and "Stratix" in out

    def test_small_multiply(self, capsys):
        main(["multiply", "--bits", "5000", "--seed", "3"])
        out = capsys.readouterr().out
        assert "OK" in out and "carry_recovery" in out

    def test_batch_count(self, capsys):
        main(["batch", "--count", "5"])
        out = capsys.readouterr().out
        assert "batch of 5" in out
