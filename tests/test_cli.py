"""Tests for the command-line interface."""

import json
import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])

    @pytest.mark.parametrize(
        "argv",
        [
            ["table1"],
            ["table2"],
            ["scaling"],
            ["batch", "--count", "3"],
        ],
    )
    def test_fast_commands_run(self, argv, capsys):
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert out.strip()

    def test_table1_output(self, capsys):
        main(["table1"])
        out = capsys.readouterr().out
        assert "TABLE I" in out and "proposed" in out

    def test_table2_output(self, capsys):
        main(["table2"])
        out = capsys.readouterr().out
        assert "TABLE II" in out and "speedup" in out

    def test_deployments_output(self, capsys):
        main(["deployments"])
        out = capsys.readouterr().out
        assert "Cyclone" in out and "Stratix" in out

    def test_small_multiply(self, capsys):
        main(["multiply", "--bits", "5000", "--seed", "3"])
        out = capsys.readouterr().out
        assert "OK" in out and "carry_recovery" in out

    def test_batch_count(self, capsys):
        main(["batch", "--count", "5"])
        out = capsys.readouterr().out
        assert "batch of 5" in out


class TestArchCLI:
    def test_arch_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["arch"])

    def test_arch_show_paper_default(self, capsys):
        assert main(["arch", "show"]) == 0
        out = capsys.readouterr().out
        assert "paper-date16" in out
        assert "hypercube" in out
        assert "area proxy" in out
        assert "T_FFT 30.72 us" in out

    def test_arch_show_json_round_trips(self, capsys):
        assert main(["arch", "show", "--json"]) == 0
        from repro.arch import ArchSpec

        spec = ArchSpec.from_json(capsys.readouterr().out)
        assert spec == ArchSpec.paper_default()

    def test_arch_show_spec_file(self, tmp_path, capsys):
        from repro.arch import ArchSpec

        spec = ArchSpec.paper_default().with_overrides(
            pes=8, topology="ring", name="from-file"
        )
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json())
        assert main(["arch", "show", "--spec", str(path)]) == 0
        out = capsys.readouterr().out
        assert "from-file" in out and "ring" in out

    def test_arch_sweep_writes_pareto_json(self, tmp_path, capsys):
        out_path = tmp_path / "pareto.json"
        assert (
            main(
                [
                    "arch",
                    "sweep",
                    "--max-candidates",
                    "24",
                    "--no-jobs",
                    "--pareto",
                    str(out_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "design-space exploration" in out
        assert "paper point" in out
        payload = json.loads(out_path.read_text())
        assert payload["frontier"]
        assert payload["paper"]["total_cycles"] > 0


class TestServeClientCLI:
    def test_client_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["client"])

    def test_client_submit_requires_op_and_payload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["client", "submit"])

    def test_serve_rejects_bad_queue_bounds(self):
        with pytest.raises(SystemExit):
            main(["serve", "--max-queue", "0", "--max-requests", "1"])

    def test_client_submit_rlwe_multiply(self, capsys):
        """`repro client submit --op rlwe-multiply` round trip: the
        returned ciphertext decrypts to the plaintext ring product."""
        import random

        from repro.fhe.rlwe import RLWE, RLWECiphertext, RLWEParams
        from repro.field.vector import to_field_array

        params = RLWEParams(n=64, t=17, noise_bound=4)
        scheme = RLWE(params, rng=random.Random(53))
        keys = scheme.keygen()
        rng = random.Random(54)
        m1 = [rng.randrange(params.t) for _ in range(params.n)]
        m2 = [rng.randrange(params.t) for _ in range(params.n)]
        c1, c2 = scheme.encrypt_many(keys, [m1, m2])
        payload = json.dumps(
            {
                "n": params.n,
                "t": params.t,
                "noise_bound": params.noise_bound,
                "relin": keys.relin.to_payload(),
                "pairs": [
                    [
                        [
                            [int(v) for v in c1.c0],
                            [int(v) for v in c1.c1],
                        ],
                        [
                            [int(v) for v in c2.c0],
                            [int(v) for v in c2.c1],
                        ],
                    ]
                ],
            }
        )

        src = Path(__file__).parent.parent / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(src) + os.pathsep + env.get("PYTHONPATH", "")
        )
        server = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--port",
                "0",
                "--max-requests",
                "1",
                "--max-queue",
                "16",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            banner = server.stdout.readline()
            match = re.search(r"listening on [\d.]+:(\d+)", banner)
            assert match, f"no listening banner: {banner!r}"
            port = match.group(1)
            assert (
                main(
                    [
                        "client",
                        "submit",
                        "--port",
                        port,
                        "--op",
                        "rlwe-multiply",
                        "--payload",
                        payload,
                    ]
                )
                == 0
            )
            body = json.loads(capsys.readouterr().out)
            assert body["status"] == "ok"
            (raw_c0, raw_c1), = body["result"]
            product = RLWECiphertext(
                c0=to_field_array(raw_c0),
                c1=to_field_array(raw_c1),
                params=params,
            )
            truth = [0] * params.n
            for i in range(params.n):
                for j in range(params.n):
                    k = i + j
                    if k < params.n:
                        truth[k] += m1[i] * m2[j]
                    else:
                        truth[k - params.n] -= m1[i] * m2[j]
            assert scheme.decrypt(keys, product) == [
                x % params.t for x in truth
            ]
            assert server.wait(timeout=60) == 0
        finally:
            if server.poll() is None:
                server.kill()
            server.stdout.close()

    def test_serve_and_client_roundtrip(self, capsys):
        """End-to-end smoke: `repro serve` + `repro client submit|stats`.

        The server runs as a subprocess on an ephemeral port with
        ``--max-requests 2`` so it exits by itself after the second
        submit; the client commands run in-process via ``main``.
        """
        src = Path(__file__).parent.parent / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(src) + os.pathsep + env.get("PYTHONPATH", "")
        )
        server = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--port",
                "0",
                "--max-requests",
                "2",
                "--max-queue",
                "16",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            banner = server.stdout.readline()
            match = re.search(r"listening on [\d.]+:(\d+)", banner)
            assert match, f"no listening banner: {banner!r}"
            port = match.group(1)

            assert (
                main(
                    [
                        "client",
                        "submit",
                        "--port",
                        port,
                        "--op",
                        "multiply",
                        "--payload",
                        '{"pairs": [[6, 7], [11, 13]]}',
                    ]
                )
                == 0
            )
            body = json.loads(capsys.readouterr().out)
            assert body["status"] == "ok"
            assert body["result"] == [42, 143]

            assert main(["client", "stats", "--port", port]) == 0
            stats_out = capsys.readouterr().out
            assert "service stats" in stats_out
            assert "coalescing" in stats_out

            # Second submit trips --max-requests: the server drains
            # and exits on its own.
            assert (
                main(
                    [
                        "client",
                        "submit",
                        "--port",
                        port,
                        "--op",
                        "convolve",
                        "--payload",
                        json.dumps(
                            {
                                "n": 8,
                                "a": [1, 0, 0, 0, 0, 0, 0, 0],
                                "b": [0, 2, 0, 0, 0, 0, 0, 0],
                                "negacyclic": True,
                            }
                        ),
                    ]
                )
                == 0
            )
            body = json.loads(capsys.readouterr().out)
            assert body["result"] == [0, 2, 0, 0, 0, 0, 0, 0]
            assert server.wait(timeout=60) == 0
        finally:
            if server.poll() is None:
                server.kill()
                server.wait(timeout=30)
