"""Tests for the classical multiplication baselines."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ssa.baselines import (
    OperationCount,
    karatsuba_multiply,
    schoolbook_multiply,
    toom3_multiply,
)

operands = st.integers(min_value=0, max_value=(1 << 4096) - 1)


@pytest.mark.parametrize(
    "func", [schoolbook_multiply, karatsuba_multiply, toom3_multiply]
)
class TestAllBaselines:
    def test_zero(self, func):
        assert func(0, 12345) == 0
        assert func(0, 0) == 0

    def test_one(self, func):
        assert func(1, 98765) == 98765

    def test_known(self, func):
        assert func(12345678901234567890, 98765432109876543210) == (
            12345678901234567890 * 98765432109876543210
        )

    def test_rejects_negative(self, func):
        with pytest.raises(ValueError):
            func(-1, 5)

    @settings(max_examples=25, deadline=None)
    @given(a=operands, b=operands)
    def test_random(self, func, a, b):
        assert func(a, b) == a * b


class TestRecursionBoundaries:
    def test_karatsuba_around_cutoff(self, rng):
        for bits in (500, 512, 513, 520, 1025):
            a, b = rng.getrandbits(bits), rng.getrandbits(bits)
            assert karatsuba_multiply(a, b) == a * b

    def test_toom3_around_cutoff(self, rng):
        for bits in (2000, 2048, 2049, 3000, 6145):
            a, b = rng.getrandbits(bits), rng.getrandbits(bits)
            assert toom3_multiply(a, b) == a * b

    def test_toom3_unbalanced(self, rng):
        a = rng.getrandbits(9000)
        b = rng.getrandbits(3001)
        assert toom3_multiply(a, b) == a * b

    def test_toom3_negative_interpolant_path(self):
        """Operands maximizing a0 - a1 + a2 sign flips."""
        third = 1024
        a = ((1 << third) - 1) << (2 * third)  # a1 = 0 branch
        b = ((1 << third) - 1) * (1 + (1 << (2 * third)))
        a_val = a | 1
        assert toom3_multiply(a_val, b) == a_val * b


class TestOperationCounting:
    def test_schoolbook_quadratic(self):
        counter_small = OperationCount()
        counter_big = OperationCount()
        a = (1 << 2400) - 1
        schoolbook_multiply(a, a, counter=counter_small)
        b = (1 << 4800) - 1
        schoolbook_multiply(b, b, counter=counter_big)
        ratio = (
            counter_big.limb_multiplications
            / counter_small.limb_multiplications
        )
        assert 3.5 < ratio < 4.5  # doubling size quadruples work

    def test_karatsuba_subquadratic(self):
        c1, c2 = OperationCount(), OperationCount()
        a = (1 << 8192) - 1
        karatsuba_multiply(a, a, counter=c1)
        b = (1 << 16384) - 1
        karatsuba_multiply(b, b, counter=c2)
        ratio = c2.limb_multiplications / c1.limb_multiplications
        assert 2.5 < ratio < 3.5  # doubling size triples work
