"""Tests for the DGHV scheme."""

import random

import pytest

from repro.fhe.dghv import DGHV, Ciphertext, _centered_mod
from repro.fhe.params import MEDIUM, TOY, FHEParams


@pytest.fixture
def scheme():
    return DGHV(TOY, rng=random.Random(123))


@pytest.fixture
def keys(scheme):
    return scheme.generate_keys()


class TestCenteredMod:
    def test_small(self):
        assert _centered_mod(3, 10) == 3
        assert _centered_mod(7, 10) == -3
        assert _centered_mod(5, 10) == 5
        assert _centered_mod(15, 10) == 5

    def test_negative_input(self):
        assert _centered_mod(-3, 10) == -3
        assert _centered_mod(-7, 10) == 3


class TestKeyGeneration:
    def test_secret_is_odd_eta_bits(self, scheme, keys):
        assert keys.secret % 2 == 1
        assert keys.secret.bit_length() == TOY.eta

    def test_x0_exact_multiple(self, scheme, keys):
        """x_0 = q_0·p exactly (noise-free modulus)."""
        assert keys.x0 % keys.secret == 0

    def test_x0_odd_and_largest(self, keys):
        assert keys.x0 % 2 == 1
        assert all(x < keys.x0 for x in keys.public[1:])

    def test_public_element_count(self, keys):
        assert len(keys.public) == TOY.tau + 1

    def test_public_elements_near_gamma_bits(self, keys):
        for x in keys.public:
            assert TOY.gamma - 2 <= x.bit_length() <= TOY.gamma + 1

    def test_public_residues_even_and_small(self, keys):
        for x in keys.public[1:]:
            residue = _centered_mod(x, keys.secret)
            assert residue % 2 == 0
            assert abs(residue) < (1 << (TOY.rho + 1))


class TestEncryptionDecryption:
    @pytest.mark.parametrize("m", [0, 1])
    def test_symmetric_roundtrip(self, scheme, keys, m):
        assert scheme.decrypt(keys, scheme.encrypt_symmetric(keys, m)) == m

    @pytest.mark.parametrize("m", [0, 1])
    def test_public_roundtrip(self, scheme, keys, m):
        for _ in range(10):
            assert scheme.decrypt(keys, scheme.encrypt(keys, m)) == m

    def test_rejects_non_bit(self, scheme, keys):
        with pytest.raises(ValueError):
            scheme.encrypt(keys, 2)
        with pytest.raises(ValueError):
            scheme.encrypt_symmetric(keys, -1)

    def test_fresh_noise_within_estimate(self, scheme, keys):
        for _ in range(20):
            c = scheme.encrypt(keys, 1)
            actual = scheme.noise_of(keys, c)
            assert actual.bit_length() <= c.noise_bits

    def test_ciphertexts_randomized(self, scheme, keys):
        c1 = scheme.encrypt(keys, 1)
        c2 = scheme.encrypt(keys, 1)
        assert c1.value != c2.value

    def test_ciphertext_size(self, scheme, keys):
        c = scheme.encrypt(keys, 0)
        assert c.value.bit_length() <= TOY.gamma + 1

    def test_decryptable_flag(self, scheme, keys):
        c = scheme.encrypt(keys, 1)
        assert c.decryptable
        sat = Ciphertext(value=c.value, noise_bits=TOY.eta, params=TOY)
        assert not sat.decryptable


class TestParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            FHEParams(name="bad", lam=1, rho=64, eta=32, gamma=128, tau=4).validate()
        with pytest.raises(ValueError):
            FHEParams(name="bad", lam=1, rho=8, eta=256, gamma=128, tau=4).validate()
        with pytest.raises(ValueError):
            FHEParams(name="bad", lam=1, rho=8, eta=64, gamma=128, tau=1).validate()

    def test_depth_estimates(self):
        assert TOY.multiplicative_depth >= 2
        assert MEDIUM.multiplicative_depth >= 3

    def test_medium_roundtrip(self):
        scheme = DGHV(MEDIUM, rng=random.Random(5))
        keys = scheme.generate_keys()
        for m in (0, 1):
            assert scheme.decrypt(keys, scheme.encrypt(keys, m)) == m


class TestMultiplierStrategy:
    def test_custom_multiplier_used(self, keys):
        calls = []

        def spy(a, b):
            calls.append((a, b))
            return a * b

        scheme = DGHV(TOY, multiplier=spy, rng=random.Random(9))
        from repro.fhe.ops import he_mult

        ca = scheme.encrypt(keys, 1)
        cb = scheme.encrypt(keys, 1)
        he_mult(scheme, ca, cb, x0=keys.x0)
        assert len(calls) == 1
