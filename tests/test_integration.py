"""Cross-module integration tests: the full story end to end."""

import random

import numpy as np
import pytest

from repro import (
    DGHV,
    HEAccelerator,
    PAPER_TIMING,
    SSAMultiplier,
    TOY,
    table1_report,
    table2_report,
)
from repro.fhe.ops import he_add, he_mult
from repro.hw.accelerator import HEAccelerator as _Acc
from repro.ntt.plan import plan_for_size
from repro.ssa.encode import SSAParameters


class TestFHEOnAccelerator:
    """DGHV homomorphic AND gates whose ciphertext products run on the
    cycle-counted accelerator model — the paper's whole pitch."""

    def test_encrypted_and_gate_with_timing(self):
        params = SSAParameters(coefficient_bits=24, operand_coefficients=128)
        plan = plan_for_size(256, (16, 16))
        acc = _Acc(pes=4, plan=plan, params=params)
        reports = []

        def accelerated(a, b):
            product, report = acc.multiply(a, b)
            reports.append(report)
            return product

        scheme = DGHV(TOY, multiplier=accelerated, rng=random.Random(11))
        keys = scheme.generate_keys()
        ca = scheme.encrypt(keys, 1)
        cb = scheme.encrypt(keys, 1)
        c = he_mult(scheme, ca, cb, x0=keys.x0)
        assert scheme.decrypt(keys, c) == 1
        assert len(reports) == 1
        assert reports[0].total_cycles > 0

    def test_homomorphic_adder_circuit(self):
        """A 2-bit encrypted adder built from XOR/AND gates."""
        scheme = DGHV(TOY, rng=random.Random(21))
        keys = scheme.generate_keys()

        def enc(bit):
            return scheme.encrypt(keys, bit)

        for a0 in (0, 1):
            for b0 in (0, 1):
                # Half adder: sum = a^b, carry = a&b.
                s = he_add(enc(a0), enc(b0), x0=keys.x0)
                c = he_mult(scheme, enc(a0), enc(b0), x0=keys.x0)
                assert scheme.decrypt(keys, s) == a0 ^ b0
                assert scheme.decrypt(keys, c) == a0 & b0


class TestConsistencyAcrossModels:
    def test_ssa_and_accelerator_agree(self, rng):
        """The pure-software SSA multiplier and the accelerator model
        produce identical products (same pipeline, two views)."""
        params = SSAParameters(coefficient_bits=24, operand_coefficients=512)
        ssa = SSAMultiplier(params=params, radices=(64, 16))
        acc = _Acc(pes=4, plan=plan_for_size(1024, (64, 16)), params=params)
        for _ in range(3):
            a, b = rng.getrandbits(12000), rng.getrandbits(12000)
            assert ssa.multiply(a, b) == acc.multiply(a, b)[0]

    def test_simulated_cycles_equal_analytic_at_64k(self, rng):
        from repro.field.solinas import P
        from repro.field.vector import to_field_array

        acc = HEAccelerator()
        x = to_field_array([rng.randrange(P) for _ in range(65536)])
        _, report = acc.distributed_ntt(x)
        assert report.total_cycles == PAPER_TIMING.fft_cycles()


class TestHeadlineClaims:
    """The paper's abstract-level claims, asserted in one place."""

    def test_fft_30_7us(self):
        assert PAPER_TIMING.fft_time_us() == pytest.approx(30.7, rel=0.01)

    def test_mult_122us(self):
        assert PAPER_TIMING.multiplication_time_us() == pytest.approx(
            122, rel=0.01
        )

    def test_speedup_3_32x(self):
        t2 = table2_report()
        assert t2.speedup_vs("wang_huang_fpga[28]") == pytest.approx(
            3.32, rel=0.05
        )

    def test_hardware_saving_60pct(self):
        t1 = table1_report()
        savings = [
            t1.saving("alms"),
            t1.saving("registers"),
            t1.saving("dsp_blocks"),
        ]
        assert sum(savings) / 3 == pytest.approx(0.60, abs=0.07)
