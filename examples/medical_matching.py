#!/usr/bin/env python3
"""Privacy-preserving medical record matching — another HE application.

The paper's introduction names medical applications among HE's use
cases.  Scenario: a hospital outsources genetic-marker records to a
cloud; a researcher wants to know, per patient, whether the patient
carries *both* marker A and marker B (an encrypted AND) and whether
exactly one of two risk flags differs from a reference profile
(encrypted XOR) — all without the cloud ever seeing plaintext data.

The homomorphic AND gates again cost one full-size ciphertext
multiplication each; the example closes with the accelerator budget for
a realistic cohort.

Run:  python examples/medical_matching.py
"""

import random

from repro.engine import Engine
from repro.fhe import TOY
from repro.hw.timing import PAPER_TIMING


def main() -> None:
    rng = random.Random(541)
    # Engine().fhe(TOY) binds the DGHV context to the engine's SSA
    # multiplier, so every AND gate below runs the real NTT pipeline.
    scheme = Engine().fhe(TOY, rng=rng)
    keys = scheme.generate_keys()

    patients = 8
    cohort = [
        {
            "marker_a": rng.getrandbits(1),
            "marker_b": rng.getrandbits(1),
            "risk_flag": rng.getrandbits(1),
        }
        for _ in range(patients)
    ]
    reference_flag = 1

    print("hospital encrypts the cohort and uploads it...\n")
    encrypted = [
        {key: scheme.encrypt(keys, bit) for key, bit in record.items()}
        for record in cohort
    ]
    c_reference = scheme.encrypt(keys, reference_flag)

    print("cloud evaluates queries on ciphertexts only:\n")
    and_gates = 0
    header = f"{'patient':>8} {'A&B':>5} {'flag!=ref':>10}"
    print(header)
    for index, record in enumerate(encrypted):
        both = scheme.multiply(
            keys, record["marker_a"], record["marker_b"]
        )
        and_gates += 1
        differs = scheme.add(record["risk_flag"], c_reference)

        got_both = scheme.decrypt(keys, both)
        got_diff = scheme.decrypt(keys, differs)
        want_both = cohort[index]["marker_a"] & cohort[index]["marker_b"]
        want_diff = cohort[index]["risk_flag"] ^ reference_flag
        assert got_both == want_both and got_diff == want_diff
        print(f"{index:>8} {got_both:>5} {got_diff:>10}")

    per_mult_us = PAPER_TIMING.multiplication_time_us()
    big_cohort = 1_000_000
    print(
        f"\n{and_gates} encrypted AND gates for {patients} patients; "
        f"at full DGHV size each costs {per_mult_us:.0f} us on the "
        f"accelerator"
    )
    print(
        f"a {big_cohort:,}-patient cohort would need "
        f"{big_cohort * per_mult_us / 1e6:.0f} s of accelerator time "
        f"({big_cohort * per_mult_us / 1e6 / 60:.1f} min) — versus hours "
        f"in the software implementations the paper cites"
    )


if __name__ == "__main__":
    main()
