#!/usr/bin/env python3
"""Electronic voting on encrypted ballots — a motivating HE application.

The paper's introduction lists electronic voting among the applications
homomorphic encryption enables.  This example runs a tiny referendum:

- each voter encrypts a yes/no ballot bit under DGHV;
- the untrusted tally server computes, *without decrypting*, a
  homomorphic circuit deciding whether at least 2 of every 3-voter
  precinct voted yes (a majority gate: maj(a,b,c) = ab ^ ac ^ bc);
- only the election authority, holding the secret key, decrypts the
  per-precinct results.

Every homomorphic AND multiplies two full-size ciphertexts — the
operation the FPGA accelerator exists to make fast.  The example counts
how many such multiplications the tally performs and what they would
cost on the accelerator at the paper's 122 µs apiece.

Run:  python examples/fhe_voting.py
"""

import random

from repro.engine import Engine
from repro.fhe import TOY
from repro.hw.timing import PAPER_TIMING


def majority(scheme, keys, ca, cb, cc):
    """Encrypted maj(a,b,c) = ab ^ ac ^ bc."""
    ab, ac, bc = scheme.multiply_many(
        keys, [(ca, cb), (ca, cc), (cb, cc)]
    )
    return scheme.add(scheme.add(ab, ac), bc)


def main() -> None:
    rng = random.Random(1789)
    mults = [0]

    # The engine routes every ciphertext product through its SSA
    # multiplier; wrap its strategy to count the accelerator workload.
    engine = Engine()
    scheme = engine.fhe(TOY, rng=rng)
    engine_multiplier = scheme.multiplier

    def counting_multiplier(a: int, b: int) -> int:
        mults[0] += 1
        return engine_multiplier(a, b)

    scheme.multiplier = counting_multiplier
    keys = scheme.generate_keys()
    print(f"DGHV parameters: {TOY.name} (gamma={TOY.gamma} bits)\n")

    precincts = 6
    ballots = [[rng.getrandbits(1) for _ in range(3)] for _ in range(precincts)]

    print("voters encrypt their ballots...")
    encrypted = [
        [scheme.encrypt(keys, bit) for bit in precinct]
        for precinct in ballots
    ]

    print("untrusted server tallies each precinct homomorphically...\n")
    results = []
    for index, (ca, cb, cc) in enumerate(encrypted):
        encrypted_majority = majority(scheme, keys, ca, cb, cc)
        decrypted = scheme.decrypt(keys, encrypted_majority)
        expected = int(sum(ballots[index]) >= 2)
        status = "OK" if decrypted == expected else "WRONG"
        results.append(decrypted)
        print(
            f"  precinct {index}: votes {ballots[index]} -> "
            f"majority {decrypted} [{status}]"
        )
        assert decrypted == expected

    total_yes = sum(results)
    print(f"\nprecincts approving: {total_yes}/{precincts}")

    per_mult_us = PAPER_TIMING.multiplication_time_us()
    print(
        f"\nciphertext multiplications performed: {mults[0]} "
        f"(3 AND gates per precinct)"
    )
    print(
        f"at the paper's full parameters each costs {per_mult_us:.0f} us "
        f"on the accelerator -> tally compute "
        f"{mults[0] * per_mult_us / 1000:.2f} ms"
    )


if __name__ == "__main__":
    main()
