#!/usr/bin/env python3
"""Encrypted statistics with RLWE — the lattice side of the paper.

Section III notes that the ultralong multiplier also serves schemes
"based on Lattice problems and Learning with Errors".  This example
runs a ring-LWE workload on the same NTT machinery the accelerator
implements (negacyclic convolutions over GF(2^64 − 2^32 + 1)):

- a clinic packs 1024 patients' daily step counts into one RLWE
  plaintext polynomial and encrypts it;
- the untrusted aggregator sums a week of encrypted vectors (SIMD
  addition) and applies a selection mask via plaintext multiplication;
- the clinic decrypts only the aggregate.

Run:  python examples/rlwe_statistics.py
"""

import random

from repro.engine import Engine
from repro.fhe.rlwe import RLWEParams

DAYS = 7
PATIENTS = 1024
#: Step counts are bucketed to hundreds, capped at t-1.
T = 1024


def main() -> None:
    rng = random.Random(8080)
    params = RLWEParams(n=PATIENTS, t=T, noise_bound=6)
    # Engine().fhe(RLWEParams) binds every ring product to the engine's
    # per-engine plan cache and NTT kernel.
    scheme = Engine().fhe(params, rng=rng)
    secret = scheme.generate_secret()
    print(
        f"RLWE over Z_p[x]/(x^{params.n} + 1), p = 2^64 - 2^32 + 1, "
        f"plaintext modulus t = {params.t}\n"
    )

    week = [
        [rng.randrange(0, 120) for _ in range(PATIENTS)] for _ in range(DAYS)
    ]

    print(f"clinic encrypts {DAYS} daily vectors of {PATIENTS} patients...")
    encrypted_days = [scheme.encrypt(secret, day) for day in week]

    print("aggregator sums the encrypted week (SIMD add)...")
    total = encrypted_days[0]
    for day in encrypted_days[1:]:
        total = scheme.add(total, day)

    print("aggregator masks out the control group (plaintext multiply)...\n")
    mask = [1 if i % 4 == 0 else 0 for i in range(PATIENTS)]
    masked = scheme.multiply_plain(total, mask)

    decrypted = scheme.decrypt(secret, masked)
    expected_sums = [
        sum(week[d][i] for d in range(DAYS)) % T for i in range(PATIENTS)
    ]
    # The mask is a polynomial product, so position k of the result is a
    # negacyclic convolution; with a {0,1} "diagonal" mask every 4th
    # position, position k collects patients k, k-4, ... — we verify the
    # full convolution instead of pretending it's elementwise.
    from repro.field.solinas import P

    check = [0] * PATIENTS
    for i in range(PATIENTS):
        for j in range(PATIENTS):
            k = i + j
            term = expected_sums[i] * mask[j]
            if k < PATIENTS:
                check[k] += term
            else:
                check[k - PATIENTS] -= term
    check = [c % T for c in check]
    status = "match" if decrypted == check else "MISMATCH"
    print(f"decrypted aggregate vs plaintext recomputation: {status}")
    assert decrypted == check

    sample = [(i, decrypted[i]) for i in (0, 4, 8, 100, 1020)]
    print("sample positions:", sample)
    print(
        f"\nevery homomorphic step above ran {2 * DAYS + 2} negacyclic "
        f"NTT products of degree {PATIENTS} — the radix-64 shift "
        "butterflies of the accelerator, with twisted twiddles"
    )


if __name__ == "__main__":
    main()
