#!/usr/bin/env python3
"""Encrypted analytics as a shared service — multi-tenant coalescing.

The DATE'16 accelerator makes one huge modular multiplication cheap;
``repro.serve`` makes it *shared*.  This example runs the scenario the
serving tier was built for:

- three clinics (tenants ``north``, ``east``, ``west``) hold RLWE-
  encrypted patient vectors under one analyst key;
- each clinic independently submits **single-ciphertext** masking
  requests (plaintext multiplies) to the same compute service — none
  of them batches anything on its own;
- the service's coalescing scheduler merges the compatible requests
  across tenants into a few batched ``multiply_plain_many`` engine
  passes (one stacked NTT instead of one per request), then splits the
  results back per request;
- the analyst decrypts, and every served result is verified
  bit-identical to a direct library call.

Run:  python examples/service_analytics.py
"""

import random

from repro.fhe.rlwe import RLWE, RLWEParams
from repro.serve import (
    ComputeService,
    RLWEMultiplyPlainOp,
    ServiceClient,
    ServiceConfig,
    render_stats,
)

import numpy as np

CLINICS = ("north", "east", "west")
RECORDS_PER_CLINIC = 8
N = 256  # ring dimension = patients per vector
T = 1024  # plaintext modulus


def main() -> None:
    rng = random.Random(2016)
    params = RLWEParams(n=N, t=T, noise_bound=5)
    scheme = RLWE(params, rng=rng)
    secret = scheme.generate_secret()

    # Each clinic encrypts its weekly step-count vectors.
    plaintexts = {
        clinic: [
            [rng.randrange(0, 120) for _ in range(N)]
            for _ in range(RECORDS_PER_CLINIC)
        ]
        for clinic in CLINICS
    }
    encrypted = {
        clinic: scheme.encrypt_many(secret, rows)
        for clinic, rows in plaintexts.items()
    }
    # The analyst's cohort mask: keep every 4th patient.
    mask = [1 if i % 4 == 0 else 0 for i in range(N)]

    print(
        f"{len(CLINICS)} clinics x {RECORDS_PER_CLINIC} encrypted "
        f"vectors (RLWE, n={N}, t={T}), one shared compute service\n"
    )

    with ComputeService(config=ServiceConfig()) as service:
        clients = {
            clinic: ServiceClient(service, tenant=clinic)
            for clinic in CLINICS
        }
        # Hold dispatch while the clinics fire their independent
        # single-ciphertext requests, the way a busy service naturally
        # accumulates a queue; on release the scheduler coalesces
        # compatible requests into batched engine passes.
        futures = []
        with service.scheduler.paused():
            for clinic, client in clients.items():
                for ct in encrypted[clinic]:
                    op = RLWEMultiplyPlainOp.of(params, [ct], [mask])
                    futures.append((clinic, ct, client.submit(op)))
        responses = [
            (clinic, ct, future.result())
            for clinic, ct, future in futures
        ]

        total = len(responses)
        ok = sum(1 for _, _, r in responses if r.ok)
        print(f"{ok}/{total} masking requests served ok")

        # Every served ciphertext must be bit-identical to the direct
        # library call — coalescing is a scheduling move, not a math one.
        identical = 0
        for _, ct, response in responses:
            want = scheme.multiply_plain(ct, mask)
            got = response.result[0]
            if np.array_equal(got.c0, want.c0) and np.array_equal(
                got.c1, want.c1
            ):
                identical += 1
        print(
            f"{identical}/{total} served results bit-identical to "
            f"direct multiply_plain"
        )
        assert identical == total

        # The analyst decrypts one served result per clinic.
        for clinic in CLINICS:
            _, _, response = next(
                item for item in responses if item[0] == clinic
            )
            decrypted = scheme.decrypt(secret, response.result[0])
            print(
                f"  {clinic}: decrypted masked vector, "
                f"sample positions {decrypted[:4]}..."
            )

        snapshot = service.stats()
        batching = snapshot["coalescing"]
        print(
            f"\n{total} single-ciphertext requests ran as "
            f"{batching['batches']} batched engine passes "
            f"({batching['requests_per_batch']:.1f} requests/batch)\n"
        )
        print(render_stats(snapshot))

    print(
        "\nevery batched pass stacked the tenants' ring products into "
        "one multi-row negacyclic NTT — the accelerator's batch "
        "dimension, filled by the scheduler instead of any one client"
    )


if __name__ == "__main__":
    main()
