"""Jobs API walkthrough: futures-style submission over the Engine.

The scenario: an FHE service front-end accepts multiplication requests
while earlier batches are still computing.  The jobs layer gives it

- ``submit`` — queue work, keep the caller free (futures-style handle),
- ``map`` — chunk a large series into batched jobs,
- ``as_completed`` — consume results in completion order,
- the ``software-mp`` backend — shard each batch over worker processes.

Run: ``python examples/jobs_pipeline.py``
"""

import random
import time

from repro.engine import Engine, ExecutionConfig
from repro.jobs import JobScheduler, MultiplyJob, as_completed

rng = random.Random(20160314)
BITS = 2048


def make_pairs(count):
    return [
        (rng.getrandbits(BITS), rng.getrandbits(BITS))
        for _ in range(count)
    ]


# -- submit: the caller stays free while the queue works ----------------
engine = Engine()
with JobScheduler(engine) as jobs:
    handle = jobs.submit(MultiplyJob.batched(make_pairs(8)))
    print(f"submitted {handle!r}; caller is free immediately")
    overlap_work = sum(range(1_000_00))  # front-end keeps serving
    products = handle.result()
    print(f"batch of {len(products)} products done "
          f"(handle.done()={handle.done()})")

    # -- map: one large series, chunked into batched jobs ---------------
    pairs = make_pairs(48)
    start = time.perf_counter()
    looped = [
        jobs.submit(MultiplyJob.of(a, b)).result()[0] for a, b in pairs
    ]
    looped_s = time.perf_counter() - start
    start = time.perf_counter()
    mapped = jobs.map("multiply", pairs, chunk=16)
    mapped_s = time.perf_counter() - start
    assert looped == mapped == [a * b for a, b in pairs]
    print(f"48 products: looped submission {looped_s * 1e3:.1f} ms, "
          f"map(chunk=16) {mapped_s * 1e3:.1f} ms "
          f"({looped_s / mapped_s:.2f}x)")

    # -- as_completed: stream results as they land -----------------------
    handles = jobs.submit_map("multiply", make_pairs(12), chunk=4)
    for done in as_completed(handles):
        print(f"  job {done.job_id} finished with "
              f"{len(done.result())} products")

# -- software-mp: the same batch sharded over worker processes ----------
mp_engine = Engine(
    config=ExecutionConfig(workers=2), backend="software-mp"
)
pairs = make_pairs(16)
left = [a for a, _ in pairs]
right = [b for _, b in pairs]
assert mp_engine.multiply(left, right) == [a * b for a, b in pairs]
print("software-mp backend: 16 products sharded over "
      f"{mp_engine.backend.workers(mp_engine)} workers, bit-identical")
mp_engine.close()
engine.close()
print("done")
