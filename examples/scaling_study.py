#!/usr/bin/env python3
"""Design-space exploration: PEs, radix plans, and multiplier crossover.

Three sweeps over the models:

1. **PE scaling** — T_FFT and T_MULT for 1..16 processing elements
   (the paper's flexible/composable design goal: the same architecture
   spans single-chip and multi-FPGA deployments);
2. **radix plans** — alternative factorizations of the 64K transform
   ("the FFT-64 unit can be adapted to compute also radix-8/16/32",
   Section IV-b);
3. **algorithm crossover** — operation counts of schoolbook, Karatsuba
   and SSA versus operand size, locating the ~100,000-bit break-even
   the paper cites for SSA.

Run:  python examples/scaling_study.py
"""

from repro.analysis.sweep import (
    crossover_point,
    operand_size_sweep,
    pe_scaling_sweep,
    radix_plan_sweep,
)


def main() -> None:
    print("=== PE scaling (64K-point FFT, 200 MHz) ===\n")
    print(f"{'PEs':>4} {'T_FFT (us)':>11} {'T_MULT (us)':>12} {'efficiency':>11}")
    for point in pe_scaling_sweep():
        print(
            f"{point.pes:>4} {point.fft_us:>11.2f} {point.mult_us:>12.2f} "
            f"{point.parallel_efficiency:>10.0%}"
        )
    print("\n(paper operating point: 4 PEs -> 30.72 us / 122.88 us)")

    print("\n=== radix-plan alternatives for the 64K transform ===\n")
    for radices, fft_us in radix_plan_sweep().items():
        plan_name = "x".join(str(r) for r in radices)
        marker = "  <- paper (Eq. 2)" if radices == (64, 64, 16) else ""
        print(f"  {plan_name:<12} T_FFT = {fft_us:.2f} us{marker}")
    print(
        "\nat 8 points/cycle all plans tie on latency; the radix choice"
        "\ntrades twiddle-multiplier and memory-port cost instead"
    )

    print("\n=== multiplication algorithm crossover ===\n")
    print(
        f"{'bits':>9} {'schoolbook':>12} {'karatsuba':>12} {'SSA':>12}"
        f" {'winner':>10}"
    )
    for point in operand_size_sweep():
        costs = {
            "schoolbook": point.schoolbook,
            "karatsuba": point.karatsuba,
            "ssa": point.ssa,
        }
        winner = min(costs, key=costs.get)
        print(
            f"{point.bits:>9} {point.schoolbook:>12.3g} "
            f"{point.karatsuba:>12.3g} {point.ssa:>12.3g} {winner:>10}"
        )
    karatsuba_x = crossover_point("karatsuba")
    schoolbook_x = crossover_point("schoolbook")
    print(
        f"\nSSA overtakes schoolbook at ~{schoolbook_x:,} bits and "
        f"Karatsuba at ~{karatsuba_x:,} bits"
    )
    print("paper (Section III): 'advantageous for operands of at least 100,000 bits'")


if __name__ == "__main__":
    main()
