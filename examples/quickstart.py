#!/usr/bin/env python3
"""Quickstart: the paper's headline workload through the Engine façade.

Multiplies two 786,432-bit integers (the DGHV "small setting"
ciphertext size) three ways —

1. ``Engine()`` — bit-exact Schönhage–Strassen over GF(2^64 − 2^32 + 1)
   on the software backend,
2. ``Engine(backend="hw-model")`` — the same product through the
   cycle-counted accelerator model, which also yields the ≈122 µs
   timing of the 4-PE Stratix V design,
3. Python's built-in multiplication, as the ground truth —

then prints the reproduced Table I and Table II.

Run:  python examples/quickstart.py
"""

import random
import time

from repro.engine import Engine
from repro.hw import table1_report, table2_report


def main() -> None:
    rng = random.Random(2016)
    a = rng.getrandbits(786_432)
    b = rng.getrandbits(786_432)

    print("operands: two random 786,432-bit integers\n")

    software = Engine()  # paper parameters: 32K x 24-bit, 64K-point NTT
    t0 = time.perf_counter()
    product_ssa = software.multiply(a, b)
    t1 = time.perf_counter()
    print(f"Engine():                 {t1 - t0:6.2f} s wall clock (pure Python/numpy)")

    hardware = Engine(backend="hw-model")  # 4 PEs, 200 MHz, radix-64/64/16
    product_hw, report = hardware.multiply_with_report(a, b)
    print(f"Engine(backend=hw-model): {report.time_us:6.2f} us simulated at 200 MHz")
    print()
    print(report.render())
    print()

    truth = a * b
    assert product_ssa == truth, "SSA product mismatch!"
    assert product_hw == truth, "accelerator product mismatch!"
    print("both backends are bit-exact against Python's big integers\n")

    print(table1_report().render())
    print()
    print(table2_report().render())


if __name__ == "__main__":
    main()
