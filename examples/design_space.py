#!/usr/bin/env python3
"""Architecture specs and automated design-space exploration.

Walkthrough of :mod:`repro.arch`, the declarative layer over the
cycle/resource hardware model:

1. **the paper spec** — :meth:`ArchSpec.paper_default` reproduces the
   DATE'16 operating point (4 PEs, 16-bank memories, hypercube
   exchange) and answers derived questions: aggregate exchange
   bandwidth, bisection width, and an ALM-equivalent area proxy;
2. **what-if edits** — :meth:`ArchSpec.with_overrides` derives
   variants (more PEs, a ring exchange) without touching the model
   code, and JSON round-trips make specs file-able artifacts;
3. **automated exploration** — :func:`repro.arch.explore.explore`
   enumerates a :class:`DesignSpace`, prices every candidate on the
   paper 64K-SSA and RLWE workloads, and returns the Pareto frontier
   of total cycles vs area — including whether anything strictly
   dominates the paper point.

Run:  python examples/design_space.py
"""

from repro.arch import ArchSpec, DesignSpace, explore


def main() -> None:
    print("=== the DATE'16 operating point, declaratively ===\n")
    paper = ArchSpec.paper_default()
    print(paper.render())
    print(
        f"\naggregate exchange bandwidth: "
        f"{paper.aggregate_bandwidth_words_per_cycle()} words/cycle"
        f"\nbisection width: "
        f"{paper.bisection_words_per_cycle()} words/cycle"
        f"\narea proxy: {paper.area_proxy():,.0f} ALM-eq"
    )

    print("\n=== what-if variants via with_overrides ===\n")
    for spec in (
        paper.with_overrides(pes=8, name="hypercube-p8"),
        paper.with_overrides(topology="ring", name="ring-p4"),
        paper.with_overrides(fft_units=2, name="dual-unit-p4"),
    ):
        print(
            f"  {spec.name:<14} area {spec.area_proxy():>10,.0f} ALM-eq, "
            f"bisection {spec.bisection_words_per_cycle():>3} words/cycle"
        )
    restored = ArchSpec.from_json(paper.to_json())
    print(f"\nJSON round-trip is exact: {restored == paper}")

    print("\n=== automated design-space exploration ===\n")
    # A trimmed space keeps the example quick; the full default space
    # (144 candidates) is what `repro arch sweep` runs.
    space = DesignSpace(max_candidates=48)
    result = explore(space, use_jobs=False)
    print(result.render(limit=8))

    dominating = result.dominating_paper()
    if dominating:
        best = dominating[0]
        print(
            f"\ntakeaway: {best.spec.name} delivers the same 64K "
            f"schedule with fewer cycles overall at lower area — the "
            f"paper point trades a little of both for symmetric "
            f"4-PE scaling headroom"
        )


if __name__ == "__main__":
    main()
