#!/usr/bin/env python3
"""Drive the accelerator model through a full 64K-point distributed FFT.

Reproduces, from a live simulation rather than formulas:

- the per-stage compute/exchange schedule of paper Fig. 2 (four PEs,
  three compute stages, hypercube exchanges hidden behind compute);
- the T_FFT ≈ 30.7 µs figure of Section V, cross-checked between the
  transaction-level simulation and the analytic model;
- the per-PE activity counters (FFT cycles, twiddle products, link
  traffic);
- a smaller run in ``datapath`` fidelity, where every sub-transform
  goes through the shift-only FFT-64 unit and the banked memories with
  live conflict checking, to show the two fidelities agree bit-exactly.

Run:  python examples/accelerator_simulation.py
"""

import random

import numpy as np

from repro.engine import Engine, ExecutionConfig
from repro.field.solinas import P
from repro.field.vector import to_field_array
from repro.hw.timing import PAPER_TIMING
from repro.ssa.encode import SSAParameters


def main() -> None:
    rng = random.Random(64)

    print("=== 64K-point distributed NTT on 4 PEs (fast fidelity) ===\n")
    engine = Engine(backend="hw-model")
    accelerator = engine.hardware()  # 4 PEs, the paper's 64K plan
    data = to_field_array([rng.randrange(P) for _ in range(65536)])
    spectrum, report = accelerator.distributed_ntt(data)
    print(report.render())
    print()
    print("schedule (cycles, per PE):")
    print(report.timeline.render())
    print()
    print(
        f"analytic T_FFT = {PAPER_TIMING.fft_time_us():.2f} us, "
        f"simulated = {report.time_us:.2f} us, paper reports 30.7 us"
    )

    print("\nper-PE activity:")
    for pe in accelerator.pes:
        c = pe.counters
        print(
            f"  {pe.name}: fft_cycles={c.fft_cycles}, "
            f"words_sent={c.words_sent}, words_received={c.words_received}"
        )

    print("\n=== 1024-point run in datapath fidelity ===\n")
    params = SSAParameters(coefficient_bits=24, operand_coefficients=512)
    small_engine = Engine(
        config=ExecutionConfig(fidelity="datapath"), backend="hw-model"
    )
    small = small_engine.hardware(
        plan=small_engine.plan(1024, (64, 16)), params=params
    )
    x = to_field_array([rng.randrange(P) for _ in range(1024)])
    fast, _ = small.distributed_ntt(x, fidelity="fast")
    exact, dp_report = small.distributed_ntt(x, fidelity="datapath")
    match = "bit-exact" if np.array_equal(fast, exact) else "MISMATCH"
    print(f"fast vs datapath fidelity: {match}")
    print(dp_report.render())
    unit = small.pes[0].fft_unit
    print(
        f"\npe0 FFT-64 unit: {unit.transforms} sub-transforms "
        f"({unit.radix_counts}), busy {unit.busy_cycles} cycles"
    )
    modmul_ops = sum(m.operations for m in small.pes[0].twiddle_multipliers)
    print(f"pe0 twiddle multipliers: {modmul_ops} modular products")
    buffer0 = small.pes[0].buffers[0][0]
    print(
        f"pe0 banked buffer: {buffer0.read_beats} read beats, "
        f"{buffer0.write_beats} write beats, zero conflicts"
    )


if __name__ == "__main__":
    main()
