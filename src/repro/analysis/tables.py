"""Paper-reported constants and shape-preservation checks.

The reproduction bar (see EXPERIMENTS.md): absolute numbers come from a
model rather than Quartus synthesis, so what must hold is the *shape* —
who wins, by what factor, where crossovers fall.  ``shape_check``
encodes that comparison uniformly for tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: Section V headline numbers.
PAPER_FFT_US = 30.7
PAPER_MULT_US = 122.0
PAPER_DOTPROD_US = 10.2
PAPER_CARRY_US = 20.0
#: "The execution time of [28] is 3.32X larger..."
PAPER_SPEEDUP_VS_28 = 3.32
#: "...while the other results are 1.69X larger, or more."
PAPER_MIN_SPEEDUP_OTHERS = 1.69
#: "around 60% saving in hardware costs" (Table I discussion).
PAPER_HARDWARE_SAVING = 0.60


@dataclass(frozen=True)
class ShapeResult:
    """Outcome of one shape comparison."""

    name: str
    measured: float
    reference: float
    tolerance: float

    @property
    def ratio(self) -> float:
        return self.measured / self.reference

    @property
    def ok(self) -> bool:
        return abs(self.ratio - 1.0) <= self.tolerance

    def render(self) -> str:
        status = "OK " if self.ok else "OFF"
        return (
            f"[{status}] {self.name}: measured {self.measured:.3g} vs "
            f"paper {self.reference:.3g} (ratio {self.ratio:.2f}, "
            f"tol ±{self.tolerance:.0%})"
        )


def shape_check(
    name: str,
    measured: float,
    reference: float,
    tolerance: float = 0.15,
) -> ShapeResult:
    """Compare a measured quantity against the paper's value.

    ``tolerance`` is the relative deviation accepted; benchmarks print
    the result and tests assert ``.ok``.
    """
    if reference == 0:
        raise ValueError("reference must be nonzero")
    return ShapeResult(
        name=name,
        measured=measured,
        reference=reference,
        tolerance=tolerance,
    )
