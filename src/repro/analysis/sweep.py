"""Parameter sweeps over the timing and algorithm models.

Backing for the scaling/ablation/crossover benchmarks:

- :func:`pe_scaling_sweep` — T_FFT / T_MULT versus PE count (the
  scalability argument of Section IV);
- :func:`radix_plan_sweep` — alternative radix factorizations of the
  64K transform ("this gives us greater flexibility in choosing an FFT
  order other than 64K", Section IV-b);
- :func:`operand_size_sweep` / :func:`crossover_point` — operation
  counts of SSA versus the classical multipliers (the ≥100,000-bit
  claim of Section III).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.spec import ArchSpec
from repro.hw.timing import AcceleratorTiming
from repro.ntt.plan import plan_for_size


@dataclass(frozen=True)
class ScalingPoint:
    pes: int
    fft_us: float
    mult_us: float
    parallel_efficiency: float


def pe_scaling_sweep(
    pe_counts: Sequence[int] = (1, 2, 4, 8, 16),
    clock_ns: float = 5.0,
) -> List[ScalingPoint]:
    """T_FFT and T_MULT for each PE count, with parallel efficiency.

    Each point is an :class:`~repro.arch.spec.ArchSpec` — the paper
    configuration with the PE count and clock replaced — priced through
    the closed-form model (identical numbers to the pre-`ArchSpec`
    scalar sweep).
    """
    points = []
    base: Optional[float] = None
    for pes in pe_counts:
        spec = ArchSpec.paper_default().with_overrides(
            pes=pes, clock_ns=clock_ns, name=f"hypercube-p{pes}"
        )
        timing = AcceleratorTiming.for_arch(spec)
        fft = timing.fft_time_us()
        if base is None:
            base = fft
        efficiency = base / (fft * pes)
        points.append(
            ScalingPoint(
                pes=pes,
                fft_us=fft,
                mult_us=timing.multiplication_time_us(),
                parallel_efficiency=efficiency,
            )
        )
    return points


def radix_plan_sweep(
    n: int = 65536,
    plans: Sequence[Tuple[int, ...]] = (
        (64, 64, 16),
        (64, 32, 32),
        (64, 16, 64),
        (32, 32, 64),
        (16, 64, 64),
    ),
    pes: int = 4,
    clock_ns: float = 5.0,
) -> Dict[Tuple[int, ...], float]:
    """FFT latency of alternative radix factorizations of ``n``."""
    spec = ArchSpec.paper_default().with_overrides(
        pes=pes, clock_ns=clock_ns, name=f"hypercube-p{pes}"
    )
    out: Dict[Tuple[int, ...], float] = {}
    for radices in plans:
        plan = plan_for_size(n, radices)
        timing = AcceleratorTiming.for_arch(spec, plan=plan)
        out[tuple(radices)] = timing.fft_time_us()
    return out


# --- multiplication algorithm cost models -----------------------------------


def schoolbook_ops(bits: int, limb_bits: int = 24) -> float:
    """Limb products of schoolbook multiplication."""
    limbs = max(1, math.ceil(bits / limb_bits))
    return float(limbs * limbs)


def karatsuba_ops(bits: int, limb_bits: int = 24) -> float:
    """Limb products of Karatsuba (n^log2(3))."""
    limbs = max(1, math.ceil(bits / limb_bits))
    return float(limbs ** math.log2(3))


def ssa_ops(bits: int, limb_bits: int = 24) -> float:
    """Field multiplications of one SSA multiply.

    Three transforms of 2n points at ~(radix sum) multiplies per point
    per stage, plus the 2n point-wise products — the O(n log n)
    envelope with the constants of our plans.
    """
    limbs = max(2, math.ceil(bits / limb_bits))
    points = 2 * limbs
    stages = max(1, math.ceil(math.log(points, 64)))
    per_transform = points * stages * 8  # 8 ops/point/stage (radix-64 column)
    return float(3 * per_transform + points)


@dataclass(frozen=True)
class SizePoint:
    bits: int
    schoolbook: float
    karatsuba: float
    ssa: float


def operand_size_sweep(
    bit_sizes: Sequence[int] = (
        1024,
        4096,
        16384,
        65536,
        131072,
        262144,
        786432,
        1572864,
    ),
) -> List[SizePoint]:
    """Operation counts of the three algorithms across operand sizes."""
    return [
        SizePoint(
            bits=bits,
            schoolbook=schoolbook_ops(bits),
            karatsuba=karatsuba_ops(bits),
            ssa=ssa_ops(bits),
        )
        for bits in bit_sizes
    ]


def crossover_point(
    rival: str = "karatsuba", lo: int = 256, hi: int = 1 << 24
) -> int:
    """Smallest operand size (bits) where SSA beats the rival model.

    Bisects the cost models; the paper claims SSA wins from roughly
    100,000 bits against the usual schemes.
    """
    cost = {"schoolbook": schoolbook_ops, "karatsuba": karatsuba_ops}[rival]
    if ssa_ops(hi) >= cost(hi):
        raise ValueError("SSA never wins within the probed range")
    while lo < hi:
        mid = (lo + hi) // 2
        if ssa_ops(mid) < cost(mid):
            hi = mid
        else:
            lo = mid + 1
    return lo
