"""Evaluation helpers: paper constants, sweeps, and formatting."""

from repro.analysis.tables import (
    PAPER_FFT_US,
    PAPER_MULT_US,
    PAPER_SPEEDUP_VS_28,
    shape_check,
)
from repro.analysis.sweep import (
    pe_scaling_sweep,
    radix_plan_sweep,
    operand_size_sweep,
    crossover_point,
)

__all__ = [
    "PAPER_FFT_US",
    "PAPER_MULT_US",
    "PAPER_SPEEDUP_VS_28",
    "shape_check",
    "pe_scaling_sweep",
    "radix_plan_sweep",
    "operand_size_sweep",
    "crossover_point",
]
