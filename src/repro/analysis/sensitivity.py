"""Sensitivity of the Table I conclusion to the calibration constants.

The resource census uses a handful of calibrated unit costs
(DESIGN.md §6).  A fair question: does the paper's ~60% hardware-saving
conclusion depend on those choices?  This module recomputes the census
under perturbed constants and reports the spread of the savings ratio —
demonstrating that the *comparison* is carried by structure (64→8
reductors, shared chains, 8-vs-64-wide memory) rather than by the
absolute calibration.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from repro.hw import resources as rc


@contextmanager
def perturbed_unit_costs(
    adder: float = 1.0,
    csa: float = 1.0,
    mux: float = 1.0,
    overhead: float = 1.0,
) -> Iterator[None]:
    """Temporarily scale the census unit costs (multiplicative)."""
    saved = (
        rc.ALM_PER_ADDER_BIT,
        rc.ALM_PER_CSA_BIT,
        rc.ALM_PER_MUX4_BIT,
        rc.CONTROL_OVERHEAD,
    )
    try:
        rc.ALM_PER_ADDER_BIT = saved[0] * adder
        rc.ALM_PER_CSA_BIT = saved[1] * csa
        rc.ALM_PER_MUX4_BIT = saved[2] * mux
        rc.CONTROL_OVERHEAD = saved[3] * overhead
        yield
    finally:
        (
            rc.ALM_PER_ADDER_BIT,
            rc.ALM_PER_CSA_BIT,
            rc.ALM_PER_MUX4_BIT,
            rc.CONTROL_OVERHEAD,
        ) = saved


@dataclass(frozen=True)
class SensitivityPoint:
    """Savings under one perturbation of the unit costs."""

    label: str
    scale: float
    alm_saving: float
    register_saving: float


def _current_savings() -> Tuple[float, float]:
    # Import inside so the census sees the perturbed constants.
    from repro.hw.reports import table1_report

    table = table1_report()
    return table.saving("alms"), table.saving("registers")


def savings_sensitivity(
    scales: Tuple[float, ...] = (0.7, 0.85, 1.0, 1.15, 1.3),
) -> List[SensitivityPoint]:
    """Sweep each unit cost over ``scales``; collect the savings."""
    points: List[SensitivityPoint] = []
    knobs: Dict[str, str] = {
        "adder": "ALMs/adder-bit",
        "csa": "ALMs/CSA-bit",
        "mux": "ALMs/mux-bit",
        "overhead": "control overhead",
    }
    for knob, label in knobs.items():
        for scale in scales:
            with perturbed_unit_costs(**{knob: scale}):
                alm, reg = _current_savings()
            points.append(
                SensitivityPoint(
                    label=label,
                    scale=scale,
                    alm_saving=alm,
                    register_saving=reg,
                )
            )
    return points


def savings_envelope(
    points: List[SensitivityPoint],
) -> Tuple[float, float]:
    """(min, max) of the ALM saving across all perturbations."""
    savings = [p.alm_saving for p in points]
    return min(savings), max(savings)


def render_sensitivity(points: List[SensitivityPoint]) -> str:
    lines = [
        f"{'unit cost':<20}{'scale':>7}{'ALM saving':>12}{'reg saving':>12}"
    ]
    for p in points:
        lines.append(
            f"{p.label:<20}{p.scale:>7.2f}{p.alm_saving:>11.0%}"
            f"{p.register_saving:>12.0%}"
        )
    low, high = savings_envelope(points)
    lines.append(
        f"\nALM-saving envelope over all perturbations: "
        f"{low:.0%} .. {high:.0%} (paper: ~60%)"
    )
    return "\n".join(lines)
