"""Roots of unity in ``GF(p)`` and the shift-only twiddle structure.

Provides:

- ``root_of_unity(n)`` — a primitive ``n``-th root for any ``n | 2**32``,
  chosen *compatibly*: ``root_of_unity(a) == root_of_unity(b)**(b//a)``
  whenever ``a | b``, and ``root_of_unity(64) == 8`` so that all
  radix-64/16/8 butterflies are shifts (paper Eq. 3).
- ``shift_amount_for_power(root, e)`` — for roots that are powers of
  two, the bit-shift realizing multiplication by ``root**e``.

The compatibility anchor is derived once by a Pohlig–Hellman discrete
log (see :mod:`repro.field.dlog`): we find the exponent ``u`` with
``η**u == 8`` for a 2-Sylow generator ``η`` and then define the
``2**k``-th root ladder through ``8`` instead of through an arbitrary
generator power.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict

from repro.field.dlog import TWO_SYLOW_ORDER, dlog_pow2, two_sylow_generator
from repro.field.solinas import ORDER_OF_TWO, P, inverse, pow_mod

#: Generator of GF(p)* used for root derivation.
GENERATOR = 7

#: Largest power-of-two transform size supported by the field.
MAX_POW2_ORDER = TWO_SYLOW_ORDER


@lru_cache(maxsize=1)
def _anchored_sylow_generator() -> int:
    """A generator ``η`` of the 2-Sylow subgroup with ``η**(2**26) == 8``.

    ``8`` has order 64 = 2**6, hence ``8 = η0**(2**26 · u)`` with ``u``
    odd for any Sylow generator ``η0``.  Setting ``η = η0**u`` keeps η a
    generator (``u`` odd) and anchors the whole root ladder on 8, so
    every ``2**k``-th root returned by :func:`root_of_unity` is a power
    of the same chain and ``root_of_unity(64) == 8`` exactly.
    """
    eta0 = two_sylow_generator()
    exponent = dlog_pow2(8, eta0, TWO_SYLOW_ORDER)
    u = exponent >> 26
    if u % 2 == 0 or (u << 26) != exponent:
        raise ArithmeticError("unexpected discrete-log structure for 8")
    return pow_mod(eta0, u)


@lru_cache(maxsize=None)
def root_of_unity(n: int) -> int:
    """Return the canonical primitive ``n``-th root of unity.

    ``n`` must be a power of two dividing ``2**32``.  The roots form a
    compatible ladder: ``root_of_unity(n)**2 == root_of_unity(n // 2)``
    and ``root_of_unity(64) == 8``.
    """
    if n <= 0 or n & (n - 1):
        raise ValueError(f"n must be a power of two, got {n}")
    if n > MAX_POW2_ORDER:
        raise ValueError(f"no {n}-th root of unity exists in GF(p)")
    eta = _anchored_sylow_generator()
    root = pow_mod(eta, TWO_SYLOW_ORDER // n)
    return root


@lru_cache(maxsize=None)
def inverse_root_of_unity(n: int) -> int:
    """Return ``root_of_unity(n)**-1`` (used by inverse transforms)."""
    return inverse(root_of_unity(n))


def omega_64k() -> int:
    """The primitive 65536th root used by the paper's 64K-point FFT.

    Satisfies ``omega_64k()**1024 == 8`` so the radix-64 sub-transforms
    of the three-stage decomposition (paper Eq. 2) are shift-only.
    """
    return root_of_unity(65536)


@lru_cache(maxsize=None)
def _pow2_dlog_table() -> Dict[int, int]:
    """Map each power of two in GF(p) to its exponent: ``2**s -> s``."""
    table = {}
    value = 1
    for s in range(ORDER_OF_TWO):
        table[value] = s
        value = (value * 2) % P
    return table


def shift_amount_for_power(root: int, exponent: int) -> int:
    """Bit-shift ``s`` such that ``root**exponent == 2**s (mod p)``.

    Only valid when ``root`` is itself a power of two (e.g. the radix-64
    root ``8 = 2**3`` or the radix-8 root ``2**24``).  This is the
    quantity wired into the hardware shifter banks.

    Raises
    ------
    ValueError
        If ``root`` is not a power of two in GF(p).
    """
    table = _pow2_dlog_table()
    if root not in table:
        raise ValueError(f"{root} is not a power of 2 modulo p")
    base_shift = table[root]
    return (base_shift * exponent) % ORDER_OF_TWO


def is_primitive_root(root: int, n: int) -> bool:
    """Check that ``root`` has exact multiplicative order ``n``."""
    if pow_mod(root, n) != 1:
        return False
    # n is a power of two in our use; check the single maximal divisor.
    if n % 2 == 0 and pow_mod(root, n // 2) == 1:
        return False
    return True
