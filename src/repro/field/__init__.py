"""Arithmetic in Z/pZ for the Solinas prime ``p = 2**64 - 2**32 + 1``.

The prime (often called the *Goldilocks* prime) is the modulus chosen by
the paper (Section III) because multiplications by powers of two reduce
to shifts: ``2**96 == -1 (mod p)``, hence ``8`` is a 64th root of unity
and radix-64 NTT butterflies need no general multiplier.

Public surface:

- scalar operations (:mod:`repro.field.solinas`),
- reduction identities used by the hardware (:mod:`repro.field.reduction`),
- root-of-unity derivation (:mod:`repro.field.roots`),
- vectorized numpy arithmetic (:mod:`repro.field.vector`).
"""

from repro.field.solinas import (
    P,
    ORDER_OF_TWO,
    add,
    sub,
    neg,
    mul,
    sqr,
    pow_mod,
    inverse,
    mul_by_pow2,
    is_canonical,
)
from repro.field.reduction import (
    reduce_128,
    reduce_192,
    normalize_eq4,
)
from repro.field.roots import (
    GENERATOR,
    root_of_unity,
    inverse_root_of_unity,
    omega_64k,
    shift_amount_for_power,
)
from repro.field.vector import (
    vadd,
    vsub,
    vneg,
    vmul,
    vmul_scalar,
    to_field_array,
    from_field_array,
)

__all__ = [
    "P",
    "ORDER_OF_TWO",
    "add",
    "sub",
    "neg",
    "mul",
    "sqr",
    "pow_mod",
    "inverse",
    "mul_by_pow2",
    "is_canonical",
    "reduce_128",
    "reduce_192",
    "normalize_eq4",
    "GENERATOR",
    "root_of_unity",
    "inverse_root_of_unity",
    "omega_64k",
    "shift_amount_for_power",
    "vadd",
    "vsub",
    "vneg",
    "vmul",
    "vmul_scalar",
    "to_field_array",
    "from_field_array",
]
