"""Scalar arithmetic modulo the Solinas prime ``p = 2**64 - 2**32 + 1``.

The paper selects this prime (Section III) so that the modular
multiplications appearing in NTT butterflies become shifts:

- ``2**64 ≡ 2**32 - 1 (mod p)``
- ``2**96 ≡ -1     (mod p)``  ⇒  ``ord(2) = 192`` and ``ord(8) = 64``

All functions operate on canonical residues (integers in ``[0, p)``)
and return canonical residues.  They are deliberately simple — they are
the *oracle* against which the hardware-style datapaths in
:mod:`repro.hw` and the vectorized kernels in :mod:`repro.field.vector`
are validated.
"""

from __future__ import annotations

#: The Solinas ("Goldilocks") prime used throughout the accelerator.
P = (1 << 64) - (1 << 32) + 1

#: Multiplicative order of 2 modulo ``P`` (because ``2**96 ≡ -1``).
ORDER_OF_TWO = 192

_MASK64 = (1 << 64) - 1
_MASK32 = (1 << 32) - 1


def is_canonical(x: int) -> bool:
    """Return ``True`` when ``x`` is a canonical residue in ``[0, P)``."""
    return 0 <= x < P


def add(a: int, b: int) -> int:
    """Return ``(a + b) mod P``."""
    s = a + b
    if s >= P:
        s -= P
    return s


def sub(a: int, b: int) -> int:
    """Return ``(a - b) mod P``."""
    d = a - b
    if d < 0:
        d += P
    return d


def neg(a: int) -> int:
    """Return ``-a mod P``."""
    return 0 if a == 0 else P - a


def mul(a: int, b: int) -> int:
    """Return ``(a * b) mod P``."""
    return (a * b) % P


def sqr(a: int) -> int:
    """Return ``a**2 mod P``."""
    return (a * a) % P


def pow_mod(base: int, exponent: int) -> int:
    """Return ``base**exponent mod P`` (supports negative exponents)."""
    if exponent < 0:
        return pow(inverse(base), -exponent, P)
    return pow(base, exponent, P)


def inverse(a: int) -> int:
    """Return the multiplicative inverse of ``a`` modulo ``P``.

    Raises
    ------
    ZeroDivisionError
        If ``a ≡ 0 (mod P)``.
    """
    if a % P == 0:
        raise ZeroDivisionError("0 has no inverse modulo P")
    return pow(a, P - 2, P)


def mul_by_pow2(a: int, shift: int) -> int:
    """Return ``a * 2**shift mod P`` using only shifts and adds.

    This mirrors the hardware shifter banks: because ``2**96 ≡ -1``,
    a multiplication by any power of two is a shift by ``shift mod 96``
    with a sign flip for every wrap of 96.  Negative shifts divide by
    the corresponding power of two (used by inverse transforms).

    The implementation never forms a product wider than 192 bits and is
    exactly the operation performed by :class:`repro.hw.shifter_bank`.
    """
    shift %= ORDER_OF_TWO
    negate = False
    if shift >= 96:
        shift -= 96
        negate = True
    # a < 2**64 and shift < 96 so the raw shift fits in 160 bits; one
    # Eq.4-style fold brings it back under 2**64 + epsilon.
    value = a << shift
    value = _fold_192(value)
    if negate:
        value = neg(value)
    return value


def _fold_192(x: int) -> int:
    """Reduce a value of up to 192 bits to a canonical residue.

    Uses the word-level identities ``2**64 ≡ 2**32 - 1`` and
    ``2**128 ≡ -2**32`` (both consequences of ``2**96 ≡ -1``):

    ``x = h·2**128 + m·2**64 + l  ≡  l + m·(2**32 - 1) - h·2**32``
    """
    l = x & _MASK64
    m = (x >> 64) & _MASK64
    h = x >> 128
    return (l + (m << 32) - m - (h << 32)) % P
