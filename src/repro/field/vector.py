"""Vectorized ``GF(p)`` arithmetic on numpy ``uint64`` arrays.

Pure-Python big-int arithmetic is the correctness oracle but is far too
slow for 64K-point transforms, so the software fast path emulates the
64×64→128-bit multiply with 32-bit limb products (exactly the
schoolbook decomposition the paper's DSP-based modular multiplier uses,
Section IV-d) and reduces with the word-level identities behind
Equation 4.

All arrays hold canonical residues (``< p``) as ``uint64``.  Overflow
wrapping of numpy unsigned arithmetic is exploited deliberately and
each helper documents the ranges involved.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.field.solinas import P

_P64 = np.uint64(P)
_MASK32 = np.uint64(0xFFFFFFFF)
_SHIFT32 = np.uint64(32)
#: 2**32 - 1, the "epsilon" of the Goldilocks reduction (2**64 ≡ epsilon).
_EPSILON = np.uint64(0xFFFFFFFF)


def to_field_array(values: Iterable[int]) -> np.ndarray:
    """Convert an iterable of Python ints into a canonical uint64 array."""
    reduced = [int(v) % P for v in values]
    return np.array(reduced, dtype=np.uint64)


def from_field_array(array: np.ndarray) -> List[int]:
    """Convert a uint64 field array back to a list of Python ints."""
    return [int(v) for v in array]


def to_field_matrix(rows) -> np.ndarray:
    """Convert a sequence of equal-length int rows to a canonical
    ``(batch, n)`` uint64 matrix.

    Fast paths: ``uint64`` rows canonicalize with one conditional
    subtraction (``x < 2**64 < 2p``, so ``x mod p`` is ``x`` or
    ``x − p``); rows of any other integer dtype convert through
    ``int64`` in one vectorized pass — non-negative values are
    canonical as-is (``2**63 − 1 < p``), and a negative ``x`` lands at
    ``x + 2**64`` after the unsigned cast, which is
    ``x + epsilon (mod p)``, so subtracting ``epsilon`` restores
    ``x + p``, canonical for any ``x ≥ −2**63``.  Everything else
    (Python ints beyond int64, ragged input, floats) falls back to the
    exact per-element :func:`to_field_array` route.
    """
    try:
        arr = np.asarray(rows)
    except ValueError:  # ragged rows — let np.stack report it
        arr = None
    if arr is not None and arr.dtype.kind in "iu":
        if arr.dtype == np.uint64:
            out = arr.astype(np.uint64, copy=True)
            out[out >= _P64] -= _P64
            return out
        signed = arr.astype(np.int64)  # every other int dtype fits
        out = signed.astype(np.uint64)
        return np.where(signed < 0, out - _EPSILON, out)
    return np.stack([to_field_array(row) for row in rows])


def vadd(
    a: np.ndarray, b: np.ndarray, out: Optional[np.ndarray] = None
) -> np.ndarray:
    """Elementwise ``(a + b) mod p`` for canonical inputs.

    ``a + b < 2p < 2**65`` may wrap; wrapping happened iff the unsigned
    sum is smaller than an operand, and a wrapped value needs
    ``+ 2**64 mod p = + epsilon``.

    ``out`` (optional) receives the result and is returned; it may
    alias ``a`` and/or ``b``, letting accumulation loops run without
    allocating per-iteration temporaries.
    """
    if out is None:
        s = a + b
        wrapped = s < a
        s = np.where(wrapped, s + _EPSILON, s)
        # The +epsilon correction cannot wrap again: a wrapped s is < p - 1.
        s = np.where(s >= _P64, s - _P64, s)
        return s
    # a + b wraps 2**64 iff a > ~b, decided *before* the add so that
    # out may alias either operand through any view, not just the same
    # array object.
    wrapped = a > np.bitwise_not(b)
    np.add(a, b, out=out)
    np.add(out, _EPSILON, out=out, where=wrapped)
    np.subtract(out, _P64, out=out, where=out >= _P64)
    return out


def vsub(
    a: np.ndarray, b: np.ndarray, out: Optional[np.ndarray] = None
) -> np.ndarray:
    """Elementwise ``(a - b) mod p`` for canonical inputs.

    ``out`` (optional) receives the result and is returned; it may
    alias ``a`` and/or ``b``.
    """
    if out is None:
        d = a - b
        borrowed = a < b
        # A borrow means the true value is d - 2**64 ≡ d - epsilon (mod p).
        d = np.where(borrowed, d - _EPSILON, d)
        return np.where(d >= _P64, d - _P64, d)
    borrowed = a < b  # read before the subtract may clobber a or b
    np.subtract(a, b, out=out)
    np.subtract(out, _EPSILON, out=out, where=borrowed)
    np.subtract(out, _P64, out=out, where=out >= _P64)
    return out


def vneg(a: np.ndarray) -> np.ndarray:
    """Elementwise ``-a mod p``."""
    return np.where(a == 0, a, _P64 - a)


def _mul_wide(a: np.ndarray, b: np.ndarray):
    """Full 128-bit product of canonical operands as ``(hi, lo)`` uint64.

    Mirrors the DSP decomposition: four 32×32 partial products combined
    schoolbook-style (paper Section IV-d).
    """
    a0 = a & _MASK32
    a1 = a >> _SHIFT32
    b0 = b & _MASK32
    b1 = b >> _SHIFT32

    p00 = a0 * b0  # < 2**64, exact
    p01 = a0 * b1
    p10 = a1 * b0
    p11 = a1 * b1

    # mid collects bits [32, 96): ≤ 3·(2**32 - 1) so it fits easily.
    mid = (p00 >> _SHIFT32) + (p01 & _MASK32) + (p10 & _MASK32)
    lo = (p00 & _MASK32) | ((mid & _MASK32) << _SHIFT32)
    hi = p11 + (p01 >> _SHIFT32) + (p10 >> _SHIFT32) + (mid >> _SHIFT32)
    return hi, lo


def _reduce_wide(
    hi: np.ndarray, lo: np.ndarray, out: Optional[np.ndarray] = None
) -> np.ndarray:
    """Reduce a 128-bit value ``hi·2**64 + lo`` to a canonical residue.

    Word-level form of the paper's Equation 4: with ``hi = h1·2**32 + h0``,
    ``x ≡ lo − h1 + h0·(2**32 − 1) (mod p)``.

    ``out`` (optional) receives the result and is returned; it may
    alias ``hi`` or ``lo``.
    """
    h0 = hi & _MASK32
    h1 = hi >> _SHIFT32

    if out is None:
        # t = lo - h1 (mod p); on borrow the wrapped value needs -epsilon.
        t = lo - h1
        borrowed = lo < h1
        t = np.where(borrowed, t - _EPSILON, t)

        # t += h0 * epsilon; h0*epsilon < 2**64 always, sum may wrap once.
        t2 = t + h0 * _EPSILON
        wrapped = t2 < t
        t2 = np.where(wrapped, t2 + _EPSILON, t2)

        return np.where(t2 >= _P64, t2 - _P64, t2)

    # In-place pipeline: h0/h1 were extracted above, so out may freely
    # clobber hi or lo from here on.
    borrowed = lo < h1
    np.subtract(lo, h1, out=out)
    np.subtract(out, _EPSILON, out=out, where=borrowed)
    np.multiply(h0, _EPSILON, out=h0)  # exact: h0·epsilon < 2**64
    np.add(out, h0, out=out)
    # The sum wrapped iff it ended up below the (still intact) addend.
    np.add(out, _EPSILON, out=out, where=out < h0)
    np.subtract(out, _P64, out=out, where=out >= _P64)
    return out


def vmul(
    a: np.ndarray, b: np.ndarray, out: Optional[np.ndarray] = None
) -> np.ndarray:
    """Elementwise ``(a * b) mod p`` for canonical inputs.

    ``out`` (optional) receives the result and is returned; it may
    alias ``a`` and/or ``b`` (the wide product is formed before the
    reduction writes anything).
    """
    hi, lo = _mul_wide(a, b)
    return _reduce_wide(hi, lo, out=out)


def vmul_scalar(
    a: np.ndarray, scalar: int, out: Optional[np.ndarray] = None
) -> np.ndarray:
    """Elementwise ``(a * scalar) mod p`` with a Python-int scalar.

    The scalar is broadcast as a zero-stride view, not materialized as
    a full array.
    """
    s = np.broadcast_to(np.uint64(scalar % P), a.shape)
    return vmul(a, s, out=out)
