"""Vectorized ``GF(p)`` arithmetic on numpy ``uint64`` arrays.

Pure-Python big-int arithmetic is the correctness oracle but is far too
slow for 64K-point transforms, so the software fast path emulates the
64×64→128-bit multiply with 32-bit limb products (exactly the
schoolbook decomposition the paper's DSP-based modular multiplier uses,
Section IV-d) and reduces with the word-level identities behind
Equation 4.

All arrays hold canonical residues (``< p``) as ``uint64``.  Overflow
wrapping of numpy unsigned arithmetic is exploited deliberately and
each helper documents the ranges involved.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.field.solinas import P

_P64 = np.uint64(P)
_MASK32 = np.uint64(0xFFFFFFFF)
_SHIFT32 = np.uint64(32)
#: 2**32 - 1, the "epsilon" of the Goldilocks reduction (2**64 ≡ epsilon).
_EPSILON = np.uint64(0xFFFFFFFF)


def to_field_array(values: Iterable[int]) -> np.ndarray:
    """Convert an iterable of Python ints into a canonical uint64 array."""
    reduced = [int(v) % P for v in values]
    return np.array(reduced, dtype=np.uint64)


def from_field_array(array: np.ndarray) -> List[int]:
    """Convert a uint64 field array back to a list of Python ints."""
    return [int(v) for v in array]


def vadd(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise ``(a + b) mod p`` for canonical inputs.

    ``a + b < 2p < 2**65`` may wrap; wrapping happened iff the unsigned
    sum is smaller than an operand, and a wrapped value needs
    ``+ 2**64 mod p = + epsilon``.
    """
    s = a + b
    wrapped = s < a
    s = np.where(wrapped, s + _EPSILON, s)
    # The +epsilon correction cannot wrap again: a wrapped s is < p - 1.
    s = np.where(s >= _P64, s - _P64, s)
    return s


def vsub(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise ``(a - b) mod p`` for canonical inputs."""
    d = a - b
    borrowed = a < b
    # A borrow means the true value is d - 2**64 ≡ d - epsilon (mod p).
    d = np.where(borrowed, d - _EPSILON, d)
    return np.where(d >= _P64, d - _P64, d)


def vneg(a: np.ndarray) -> np.ndarray:
    """Elementwise ``-a mod p``."""
    return np.where(a == 0, a, _P64 - a)


def _mul_wide(a: np.ndarray, b: np.ndarray):
    """Full 128-bit product of canonical operands as ``(hi, lo)`` uint64.

    Mirrors the DSP decomposition: four 32×32 partial products combined
    schoolbook-style (paper Section IV-d).
    """
    a0 = a & _MASK32
    a1 = a >> _SHIFT32
    b0 = b & _MASK32
    b1 = b >> _SHIFT32

    p00 = a0 * b0  # < 2**64, exact
    p01 = a0 * b1
    p10 = a1 * b0
    p11 = a1 * b1

    # mid collects bits [32, 96): ≤ 3·(2**32 - 1) so it fits easily.
    mid = (p00 >> _SHIFT32) + (p01 & _MASK32) + (p10 & _MASK32)
    lo = (p00 & _MASK32) | ((mid & _MASK32) << _SHIFT32)
    hi = p11 + (p01 >> _SHIFT32) + (p10 >> _SHIFT32) + (mid >> _SHIFT32)
    return hi, lo


def _reduce_wide(hi: np.ndarray, lo: np.ndarray) -> np.ndarray:
    """Reduce a 128-bit value ``hi·2**64 + lo`` to a canonical residue.

    Word-level form of the paper's Equation 4: with ``hi = h1·2**32 + h0``,
    ``x ≡ lo − h1 + h0·(2**32 − 1) (mod p)``.
    """
    h0 = hi & _MASK32
    h1 = hi >> _SHIFT32

    # t = lo - h1 (mod p); on borrow the wrapped value needs -epsilon.
    t = lo - h1
    borrowed = lo < h1
    t = np.where(borrowed, t - _EPSILON, t)

    # t += h0 * epsilon; h0*epsilon < 2**64 always, sum may wrap once.
    t2 = t + h0 * _EPSILON
    wrapped = t2 < t
    t2 = np.where(wrapped, t2 + _EPSILON, t2)

    return np.where(t2 >= _P64, t2 - _P64, t2)


def vmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise ``(a * b) mod p`` for canonical inputs."""
    hi, lo = _mul_wide(a, b)
    return _reduce_wide(hi, lo)


def vmul_scalar(a: np.ndarray, scalar: int) -> np.ndarray:
    """Elementwise ``(a * scalar) mod p`` with a Python-int scalar."""
    s = np.full_like(a, np.uint64(scalar % P))
    return vmul(a, s)
