"""Hardware-style modular reduction paths for ``p = 2**64 - 2**32 + 1``.

The paper's datapath reduces wide intermediate values with Equation 4:

    ``a·2**96 + b·2**64 + c·2**32 + d ≡ 2**32·(b + c) − a − b + d (mod p)``

which applies to 128-bit numbers (``a, b, c, d`` are 32-bit words).  The
Normalize block in the FFT-64 unit performs this *coarse* reduction; the
result may still exceed ``p`` by a small amount and the AddMod block
finishes with at most one extra addition or subtraction of ``p``.

Intermediate butterfly values never exceed 192 bits because
``8**64 ≡ 2**192 ≡ 1 (mod p)`` (paper Eq. 3 discussion), so a 192-bit
reduction path is also provided.
"""

from __future__ import annotations

from typing import Tuple

from repro.field.solinas import P

_MASK32 = (1 << 32) - 1
_MASK64 = (1 << 64) - 1


def split_words_128(x: int) -> Tuple[int, int, int, int]:
    """Split a 128-bit value into the four 32-bit words ``(a, b, c, d)``.

    ``x = a·2**96 + b·2**64 + c·2**32 + d`` — the layout used by Eq. 4.
    """
    if x < 0 or x >= (1 << 128):
        raise ValueError("split_words_128 expects a 128-bit value")
    d = x & _MASK32
    c = (x >> 32) & _MASK32
    b = (x >> 64) & _MASK32
    a = (x >> 96) & _MASK32
    return a, b, c, d


def normalize_eq4(x: int) -> int:
    """Coarse reduction of a 128-bit value via the paper's Equation 4.

    Returns a value that is congruent to ``x`` modulo ``p`` and fits in
    a (signed) 66-bit range; unlike :func:`reduce_128` it does **not**
    produce the canonical residue.  This models the Normalize block,
    whose output still requires the final AddMod correction.
    """
    a, b, c, d = split_words_128(x)
    return ((b + c) << 32) - a - b + d


def addmod_correct(x: int) -> int:
    """Final correction step (the AddMod block).

    Accepts the output of :func:`normalize_eq4` — possibly negative or
    slightly above ``p`` — and folds it into ``[0, p)`` with at most a
    couple of conditional additions/subtractions, exactly as the
    hardware does.
    """
    while x < 0:
        x += P
    while x >= P:
        x -= P
    return x


def reduce_128(x: int) -> int:
    """Fully reduce a 128-bit value to its canonical residue mod ``p``.

    Composition of the Normalize (Eq. 4) and AddMod stages.
    """
    return addmod_correct(normalize_eq4(x))


def reduce_192(x: int) -> int:
    """Fully reduce a value of up to 192 bits to a canonical residue.

    The FFT-64 accumulators hold values below ``2**192`` (since
    ``8**64 ≡ 1``).  The hardware folds the top 64 bits first, using
    ``2**128 ≡ -2**32 (mod p)``, then applies the 128-bit path.
    """
    if x < 0 or x >= (1 << 192):
        raise ValueError("reduce_192 expects a value below 2**192")
    low = x & ((1 << 128) - 1)
    high = x >> 128  # ≤ 64 bits
    # 2**128 ≡ -(2**32)  ⇒  high·2**128 ≡ -(high << 32)
    return (normalize_eq4(low) - (high << 32)) % P


def reduce_any(x: int) -> int:
    """Reduce an arbitrary (possibly negative) integer mod ``p``.

    Convenience oracle used by tests; not a hardware path.
    """
    return x % P
