"""Vectorized execution of mixed-radix transform plans.

Implements the staged dataflow of paper Eq. 2: at every stage the
working set is viewed as ``(blocks, radix, tail)``; a small DFT is
applied along the ``radix`` axis for all blocks/columns at once, the
inter-stage twiddles are applied, and the block axis grows by the
radix.  After the last stage a single digit-reversal permutation
restores natural output order.

This is the software model of what the accelerator does with hardware
FFT-64 units plus DSP twiddle multipliers; it is bit-exact against
:func:`repro.ntt.reference.dft_reference`.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.field.solinas import P, inverse
from repro.field.vector import vadd, vmul
from repro.ntt.plan import TransformPlan


def _stage_dft(block_view: np.ndarray, matrix: np.ndarray) -> np.ndarray:
    """Apply a radix-R DFT along axis 1 of a ``(B, R, M)`` array.

    ``out[b, k, m] = Σ_i  matrix[k, i] · block_view[b, i, m]`` — R²
    scalar-vector modular multiply-accumulates, the software analogue
    of the shift-and-add chains in the FFT-64 unit.
    """
    b, radix, tail = block_view.shape
    out = np.zeros_like(block_view)
    for k in range(radix):
        acc = np.zeros((b, tail), dtype=np.uint64)
        row = matrix[k]
        for i in range(radix):
            w = row[i]
            if w == 1:
                term = block_view[:, i, :]
            else:
                term = vmul(
                    block_view[:, i, :],
                    np.broadcast_to(w, (b, tail)),
                )
            acc = vadd(acc, term)
        out[:, k, :] = acc
    return out


def execute_plan(values: np.ndarray, plan: TransformPlan) -> np.ndarray:
    """Forward NTT of ``values`` (uint64 canonical array) under ``plan``."""
    if values.shape != (plan.n,):
        raise ValueError(f"expected a flat array of length {plan.n}")
    data = np.ascontiguousarray(values, dtype=np.uint64).reshape(1, plan.n)
    for stage in plan.stages:
        blocks, length = data.shape
        radix = stage.radix
        tail = length // radix
        view = data.reshape(blocks, radix, tail)
        view = _stage_dft(view, stage.dft_matrix)
        if stage.twiddles is not None:
            view = vmul(view, stage.twiddles[np.newaxis, :, :])
        data = view.reshape(blocks * radix, tail)
    flat = data.reshape(plan.n)
    return flat[plan.output_permutation]


def execute_plan_inverse(values: np.ndarray, plan: TransformPlan) -> np.ndarray:
    """Inverse NTT: forward with the conjugate plan, scaled by ``n^{-1}``."""
    if plan.inverse_plan is None:
        raise ValueError("plan was built without an inverse companion")
    spectrum = execute_plan(values, plan.inverse_plan)
    n_inv = np.uint64(inverse(plan.n))
    return vmul(spectrum, np.full(plan.n, n_inv, dtype=np.uint64))
