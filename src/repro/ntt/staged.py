"""Vectorized execution of mixed-radix transform plans.

Implements the staged dataflow of paper Eq. 2: at every stage the
working set is viewed as ``(blocks, radix, tail)``; a small DFT is
applied along the ``radix`` axis for all blocks/columns at once, the
inter-stage twiddles are applied, and the block axis grows by the
radix.  After the last stage a single digit-reversal permutation
restores natural output order — unless the plan is *decimated*
(``plan.ordering == ORDER_DECIMATED``): a decimation-in-frequency
forward then simply keeps the decimated block order (no gather), and
its decimation-in-time inverse companion (``plan.dit``) walks the
reversed stage schedule with each twiddle diagonal applied *before*
its DFT, consuming decimated spectra and emitting natural-order
coefficients with no gather either.  Convolution pipelines pair the
two and never permute at all.

The stage DFT itself dispatches on the plan's *kernel backend*
(:mod:`repro.ntt.kernels`): the ``loop`` reference walks the
``radix²`` multiply-accumulate web in interpreted iterations, while
the default ``limb-matmul`` backend evaluates the same web as a
handful of exact 16-bit-limb float64 matmuls — the software analogue
of the FFT-64 unit computing a radix-64 DFT in one pipelined pass.
The executor ping-pongs between two preallocated working buffers and
applies twiddles in place, so a transform allocates O(batch·n) once
instead of churning per-stage temporaries.

The executor is *batched*: the native operand is a ``(batch, n)``
uint64 matrix whose rows are independent transforms.  Because every
stage treats blocks identically, a batch row is simply one more level
of the block axis, so throughput-oriented callers amortize the
remaining per-stage overhead across the whole batch.

``execute_plan``/``execute_plan_inverse`` accept either a flat length-n
vector (the historical API, returned flat) or a ``(batch, n)`` matrix;
the single-vector path is a thin ``batch=1`` wrapper and is bit-exact
against :func:`repro.ntt.reference.dft_reference`.

These functions are the ``software`` compute backend of the
:class:`repro.engine.Engine` façade; prefer ``engine.ring(n)`` for new
code — it is the same executor behind a shape-polymorphic surface with
per-engine plan caching.
"""

from __future__ import annotations

import numpy as np

from repro.field.vector import vmul
from repro.ntt.kernels import stage_dft_loop, stage_executor
from repro.ntt.plan import ORDER_DECIMATED, TransformPlan


def _stage_dft(block_view: np.ndarray, matrix: np.ndarray) -> np.ndarray:
    """Reference radix-R DFT along axis 1 of a ``(B, R, M)`` array.

    Back-compat shim over :func:`repro.ntt.kernels.stage_dft_loop`,
    kept as the bit-exactness oracle for the fast kernel.
    """
    return stage_dft_loop(block_view, matrix)


def execute_plan_batch(values: np.ndarray, plan: TransformPlan) -> np.ndarray:
    """Row-wise forward NTT of a ``(batch, n)`` uint64 matrix.

    Each row is transformed exactly as :func:`execute_plan` would
    transform it alone; the batch axis rides along as the slowest
    dimension of the block axis, so every stage's small-DFT and twiddle
    multiply run vectorized across the whole batch.
    """
    data = np.ascontiguousarray(values, dtype=np.uint64)
    if data.ndim != 2 or data.shape[1] != plan.n:
        raise ValueError(f"expected a (batch, {plan.n}) uint64 matrix")
    batch = data.shape[0]
    kernel = stage_executor(plan.kernel or None)
    if plan.dit:
        return _execute_dit_batch(data, plan, kernel)

    # Two ping-pong buffers cover every stage: the kernels write `dst`
    # from `src` without aliasing, and stage output shapes all hold
    # batch·n elements.  The caller's array is only ever read.
    src = data
    bufs = [np.empty_like(data), None]
    which = 0
    for stage in plan.stages:
        rows, length = src.shape
        radix = stage.radix
        tail = length // radix
        if bufs[which] is None:
            bufs[which] = np.empty_like(data)
        dst = bufs[which].reshape(rows, radix, tail)
        kernel(src.reshape(rows, radix, tail), stage, dst)
        if stage.twiddles is not None:
            vmul(dst, stage.twiddles[np.newaxis, :, :], out=dst)
        src = dst.reshape(rows * radix, tail)
        which = 1 - which
    out = src.reshape(batch, plan.n)
    if plan.ordering == ORDER_DECIMATED:
        # Permutation-free: the decimated block order *is* the output.
        # `out` is one of the freshly allocated ping-pong buffers, so
        # the caller owns it outright.
        return out
    return out[:, plan.output_permutation]


def _execute_dit_batch(
    data: np.ndarray, plan: TransformPlan, kernel
) -> np.ndarray:
    """Decimation-in-time walk: pre-twiddles, growing tail, no gather.

    Stage ``j`` views the working set as ``(groups, radix, tail)`` with
    ``tail`` the product of the radices already executed; the stage's
    twiddle diagonal multiplies the *input* view (the transpose of the
    DIF schedule, where it followed the DFT), then the — transposed,
    already folded into the plan's constants — stage DFT runs along the
    radix axis.  Input is a decimated spectrum; output is natural-order
    coefficients, with the ``n^{-1}`` scale folded into the plan.
    """
    batch = data.shape[0]
    src = data
    bufs = [np.empty_like(data), None]
    which = 0
    tail = 1
    for stage in plan.stages:
        radix = stage.radix
        groups = (batch * plan.n) // (radix * tail)
        view = src.reshape(groups, radix, tail)
        if stage.twiddles is not None:
            tw = stage.twiddles[np.newaxis, :, :]
            if src is data:
                # Never write the caller's array: pre-twiddle into the
                # idle ping-pong buffer instead of in place.
                if bufs[1 - which] is None:
                    bufs[1 - which] = np.empty_like(data)
                view = vmul(
                    view, tw, out=bufs[1 - which].reshape(groups, radix, tail)
                )
            else:
                vmul(view, tw, out=view)
        if bufs[which] is None:
            bufs[which] = np.empty_like(data)
        kernel(view, stage, bufs[which].reshape(groups, radix, tail))
        src = bufs[which]
        which = 1 - which
        tail *= radix
    return src.reshape(batch, plan.n)


def execute_plan_inverse_batch(
    values: np.ndarray, plan: TransformPlan
) -> np.ndarray:
    """Row-wise inverse NTT of a ``(batch, n)`` uint64 matrix.

    For a fused negacyclic plan (``plan.twist``) the inverse companion
    already carries the ``n^{-1}`` scale (and the ψ⁻¹-untwist) in its
    last-stage constants, so the plan execution *is* the whole inverse
    — no trailing scale pass.  Decimated pairs fold ``n^{-1}`` into the
    DIT inverse's last-executed stage the same way.
    """
    if plan.inverse_plan is None:
        raise ValueError("plan was built without an inverse companion")
    spectrum = execute_plan_batch(values, plan.inverse_plan)
    if plan.twist or plan.ordering == ORDER_DECIMATED:
        return spectrum
    # `spectrum` is freshly owned: scale in place.
    return vmul(
        spectrum,
        np.broadcast_to(plan.n_inv, spectrum.shape),
        out=spectrum,
    )


def execute_plan(values: np.ndarray, plan: TransformPlan) -> np.ndarray:
    """Forward NTT under ``plan``.

    A flat length-n array transforms to a flat array; a ``(batch, n)``
    matrix transforms row-wise to a matrix of the same shape.
    """
    arr = np.ascontiguousarray(values, dtype=np.uint64)
    if arr.ndim == 2:
        return execute_plan_batch(arr, plan)
    if arr.shape != (plan.n,):
        raise ValueError(f"expected a flat array of length {plan.n}")
    return execute_plan_batch(arr.reshape(1, plan.n), plan)[0]


def execute_plan_inverse(values: np.ndarray, plan: TransformPlan) -> np.ndarray:
    """Inverse NTT: forward with the conjugate plan, scaled by ``n^{-1}``.

    Accepts the same flat-vector / ``(batch, n)`` shapes as
    :func:`execute_plan`.
    """
    arr = np.ascontiguousarray(values, dtype=np.uint64)
    if arr.ndim == 2:
        return execute_plan_inverse_batch(arr, plan)
    if arr.shape != (plan.n,):
        raise ValueError(f"expected a flat array of length {plan.n}")
    return execute_plan_inverse_batch(arr.reshape(1, plan.n), plan)[0]
