"""Vectorized execution of mixed-radix transform plans.

Implements the staged dataflow of paper Eq. 2: at every stage the
working set is viewed as ``(blocks, radix, tail)``; a small DFT is
applied along the ``radix`` axis for all blocks/columns at once, the
inter-stage twiddles are applied, and the block axis grows by the
radix.  After the last stage a single digit-reversal permutation
restores natural output order.

The executor is *batched*: the native operand is a ``(batch, n)``
uint64 matrix whose rows are independent transforms.  Because every
stage treats blocks identically, a batch row is simply one more level
of the block axis — the per-stage Python loop count (radix² iterations)
is independent of the batch size, so throughput-oriented callers
amortize all interpreter overhead across the whole batch.  This is the
software analogue of the paper's Section V observation that spare
hardware resources admit pipelining of independent multiplications.

``execute_plan``/``execute_plan_inverse`` accept either a flat length-n
vector (the historical API, returned flat) or a ``(batch, n)`` matrix;
the single-vector path is a thin ``batch=1`` wrapper and is bit-exact
against :func:`repro.ntt.reference.dft_reference`.
"""

from __future__ import annotations

import numpy as np

from repro.field.vector import vadd, vmul
from repro.ntt.plan import TransformPlan


def _stage_dft(block_view: np.ndarray, matrix: np.ndarray) -> np.ndarray:
    """Apply a radix-R DFT along axis 1 of a ``(B, R, M)`` array.

    ``out[b, k, m] = Σ_i  matrix[k, i] · block_view[b, i, m]`` — R²
    scalar-vector modular multiply-accumulates, the software analogue
    of the shift-and-add chains in the FFT-64 unit.
    """
    b, radix, tail = block_view.shape
    out = np.zeros_like(block_view)
    for k in range(radix):
        acc = np.zeros((b, tail), dtype=np.uint64)
        row = matrix[k]
        for i in range(radix):
            w = row[i]
            if w == 1:
                term = block_view[:, i, :]
            else:
                term = vmul(
                    block_view[:, i, :],
                    np.broadcast_to(w, (b, tail)),
                )
            acc = vadd(acc, term)
        out[:, k, :] = acc
    return out


def execute_plan_batch(values: np.ndarray, plan: TransformPlan) -> np.ndarray:
    """Row-wise forward NTT of a ``(batch, n)`` uint64 matrix.

    Each row is transformed exactly as :func:`execute_plan` would
    transform it alone; the batch axis rides along as the slowest
    dimension of the block axis, so every stage's small-DFT matmul and
    twiddle multiply run vectorized across the whole batch.
    """
    data = np.ascontiguousarray(values, dtype=np.uint64)
    if data.ndim != 2 or data.shape[1] != plan.n:
        raise ValueError(f"expected a (batch, {plan.n}) uint64 matrix")
    batch = data.shape[0]
    for stage in plan.stages:
        rows, length = data.shape
        radix = stage.radix
        tail = length // radix
        view = data.reshape(rows, radix, tail)
        view = _stage_dft(view, stage.dft_matrix)
        if stage.twiddles is not None:
            view = vmul(view, stage.twiddles[np.newaxis, :, :])
        data = view.reshape(rows * radix, tail)
    out = data.reshape(batch, plan.n)
    return out[:, plan.output_permutation]


def execute_plan_inverse_batch(
    values: np.ndarray, plan: TransformPlan
) -> np.ndarray:
    """Row-wise inverse NTT of a ``(batch, n)`` uint64 matrix."""
    if plan.inverse_plan is None:
        raise ValueError("plan was built without an inverse companion")
    spectrum = execute_plan_batch(values, plan.inverse_plan)
    return vmul(spectrum, np.broadcast_to(plan.n_inv, spectrum.shape))


def execute_plan(values: np.ndarray, plan: TransformPlan) -> np.ndarray:
    """Forward NTT under ``plan``.

    A flat length-n array transforms to a flat array; a ``(batch, n)``
    matrix transforms row-wise to a matrix of the same shape.
    """
    arr = np.ascontiguousarray(values, dtype=np.uint64)
    if arr.ndim == 2:
        return execute_plan_batch(arr, plan)
    if arr.shape != (plan.n,):
        raise ValueError(f"expected a flat array of length {plan.n}")
    return execute_plan_batch(arr.reshape(1, plan.n), plan)[0]


def execute_plan_inverse(values: np.ndarray, plan: TransformPlan) -> np.ndarray:
    """Inverse NTT: forward with the conjugate plan, scaled by ``n^{-1}``.

    Accepts the same flat-vector / ``(batch, n)`` shapes as
    :func:`execute_plan`.
    """
    arr = np.ascontiguousarray(values, dtype=np.uint64)
    if arr.ndim == 2:
        return execute_plan_inverse_batch(arr, plan)
    if arr.shape != (plan.n,):
        raise ValueError(f"expected a flat array of length {plan.n}")
    return execute_plan_inverse_batch(arr.reshape(1, plan.n), plan)[0]
