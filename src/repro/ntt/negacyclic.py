"""Negacyclic convolution: polynomial products in ``Z_p[x]/(x^n + 1)``.

Section III notes that ultralong multiplication "plays a central role in
different fully homomorphic schemes, such as ... solutions based on
Lattice problems and Learning with Errors, which may thus be
implemented on top of the accelerator".  RLWE schemes multiply in the
negacyclic ring ``Z_q[x]/(x^n + 1)`` — implemented here with the
classic ψ-twist: scale input ``i`` by ``ψ^i`` (ψ a primitive 2n-th
root, ``ψ² = ω``), run the ordinary cyclic NTT of size ``n``, and
untwist by ``ψ^{-i}``.  The same FFT hardware serves both convolution
flavors; only the twiddle constants change.

By default every function here executes a *fused* plan
(:data:`repro.ntt.plan.TWIST_NEGACYCLIC`): the ψ-twist lives in the
first-stage DFT/twiddle constants and the ψ⁻¹-untwist plus ``n^{-1}``
in the inverse companion's stages, so a negacyclic transform is one
plain plan execution — the two full-vector twist ``vmul`` passes (and
the inverse scale pass) disappear.  Passing an unfused plan keeps the
historical explicit-twist route, which doubles as the bit-exactness
oracle for the fused constants.

The *convolution* entry points additionally default to the decimated
(permutation-free) plan pair: their forward→pointwise→inverse sandwich
never looks at spectrum order, so the digit-reversal gathers drop too.
The explicit-spectra pair :func:`negacyclic_transform_many` /
:func:`negacyclic_inverse_many` keeps natural-order spectra by default
— callers who inspect spectra see the historical layout unless they
pass a decimated plan themselves (see :mod:`repro.ntt.order`).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional, Tuple

import numpy as np

from repro.field.roots import root_of_unity
from repro.field.solinas import P, inverse, pow_mod
from repro.field.vector import vmul
from repro.ntt.plan import (
    ORDER_DECIMATED,
    ORDER_NATURAL,
    TWIST_NEGACYCLIC,
    TransformPlan,
    plan_for_size,
)
from repro.ntt.staged import execute_plan_batch, execute_plan_inverse_batch


@lru_cache(maxsize=None)
def twist_tables(n: int) -> Tuple[np.ndarray, np.ndarray]:
    """``(ψ^i, ψ^{-i})`` tables for the forward and inverse twist.

    Public so backend-polymorphic callers (notably
    :class:`repro.engine.Ring`) can wrap any plain cyclic transform
    into a negacyclic one; the tables are cached per ``n``.
    """
    psi = root_of_unity(2 * n)
    if pow_mod(psi, 2) != root_of_unity(n):
        raise ArithmeticError("psi is not a square root of omega")
    forward = np.empty(n, dtype=np.uint64)
    backward = np.empty(n, dtype=np.uint64)
    psi_inv = inverse(psi)
    f = b = 1
    for i in range(n):
        forward[i] = f
        backward[i] = b
        f = f * psi % P
        b = b * psi_inv % P
    return forward, backward


#: Back-compat alias (pre-engine internal name).
_twist_tables = twist_tables


def _negacyclic_plan(
    n: int,
    plan: Optional[TransformPlan],
    ordering: str = ORDER_NATURAL,
) -> TransformPlan:
    """Resolve the plan for an ``n``-point negacyclic operation.

    ``None`` builds (and caches) the fused negacyclic plan with the
    requested ``ordering``; an explicit plan — fused or not, natural or
    decimated — is validated and used as given, so callers can pin the
    explicit-twist oracle route by passing a cyclic plan.
    """
    if plan is None:
        return plan_for_size(n, twist=TWIST_NEGACYCLIC, ordering=ordering)
    if plan.n != n:
        raise ValueError("plan size does not match input length")
    return plan


def negacyclic_convolution(
    a: np.ndarray,
    b: np.ndarray,
    plan: Optional[TransformPlan] = None,
) -> np.ndarray:
    """Coefficients of ``a(x)·b(x) mod (x^n + 1)`` over ``GF(p)``.

    Unlike the SSA path there is no zero-padding: the wrap-around terms
    pick up the ``−1`` sign that the twist encodes.
    """
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError("inputs must be equal-length flat arrays")
    result = negacyclic_convolution_many(
        np.asarray(a, dtype=np.uint64).reshape(1, -1),
        np.asarray(b, dtype=np.uint64).reshape(1, -1),
        plan,
    )
    return result[0]


def negacyclic_convolution_many(
    a: np.ndarray,
    b: np.ndarray,
    plan: Optional[TransformPlan] = None,
) -> np.ndarray:
    """Row-wise negacyclic products of two ``(batch, n)`` matrices.

    All ``2·batch`` twisted rows go through one batched forward NTT,
    then a batched pointwise product, one batched inverse and the
    untwist — identical per row to :func:`negacyclic_convolution`.
    This is the ring-product engine behind the batched RLWE APIs.

    The default plan is the fused *decimated* pair: the spectra stay in
    decimated order through the order-agnostic pointwise product, so
    neither transform pays a digit-reversal gather.  Pass an explicit
    natural-ordering plan to pin the historical permuted route.
    """
    a = np.ascontiguousarray(a, dtype=np.uint64)
    b = np.ascontiguousarray(b, dtype=np.uint64)
    if a.ndim != 2 or a.shape != b.shape:
        raise ValueError("inputs must be equal-shape (batch, n) matrices")
    batch, n = a.shape
    if n == 0 or n & (n - 1):
        raise ValueError("length must be a power of two")
    plan = _negacyclic_plan(n, plan, ordering=ORDER_DECIMATED)
    spectra = negacyclic_transform_many(np.concatenate([a, b], axis=0), plan)
    # The pointwise product may overwrite the first half of the owned
    # spectra matrix instead of allocating a fresh one.
    product = vmul(spectra[:batch], spectra[batch:], out=spectra[:batch])
    return negacyclic_inverse_many(product, plan)


def negacyclic_convolution_broadcast(
    a: np.ndarray,
    b: np.ndarray,
    plan: Optional[TransformPlan] = None,
) -> np.ndarray:
    """Negacyclic product of every row of ``(batch, n)`` ``a`` with one
    fixed polynomial ``b``.

    The fixed operand is transformed once and its spectrum broadcast
    across the batch — ``batch + 1`` forward transforms instead of the
    ``2·batch`` a tiled :func:`negacyclic_convolution_many` would pay.
    This is the shape of RLWE key operations, where one secret meets
    many ciphertext polynomials.  Like
    :func:`negacyclic_convolution_many`, the default plan is the fused
    decimated (permutation-free) pair.
    """
    a = np.ascontiguousarray(a, dtype=np.uint64)
    b = np.ascontiguousarray(b, dtype=np.uint64)
    if a.ndim != 2 or b.shape != (a.shape[1],):
        raise ValueError(
            "expected a (batch, n) matrix and a length-n polynomial"
        )
    plan = _negacyclic_plan(a.shape[1], plan, ordering=ORDER_DECIMATED)
    spectra = negacyclic_transform_many(
        np.concatenate([a, b[np.newaxis, :]], axis=0), plan
    )
    return negacyclic_inverse_many(vmul(spectra[:-1], spectra[-1:]), plan)


def negacyclic_transform_many(
    polys: np.ndarray, plan: Optional[TransformPlan] = None
) -> np.ndarray:
    """Twisted forward spectra of a ``(batch, n)`` coefficient matrix.

    Together with :func:`negacyclic_inverse_many` this exposes the two
    halves of the convolution so callers can reuse spectra (e.g. one
    plaintext spectrum against both halves of an RLWE ciphertext).
    Spectra are identical bits whichever plan flavor computes them: a
    fused plan folds the twist into its first stage, an unfused plan
    pays the explicit twist ``vmul`` first.  The default plan keeps
    *natural* spectrum order (explicit-spectra callers see the
    historical layout); pass a decimated plan for permutation-free
    spectra.
    """
    polys = np.ascontiguousarray(polys, dtype=np.uint64)
    if polys.ndim != 2:
        raise ValueError("expected a (batch, n) matrix")
    n = polys.shape[1]
    if n == 0 or n & (n - 1):
        raise ValueError("length must be a power of two")
    plan = _negacyclic_plan(n, plan)
    if plan.twist == TWIST_NEGACYCLIC:
        return execute_plan_batch(polys, plan)
    forward, _ = twist_tables(n)
    return execute_plan_batch(vmul(polys, forward[np.newaxis, :]), plan)


def negacyclic_inverse_many(
    spectra: np.ndarray, plan: Optional[TransformPlan] = None
) -> np.ndarray:
    """Inverse of :func:`negacyclic_transform_many`: untwisted rows.

    On a fused plan the untwist (and ``n^{-1}``) live in the inverse
    stages, so this is one plain plan execution with no trailing
    vector passes.
    """
    spectra = np.ascontiguousarray(spectra, dtype=np.uint64)
    if spectra.ndim != 2:
        raise ValueError("expected a (batch, n) matrix")
    n = spectra.shape[1]
    plan = _negacyclic_plan(n, plan)
    if plan.twist == TWIST_NEGACYCLIC:
        return execute_plan_inverse_batch(spectra, plan)
    _, backward = twist_tables(n)
    product = execute_plan_inverse_batch(spectra, plan)
    # `product` is freshly owned by this call: untwist in place.
    return vmul(product, backward[np.newaxis, :], out=product)
