"""Negacyclic convolution: polynomial products in ``Z_p[x]/(x^n + 1)``.

Section III notes that ultralong multiplication "plays a central role in
different fully homomorphic schemes, such as ... solutions based on
Lattice problems and Learning with Errors, which may thus be
implemented on top of the accelerator".  RLWE schemes multiply in the
negacyclic ring ``Z_q[x]/(x^n + 1)`` — implemented here with the
classic ψ-twist: scale input ``i`` by ``ψ^i`` (ψ a primitive 2n-th
root, ``ψ² = ω``), run the ordinary cyclic NTT of size ``n``, and
untwist by ``ψ^{-i}``.  The same FFT hardware serves both convolution
flavors; only the twiddle constants change.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional, Tuple

import numpy as np

from repro.field.roots import root_of_unity
from repro.field.solinas import P, inverse, pow_mod
from repro.field.vector import vmul
from repro.ntt.plan import TransformPlan, plan_for_size
from repro.ntt.staged import execute_plan, execute_plan_inverse


@lru_cache(maxsize=None)
def _twist_tables(n: int) -> Tuple[np.ndarray, np.ndarray]:
    """(ψ^i, ψ^{-i}·n^{-1}) tables for the forward and inverse twist."""
    psi = root_of_unity(2 * n)
    if pow_mod(psi, 2) != root_of_unity(n):
        raise ArithmeticError("psi is not a square root of omega")
    forward = np.empty(n, dtype=np.uint64)
    backward = np.empty(n, dtype=np.uint64)
    psi_inv = inverse(psi)
    f = b = 1
    for i in range(n):
        forward[i] = f
        backward[i] = b
        f = f * psi % P
        b = b * psi_inv % P
    return forward, backward


def negacyclic_convolution(
    a: np.ndarray,
    b: np.ndarray,
    plan: Optional[TransformPlan] = None,
) -> np.ndarray:
    """Coefficients of ``a(x)·b(x) mod (x^n + 1)`` over ``GF(p)``.

    Unlike the SSA path there is no zero-padding: the wrap-around terms
    pick up the ``−1`` sign that the twist encodes.
    """
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError("inputs must be equal-length flat arrays")
    n = len(a)
    if n & (n - 1):
        raise ValueError("length must be a power of two")
    if plan is None:
        plan = plan_for_size(n)
    if plan.n != n:
        raise ValueError("plan size does not match input length")
    forward, backward = _twist_tables(n)
    ta = execute_plan(vmul(np.asarray(a, dtype=np.uint64), forward), plan)
    tb = execute_plan(vmul(np.asarray(b, dtype=np.uint64), forward), plan)
    product = execute_plan_inverse(vmul(ta, tb), plan)
    return vmul(product, backward)
