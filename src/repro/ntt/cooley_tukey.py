"""General Cooley–Tukey decomposition (paper Eq. 1), applied recursively.

For ``N = N1 · N2`` with input index ``n = N2·n1 + n2`` and output index
``k = N1·k2 + k1``::

    F[N1·k2 + k1] =
        Σ_{n2} [ ( Σ_{n1} f[N2·n1 + n2] · ω_{N1}^{n1·k1} )   (inner FFTs)
                 · ω_N^{n2·k1} ]                              (twiddles)
               · ω_{N2}^{n2·k2}                               (outer FFTs)

Unlike the common radix-2 special case, this formulation accepts any
factorization — the paper uses radix-64 and radix-16 stages so the
sub-transform twiddles are powers of 8 (i.e. shifts, Eq. 3).  This
module keeps the formulation *general* and scalar; the vectorized
staged execution lives in :mod:`repro.ntt.staged` and the hardware
dataflow in :mod:`repro.hw.fft64_unit`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.field.roots import root_of_unity
from repro.field.solinas import P, inverse, pow_mod


def _dft_direct(values: Sequence[int], omega: int) -> List[int]:
    """Direct small-size DFT used at the recursion leaves."""
    n = len(values)
    powers = [1] * n
    for i in range(1, n):
        powers[i] = (powers[i - 1] * omega) % P
    out = []
    for k in range(n):
        acc = 0
        for i, x in enumerate(values):
            acc += x * powers[(i * k) % n]
        out.append(acc % P)
    return out


def ntt_cooley_tukey(
    values: Sequence[int],
    radices: Optional[Sequence[int]] = None,
    omega: Optional[int] = None,
    leaf_size: int = 8,
) -> List[int]:
    """Mixed-radix NTT via the general Eq. 1 decomposition.

    Parameters
    ----------
    values:
        Input vector of canonical residues, length a power of two.
    radices:
        Factorization to apply, outermost first (e.g. ``[64, 64, 16]``
        for the paper's 64K plan).  ``None`` lets the recursion split
        halves until ``leaf_size``.
    omega:
        Primitive root for the full length (defaults to the canonical
        compatible root).
    leaf_size:
        Below this length, fall back to the direct DFT.
    """
    n = len(values)
    if n & (n - 1) or n == 0:
        raise ValueError("length must be a power of two")
    if omega is None:
        omega = root_of_unity(n)
    plan = list(radices) if radices is not None else None
    return _ct_recurse(list(values), omega, plan, leaf_size)


def _ct_recurse(
    values: List[int],
    omega: int,
    radices: Optional[List[int]],
    leaf_size: int,
) -> List[int]:
    n = len(values)
    if n <= leaf_size and not radices:
        return _dft_direct(values, omega)
    if radices:
        n1 = radices[0]
        rest = radices[1:]
        if n % n1:
            raise ValueError(f"radix {n1} does not divide length {n}")
    else:
        n1 = 2
        rest = None
    n2 = n // n1
    if n2 == 1:
        return _dft_direct(values, omega)

    omega_n1 = pow_mod(omega, n2)  # primitive N1-th root
    omega_n2 = pow_mod(omega, n1)  # primitive N2-th root

    # Inner transforms: for each residue class n2, DFT over n1.
    inner = [[0] * n1 for _ in range(n2)]
    for r in range(n2):
        column = [values[n2 * i + r] for i in range(n1)]
        inner[r] = _dft_direct(column, omega_n1)

    # Twiddle and outer transforms: for each k1, transform over n2.
    out = [0] * n
    for k1 in range(n1):
        row = [
            (inner[r][k1] * pow_mod(omega, (r * k1) % n)) % P
            for r in range(n2)
        ]
        transformed = _ct_recurse(
            row, omega_n2, list(rest) if rest else None, leaf_size
        )
        for k2 in range(n2):
            out[n1 * k2 + k1] = transformed[k2]
    return out


def intt_cooley_tukey(
    values: Sequence[int],
    radices: Optional[Sequence[int]] = None,
    omega: Optional[int] = None,
    leaf_size: int = 8,
) -> List[int]:
    """Inverse mixed-radix NTT (forward with ``ω^{-1}``, scaled)."""
    n = len(values)
    if omega is None:
        omega = root_of_unity(n)
    spectrum = ntt_cooley_tukey(values, radices, inverse(omega), leaf_size)
    n_inv = inverse(n)
    return [(x * n_inv) % P for x in spectrum]
