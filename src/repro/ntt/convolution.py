"""Cyclic convolution over ``GF(p)`` — the heart of SSA multiplication.

``c = IFFT(FFT(a) ∘ FFT(b))`` where ``∘`` is the component-wise product
(the accelerator's "dot-product" phase, run on 32 extra modular
multipliers per Section V).  Because the paper's coefficients are 24-bit
and there are 2**15 of them, every convolution sum is below ``p`` and
the modular convolution *equals* the integer convolution — the property
SSA correctness rests on.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.field.vector import vmul
from repro.ntt.plan import TransformPlan, plan_for_size
from repro.ntt.staged import execute_plan, execute_plan_inverse


def pointwise_mul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Component-wise product of two spectra (uint64 field arrays)."""
    if a.shape != b.shape:
        raise ValueError("spectra must have identical shapes")
    return vmul(a, b)


def cyclic_convolution(
    a: np.ndarray,
    b: np.ndarray,
    plan: Optional[TransformPlan] = None,
) -> np.ndarray:
    """Length-preserving cyclic convolution of two coefficient vectors.

    Both inputs must already be padded to the transform length; SSA
    zero-pads 32K coefficient vectors to 64K points so the cyclic
    convolution coincides with the acyclic one.
    """
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError("inputs must be equal-length flat arrays")
    if plan is None:
        plan = plan_for_size(len(a))
    if plan.n != len(a):
        raise ValueError("plan size does not match input length")
    spectrum = pointwise_mul(execute_plan(a, plan), execute_plan(b, plan))
    return execute_plan_inverse(spectrum, plan)
