"""Cyclic convolution over ``GF(p)`` — the heart of SSA multiplication.

``c = IFFT(FFT(a) ∘ FFT(b))`` where ``∘`` is the component-wise product
(the accelerator's "dot-product" phase, run on 32 extra modular
multipliers per Section V).  Because the paper's coefficients are 24-bit
and there are 2**15 of them, every convolution sum is below ``p`` and
the modular convolution *equals* the integer convolution — the property
SSA correctness rests on.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.field.vector import vmul
from repro.ntt.plan import ORDER_DECIMATED, TransformPlan, plan_for_size
from repro.ntt.staged import execute_plan_batch, execute_plan_inverse_batch


def pointwise_mul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Component-wise product of two spectra (uint64 field arrays)."""
    if a.shape != b.shape:
        raise ValueError("spectra must have identical shapes")
    return vmul(a, b)


def cyclic_convolution(
    a: np.ndarray,
    b: np.ndarray,
    plan: Optional[TransformPlan] = None,
) -> np.ndarray:
    """Length-preserving cyclic convolution of two coefficient vectors.

    Both inputs must already be padded to the transform length; SSA
    zero-pads 32K coefficient vectors to 64K points so the cyclic
    convolution coincides with the acyclic one.
    """
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError("inputs must be equal-length flat arrays")
    result = cyclic_convolution_many(
        np.asarray(a, dtype=np.uint64).reshape(1, -1),
        np.asarray(b, dtype=np.uint64).reshape(1, -1),
        plan,
    )
    return result[0]


def cyclic_convolution_many(
    a: np.ndarray,
    b: np.ndarray,
    plan: Optional[TransformPlan] = None,
) -> np.ndarray:
    """Row-wise cyclic convolutions of two ``(batch, n)`` matrices.

    All ``2·batch`` operand rows go through one batched forward NTT, a
    batched pointwise product and one batched inverse — identical per
    row to :func:`cyclic_convolution`, but with the per-stage Python
    overhead amortized across the whole batch.

    When no plan is given, the default plan is the *decimated*
    (permutation-free) pair: the pointwise sandwich is order-agnostic,
    so the DIF forward / DIT inverse skip both digit-reversal gathers
    at bit-identical output.  An explicit natural-ordering ``plan=``
    keeps the historical permuted execution.
    """
    a = np.ascontiguousarray(a, dtype=np.uint64)
    b = np.ascontiguousarray(b, dtype=np.uint64)
    if a.ndim != 2 or a.shape != b.shape:
        raise ValueError("inputs must be equal-shape (batch, n) matrices")
    batch, n = a.shape
    if plan is None:
        plan = plan_for_size(n, ordering=ORDER_DECIMATED)
    if plan.n != n:
        raise ValueError("plan size does not match input length")
    if plan.twist:
        # A fused plan computes the *negacyclic* transform directly;
        # running it here would silently wrap with the wrong sign.
        raise ValueError(
            "cyclic convolution requires an untwisted plan; got a "
            f"{plan.twist!r}-fused plan"
        )
    spectra = execute_plan_batch(np.concatenate([a, b], axis=0), plan)
    spectrum = pointwise_mul(spectra[:batch], spectra[batch:])
    return execute_plan_inverse_batch(spectrum, plan)
