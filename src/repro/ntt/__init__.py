"""Number-theoretic transforms over ``GF(p)``, ``p = 2**64 - 2**32 + 1``.

Layered as in the paper:

- :mod:`repro.ntt.reference` — O(n²) DFT, the correctness oracle;
- :mod:`repro.ntt.radix2` — classic iterative radix-2 NTT (software
  fast path, scalar and numpy variants);
- :mod:`repro.ntt.cooley_tukey` — the general ``N = N1·N2``
  decomposition of paper Eq. 1, recursively applied;
- :mod:`repro.ntt.radix64` — shift-only radix-64/32/16/8 kernels
  (paper Eq. 3) plus the optimized two-stage Eq. 5 dataflow of the
  hardware FFT-64 unit;
- :mod:`repro.ntt.plan` — mixed-radix transform plans, including the
  paper's three-stage 64·64·16 decomposition of the 64K transform
  (Eq. 2);
- :mod:`repro.ntt.kernels` — selectable stage-DFT backends: the
  ``loop`` reference and the ``limb-matmul`` fast kernel (exact
  16-bit-limb float64 matmuls folded by the Eq. 4 identities);
- :mod:`repro.ntt.staged` — vectorized execution of a plan;
- :mod:`repro.ntt.order` — explicit natural↔decimated spectrum
  reordering for the permutation-free plan pairs;
- :mod:`repro.ntt.convolution` — cyclic convolution on top of the NTT.
"""

from repro.ntt.reference import dft_reference, idft_reference
from repro.ntt.radix2 import ntt_radix2, intt_radix2, ntt_radix2_numpy, intt_radix2_numpy
from repro.ntt.cooley_tukey import ntt_cooley_tukey, intt_cooley_tukey
from repro.ntt.radix64 import (
    ntt_shift_radix,
    ntt64_two_stage,
    SHIFT_RADICES,
)
from repro.ntt.kernels import (
    KERNEL_ENV_VAR,
    KERNEL_LIMB_MATMUL,
    KERNEL_LOOP,
    available_kernels,
    default_kernel,
    resolve_kernel,
    stage_dft_limb_matmul,
    stage_dft_loop,
)
from repro.ntt.plan import (
    DEFAULT_PLAN_CACHE,
    ORDER_DECIMATED,
    ORDER_NATURAL,
    TWIST_NEGACYCLIC,
    PlanCache,
    PlanCacheStats,
    TransformPlan,
    clear_plan_cache,
    decimated_companion,
    paper_64k_plan,
    plan_cache_stats,
    plan_for_size,
)
from repro.ntt.order import reorder_to_decimated, reorder_to_natural
from repro.ntt.staged import (
    execute_plan,
    execute_plan_batch,
    execute_plan_inverse,
    execute_plan_inverse_batch,
)
from repro.ntt.convolution import (
    cyclic_convolution,
    cyclic_convolution_many,
    pointwise_mul,
)
from repro.ntt.negacyclic import (
    negacyclic_convolution,
    negacyclic_convolution_broadcast,
    negacyclic_convolution_many,
    negacyclic_inverse_many,
    negacyclic_transform_many,
    twist_tables,
)

__all__ = [
    "dft_reference",
    "idft_reference",
    "ntt_radix2",
    "intt_radix2",
    "ntt_radix2_numpy",
    "intt_radix2_numpy",
    "ntt_cooley_tukey",
    "intt_cooley_tukey",
    "ntt_shift_radix",
    "ntt64_two_stage",
    "SHIFT_RADICES",
    "KERNEL_ENV_VAR",
    "KERNEL_LIMB_MATMUL",
    "KERNEL_LOOP",
    "available_kernels",
    "default_kernel",
    "resolve_kernel",
    "stage_dft_limb_matmul",
    "stage_dft_loop",
    "TransformPlan",
    "PlanCache",
    "PlanCacheStats",
    "DEFAULT_PLAN_CACHE",
    "ORDER_DECIMATED",
    "ORDER_NATURAL",
    "TWIST_NEGACYCLIC",
    "clear_plan_cache",
    "decimated_companion",
    "reorder_to_decimated",
    "reorder_to_natural",
    "paper_64k_plan",
    "plan_cache_stats",
    "plan_for_size",
    "execute_plan",
    "execute_plan_batch",
    "execute_plan_inverse",
    "execute_plan_inverse_batch",
    "cyclic_convolution",
    "cyclic_convolution_many",
    "pointwise_mul",
    "negacyclic_convolution",
    "negacyclic_convolution_broadcast",
    "negacyclic_convolution_many",
    "negacyclic_inverse_many",
    "negacyclic_transform_many",
    "twist_tables",
]
