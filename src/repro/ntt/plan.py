"""Mixed-radix transform plans, including the paper's 64K plan (Eq. 2).

A :class:`TransformPlan` fixes a transform length ``N``, a radix
factorization applied innermost-first, and the primitive root, and
precomputes everything a vectorized executor needs:

- per-stage small DFT matrices (powers of the stage root),
- per-stage twiddle tables ``ω_L^{k1·n2}`` (the inter-stage factors of
  paper Eq. 1/Eq. 2 — in hardware these are the DSP modular
  multipliers, while the intra-stage factors are shifts),
- the output digit-reversal permutation that restores natural order.

The paper's configuration is ``paper_64k_plan()``: ``N = 65536`` with
radices ``(64, 64, 16)``, i.e. stages over ``n3`` (stride 1024), ``n2``
(stride 16) and ``n1`` (stride 1) exactly as in Eq. 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.field.roots import root_of_unity
from repro.field.solinas import P, inverse, pow_mod
from repro.field.vector import to_field_array, vmul
from repro.ntt.kernels import limb_decompose_matrix, resolve_kernel

#: The paper's operating point (Section III).
PAPER_TRANSFORM_SIZE = 65536
PAPER_RADICES = (64, 64, 16)

#: ``TransformPlan.twist`` value of a fused negacyclic plan: the ψ-twist
#: is folded into the first-stage constants and the ψ⁻¹-untwist (plus
#: the ``n^{-1}`` scale) into the inverse companion's stage constants,
#: so ``x^n + 1`` ring products run as plain plan executions with zero
#: extra vector passes (see :func:`_fuse_negacyclic`).
TWIST_NEGACYCLIC = "negacyclic"

#: ``TransformPlan.ordering`` of a plan whose forward output (and
#: inverse input) is in natural index order — the digit-reversal gather
#: runs after the last stage.  This is the historical behaviour.
ORDER_NATURAL = "natural"

#: ``TransformPlan.ordering`` of a permutation-free plan pair: the
#: decimation-in-frequency forward leaves its spectrum in decimated
#: (digit-reversed block) order — no output gather — and the
#: decimation-in-time inverse companion consumes exactly that order and
#: emits natural-order coefficients, again without a gather (see
#: :func:`_decimate`).  Pointwise-product sandwiches (convolutions,
#: SSA ``multiply_many``) are order-agnostic, so they skip both
#: per-transform permutations at identical output bits.
ORDER_DECIMATED = "decimated"

_ORDERINGS = (ORDER_NATURAL, ORDER_DECIMATED)


@dataclass(frozen=True)
class StageSpec:
    """Precomputed data for one stage of a mixed-radix plan."""

    radix: int
    #: Number of sub-transforms of this radix executed in the stage.
    sub_transforms: int
    #: radix × radix DFT matrix (uint64 canonical residues).
    dft_matrix: np.ndarray
    #: (radix, tail) inter-stage twiddle table; ``None`` for the last stage.
    twiddles: Optional[np.ndarray]
    #: ``(4, radix, radix)`` float64 16-bit-limb planes of ``dft_matrix``,
    #: precomputed for the ``limb-matmul`` kernel (``__post_init__``
    #: fills it in, so hand-built specs are complete too).
    dft_limbs: Optional[np.ndarray] = field(
        default=None, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        if self.dft_limbs is None:
            object.__setattr__(
                self, "dft_limbs", limb_decompose_matrix(self.dft_matrix)
            )


@dataclass(frozen=True)
class TransformPlan:
    """A fully precomputed mixed-radix NTT plan.

    Use :func:`plan_for_size` / :func:`paper_64k_plan` to construct.
    """

    n: int
    radices: Tuple[int, ...]
    omega: int
    stages: Tuple[StageSpec, ...]
    output_permutation: np.ndarray
    #: ``n^{-1} mod p``, precomputed so the inverse transform never
    #: allocates a fresh scale array per call.
    n_inv: np.uint64 = field(default=np.uint64(0), compare=False)
    inverse_plan: Optional["TransformPlan"] = field(
        default=None, compare=False, repr=False
    )
    #: Stage-DFT backend the executor dispatches on: ``"loop"`` or
    #: ``"limb-matmul"`` (see :mod:`repro.ntt.kernels`).  An empty
    #: string resolves to the process default at construction.
    kernel: str = field(default="", compare=False)
    #: ``""`` for a plain cyclic plan; :data:`TWIST_NEGACYCLIC` when the
    #: negacyclic ψ-twist/untwist (and the inverse ``n^{-1}`` scale) are
    #: folded into the stage constants.  Executing a fused plan computes
    #: the *negacyclic* transform directly — cyclic callers must reject
    #: it.
    twist: str = field(default="", compare=False)
    #: For fused plans: the plain cyclic plan the fused constants were
    #: derived from (same ``n``/``radices``/``omega``/``kernel``).  The
    #: hw-model's datapath fidelity walks this plan with the explicit
    #: twist, since the shift-only FFT-64 unit only evaluates plain DFT
    #: webs.  For decimated plans: the natural-ordering companion the
    #: pair was derived from (the natural pair for the forward, the
    #: natural inverse for the DIT inverse) — the hw-model's beat-exact
    #: oracle and cycle schedule come from it.
    base_plan: Optional["TransformPlan"] = field(
        default=None, compare=False, repr=False
    )
    #: :data:`ORDER_NATURAL` (gather to natural order after the last
    #: stage) or :data:`ORDER_DECIMATED` (permutation-free pair).  On a
    #: decimated plan ``output_permutation`` is *not* applied by the
    #: executor; it is kept so :mod:`repro.ntt.order` can reorder
    #: spectra explicitly (``perm[k]`` = decimated position of natural
    #: frequency ``k``).
    ordering: str = field(default=ORDER_NATURAL, compare=False)
    #: ``True`` for the decimation-in-time inverse companion of a
    #: decimated pair: the executor applies each stage's twiddles
    #: *before* its DFT, walks the stages in the laid-out (reversed)
    #: order with a growing tail axis, and emits natural order with no
    #: gather.  ``radices`` lists the stages in execution order, i.e.
    #: reversed relative to the natural companion; ``output_permutation``
    #: describes the decimation of the *input* spectrum.
    dit: bool = field(default=False, compare=False)
    #: Memoized decimated companion (see :func:`decimated_companion`).
    _decimated: Optional["TransformPlan"] = field(
        default=None, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        # Directly-constructed plans (tests build corrupted copies) must
        # never scale the inverse by a silently-wrong default.
        if int(self.n_inv) == 0:
            object.__setattr__(self, "n_inv", np.uint64(inverse(self.n)))
        object.__setattr__(
            self, "kernel", resolve_kernel(self.kernel or None)
        )
        if self.ordering not in _ORDERINGS:
            raise ValueError(
                f"unknown ordering {self.ordering!r}; "
                f"expected one of {_ORDERINGS}"
            )

    @property
    def stage_count(self) -> int:
        return len(self.stages)

    def sub_transform_counts(self) -> List[Tuple[int, int]]:
        """``[(radix, count), ...]`` per stage — drives the timing model.

        For the paper plan this is ``[(64, 1024), (64, 1024), (16, 4096)]``,
        the counts behind the ``T_FFT`` formula of Section V.
        """
        return [(s.radix, s.sub_transforms) for s in self.stages]


def _dft_matrix(radix: int, stage_root: int) -> np.ndarray:
    rows = []
    for k in range(radix):
        rows.append([pow_mod(stage_root, (k * i) % radix) for i in range(radix)])
    return np.array(rows, dtype=np.uint64)


def _twiddle_table(radix: int, tail: int, level_root: int) -> np.ndarray:
    table = []
    for k1 in range(radix):
        table.append(
            [pow_mod(level_root, (k1 * n2) % (radix * tail)) for n2 in range(tail)]
        )
    return np.array(table, dtype=np.uint64)


def _output_permutation(n: int, radices: Sequence[int]) -> np.ndarray:
    """Digit-reversal permutation: block order → natural output order.

    After the staged execution, block ``(d1, ..., ds)`` (d1 slowest)
    holds output index ``k = d1 + R1·d2 + R1·R2·d3 + ...``.
    """
    perm = np.zeros(n, dtype=np.int64)
    strides = []
    acc = 1
    for r in radices[:-1]:
        strides.append(acc)
        acc *= r
    strides.append(acc)

    def fill(block: int, level: int, k: int) -> None:
        if level == len(radices):
            perm[k] = block
            return
        r = radices[level]
        for d in range(r):
            fill(block * r + d, level + 1, k + d * strides[level])

    fill(0, 0, 0)
    return perm


def _build(
    n: int, radices: Tuple[int, ...], omega: int, kernel: str = ""
) -> TransformPlan:
    product = 1
    for r in radices:
        product *= r
    if product != n:
        raise ValueError(f"radices {radices} do not factor {n}")
    stages: List[StageSpec] = []
    length = n
    count = 1
    for index, radix in enumerate(radices):
        tail = length // radix
        level_root = pow_mod(omega, n // length)
        stage_root = pow_mod(level_root, tail)
        twiddles = None
        if index < len(radices) - 1:
            twiddles = _twiddle_table(radix, tail, level_root)
        stages.append(
            StageSpec(
                radix=radix,
                sub_transforms=count * tail,
                dft_matrix=_dft_matrix(radix, stage_root),
                twiddles=twiddles,
            )
        )
        count *= radix
        length = tail
    return TransformPlan(
        n=n,
        radices=radices,
        omega=omega,
        stages=tuple(stages),
        output_permutation=_output_permutation(n, radices),
        kernel=kernel,
    )


def _fuse_negacyclic(base: TransformPlan) -> TransformPlan:
    """A fused negacyclic plan pair derived from a cyclic ``base`` plan.

    Forward: the input twist ``x_i ← ψ^i·x_i`` (``i = r·tail + t`` at
    the first stage) splits as ``ψ^{r·tail}·ψ^t``; the ``r``-dependent
    half scales the first-stage DFT matrix *columns* and the
    ``t``-dependent half — constant along the radix axis, so it
    commutes through the stage DFT — folds into the first-stage twiddle
    table (or vanishes when the plan is single-stage, ``tail = 1``).

    Inverse: the output untwist ``ψ^{-i}`` with
    ``i = d_1 + R_1·d_2 + R_1R_2·d_3 + …`` factors per digit; the digit
    ``d_m`` is exactly stage ``m``'s DFT output index and later stages
    never mix already-produced digit axes, so ``ψ^{-c_m·k}``
    (``c_m = R_1⋯R_{m-1}``) folds into stage ``m``'s twiddle *rows* —
    and, for the last stage (no twiddles), into the DFT matrix rows
    together with the global ``n^{-1}`` scale.

    Every fused table stays a canonical-residue uint64 array, so both
    stage kernels run unchanged (``StageSpec.__post_init__`` rebuilds
    the 16-bit limb planes of the fused matrices) and the executor's
    stage schedule — hence the hw model's cycle ledger — is identical
    to the base plan's.
    """
    # Lazy import: repro.ntt.negacyclic imports this module at top level.
    from repro.ntt.negacyclic import twist_tables

    if base.inverse_plan is None:
        raise ValueError("base plan has no inverse companion to fuse")
    n = base.n
    forward_tab, backward_tab = twist_tables(n)

    fwd_stages = list(base.stages)
    first = fwd_stages[0]
    tail = n // first.radix
    # ψ^{r·tail} for r in [0, radix): a strided view of the ψ table.
    col_scale = forward_tab[::tail]
    matrix = vmul(
        first.dft_matrix,
        np.broadcast_to(col_scale[np.newaxis, :], first.dft_matrix.shape),
    )
    twiddles = first.twiddles
    if twiddles is not None:
        twiddles = vmul(
            twiddles,
            np.broadcast_to(forward_tab[np.newaxis, :tail], twiddles.shape),
        )
    fwd_stages[0] = StageSpec(
        radix=first.radix,
        sub_transforms=first.sub_transforms,
        dft_matrix=matrix,
        twiddles=twiddles,
    )

    ibase = base.inverse_plan
    inv_stages = list(ibase.stages)
    digit_weight = 1
    for index, spec in enumerate(inv_stages):
        # ψ^{-c_m·k} for k in [0, radix): strided view of the ψ⁻¹ table.
        row_scale = backward_tab[::digit_weight][: spec.radix]
        if index < len(inv_stages) - 1:
            fused_twiddles = vmul(
                spec.twiddles,
                np.broadcast_to(
                    row_scale[:, np.newaxis], spec.twiddles.shape
                ),
            )
            fused_matrix = spec.dft_matrix
        else:
            fused_twiddles = None
            scaled_rows = vmul(
                row_scale, np.broadcast_to(base.n_inv, row_scale.shape)
            )
            fused_matrix = vmul(
                spec.dft_matrix,
                np.broadcast_to(
                    scaled_rows[:, np.newaxis], spec.dft_matrix.shape
                ),
            )
        inv_stages[index] = StageSpec(
            radix=spec.radix,
            sub_transforms=spec.sub_transforms,
            dft_matrix=fused_matrix,
            twiddles=fused_twiddles,
        )
        digit_weight *= spec.radix

    fused_inverse = TransformPlan(
        n=n,
        radices=ibase.radices,
        omega=ibase.omega,
        stages=tuple(inv_stages),
        output_permutation=ibase.output_permutation,
        n_inv=ibase.n_inv,
        kernel=base.kernel,
        twist=TWIST_NEGACYCLIC,
        base_plan=ibase,
    )
    return TransformPlan(
        n=n,
        radices=base.radices,
        omega=base.omega,
        stages=tuple(fwd_stages),
        output_permutation=base.output_permutation,
        n_inv=base.n_inv,
        inverse_plan=fused_inverse,
        kernel=base.kernel,
        twist=TWIST_NEGACYCLIC,
        base_plan=base,
    )


def _decimate(base: TransformPlan) -> TransformPlan:
    """The permutation-free (decimated-ordering) pair of a natural plan.

    Forward: a decimation-in-frequency transform *is* the existing
    staged execution minus the final digit-reversal gather — the stage
    constants (including fused-negacyclic ones) are shared unchanged
    and the executor simply keeps the decimated block order.

    Inverse: the natural inverse network ``N = P·E`` (``P`` the gather,
    ``E`` the staged butterfly network) must become ``G = N·P`` so it
    consumes decimated input and emits natural order.  Because the
    unfused network matrix ``(1/n)·F̄`` is symmetric and ``P`` is its
    own transpose-conjugate here, ``G = E^T`` up to the ``n^{-1}``
    scale: the *transpose* of the staged network runs the stages in
    reversed order with each stage's twiddle diagonal applied *before*
    its (transposed) DFT.  The small DFT matrices are symmetric, so the
    constants are byte-identical to the natural inverse's; only their
    layout across the schedule changes — exactly the paper's
    observation that DIF and DIT share one datapath.

    For a fused negacyclic base the ψ⁻¹-untwist ``ψ^{-i}`` factors over
    the *output* digits: in the DIT schedule the natural output digit
    of weight ``tail_j`` is produced by (original) stage ``j``'s DFT
    and never remixed afterwards, so ``ψ^{-k·tail_j}`` row-scales that
    stage's transposed matrix (with ``n^{-1}`` folded into the
    last-executed stage).  The unfused DIT inverse folds ``n^{-1}`` the
    same way, which also retires the trailing scale pass.
    """
    if base.ordering == ORDER_DECIMATED:
        return base
    if base.inverse_plan is None:
        raise ValueError(
            "cannot decimate a plan without an inverse companion"
        )
    if base.twist:
        if base.base_plan is None or base.base_plan.inverse_plan is None:
            raise ValueError(
                "fused plan carries no cyclic base to derive the DIT "
                "inverse from"
            )
        # The fused natural inverse folds ψ^{-c_j·k} by *natural* output
        # digit weights; the DIT schedule needs the tail_j weights, so
        # rebuild from the unfused inverse stages.
        ibase = base.base_plan.inverse_plan
        from repro.ntt.negacyclic import twist_tables

        _, backward_tab = twist_tables(base.n)
    else:
        ibase = base.inverse_plan
        backward_tab = None

    dit_stages: List[StageSpec] = []
    tail = base.n
    for index, spec in enumerate(ibase.stages):
        tail //= spec.radix
        matrix = np.ascontiguousarray(spec.dft_matrix.T)
        if backward_tab is not None:
            # ψ^{-k·tail_j} for k in [0, radix): strided ψ⁻¹ view.
            row_scale = np.ascontiguousarray(
                backward_tab[::tail][: spec.radix]
            )
            if index == 0:
                row_scale = vmul(
                    row_scale,
                    np.broadcast_to(ibase.n_inv, row_scale.shape),
                )
            matrix = vmul(
                matrix,
                np.broadcast_to(row_scale[:, np.newaxis], matrix.shape),
            )
        elif index == 0:
            matrix = vmul(
                matrix, np.broadcast_to(ibase.n_inv, matrix.shape)
            )
        dit_stages.append(
            StageSpec(
                radix=spec.radix,
                sub_transforms=spec.sub_transforms,
                dft_matrix=matrix,
                twiddles=spec.twiddles,
            )
        )
    # Transposed network: original stage s runs first (twiddle-free by
    # construction), original stage 1 runs last and emits natural order.
    dit_stages.reverse()

    dit_inverse = TransformPlan(
        n=base.n,
        radices=tuple(reversed(ibase.radices)),
        omega=ibase.omega,
        stages=tuple(dit_stages),
        output_permutation=ibase.output_permutation,
        n_inv=ibase.n_inv,
        kernel=base.kernel,
        twist=base.twist,
        base_plan=base.inverse_plan,
        ordering=ORDER_DECIMATED,
        dit=True,
    )
    return TransformPlan(
        n=base.n,
        radices=base.radices,
        omega=base.omega,
        stages=base.stages,
        output_permutation=base.output_permutation,
        n_inv=base.n_inv,
        inverse_plan=dit_inverse,
        kernel=base.kernel,
        twist=base.twist,
        base_plan=base,
        ordering=ORDER_DECIMATED,
    )


def decimated_companion(plan: TransformPlan) -> TransformPlan:
    """The (memoized) permutation-free pair of ``plan``.

    Every holder of a natural-ordering plan — engine caches, rings,
    multipliers, the hw model — resolves the *same* companion object,
    so the derived DIT constants are built once per natural plan.
    Decimated plans return themselves.
    """
    if plan.ordering == ORDER_DECIMATED:
        return plan
    if plan._decimated is None:
        object.__setattr__(plan, "_decimated", _decimate(plan))
    return plan._decimated


@dataclass(frozen=True)
class PlanCacheStats:
    """Occupancy and hit/miss counters of a plan cache."""

    size: int
    hits: int
    misses: int


class PlanCache:
    """A keyed store of built :class:`TransformPlan` objects.

    Keys are ``(n, radices, omega, kernel, twist, ordering)``; a hit
    returns the very same plan object, so precomputed DFT matrices,
    twiddle tables and limb planes are shared by every caller of the
    cache.  Decimated entries resolve through
    :func:`decimated_companion`, which memoizes on the natural plan
    itself — so even *different* caches holding the same natural plan
    share one decimated pair.

    Historically the library kept one module-global cache; the
    :class:`repro.engine.Engine` façade now owns a *per-engine*
    instance, and the module-level :func:`plan_for_size` /
    :func:`clear_plan_cache` / :func:`plan_cache_stats` helpers keep
    working against a default instance for legacy callers.
    """

    def __init__(self) -> None:
        self._plans: Dict[
            Tuple[int, Tuple[int, ...], int, str, str, str], TransformPlan
        ] = {}
        self._hits = 0
        self._misses = 0

    def __len__(self) -> int:
        return len(self._plans)

    def stats(self) -> PlanCacheStats:
        """Snapshot of this cache (size, hits, misses)."""
        return PlanCacheStats(
            size=len(self._plans), hits=self._hits, misses=self._misses
        )

    def clear(self) -> None:
        """Drop every cached plan and reset the hit/miss counters.

        Long-running sweeps build one plan per (size, radices, omega)
        triple; this bounds the memory they pin.
        """
        self._plans.clear()
        self._hits = 0
        self._misses = 0

    def plan_for_size(
        self,
        n: int,
        radices: Optional[Sequence[int]] = None,
        omega: Optional[int] = None,
        kernel: Optional[str] = None,
        twist: str = "",
        ordering: str = ORDER_NATURAL,
    ) -> TransformPlan:
        """Build (and cache) a plan for an ``n``-point transform.

        ``radices`` defaults to greedy radix-64 stages with one smaller
        final stage, mirroring the paper's preference for high radices.
        The returned plan carries a matching ``inverse_plan``.

        ``kernel`` pins the stage-DFT backend (``"loop"`` or
        ``"limb-matmul"``); ``None`` resolves through the
        ``REPRO_NTT_KERNEL`` environment variable, defaulting to
        ``limb-matmul``.

        ``twist=TWIST_NEGACYCLIC`` returns the fused negacyclic variant
        (ψ-twist folded into the first-stage constants, ψ⁻¹-untwist and
        ``n^{-1}`` into the inverse companion's stages); it requires the
        default primitive root, since ψ is its square root of order
        ``2n``.  The cyclic base plan is built (and cached) alongside.

        ``ordering=ORDER_DECIMATED`` returns the permutation-free pair
        (DIF forward emitting decimated spectra, DIT inverse consuming
        them); the natural-ordering plan is built (and cached)
        alongside, and the decimated pair is shared through
        :func:`decimated_companion`.
        """
        if n & (n - 1) or n == 0:
            raise ValueError("transform size must be a power of two")
        if twist not in ("", TWIST_NEGACYCLIC):
            raise ValueError(
                f"unknown twist {twist!r}; "
                f"expected '' or {TWIST_NEGACYCLIC!r}"
            )
        if ordering not in _ORDERINGS:
            raise ValueError(
                f"unknown ordering {ordering!r}; "
                f"expected one of {_ORDERINGS}"
            )
        default_omega = root_of_unity(n)
        if omega is None:
            omega = default_omega
        if twist and omega != default_omega:
            raise ValueError(
                "fused negacyclic plans require the default primitive "
                "root (psi is defined as its order-2n square root)"
            )
        if radices is None:
            radices = _default_radices(n)
        kernel = resolve_kernel(kernel)
        key = (n, tuple(radices), omega, kernel, twist, ordering)
        plan = self._plans.get(key)
        if plan is None:
            self._misses += 1
            if ordering == ORDER_DECIMATED:
                plan = decimated_companion(
                    self.plan_for_size(n, radices, omega, kernel, twist)
                )
            elif twist:
                plan = _fuse_negacyclic(
                    self.plan_for_size(n, radices, omega, kernel)
                )
            else:
                plan = _build(n, tuple(radices), omega, kernel)
                backward = _build(
                    n, tuple(radices), inverse(omega), kernel
                )
                object.__setattr__(plan, "inverse_plan", backward)
            self._plans[key] = plan
        else:
            self._hits += 1
        return plan


#: The default cache behind the module-level helpers (and behind the
#: shared-cache engines, see ``ExecutionConfig.cache``).
DEFAULT_PLAN_CACHE = PlanCache()


def plan_cache_stats() -> PlanCacheStats:
    """Snapshot of the default plan cache (size, hits, misses)."""
    return DEFAULT_PLAN_CACHE.stats()


def clear_plan_cache() -> None:
    """Clear the default plan cache (see :meth:`PlanCache.clear`)."""
    DEFAULT_PLAN_CACHE.clear()


def plan_for_size(
    n: int,
    radices: Optional[Sequence[int]] = None,
    omega: Optional[int] = None,
    kernel: Optional[str] = None,
    twist: str = "",
    ordering: str = ORDER_NATURAL,
) -> TransformPlan:
    """Build a plan in the default cache (see
    :meth:`PlanCache.plan_for_size`)."""
    return DEFAULT_PLAN_CACHE.plan_for_size(
        n, radices, omega, kernel, twist, ordering
    )


def _default_radices(n: int) -> Tuple[int, ...]:
    """Greedy high-radix factorization, shift-only friendly.

    Prefers radix 64 (the paper's choice) and keeps every stage radix
    in the hardware's shift-only set ``{8, 16, 32, 64}`` whenever
    ``n ≥ 8``, so default plans always run on the FFT-64 unit model —
    a trailing remainder of 2 or 4 is absorbed by splitting the last
    radix-64 stage (e.g. 128 = 16·8, not 64·2).  Transforms smaller
    than 8 points get the single radix ``n``.
    """
    k = n.bit_length() - 1  # n = 2**k
    if k < 3:
        return (n,)
    q, r = divmod(k, 6)
    if r == 0:
        exponents = [6] * q
    elif r >= 3:
        exponents = [6] * q + [r]
    else:  # r in (1, 2): split the last 64·2**r as 2**4 · 2**(2+r)
        exponents = [6] * (q - 1) + [4, 2 + r]
    exponents.sort(reverse=True)
    return tuple(1 << e for e in exponents)


def paper_64k_plan() -> TransformPlan:
    """The paper's three-stage 64K plan: radices (64, 64, 16), Eq. 2."""
    return plan_for_size(PAPER_TRANSFORM_SIZE, PAPER_RADICES)
