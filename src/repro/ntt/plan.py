"""Mixed-radix transform plans, including the paper's 64K plan (Eq. 2).

A :class:`TransformPlan` fixes a transform length ``N``, a radix
factorization applied innermost-first, and the primitive root, and
precomputes everything a vectorized executor needs:

- per-stage small DFT matrices (powers of the stage root),
- per-stage twiddle tables ``ω_L^{k1·n2}`` (the inter-stage factors of
  paper Eq. 1/Eq. 2 — in hardware these are the DSP modular
  multipliers, while the intra-stage factors are shifts),
- the output digit-reversal permutation that restores natural order.

The paper's configuration is ``paper_64k_plan()``: ``N = 65536`` with
radices ``(64, 64, 16)``, i.e. stages over ``n3`` (stride 1024), ``n2``
(stride 16) and ``n1`` (stride 1) exactly as in Eq. 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.field.roots import root_of_unity
from repro.field.solinas import P, inverse, pow_mod
from repro.field.vector import to_field_array
from repro.ntt.kernels import limb_decompose_matrix, resolve_kernel

#: The paper's operating point (Section III).
PAPER_TRANSFORM_SIZE = 65536
PAPER_RADICES = (64, 64, 16)


@dataclass(frozen=True)
class StageSpec:
    """Precomputed data for one stage of a mixed-radix plan."""

    radix: int
    #: Number of sub-transforms of this radix executed in the stage.
    sub_transforms: int
    #: radix × radix DFT matrix (uint64 canonical residues).
    dft_matrix: np.ndarray
    #: (radix, tail) inter-stage twiddle table; ``None`` for the last stage.
    twiddles: Optional[np.ndarray]
    #: ``(4, radix, radix)`` float64 16-bit-limb planes of ``dft_matrix``,
    #: precomputed for the ``limb-matmul`` kernel (``__post_init__``
    #: fills it in, so hand-built specs are complete too).
    dft_limbs: Optional[np.ndarray] = field(
        default=None, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        if self.dft_limbs is None:
            object.__setattr__(
                self, "dft_limbs", limb_decompose_matrix(self.dft_matrix)
            )


@dataclass(frozen=True)
class TransformPlan:
    """A fully precomputed mixed-radix NTT plan.

    Use :func:`plan_for_size` / :func:`paper_64k_plan` to construct.
    """

    n: int
    radices: Tuple[int, ...]
    omega: int
    stages: Tuple[StageSpec, ...]
    output_permutation: np.ndarray
    #: ``n^{-1} mod p``, precomputed so the inverse transform never
    #: allocates a fresh scale array per call.
    n_inv: np.uint64 = field(default=np.uint64(0), compare=False)
    inverse_plan: Optional["TransformPlan"] = field(
        default=None, compare=False, repr=False
    )
    #: Stage-DFT backend the executor dispatches on: ``"loop"`` or
    #: ``"limb-matmul"`` (see :mod:`repro.ntt.kernels`).  An empty
    #: string resolves to the process default at construction.
    kernel: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        # Directly-constructed plans (tests build corrupted copies) must
        # never scale the inverse by a silently-wrong default.
        if int(self.n_inv) == 0:
            object.__setattr__(self, "n_inv", np.uint64(inverse(self.n)))
        object.__setattr__(
            self, "kernel", resolve_kernel(self.kernel or None)
        )

    @property
    def stage_count(self) -> int:
        return len(self.stages)

    def sub_transform_counts(self) -> List[Tuple[int, int]]:
        """``[(radix, count), ...]`` per stage — drives the timing model.

        For the paper plan this is ``[(64, 1024), (64, 1024), (16, 4096)]``,
        the counts behind the ``T_FFT`` formula of Section V.
        """
        return [(s.radix, s.sub_transforms) for s in self.stages]


def _dft_matrix(radix: int, stage_root: int) -> np.ndarray:
    rows = []
    for k in range(radix):
        rows.append([pow_mod(stage_root, (k * i) % radix) for i in range(radix)])
    return np.array(rows, dtype=np.uint64)


def _twiddle_table(radix: int, tail: int, level_root: int) -> np.ndarray:
    table = []
    for k1 in range(radix):
        table.append(
            [pow_mod(level_root, (k1 * n2) % (radix * tail)) for n2 in range(tail)]
        )
    return np.array(table, dtype=np.uint64)


def _output_permutation(n: int, radices: Sequence[int]) -> np.ndarray:
    """Digit-reversal permutation: block order → natural output order.

    After the staged execution, block ``(d1, ..., ds)`` (d1 slowest)
    holds output index ``k = d1 + R1·d2 + R1·R2·d3 + ...``.
    """
    perm = np.zeros(n, dtype=np.int64)
    strides = []
    acc = 1
    for r in radices[:-1]:
        strides.append(acc)
        acc *= r
    strides.append(acc)

    def fill(block: int, level: int, k: int) -> None:
        if level == len(radices):
            perm[k] = block
            return
        r = radices[level]
        for d in range(r):
            fill(block * r + d, level + 1, k + d * strides[level])

    fill(0, 0, 0)
    return perm


def _build(
    n: int, radices: Tuple[int, ...], omega: int, kernel: str = ""
) -> TransformPlan:
    product = 1
    for r in radices:
        product *= r
    if product != n:
        raise ValueError(f"radices {radices} do not factor {n}")
    stages: List[StageSpec] = []
    length = n
    count = 1
    for index, radix in enumerate(radices):
        tail = length // radix
        level_root = pow_mod(omega, n // length)
        stage_root = pow_mod(level_root, tail)
        twiddles = None
        if index < len(radices) - 1:
            twiddles = _twiddle_table(radix, tail, level_root)
        stages.append(
            StageSpec(
                radix=radix,
                sub_transforms=count * tail,
                dft_matrix=_dft_matrix(radix, stage_root),
                twiddles=twiddles,
            )
        )
        count *= radix
        length = tail
    return TransformPlan(
        n=n,
        radices=radices,
        omega=omega,
        stages=tuple(stages),
        output_permutation=_output_permutation(n, radices),
        kernel=kernel,
    )


@dataclass(frozen=True)
class PlanCacheStats:
    """Occupancy and hit/miss counters of a plan cache."""

    size: int
    hits: int
    misses: int


class PlanCache:
    """A keyed store of built :class:`TransformPlan` objects.

    Keys are ``(n, radices, omega, kernel)``; a hit returns the very
    same plan object, so precomputed DFT matrices, twiddle tables and
    limb planes are shared by every caller of the cache.

    Historically the library kept one module-global cache; the
    :class:`repro.engine.Engine` façade now owns a *per-engine*
    instance, and the module-level :func:`plan_for_size` /
    :func:`clear_plan_cache` / :func:`plan_cache_stats` helpers keep
    working against a default instance for legacy callers.
    """

    def __init__(self) -> None:
        self._plans: Dict[
            Tuple[int, Tuple[int, ...], int, str], TransformPlan
        ] = {}
        self._hits = 0
        self._misses = 0

    def __len__(self) -> int:
        return len(self._plans)

    def stats(self) -> PlanCacheStats:
        """Snapshot of this cache (size, hits, misses)."""
        return PlanCacheStats(
            size=len(self._plans), hits=self._hits, misses=self._misses
        )

    def clear(self) -> None:
        """Drop every cached plan and reset the hit/miss counters.

        Long-running sweeps build one plan per (size, radices, omega)
        triple; this bounds the memory they pin.
        """
        self._plans.clear()
        self._hits = 0
        self._misses = 0

    def plan_for_size(
        self,
        n: int,
        radices: Optional[Sequence[int]] = None,
        omega: Optional[int] = None,
        kernel: Optional[str] = None,
    ) -> TransformPlan:
        """Build (and cache) a plan for an ``n``-point transform.

        ``radices`` defaults to greedy radix-64 stages with one smaller
        final stage, mirroring the paper's preference for high radices.
        The returned plan carries a matching ``inverse_plan``.

        ``kernel`` pins the stage-DFT backend (``"loop"`` or
        ``"limb-matmul"``); ``None`` resolves through the
        ``REPRO_NTT_KERNEL`` environment variable, defaulting to
        ``limb-matmul``.
        """
        if n & (n - 1) or n == 0:
            raise ValueError("transform size must be a power of two")
        if omega is None:
            omega = root_of_unity(n)
        if radices is None:
            radices = _default_radices(n)
        kernel = resolve_kernel(kernel)
        key = (n, tuple(radices), omega, kernel)
        plan = self._plans.get(key)
        if plan is None:
            self._misses += 1
            plan = _build(n, tuple(radices), omega, kernel)
            backward = _build(n, tuple(radices), inverse(omega), kernel)
            object.__setattr__(plan, "inverse_plan", backward)
            self._plans[key] = plan
        else:
            self._hits += 1
        return plan


#: The default cache behind the module-level helpers (and behind the
#: shared-cache engines, see ``ExecutionConfig.cache``).
DEFAULT_PLAN_CACHE = PlanCache()


def plan_cache_stats() -> PlanCacheStats:
    """Snapshot of the default plan cache (size, hits, misses)."""
    return DEFAULT_PLAN_CACHE.stats()


def clear_plan_cache() -> None:
    """Clear the default plan cache (see :meth:`PlanCache.clear`)."""
    DEFAULT_PLAN_CACHE.clear()


def plan_for_size(
    n: int,
    radices: Optional[Sequence[int]] = None,
    omega: Optional[int] = None,
    kernel: Optional[str] = None,
) -> TransformPlan:
    """Build a plan in the default cache (see
    :meth:`PlanCache.plan_for_size`)."""
    return DEFAULT_PLAN_CACHE.plan_for_size(n, radices, omega, kernel)


def _default_radices(n: int) -> Tuple[int, ...]:
    """Greedy high-radix factorization, shift-only friendly.

    Prefers radix 64 (the paper's choice) and keeps every stage radix
    in the hardware's shift-only set ``{8, 16, 32, 64}`` whenever
    ``n ≥ 8``, so default plans always run on the FFT-64 unit model —
    a trailing remainder of 2 or 4 is absorbed by splitting the last
    radix-64 stage (e.g. 128 = 16·8, not 64·2).  Transforms smaller
    than 8 points get the single radix ``n``.
    """
    k = n.bit_length() - 1  # n = 2**k
    if k < 3:
        return (n,)
    q, r = divmod(k, 6)
    if r == 0:
        exponents = [6] * q
    elif r >= 3:
        exponents = [6] * q + [r]
    else:  # r in (1, 2): split the last 64·2**r as 2**4 · 2**(2+r)
        exponents = [6] * (q - 1) + [4, 2 + r]
    exponents.sort(reverse=True)
    return tuple(1 << e for e in exponents)


def paper_64k_plan() -> TransformPlan:
    """The paper's three-stage 64K plan: radices (64, 64, 16), Eq. 2."""
    return plan_for_size(PAPER_TRANSFORM_SIZE, PAPER_RADICES)
