"""Stage-DFT kernel backends: the ``loop`` oracle and ``limb-matmul``.

The hardware FFT-64 unit evaluates a radix-64 DFT as a dense web of
shift-and-add partial products in one pipelined pass (paper Eq. 3/5).
The software analogue has two interchangeable realizations of the same
stage contract ``out[b, k, m] = Σ_i  M[k, i] · x[b, i, m]  (mod p)``:

``loop``
    The reference kernel: ``radix²`` interpreted iterations of
    scalar-broadcast :func:`repro.field.vector.vmul` /
    :func:`~repro.field.vector.vadd`.  Bit-exact by construction and
    kept as the exactness oracle for the fast path.

``limb-matmul``
    The throughput kernel.  Matrix and data are decomposed into four
    16-bit limbs and the stage becomes 16 dense matmuls carried out in
    *float64* (BLAS):

    - every limb product is ``< 2**32`` and a row sums ``radix ≤ 64``
      of them, so each partial-product accumulation is ``< 2**38``;
    - limb planes of equal weight ``w = j + l`` combine at most four
      accumulations, so every weight plane ``T_w < 2**40`` — far below
      the ``2**53`` float64 exactness horizon, hence every matmul and
      every plane sum is *exact* integer arithmetic;
    - the seven weight planes fold back through the word-level
      Goldilocks identities: ``Σ_{w≤5} T_w·2**(16w) < 2**128`` is
      assembled as a (hi, lo) pair for
      :func:`repro.field.vector._reduce_wide` (paper Eq. 4), and the
      ``w = 6`` plane uses ``2**96 ≡ −1 (mod p)``.

The backend is chosen per plan (``plan_for_size(..., kernel=...)``),
with the :data:`KERNEL_ENV_VAR` environment variable overriding the
default for unpinned callers.

Both kernels are *constant-agnostic*: a stage matrix is any canonical
uint64 residue matrix, so the fused negacyclic stage specs
(:func:`repro.ntt.plan._fuse_negacyclic` scales DFT columns/rows and
twiddle tables by ψ-twist factors mod p) run through the identical
code paths and the identical exactness argument — limb products and
weight-plane sums depend only on the 16-bit limb geometry and the
radix, never on which constants fill the matrix, so every fused
accumulation stays below the same ``2**40 ≪ 2**53`` bound.  The
permutation-free DIT inverse stages (:func:`repro.ntt.plan._decimate`
transposes each inverse matrix and folds ψ⁻¹/``n^{-1}`` row scales
into it) lean on the same property: ``StageSpec`` rebuilds the limb
planes of whatever matrix it is handed, and the kernels never ask
where the constants came from.
"""

from __future__ import annotations

import os
from typing import Callable, Optional, Tuple

import numpy as np

from repro.field.vector import _reduce_wide, vadd, vmul, vsub

KERNEL_LOOP = "loop"
KERNEL_LIMB_MATMUL = "limb-matmul"
#: Environment variable overriding the default backend for plans built
#: without an explicit ``kernel=`` argument.
KERNEL_ENV_VAR = "REPRO_NTT_KERNEL"
_BUILTIN_DEFAULT = KERNEL_LIMB_MATMUL

#: Limb geometry of the fast kernel: 4 × 16-bit planes cover uint64.
LIMB_BITS = 16
LIMB_COUNT = 4
_LIMB_MASK = np.uint64((1 << LIMB_BITS) - 1)
#: Provably safe radix ceiling for the fast kernel.  The binding
#: constraint is the uint64 fold, not float64 exactness: a weight
#: plane is ``≤ 4·radix·(2**16−1)²`` and ``tw[5] << 16`` plus the
#: other ``hi`` contributions must stay below ``2**64``, which holds
#: for ``radix ≤ 2**14`` (then ``T_w < 2**48 < 2**53``, so the float
#: matmuls are exact too, and ``hi < 2**63 + 2**49`` never wraps).
MAX_LIMB_MATMUL_RADIX = 1 << 14
#: Stage chunks are sized to keep the float64 limb planes cache-resident
#: (measured sweet spot; larger chunks go memory-bound).
_CHUNK_ELEMS = 1 << 15


def available_kernels() -> Tuple[str, ...]:
    """The selectable stage-kernel backend names."""
    return (KERNEL_LOOP, KERNEL_LIMB_MATMUL)


def default_kernel() -> str:
    """The backend used when a plan does not pin one.

    Honors :data:`KERNEL_ENV_VAR` (``loop`` / ``limb-matmul``), falling
    back to ``limb-matmul``.
    """
    name = os.environ.get(KERNEL_ENV_VAR)
    return resolve_kernel(name) if name else _BUILTIN_DEFAULT


def resolve_kernel(name: Optional[str]) -> str:
    """Validate a backend name; ``None`` resolves to the default."""
    if name is None:
        return default_kernel()
    if name not in available_kernels():
        raise ValueError(
            f"unknown NTT kernel {name!r}; "
            f"expected one of {available_kernels()}"
        )
    return name


def limb_decompose_matrix(matrix: np.ndarray) -> np.ndarray:
    """``(LIMB_COUNT, R, R)`` float64 planes of 16-bit matrix limbs.

    Plan construction caches this next to the twiddle tables so the
    fast kernel never re-decomposes a DFT matrix at execute time.
    """
    matrix = np.ascontiguousarray(matrix, dtype=np.uint64)
    planes = np.empty((LIMB_COUNT,) + matrix.shape, dtype=np.float64)
    for j in range(LIMB_COUNT):
        planes[j] = (matrix >> np.uint64(LIMB_BITS * j)) & _LIMB_MASK
    return planes


def stage_dft_loop(
    block_view: np.ndarray,
    matrix: np.ndarray,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Reference kernel: radix² scalar-broadcast multiply-accumulates.

    ``out`` must not alias ``block_view`` (every output row reads every
    input row).  Two ``(B, M)`` scratch rows are the only allocations.
    """
    b, radix, tail = block_view.shape
    if out is None:
        out = np.empty_like(block_view)
    term = np.empty((b, tail), dtype=np.uint64)
    for k in range(radix):
        row = matrix[k]
        acc = out[:, k, :]
        np.copyto(acc, block_view[:, 0, :])
        if row[0] != 1:
            vmul(acc, np.broadcast_to(row[0], (b, tail)), out=acc)
        for i in range(1, radix):
            w = row[i]
            if w == 1:
                vadd(acc, block_view[:, i, :], out=acc)
            else:
                vmul(
                    block_view[:, i, :],
                    np.broadcast_to(w, (b, tail)),
                    out=term,
                )
                vadd(acc, term, out=acc)
    return out


def stage_dft_limb_matmul(
    block_view: np.ndarray,
    matrix_limbs: np.ndarray,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Fast kernel: 16-bit-limb float64 matmuls + Eq. 4 limb fold.

    ``matrix_limbs`` is :func:`limb_decompose_matrix` of the stage DFT
    matrix.  ``out`` must not alias ``block_view``.  Bit-identical to
    :func:`stage_dft_loop` for canonical inputs (see the module
    docstring for the exactness argument).
    """
    b, radix, tail = block_view.shape
    if radix > MAX_LIMB_MATMUL_RADIX:
        raise ValueError(
            f"radix {radix} exceeds the float64-exactness bound of the "
            f"limb-matmul kernel ({MAX_LIMB_MATMUL_RADIX})"
        )
    if out is None:
        out = np.empty_like(block_view)
    if b == 0:
        return out
    # Process the block axis in cache-sized chunks: the limb planes are
    # 8× the uint64 working set, and keeping them resident is worth
    # ~2.5× at large batches.  Scratch buffers are allocated once for
    # the largest chunk and sliced per iteration, so the hot loop does
    # not churn the allocator.
    rows = min(b, max(1, _CHUNK_ELEMS // (radix * tail)))
    n_weights = 2 * LIMB_COUNT - 1
    shape = (rows, radix, tail)
    planes = np.empty((LIMB_COUNT,) + shape, dtype=np.float64)
    partial = np.empty_like(planes)
    weights = np.empty((n_weights,) + shape, dtype=np.float64)
    tw = np.empty((n_weights,) + shape, dtype=np.uint64)
    u64_a = np.empty(shape, dtype=np.uint64)
    u64_b = np.empty(shape, dtype=np.uint64)
    for start in range(0, b, rows):
        count = min(rows, b - start)
        _limb_matmul_chunk(
            block_view[start : start + count],
            matrix_limbs,
            out[start : start + count],
            planes[:, :count],
            partial[:, :count],
            weights[:, :count],
            tw[:, :count],
            u64_a[:count],
            u64_b[:count],
        )
    return out


def _limb_matmul_chunk(
    x: np.ndarray,
    matrix_limbs: np.ndarray,
    out: np.ndarray,
    planes: np.ndarray,
    partial: np.ndarray,
    weights: np.ndarray,
    tw: np.ndarray,
    u64_a: np.ndarray,
    u64_b: np.ndarray,
) -> None:
    # Data limbs, float64: planes[l] = (x >> 16l) & 0xFFFF.
    for l in range(LIMB_COUNT):
        np.right_shift(x, np.uint64(LIMB_BITS * l), out=u64_a)
        np.bitwise_and(u64_a, _LIMB_MASK, out=u64_a)
        planes[l] = u64_a

    # weight[w] = Σ_{j+l=w} M_j @ x_l — each matmul accumulation is
    # < 2**38 and each weight plane < 2**40: exact in float64.
    weights[...] = 0.0
    for j in range(LIMB_COUNT):
        # One stacked BLAS call per matrix limb: (R, R) @ (4, b, R, T).
        np.matmul(matrix_limbs[j], planes, out=partial)
        for l in range(LIMB_COUNT):
            np.add(weights[j + l], partial[l], out=weights[j + l])

    # Fold Σ_w T_w · 2**(16w).  Weights 0..5 assemble an exact 128-bit
    # (hi, lo) pair (< 2**104 + 2**121 < 2**128); shifted-out top bits
    # and carries land in hi, which stays < 2**57 and never wraps.
    np.copyto(tw, weights, casting="unsafe")  # exact: every T_w < 2**53
    lo = tw[0]
    hi = u64_a
    hi[...] = 0
    shifted = u64_b
    for w in (1, 2, 3):
        np.left_shift(tw[w], np.uint64(LIMB_BITS * w), out=shifted)
        hi += tw[w] >> np.uint64(64 - LIMB_BITS * w)
        lo += shifted
        hi += lo < shifted  # carry out of the low word
    hi += tw[4]
    np.left_shift(tw[5], np.uint64(LIMB_BITS), out=shifted)
    hi += shifted
    _reduce_wide(hi, lo, out=lo)
    # Weight 6 sits at 2**96 ≡ −1 (mod p): subtract its plane
    # (< 2**40 < p, hence canonical).
    vsub(lo, tw[6], out=out)


def _run_loop(block_view: np.ndarray, stage, out: np.ndarray) -> np.ndarray:
    return stage_dft_loop(block_view, stage.dft_matrix, out=out)


def _run_limb_matmul(
    block_view: np.ndarray, stage, out: np.ndarray
) -> np.ndarray:
    # StageSpec.__post_init__ guarantees the cached limb planes exist.
    return stage_dft_limb_matmul(block_view, stage.dft_limbs, out=out)


_EXECUTORS: dict = {
    KERNEL_LOOP: _run_loop,
    KERNEL_LIMB_MATMUL: _run_limb_matmul,
}


def stage_executor(
    name: Optional[str],
) -> Callable[[np.ndarray, object, np.ndarray], np.ndarray]:
    """The ``(block_view, stage, out) -> out`` executor for a backend."""
    return _EXECUTORS[resolve_kernel(name)]
