"""Explicit spectrum-ordering conversions for decimated plans.

Permutation-free plan pairs (:data:`repro.ntt.plan.ORDER_DECIMATED`)
keep forward spectra in decimated (digit-reversed block) order so
convolution pipelines never pay the digit-reversal gather.  Pointwise
sandwiches are order-agnostic, but anyone who inspects a spectrum
directly — frequency-domain analysis, comparing against the natural
oracle, slicing individual harmonics — needs the explicit conversions
here.

The decimated plan's ``output_permutation`` (``perm[k]`` = decimated
position of natural frequency ``k``) is exactly the gather the
executor skipped, so

- :func:`reorder_to_natural` applies it (``spectra[..., perm]``),
- :func:`reorder_to_decimated` scatters it back
  (``out[..., perm] = spectra``),

and ``reorder_to_decimated(reorder_to_natural(s, plan), plan) == s``.

Both helpers refuse natural-ordering plans with a ``ValueError`` —
mirroring how :func:`repro.ntt.convolution.cyclic_convolution_many`
rejects fused plans — because "reordering" under a natural plan is a
silent no-op waiting to corrupt data: the caller's mental model and
the array's actual layout would disagree.
"""

from __future__ import annotations

import numpy as np

from repro.ntt.plan import ORDER_DECIMATED, TransformPlan

__all__ = ["reorder_to_natural", "reorder_to_decimated"]


def _check(plan: TransformPlan, spectra: np.ndarray) -> np.ndarray:
    if plan.ordering != ORDER_DECIMATED:
        raise ValueError(
            "spectrum reordering is defined for decimated plans only; "
            f"got a {plan.ordering!r}-ordering plan (its executor "
            "already emits natural order)"
        )
    arr = np.asarray(spectra, dtype=np.uint64)
    if arr.shape[-1] != plan.n:
        raise ValueError(
            f"last axis must have length {plan.n}, got {arr.shape}"
        )
    return arr


def reorder_to_natural(
    spectra: np.ndarray, plan: TransformPlan
) -> np.ndarray:
    """Decimated-order spectra → natural frequency order.

    ``spectra`` is anything a decimated forward of ``plan`` produced:
    a flat length-n vector or any ``(..., n)`` stack.  Returns a new
    array; the input is not modified.
    """
    arr = _check(plan, spectra)
    return arr[..., plan.output_permutation]


def reorder_to_decimated(
    spectra: np.ndarray, plan: TransformPlan
) -> np.ndarray:
    """Natural frequency order → the decimated order ``plan`` emits.

    The exact inverse of :func:`reorder_to_natural` (a scatter through
    the same permutation).  Use it to feed externally-built natural
    spectra to a decimated plan's DIT inverse.
    """
    arr = _check(plan, spectra)
    out = np.empty_like(arr)
    out[..., plan.output_permutation] = arr
    return out
