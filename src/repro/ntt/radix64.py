"""Shift-only small transforms: the algorithmic core of the FFT-64 unit.

In ``GF(p)`` the 64th root of unity is ``8`` (paper Eq. 3)::

    A[k] = Σ_{i=0}^{63} a[i]·8^{ik} = Σ a[i]·2^{3ik mod 192} (mod p)

so every twiddle multiplication inside a radix-64 (or 32/16/8)
butterfly is a bit shift, and since ``8**64 = 2**192 ≡ 1`` no
intermediate value exceeds 192 bits.

Two evaluation orders are provided:

- :func:`ntt_shift_radix` — the *baseline* direct form (one
  shift-accumulate chain per frequency component, as in Wang & Huang
  [28], paper Fig. 3);
- :func:`ntt64_two_stage` — the paper's *optimized* factorized form
  (Eq. 5): an 8×8 split sharing first-stage partial sums across the
  eight accumulator blocks, with the ``k+4`` even/odd symmetry halving
  the first-stage chains and the twiddle shifts reduced to
  ``{0, 24, 48, 72}`` bits plus a subtract flag.

Both compute identical values; the hardware cost difference between
them is what Table I measures (see :mod:`repro.hw`).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.field.solinas import ORDER_OF_TWO, P, add, mul_by_pow2, sub

#: Radices whose twiddles are powers of two in GF(p): root = 2**(192/R).
SHIFT_RADICES = (8, 16, 32, 64)


def shift_root_exponent(radix: int) -> int:
    """Return ``s`` with ``2**s`` the canonical primitive ``radix``-th root.

    ``root_of_unity(radix) == 8**(64/radix) == 2**(192/radix)`` for the
    shift radices; e.g. 3 for radix-64, 24 for radix-8.
    """
    if radix not in SHIFT_RADICES:
        raise ValueError(f"radix {radix} is not shift-only (need one of {SHIFT_RADICES})")
    return ORDER_OF_TWO // radix


def ntt_shift_radix(values: Sequence[int], radix: int) -> List[int]:
    """Direct shift-only radix-R transform (baseline chains, Fig. 3).

    One accumulation chain per output component; each input enters every
    chain through a shifter.  ``radix`` must be in :data:`SHIFT_RADICES`.
    """
    if len(values) != radix:
        raise ValueError(f"expected {radix} inputs, got {len(values)}")
    base = shift_root_exponent(radix)
    out = []
    for k in range(radix):
        acc = 0
        for i, x in enumerate(values):
            acc = add(acc, mul_by_pow2(x % P, (base * i * k) % ORDER_OF_TWO))
        out.append(acc)
    return out


# --- the optimized Eq. 5 dataflow -----------------------------------------

#: First-stage root: ω8 = 8**8 = 2**24 (order 8).
_OMEGA8_SHIFT = 24
#: Mid twiddle root: ω64 = 8 = 2**3 (order 64).
_OMEGA64_SHIFT = 3


def stage1_partial_sums(column: Sequence[int]) -> Dict[int, int]:
    """First stage of Eq. 5 for one memory column ``j``.

    Computes ``u[k1] = Σ_{i=0}^{7} a[8i+j]·ω8^{i·k1}`` for all eight
    ``k1`` — but, as in the hardware, only the chains ``k1 = 0..3`` are
    evaluated directly; chains ``k1+4`` reuse them via the even/odd
    split: ``u[k1+4] = Σ a·(−1)^i·ω8^{i·k1}``, obtained from the adder
    tree's even-minus-odd output.
    """
    if len(column) != 8:
        raise ValueError("stage 1 consumes exactly eight samples")
    partials: Dict[int, int] = {}
    for k1 in range(4):
        even_sum = 0
        odd_sum = 0
        for i, sample in enumerate(column):
            term = mul_by_pow2(sample % P, (_OMEGA8_SHIFT * i * k1) % ORDER_OF_TWO)
            if i % 2 == 0:
                even_sum = add(even_sum, term)
            else:
                odd_sum = add(odd_sum, term)
        partials[k1] = add(even_sum, odd_sum)
        partials[k1 + 4] = sub(even_sum, odd_sum)
    return partials


def stage1_mid_twiddle(partials: Dict[int, int], j: int) -> Dict[int, int]:
    """Apply the mid twiddles ``ω64^{j·k1}`` (and the ``ω16^j`` factor).

    For the derived chains ``k1+4`` the extra factor is
    ``ω64^{4j} = 2**{12j} = ω16^j`` exactly as the paper notes.
    """
    twiddled: Dict[int, int] = {}
    for k1 in range(4):
        shift = (_OMEGA64_SHIFT * j * k1) % ORDER_OF_TWO
        twiddled[k1] = mul_by_pow2(partials[k1], shift)
        extra = (shift + 12 * j) % ORDER_OF_TWO  # ω64^{j(k1+4)} = ω64^{jk1}·ω16^{j}
        twiddled[k1 + 4] = mul_by_pow2(partials[k1 + 4], extra)
    return twiddled


def accumulator_twiddle(j: int, k2: int) -> Tuple[int, bool]:
    """Outer twiddle ``ω8^{j·k2}`` as ``(shift, subtract)``.

    ``ω8^{j·k2} = 2**{24·j·k2 mod 192}``; because ``ω8^4 = 2**96 = −1``
    only the four shifts ``{0, 24, 48, 72}`` are wired, with a subtract
    flag replacing the other four (paper Section IV-b).
    """
    exponent = (j * k2) % 8
    subtract = exponent >= 4
    shift = _OMEGA8_SHIFT * (exponent % 4)
    return shift, subtract


def ntt64_two_stage(values: Sequence[int]) -> List[int]:
    """Optimized 64-point transform following Eq. 5 exactly.

    Output index ``k = 8·k2 + k1``: accumulator *block* ``k2``
    (selected by the outer twiddle) and *chain* ``k1`` within a block.
    """
    if len(values) != 64:
        raise ValueError("expected 64 inputs")
    accumulators = [[0] * 8 for _ in range(8)]  # [k2][k1]
    for j in range(8):  # eight computing steps, one column per cycle
        column = [values[8 * i + j] for i in range(8)]
        twiddled = stage1_mid_twiddle(stage1_partial_sums(column), j)
        for k2 in range(8):
            shift, subtract = accumulator_twiddle(j, k2)
            for k1 in range(8):
                term = mul_by_pow2(twiddled[k1], shift)
                if subtract:
                    accumulators[k2][k1] = sub(accumulators[k2][k1], term)
                else:
                    accumulators[k2][k1] = add(accumulators[k2][k1], term)
    out = [0] * 64
    for k2 in range(8):
        for k1 in range(8):
            out[8 * k2 + k1] = accumulators[k2][k1]
    return out
