"""Reference O(n²) number-theoretic DFT — the test oracle.

Computes ``F[k] = sum_n f[n] · ω^{nk} (mod p)`` directly from the
definition (paper Eq. 1, left-hand side).  Deliberately unoptimized.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.field.roots import root_of_unity
from repro.field.solinas import P, inverse, pow_mod


def dft_reference(
    values: Sequence[int], omega: Optional[int] = None
) -> List[int]:
    """Direct evaluation of the length-``n`` number-theoretic DFT.

    Parameters
    ----------
    values:
        Input vector (canonical residues); its length must be a power
        of two dividing ``2**32`` unless ``omega`` is supplied.
    omega:
        Primitive n-th root of unity to use.  Defaults to the canonical
        compatible root from :func:`repro.field.roots.root_of_unity`.
    """
    n = len(values)
    if omega is None:
        omega = root_of_unity(n)
    out = []
    for k in range(n):
        acc = 0
        wk = pow_mod(omega, k)
        w = 1
        for x in values:
            acc = (acc + x * w) % P
            w = (w * wk) % P
        out.append(acc)
    return out


def idft_reference(
    values: Sequence[int], omega: Optional[int] = None
) -> List[int]:
    """Direct inverse DFT: forward DFT with ``ω^{-1}`` scaled by ``n^{-1}``."""
    n = len(values)
    if omega is None:
        omega = root_of_unity(n)
    spectrum = dft_reference(values, inverse(omega))
    n_inv = inverse(n)
    return [(x * n_inv) % P for x in spectrum]
