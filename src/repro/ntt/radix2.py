"""Iterative radix-2 NTT — the conventional software baseline.

The paper contrasts its higher-radix Cooley–Tukey decomposition with
"the more common binary recursive splitting approach relying on a
radix-2 transform" (Section III).  This module implements that common
approach, both as a scalar routine and as a numpy-vectorized fast path
used wherever the library needs a quick exact 2**k-point transform.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.field.roots import root_of_unity
from repro.field.solinas import P, inverse, pow_mod
from repro.field.vector import to_field_array, vadd, vmul, vsub


def _bit_reverse_permutation(n: int) -> List[int]:
    """Index permutation placing inputs in bit-reversed order."""
    bits = n.bit_length() - 1
    return [int(format(i, f"0{bits}b")[::-1], 2) for i in range(n)]


def ntt_radix2(
    values: Sequence[int], omega: Optional[int] = None
) -> List[int]:
    """In-order radix-2 decimation-in-time NTT (scalar Python ints)."""
    n = len(values)
    if n & (n - 1) or n == 0:
        raise ValueError("length must be a power of two")
    if omega is None:
        omega = root_of_unity(n)
    data = [values[i] % P for i in _bit_reverse_permutation(n)]
    length = 2
    while length <= n:
        w_len = pow_mod(omega, n // length)
        half = length // 2
        for start in range(0, n, length):
            w = 1
            for j in range(start, start + half):
                even = data[j]
                odd = (data[j + half] * w) % P
                data[j] = (even + odd) % P
                data[j + half] = (even - odd) % P
                w = (w * w_len) % P
        length *= 2
    return data


def intt_radix2(
    values: Sequence[int], omega: Optional[int] = None
) -> List[int]:
    """Inverse of :func:`ntt_radix2` (scaled by ``n^{-1}``)."""
    n = len(values)
    if omega is None:
        omega = root_of_unity(n)
    spectrum = ntt_radix2(values, inverse(omega))
    n_inv = inverse(n)
    return [(x * n_inv) % P for x in spectrum]


def _twiddle_table(n: int, omega: int) -> List[np.ndarray]:
    """Per-stage twiddle arrays ``[ω^{0}, ω^{n/len}, ...]`` for numpy NTT."""
    tables = []
    length = 2
    while length <= n:
        w_len = pow_mod(omega, n // length)
        half = length // 2
        tw = [1] * half
        for i in range(1, half):
            tw[i] = (tw[i - 1] * w_len) % P
        tables.append(to_field_array(tw))
        length *= 2
    return tables


def ntt_radix2_numpy(
    values: np.ndarray, omega: Optional[int] = None
) -> np.ndarray:
    """Vectorized in-order radix-2 NTT on a uint64 field array."""
    n = len(values)
    if n & (n - 1) or n == 0:
        raise ValueError("length must be a power of two")
    if omega is None:
        omega = root_of_unity(n)
    perm = np.array(_bit_reverse_permutation(n), dtype=np.int64)
    data = np.asarray(values, dtype=np.uint64)[perm]
    for stage, tw in enumerate(_twiddle_table(n, omega)):
        length = 2 << stage
        half = length // 2
        view = data.reshape(n // length, length)
        even = view[:, :half].copy()
        odd = vmul(view[:, half:], tw[np.newaxis, :])
        view[:, :half] = vadd(even, odd)
        view[:, half:] = vsub(even, odd)
    return data


def intt_radix2_numpy(
    values: np.ndarray, omega: Optional[int] = None
) -> np.ndarray:
    """Vectorized inverse radix-2 NTT."""
    n = len(values)
    if omega is None:
        omega = root_of_unity(n)
    spectrum = ntt_radix2_numpy(values, inverse(omega))
    n_inv = np.uint64(inverse(n))
    return vmul(spectrum, np.full(n, n_inv, dtype=np.uint64))
