"""Command-line interface: ``python -m repro.cli <command>``.

Every compute command is a thin shell over one
:class:`repro.engine.Engine`: the ``--kernel`` / ``--pes`` /
``--backend`` flags build an
:class:`~repro.engine.config.ExecutionConfig`, and the command body
just calls the engine.

Commands:

- ``table1`` — regenerate the Table I resource census;
- ``table2`` — regenerate the Table II timing comparison;
- ``fft`` — simulate a distributed NTT and print the stage schedule;
- ``multiply`` — run SSA multiplication (random operands of a chosen
  width) on the ``hw-model`` backend (cycle report) or ``software``
  backend; ``--count N`` runs an N-product batch through the batched
  execution engine and reports ops/sec;
- ``scaling`` — PE scaling sweep;
- ``deployments`` — compare the Stratix V and Cyclone V realizations;
- ``batch`` — batch-pipelined throughput schedule (hardware model);
- ``throughput`` — measure looped vs batched software multiplication
  and cross-check against the hardware macro-pipeline model.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import List, Optional


def _engine(args: argparse.Namespace, backend: str = "software"):
    """Build the Engine the command flags describe."""
    from repro.engine import Engine, ExecutionConfig

    overrides = {}
    if getattr(args, "kernel", None) is not None:
        overrides["kernel"] = args.kernel
    if getattr(args, "pes", None) is not None:
        overrides["pes"] = args.pes
    workers = getattr(args, "workers", None)
    if workers is not None:
        overrides["workers"] = workers
        # --workers implies the sharding backend unless one was named
        # (workers=1 included: the user asked for the mp path).
        if backend == "software":
            backend = "software-mp"
    return Engine(config=ExecutionConfig(**overrides), backend=backend)


def _cmd_table1(args: argparse.Namespace) -> None:
    from repro.hw.reports import table1_report

    print(table1_report(pes=args.pes).render())


def _cmd_table2(args: argparse.Namespace) -> None:
    from repro.hw.reports import table2_report

    print(table2_report().render())


def _cmd_fft(args: argparse.Namespace) -> None:
    from repro.field.solinas import P
    from repro.field.vector import to_field_array

    rng = random.Random(args.seed)
    accelerator = _engine(args, backend="hw-model").hardware()
    data = to_field_array([rng.randrange(P) for _ in range(65536)])
    _, report = accelerator.distributed_ntt(data)
    print(report.render())


def _cmd_multiply(args: argparse.Namespace) -> None:
    rng = random.Random(args.seed)
    if args.count < 1:
        raise SystemExit("error: --count must be >= 1")
    if args.count > 1:
        import time

        if args.pes is not None and args.backend != "hw-model":
            print(
                "note: --pes applies to the hardware model only and is "
                "ignored for --count > 1"
            )
        engine = _engine(args, backend=args.backend or "software")
        operands_a = [rng.getrandbits(args.bits) for _ in range(args.count)]
        operands_b = [rng.getrandbits(args.bits) for _ in range(args.count)]
        # Warm plans AND the full mp pool: one batch item per worker
        # (floor 2 to cross the shard threshold), so process spawn and
        # per-worker engine/plan builds stay out of the timed region.
        workers_of = getattr(engine.backend, "workers", None)
        warm_target = workers_of(engine) if workers_of else 2
        warm = min(args.count, max(2, warm_target))
        engine.multiply(operands_a[:warm], operands_b[:warm])
        start = time.perf_counter()
        products = engine.multiply(operands_a, operands_b)
        elapsed = time.perf_counter() - start
        engine.close()
        ok = products == [a * b for a, b in zip(operands_a, operands_b)]
        status = "OK" if ok else "MISMATCH"
        print(
            f"batch of {args.count} {args.bits}-bit products: {status} "
            f"in {elapsed * 1e3:.1f} ms "
            f"({args.count / elapsed:.1f} ops/s)"
        )
        if not ok:
            raise SystemExit(1)
        return
    # --workers selects software-mp even for a single product (which
    # then runs inline below the shard floor) — never silently ignored.
    default_backend = "software" if args.workers is not None else "hw-model"
    engine = _engine(args, backend=args.backend or default_backend)
    a = rng.getrandbits(args.bits)
    b = rng.getrandbits(args.bits)
    product, report = engine.multiply_with_report(a, b)
    status = "OK" if product == a * b else "MISMATCH"
    print(f"{args.bits}-bit x {args.bits}-bit product: {status}")
    if report is not None:
        print(report.render())
    if status != "OK":
        raise SystemExit(1)


def _cmd_scaling(args: argparse.Namespace) -> None:
    from repro.analysis.sweep import pe_scaling_sweep

    print(f"{'PEs':>4} {'T_FFT us':>10} {'T_MULT us':>11} {'eff':>6}")
    for point in pe_scaling_sweep():
        print(
            f"{point.pes:>4} {point.fft_us:>10.2f} {point.mult_us:>11.2f} "
            f"{point.parallel_efficiency:>5.0%}"
        )


def _cmd_deployments(args: argparse.Namespace) -> None:
    from repro.hw.deployment import (
        CYCLONE_MULTI_BOARD,
        STRATIX_ON_CHIP,
        evaluate_deployment,
    )

    for spec in (CYCLONE_MULTI_BOARD, STRATIX_ON_CHIP):
        report = evaluate_deployment(spec)
        print(report.render())
        print(
            f"  T_MULT = {report.multiplication_time_us(65536):.2f} us\n"
        )


def _cmd_batch(args: argparse.Namespace) -> None:
    from repro.hw.batch import schedule_batch

    print(schedule_batch(args.count).render())


def _cmd_throughput(args: argparse.Namespace) -> None:
    import contextlib

    from repro.hw.batch import measure_software_batch, schedule_batch

    inject_spec = getattr(args, "inject", None)
    if inject_spec and getattr(args, "workers", None) is None:
        # Fault injection targets the sharded path; a single-process
        # run has no workers to kill.
        args.workers = 2
    engine = _engine(args)
    scope = contextlib.nullcontext()
    if inject_spec:
        from repro.engine import faultinject

        scope = faultinject.inject(inject_spec)
    try:
        with scope:
            comparison = measure_software_batch(
                bits=args.bits,
                count=args.count,
                seed=args.seed,
                engine=engine,
            )
        fault_report = getattr(engine.backend, "fault_report", None)
    finally:
        engine.close()
    print(comparison.render())
    if inject_spec and fault_report is not None:
        print()
        print(fault_report.render())
    print()
    print(schedule_batch(args.count).render())


def _cmd_serve(args: argparse.Namespace) -> None:
    from repro.engine import ExecutionConfig
    from repro.serve import ServiceConfig, run_server

    backend = args.backend or "software"
    overrides = {}
    if args.workers is not None:
        overrides["workers"] = args.workers
        if backend == "software":
            backend = "software-mp"
    try:
        config = ServiceConfig(
            # A lone --max-queue below the per-tenant default just
            # tightens both bounds.
            max_queue_per_tenant=min(
                args.max_queue_per_tenant, args.max_queue
            ),
            max_queue_global=args.max_queue,
            job_timeout_s=args.job_timeout,
        )
    except ValueError as error:
        raise SystemExit(f"error: {error}") from None

    def on_ready(server) -> None:
        print(
            f"repro service listening on {server.host}:{server.port} "
            f"(backend {backend})",
            flush=True,
        )

    run_server(
        ExecutionConfig(**overrides),
        backend=backend,
        host=args.host,
        port=args.port,
        config=config,
        max_requests=args.max_requests,
        on_ready=on_ready,
    )
    print("service stopped")


def _cmd_client(args: argparse.Namespace) -> None:
    import json

    from repro.serve import TCPServiceClient, render_stats

    with TCPServiceClient(
        args.host, args.port, tenant=getattr(args, "tenant", "default")
    ) as client:
        if args.client_command == "stats":
            snapshot = client.stats()
            if args.json:
                print(json.dumps(snapshot, indent=2, sort_keys=True))
            else:
                print(render_stats(snapshot))
            return
        # submit
        raw = args.payload
        if raw == "-":
            raw = sys.stdin.read()
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as error:
            raise SystemExit(f"error: payload is not JSON: {error}") from None
        response = client.request(
            args.op,
            payload,
            priority=args.priority,
            timeout=args.timeout,
        )
        body = {
            "status": response.status,
            "coalesced": response.coalesced,
            "latency_s": response.latency_s,
        }
        if response.ok:
            body["result"] = response.result
        else:
            body["error"] = response.error
            body["error_type"] = response.error_type
        print(json.dumps(body))
        if not response.ok:
            raise SystemExit(1)


def _cmd_arch_show(args: argparse.Namespace) -> None:
    import json

    from repro.arch import ArchSpec

    if args.spec is not None:
        with open(args.spec, "r", encoding="utf-8") as handle:
            spec = ArchSpec.from_json(handle.read())
    else:
        spec = ArchSpec.paper_default()
        overrides = {}
        if args.pes is not None:
            overrides["pes"] = args.pes
        if args.topology is not None:
            overrides["topology"] = args.topology
        if overrides:
            topology = args.topology or spec.exchange.topology
            pes = args.pes or spec.pes
            overrides["name"] = f"{topology}-p{pes}"
            spec = spec.with_overrides(**overrides)
    if args.json:
        print(json.dumps(spec.to_dict(), indent=2, sort_keys=True))
        return
    print(spec.render())
    from repro.hw.timing import AcceleratorTiming

    timing = AcceleratorTiming.for_arch(spec)
    print(
        f"  closed-form timing: T_FFT {timing.fft_time_us():.2f} us, "
        f"T_MULT {timing.multiplication_time_us():.2f} us"
    )


def _cmd_arch_sweep(args: argparse.Namespace) -> None:
    from repro.arch import DesignSpace, explore, plot_frontier

    space = DesignSpace(max_candidates=args.max_candidates)
    result = explore(space=space, use_jobs=not args.no_jobs)
    print(result.render(limit=args.limit))
    if args.pareto is not None:
        with open(args.pareto, "w", encoding="utf-8") as handle:
            handle.write(result.to_json())
            handle.write("\n")
        print(f"frontier written to {args.pareto}")
    if args.plot is not None:
        written = plot_frontier(result, args.plot)
        if written is None:
            print("plot skipped (matplotlib unavailable)")
        else:
            print(f"frontier plot written to {written}")


def _cmd_verify(args: argparse.Namespace) -> None:
    from repro.verify import run_self_check

    ok, _ = run_self_check(verbose=True)
    if not ok:
        raise SystemExit(1)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DATE 2016 HE-accelerator reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p1 = sub.add_parser("table1", help="resource census (Table I)")
    p1.add_argument("--pes", type=int, default=4)
    p1.set_defaults(func=_cmd_table1)

    p2 = sub.add_parser("table2", help="timing comparison (Table II)")
    p2.set_defaults(func=_cmd_table2)

    pf = sub.add_parser("fft", help="simulate a 64K distributed NTT")
    pf.add_argument("--pes", type=int, default=4)
    pf.add_argument("--seed", type=int, default=0)
    pf.set_defaults(func=_cmd_fft)

    pm = sub.add_parser("multiply", help="accelerated multiplication(s)")
    pm.add_argument("--bits", type=int, default=786_432)
    pm.add_argument(
        "--pes",
        type=int,
        default=None,
        help="PE count for the hardware model (single-product path)",
    )
    pm.add_argument("--seed", type=int, default=0)
    pm.add_argument(
        "--count",
        type=int,
        default=1,
        help="batch size; >1 uses the batched execution engine",
    )
    pm.add_argument(
        "--kernel",
        choices=["loop", "limb-matmul"],
        default=None,
        help=(
            "NTT stage-DFT backend (default: REPRO_NTT_KERNEL env var, "
            "then limb-matmul)"
        ),
    )
    pm.add_argument(
        "--backend",
        choices=["software", "software-mp", "hw-model"],
        default=None,
        help=(
            "compute backend (default: hw-model with its cycle report "
            "for a single product, software for --count > 1; "
            "software-mp shards the batch over worker processes)"
        ),
    )
    pm.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "worker processes for software-mp (default: one per CPU); "
            "setting it without --backend selects software-mp"
        ),
    )
    pm.set_defaults(func=_cmd_multiply)

    ps = sub.add_parser("scaling", help="PE scaling sweep")
    ps.set_defaults(func=_cmd_scaling)

    pd = sub.add_parser("deployments", help="prototype vs final platform")
    pd.set_defaults(func=_cmd_deployments)

    pb = sub.add_parser("batch", help="batch-pipelined throughput")
    pb.add_argument("--count", type=int, default=16)
    pb.set_defaults(func=_cmd_batch)

    pt = sub.add_parser(
        "throughput", help="measured software batch throughput vs model"
    )
    pt.add_argument("--bits", type=int, default=4096)
    pt.add_argument("--count", type=int, default=32)
    pt.add_argument("--seed", type=int, default=0)
    pt.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "measure the batched path on the software-mp backend with "
            "this many worker processes (default: single-process)"
        ),
    )
    pt.add_argument(
        "--inject",
        type=str,
        default=None,
        metavar="SPEC",
        help=(
            "arm the runtime fault-injection harness for the measured "
            "run (e.g. 'worker-kill', 'worker-kill:1', "
            "'shard-delay:0:0.5'); implies --workers 2 when --workers "
            "is not given, and prints the backend's fault report"
        ),
    )
    pt.set_defaults(func=_cmd_throughput)

    pserve = sub.add_parser(
        "serve", help="run the multi-tenant TCP compute service"
    )
    pserve.add_argument("--host", default="127.0.0.1")
    pserve.add_argument(
        "--port",
        type=int,
        default=7100,
        help="TCP port (0 binds an ephemeral port)",
    )
    pserve.add_argument(
        "--backend",
        choices=["software", "software-mp", "hw-model"],
        default=None,
        help="compute backend behind the service (default: software)",
    )
    pserve.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "worker processes for software-mp; setting it without "
            "--backend selects software-mp"
        ),
    )
    pserve.add_argument(
        "--max-queue",
        type=int,
        default=256,
        help="global queued-request bound (overload is REJECTED)",
    )
    pserve.add_argument(
        "--max-queue-per-tenant",
        type=int,
        default=64,
        help="per-tenant queued-request bound",
    )
    pserve.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        help="deadline (s) for each batched engine job",
    )
    pserve.add_argument(
        "--max-requests",
        type=int,
        default=None,
        help="exit after answering this many submits (CI smoke)",
    )
    pserve.set_defaults(func=_cmd_serve)

    pclient = sub.add_parser(
        "client", help="talk to a running repro service"
    )
    csub = pclient.add_subparsers(dest="client_command", required=True)
    csubmit = csub.add_parser(
        "submit", help="submit one job and print its JSON response"
    )
    csubmit.add_argument("--host", default="127.0.0.1")
    csubmit.add_argument("--port", type=int, default=7100)
    csubmit.add_argument("--tenant", default="default")
    csubmit.add_argument("--priority", type=int, default=0)
    csubmit.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="request deadline in seconds",
    )
    csubmit.add_argument(
        "--op",
        required=True,
        choices=[
            "multiply",
            "ring-transform",
            "convolve",
            "dghv-mult",
            "rlwe-multiply-plain",
            "rlwe-multiply",
        ],
    )
    csubmit.add_argument(
        "--payload",
        required=True,
        help="JSON payload for the op ('-' reads stdin)",
    )
    csubmit.set_defaults(func=_cmd_client)
    cstats = csub.add_parser(
        "stats", help="print the service metrics snapshot"
    )
    cstats.add_argument("--host", default="127.0.0.1")
    cstats.add_argument("--port", type=int, default=7100)
    cstats.add_argument(
        "--json",
        action="store_true",
        help="raw JSON instead of the rendered table",
    )
    cstats.set_defaults(func=_cmd_client)

    parch = sub.add_parser(
        "arch", help="architecture specs and design-space exploration"
    )
    asub = parch.add_subparsers(dest="arch_command", required=True)
    ashow = asub.add_parser(
        "show", help="render a spec and its derived quantities"
    )
    ashow.add_argument(
        "--spec",
        type=str,
        default=None,
        help="JSON spec file (default: the paper configuration)",
    )
    ashow.add_argument(
        "--pes",
        type=int,
        default=None,
        help="override the PE count of the default spec",
    )
    ashow.add_argument(
        "--topology",
        choices=["hypercube", "ring", "all-to-all"],
        default=None,
        help="override the exchange topology of the default spec",
    )
    ashow.add_argument(
        "--json",
        action="store_true",
        help="emit the spec as JSON instead of the rendered summary",
    )
    ashow.set_defaults(func=_cmd_arch_show)
    asweep = asub.add_parser(
        "sweep", help="explore the design space and print the frontier"
    )
    asweep.add_argument(
        "--pareto",
        type=str,
        default=None,
        metavar="OUT.JSON",
        help="write the full exploration result as JSON",
    )
    asweep.add_argument(
        "--plot",
        type=str,
        default=None,
        metavar="OUT.PNG",
        help="write a cycles-vs-area frontier plot (best-effort)",
    )
    asweep.add_argument(
        "--max-candidates",
        type=int,
        default=512,
        help="deterministic stride-sampling cap on the enumeration",
    )
    asweep.add_argument(
        "--limit",
        type=int,
        default=12,
        help="frontier rows to print",
    )
    asweep.add_argument(
        "--no-jobs",
        action="store_true",
        help="evaluate inline instead of through the job scheduler",
    )
    asweep.set_defaults(func=_cmd_arch_sweep)

    pv = sub.add_parser("verify", help="run the end-to-end self-check")
    pv.set_defaults(func=_cmd_verify)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    args.func(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
