"""``repro.jobs`` — the public home of the futures-style job API.

Thin re-export of :mod:`repro.engine.jobs` so user code reads::

    from repro.jobs import JobScheduler, MultiplyJob, as_completed

See that module for the full documentation.
"""

from repro.engine.jobs import (
    ConvolveJob,
    DGHVMultJob,
    Job,
    JobHandle,
    JobScheduler,
    MultiplyJob,
    RingTransformJob,
    RLWEMultiplyPlainJob,
    as_completed,
)
from repro.engine.resilience import (
    NO_RETRY,
    Deadline,
    FaultReport,
    JobTimeoutError,
    RetryPolicy,
    RuntimeFaultError,
    ShardVerificationError,
    WorkerCrashError,
)

__all__ = [
    "JobScheduler",
    "JobHandle",
    "Job",
    "MultiplyJob",
    "RingTransformJob",
    "ConvolveJob",
    "DGHVMultJob",
    "RLWEMultiplyPlainJob",
    "as_completed",
    "RetryPolicy",
    "NO_RETRY",
    "Deadline",
    "FaultReport",
    "RuntimeFaultError",
    "WorkerCrashError",
    "JobTimeoutError",
    "ShardVerificationError",
]
