"""Wire protocol of the :mod:`repro.serve` compute service.

The service speaks **length-prefixed JSON** over a byte stream: every
message is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON.  JSON is a deliberate choice for an FHE service
front end: Python's ``json`` round-trips arbitrary-precision integers
exactly, so γ-bit DGHV ciphertexts and 64-bit field coefficients travel
without any base64/hex detour, and every frame stays inspectable with
``nc`` + ``python -m json.tool``.

Message vocabulary (the ``type`` field):

``submit``
    ``{"type": "submit", "id": ..., "tenant": ..., "op": ...,
    "priority": 0, "timeout": null, "payload": {...}}`` — queue one
    request; the service answers with a ``response`` frame carrying the
    same ``id``.  Responses are **not** ordered: a connection may
    pipeline many submits and receive completions as they land.
``stats``
    ``{"type": "stats", "id": ...}`` — the metrics-registry snapshot.
``ping``
    liveness probe, answered with ``{"type": "pong"}``.

Response status values are typed, not stringly ad hoc:

- :data:`STATUS_OK` — ``result`` holds the op's output;
- :data:`STATUS_REJECTED` — admission control refused the request
  (queue caps); ``error`` names the exhausted bound.  The request was
  **never queued** — backpressure is bounded by construction;
- :data:`STATUS_TIMEOUT` — the request's deadline expired (in queue or
  while its batch ran);
- :data:`STATUS_ERROR` — the job failed; ``error_type`` carries the
  exception class name and ``fault_events`` whatever the resilience
  runtime recorded (worker crashes, respawns, retries, dead-letter).
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from dataclasses import dataclass, field
from typing import Any, List, Optional

#: Frame length prefix: 4-byte big-endian unsigned length.
_LENGTH = struct.Struct(">I")

#: Upper bound on one frame's body.  64 MiB comfortably fits a batch of
#: paper-sized (786432-bit) operands while bounding what one client can
#: make the server buffer.
MAX_FRAME_BYTES = 64 * 1024 * 1024

STATUS_OK = "ok"
STATUS_REJECTED = "rejected"
STATUS_TIMEOUT = "timeout"
STATUS_ERROR = "error"


class ProtocolError(ValueError):
    """A malformed frame or request (bad length, JSON, or fields)."""


# -- framing ---------------------------------------------------------------


def encode_frame(message: dict) -> bytes:
    """One wire frame: length prefix + compact JSON body."""
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame body of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame limit"
        )
    return _LENGTH.pack(len(body)) + body


def decode_body(body: bytes) -> dict:
    """The JSON object inside one frame body."""
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"frame body is not JSON: {error}") from None
    if not isinstance(message, dict):
        raise ProtocolError("frame body must be a JSON object")
    return message


def _check_length(length: int) -> None:
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame limit"
        )


async def read_frame(reader: asyncio.StreamReader) -> Optional[dict]:
    """Read one frame from an asyncio stream (``None`` on clean EOF)."""
    try:
        prefix = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None  # clean EOF between frames
        raise ProtocolError("connection closed mid-length-prefix") from None
    (length,) = _LENGTH.unpack(prefix)
    _check_length(length)
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ProtocolError("connection closed mid-frame") from None
    return decode_body(body)


async def write_frame(
    writer: asyncio.StreamWriter, message: dict
) -> None:
    """Write one frame to an asyncio stream and drain."""
    writer.write(encode_frame(message))
    await writer.drain()


def send_frame(sock: socket.socket, message: dict) -> None:
    """Blocking-socket counterpart of :func:`write_frame`."""
    sock.sendall(encode_frame(message))


def recv_frame(sock: socket.socket) -> Optional[dict]:
    """Blocking-socket counterpart of :func:`read_frame`."""

    def read_exactly(count: int) -> Optional[bytes]:
        chunks = []
        remaining = count
        while remaining:
            chunk = sock.recv(remaining)
            if not chunk:
                return None
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    prefix = read_exactly(_LENGTH.size)
    if prefix is None:
        return None
    (length,) = _LENGTH.unpack(prefix)
    _check_length(length)
    body = read_exactly(length)
    if body is None:
        raise ProtocolError("connection closed mid-frame")
    return decode_body(body)


# -- responses -------------------------------------------------------------


@dataclass
class Response:
    """One request's typed outcome.

    ``result`` holds the op's *raw* (in-process) output on the server
    side — numpy rows, ciphertext objects — and the JSON-decoded form
    on a TCP client.  ``coalesced`` is how many requests shared the
    batched engine pass that produced this response (1 = ran alone);
    ``queue_wait_s`` / ``latency_s`` split where the time went.
    """

    status: str
    request_id: Optional[object] = None
    result: Any = None
    error: Optional[str] = None
    error_type: Optional[str] = None
    fault_events: List[str] = field(default_factory=list)
    dead_lettered: bool = False
    coalesced: int = 0
    queue_wait_s: float = 0.0
    latency_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    @property
    def rejected(self) -> bool:
        return self.status == STATUS_REJECTED

    def to_wire(self, encoded_result: Any = None) -> dict:
        """The JSON ``response`` frame for this outcome.

        ``encoded_result`` is the op's JSON encoding of :attr:`result`
        (the raw result may hold numpy arrays or ciphertext objects).
        """
        message: dict = {
            "type": "response",
            "id": self.request_id,
            "status": self.status,
            "coalesced": self.coalesced,
            "queue_wait_s": round(self.queue_wait_s, 6),
            "latency_s": round(self.latency_s, 6),
        }
        if self.status == STATUS_OK:
            message["result"] = encoded_result
        else:
            message["error"] = self.error
            if self.error_type:
                message["error_type"] = self.error_type
            if self.dead_lettered:
                message["dead_lettered"] = True
        if self.fault_events:
            message["fault_events"] = list(self.fault_events)
        return message

    @classmethod
    def from_wire(cls, message: dict) -> "Response":
        """Decode a ``response`` frame (TCP-client side)."""
        if message.get("type") != "response":
            raise ProtocolError(
                f"expected a response frame, got {message.get('type')!r}"
            )
        return cls(
            status=message.get("status", STATUS_ERROR),
            request_id=message.get("id"),
            result=message.get("result"),
            error=message.get("error"),
            error_type=message.get("error_type"),
            fault_events=list(message.get("fault_events", ())),
            dead_lettered=bool(message.get("dead_lettered", False)),
            coalesced=int(message.get("coalesced", 0)),
            queue_wait_s=float(message.get("queue_wait_s", 0.0)),
            latency_s=float(message.get("latency_s", 0.0)),
        )


def submit_message(
    op: str,
    payload: dict,
    *,
    tenant: str = "default",
    priority: int = 0,
    timeout: Optional[float] = None,
    request_id: Optional[object] = None,
) -> dict:
    """A well-formed ``submit`` frame body."""
    message: dict = {
        "type": "submit",
        "id": request_id,
        "tenant": tenant,
        "op": op,
        "priority": priority,
        "payload": payload,
    }
    if timeout is not None:
        message["timeout"] = timeout
    return message


__all__ = [
    "MAX_FRAME_BYTES",
    "STATUS_OK",
    "STATUS_REJECTED",
    "STATUS_TIMEOUT",
    "STATUS_ERROR",
    "ProtocolError",
    "encode_frame",
    "decode_body",
    "read_frame",
    "write_frame",
    "send_frame",
    "recv_frame",
    "Response",
    "submit_message",
]
