"""Per-tenant service metrics: counters, latency quantiles, batch fill.

The registry is the service's observability story (exported via the
``stats`` RPC and ``repro client stats``):

- **per-tenant counters** — submitted / accepted / rejected /
  completed / failed / timed-out / dead-lettered requests, item totals,
  and the current queue depth;
- **latency quantiles** — p50/p95/p99 over a bounded reservoir of the
  most recent completions (bounded memory by construction: an abusive
  tenant cannot grow its metrics footprint past the window);
- **throughput** — completed jobs/s over the registry's lifetime;
- **batch fill** — how well coalescing is working: mean requests and
  items per batched engine pass, and the fill ratio against the
  configured per-batch item budget.

Everything is guarded by one lock; updates are counter bumps and ring
writes, far off the compute path's critical section.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

#: Latencies kept per tenant for the quantile estimates.
RESERVOIR_SIZE = 2048


def percentile(sorted_values: List[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending list (0 when empty)."""
    if not sorted_values:
        return 0.0
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    rank = max(0, min(len(sorted_values) - 1, round(fraction * (len(sorted_values) - 1))))
    return sorted_values[rank]


class LatencyWindow:
    """A bounded ring of recent latency observations (seconds)."""

    def __init__(self, size: int = RESERVOIR_SIZE):
        self._size = size
        self._ring: List[float] = []
        self._next = 0
        self.observed = 0

    def observe(self, seconds: float) -> None:
        if len(self._ring) < self._size:
            self._ring.append(seconds)
        else:
            self._ring[self._next] = seconds
            self._next = (self._next + 1) % self._size
        self.observed += 1

    def snapshot(self) -> dict:
        values = sorted(self._ring)
        return {
            "observed": self.observed,
            "p50_ms": percentile(values, 0.50) * 1e3,
            "p95_ms": percentile(values, 0.95) * 1e3,
            "p99_ms": percentile(values, 0.99) * 1e3,
            "max_ms": (values[-1] * 1e3) if values else 0.0,
        }


class TenantMetrics:
    """One tenant's counters and latency window (registry-locked)."""

    def __init__(self) -> None:
        self.submitted = 0
        self.accepted = 0
        self.rejected = 0
        self.completed = 0
        self.failed = 0
        self.timed_out = 0
        self.dead_lettered = 0
        self.items_submitted = 0
        self.items_completed = 0
        self.queue_depth = 0
        self.latency = LatencyWindow()
        self.queue_wait = LatencyWindow()

    def snapshot(self, uptime_s: float) -> dict:
        return {
            "submitted": self.submitted,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "completed": self.completed,
            "failed": self.failed,
            "timed_out": self.timed_out,
            "dead_lettered": self.dead_lettered,
            "items_submitted": self.items_submitted,
            "items_completed": self.items_completed,
            "queue_depth": self.queue_depth,
            "jobs_per_s": (
                self.completed / uptime_s if uptime_s > 0 else 0.0
            ),
            "latency": self.latency.snapshot(),
            "queue_wait": self.queue_wait.snapshot(),
        }


class MetricsRegistry:
    """Thread-safe service metrics, per tenant plus batching globals."""

    def __init__(self, batch_item_budget: Optional[int] = None):
        self._lock = threading.Lock()
        self._tenants: Dict[str, TenantMetrics] = {}
        self._started = time.monotonic()
        #: Coalescing accounting: engine passes and what filled them.
        self.batches = 0
        self.batched_requests = 0
        self.batched_items = 0
        self.batch_item_budget = batch_item_budget

    def _tenant(self, tenant: str) -> TenantMetrics:
        metrics = self._tenants.get(tenant)
        if metrics is None:
            metrics = self._tenants[tenant] = TenantMetrics()
        return metrics

    # -- event hooks (called by the scheduler/service) ---------------------

    def on_submitted(self, tenant: str, items: int) -> None:
        with self._lock:
            t = self._tenant(tenant)
            t.submitted += 1
            t.items_submitted += items

    def on_accepted(self, tenant: str) -> None:
        with self._lock:
            t = self._tenant(tenant)
            t.accepted += 1
            t.queue_depth += 1

    def on_rejected(self, tenant: str) -> None:
        with self._lock:
            self._tenant(tenant).rejected += 1

    def on_dequeued(self, tenant: str, queue_wait_s: float) -> None:
        with self._lock:
            t = self._tenant(tenant)
            t.queue_depth = max(0, t.queue_depth - 1)
            t.queue_wait.observe(queue_wait_s)

    def on_batch(self, requests: int, items: int) -> None:
        with self._lock:
            self.batches += 1
            self.batched_requests += requests
            self.batched_items += items

    def on_completed(
        self, tenant: str, items: int, latency_s: float
    ) -> None:
        with self._lock:
            t = self._tenant(tenant)
            t.completed += 1
            t.items_completed += items
            t.latency.observe(latency_s)

    def on_failed(
        self,
        tenant: str,
        latency_s: float,
        *,
        timed_out: bool = False,
        dead_lettered: bool = False,
    ) -> None:
        with self._lock:
            t = self._tenant(tenant)
            if timed_out:
                t.timed_out += 1
            else:
                t.failed += 1
            if dead_lettered:
                t.dead_lettered += 1
            t.latency.observe(latency_s)

    # -- export ------------------------------------------------------------

    def snapshot(self) -> dict:
        with self._lock:
            uptime = max(time.monotonic() - self._started, 1e-9)
            tenants = {
                name: metrics.snapshot(uptime)
                for name, metrics in sorted(self._tenants.items())
            }
            totals = {
                key: sum(t[key] for t in tenants.values())
                for key in (
                    "submitted",
                    "accepted",
                    "rejected",
                    "completed",
                    "failed",
                    "timed_out",
                    "dead_lettered",
                    "items_completed",
                    "queue_depth",
                )
            }
            totals["jobs_per_s"] = (
                totals["completed"] / uptime if uptime > 0 else 0.0
            )
            coalescing = {
                "batches": self.batches,
                "batched_requests": self.batched_requests,
                "batched_items": self.batched_items,
                "requests_per_batch": (
                    self.batched_requests / self.batches
                    if self.batches
                    else 0.0
                ),
                "items_per_batch": (
                    self.batched_items / self.batches
                    if self.batches
                    else 0.0
                ),
            }
            if self.batch_item_budget:
                coalescing["fill_ratio"] = (
                    self.batched_items
                    / (self.batches * self.batch_item_budget)
                    if self.batches
                    else 0.0
                )
            return {
                "uptime_s": uptime,
                "totals": totals,
                "coalescing": coalescing,
                "tenants": tenants,
            }


def render_stats(snapshot: dict) -> str:
    """Human-readable table of a :meth:`MetricsRegistry.snapshot`."""
    totals = snapshot["totals"]
    coalescing = snapshot["coalescing"]
    lines = [
        "service stats "
        f"(uptime {snapshot['uptime_s']:.1f}s, "
        f"{totals['completed']} completed, "
        f"{totals['rejected']} rejected, "
        f"{totals['jobs_per_s']:.1f} jobs/s)",
        f"  coalescing: {coalescing['batches']} engine passes, "
        f"{coalescing['requests_per_batch']:.2f} requests/batch, "
        f"{coalescing['items_per_batch']:.2f} items/batch"
        + (
            f", fill {coalescing['fill_ratio']:.0%}"
            if "fill_ratio" in coalescing
            else ""
        ),
        f"  {'tenant':>12} {'done':>6} {'rej':>5} {'fail':>5} "
        f"{'depth':>6} {'jobs/s':>8} {'p50 ms':>8} {'p95 ms':>8} "
        f"{'p99 ms':>8}",
    ]
    for name, tenant in snapshot["tenants"].items():
        latency = tenant["latency"]
        lines.append(
            f"  {name:>12} {tenant['completed']:>6} "
            f"{tenant['rejected']:>5} "
            f"{tenant['failed'] + tenant['timed_out']:>5} "
            f"{tenant['queue_depth']:>6} {tenant['jobs_per_s']:>8.1f} "
            f"{latency['p50_ms']:>8.1f} {latency['p95_ms']:>8.1f} "
            f"{latency['p99_ms']:>8.1f}"
        )
    return "\n".join(lines)


__all__ = [
    "RESERVOIR_SIZE",
    "percentile",
    "LatencyWindow",
    "TenantMetrics",
    "MetricsRegistry",
    "render_stats",
]
