"""The compute service: engine + fair scheduler + asyncio TCP front.

:class:`ComputeService` is the in-process composition root — it owns an
:class:`~repro.engine.jobs.JobScheduler` (and, unless handed an
existing engine, the engine behind it), a
:class:`~repro.serve.scheduler.ServiceScheduler` and a
:class:`~repro.serve.metrics.MetricsRegistry`, and exposes exactly
three verbs: ``submit`` (a future over a typed
:class:`~repro.serve.protocol.Response`), ``stats`` (the metrics
snapshot) and ``shutdown`` (drain-or-reject, then
:meth:`JobScheduler.drain` to surface dead-letters).

:class:`ServiceServer` is the asyncio shell: one coroutine per
connection reads length-prefixed JSON frames, decodes ops, submits
them, and writes each ``response`` frame back *as its job lands* — a
connection may pipeline many submits and receives completions out of
order, matched by ``id``.  All compute runs on the service's dispatcher
thread(s); the event loop only parses, queues and serializes, so a slow
job never blocks another client's admission or a ``stats`` probe.
"""

from __future__ import annotations

import asyncio
from typing import Callable, List, Optional

from repro.engine.jobs import JobHandle, JobScheduler
from repro.serve.metrics import MetricsRegistry
from repro.serve.ops import ServiceOp, decode_op
from repro.serve.protocol import (
    STATUS_ERROR,
    ProtocolError,
    Response,
    read_frame,
    write_frame,
)
from repro.serve.scheduler import ServiceConfig, ServiceScheduler


class ComputeService:
    """One served engine: fair scheduling, admission, metrics.

    Parameters
    ----------
    source:
        Forwarded to :class:`~repro.engine.jobs.JobScheduler` — an
        ``Engine``, an ``ExecutionConfig``, or ``None`` for a default
        software engine the service owns and closes.
    backend:
        Backend name when the service builds its own engine
        (``software``, ``software-mp``, ``hw-model``).
    config:
        The :class:`~repro.serve.scheduler.ServiceConfig` knob block.
    """

    def __init__(
        self,
        source=None,
        *,
        backend: Optional[str] = None,
        config: Optional[ServiceConfig] = None,
    ):
        self.jobs = JobScheduler(source, backend=backend)
        self.config = config if config is not None else ServiceConfig()
        self.metrics = MetricsRegistry(
            batch_item_budget=self.config.max_coalesce_items
        )
        self.scheduler = ServiceScheduler(
            self.jobs, self.config, self.metrics
        )
        self._closed = False

    # -- the three verbs ---------------------------------------------------

    def submit(
        self,
        op: ServiceOp,
        *,
        tenant: str = "default",
        priority: int = 0,
        timeout: Optional[float] = None,
        request_id=None,
    ):
        """Admit one op; returns a ``Future[Response]`` immediately."""
        return self.scheduler.submit(
            tenant,
            op,
            priority=priority,
            timeout=timeout,
            request_id=request_id,
        )

    def stats(self) -> dict:
        """The metrics-registry snapshot (the ``stats`` RPC body)."""
        return self.metrics.snapshot()

    def shutdown(
        self, drain: bool = True, timeout: Optional[float] = None
    ) -> List[JobHandle]:
        """Stop the service; returns the engine queue's dead-letters.

        Admission closes first (late submits get typed ``REJECTED``
        responses), then the service queue drains (or is rejected,
        ``drain=False``), then :meth:`JobScheduler.drain` flushes the
        engine queue so every in-flight job reaches a terminal state
        and its dead-letter — if that is how it ended — is surfaced
        here instead of vanishing into a closed pool.  Idempotent.
        """
        if self._closed:
            return []
        self._closed = True
        self.scheduler.stop(drain=drain, timeout=timeout)
        dead = self.jobs.drain(timeout=timeout)
        self.jobs.shutdown(wait=True)
        return dead

    def __enter__(self) -> "ComputeService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


class ServiceServer:
    """Asyncio TCP front end over one :class:`ComputeService`.

    ``port=0`` binds an ephemeral port (read :attr:`port` after
    :meth:`start`).  ``max_requests`` — mainly for CI smoke runs —
    stops the server once that many ``submit`` frames have been
    answered.
    """

    def __init__(
        self,
        service: ComputeService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_requests: Optional[int] = None,
    ):
        self.service = service
        self.host = host
        self.port = port
        self._remaining = max_requests
        self._server: Optional[asyncio.AbstractServer] = None
        self._done: Optional[asyncio.Event] = None

    async def start(self) -> "ServiceServer":
        self._done = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_until_done(self) -> None:
        """Serve until :meth:`request_stop` (or ``max_requests``)."""
        assert self._server is not None and self._done is not None
        async with self._server:
            await self._server.start_serving()
            await self._done.wait()

    def request_stop(self) -> None:
        if self._done is not None:
            self._done.set()

    # -- connection handling -----------------------------------------------

    def _count_request(self) -> None:
        if self._remaining is not None:
            self._remaining -= 1
            if self._remaining <= 0:
                self.request_stop()

    async def _handle_connection(self, reader, writer) -> None:
        write_lock = asyncio.Lock()
        tasks: set = set()
        try:
            while True:
                try:
                    message = await read_frame(reader)
                except ProtocolError as error:
                    async with write_lock:
                        await write_frame(
                            writer,
                            {"type": "error", "error": str(error)},
                        )
                    break
                if message is None:
                    break
                message_type = message.get("type")
                if message_type == "ping":
                    async with write_lock:
                        await write_frame(writer, {"type": "pong"})
                elif message_type == "stats":
                    async with write_lock:
                        await write_frame(
                            writer,
                            {
                                "type": "stats",
                                "id": message.get("id"),
                                "stats": self.service.stats(),
                            },
                        )
                elif message_type == "submit":
                    # Per-request coroutine: the connection keeps
                    # reading (pipelining) while jobs run; responses
                    # land as they complete, matched by id.
                    task = asyncio.ensure_future(
                        self._respond(message, writer, write_lock)
                    )
                    tasks.add(task)
                    task.add_done_callback(tasks.discard)
                else:
                    async with write_lock:
                        await write_frame(
                            writer,
                            {
                                "type": "error",
                                "id": message.get("id"),
                                "error": (
                                    "unknown message type "
                                    f"{message_type!r}"
                                ),
                            },
                        )
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass  # loop teardown cancels close handshakes

    async def _respond(self, message, writer, write_lock) -> None:
        request_id = message.get("id")
        try:
            op = decode_op(
                str(message.get("op")), message.get("payload")
            )
            tenant = str(message.get("tenant", "default"))
            priority = message.get("priority", 0)
            if not isinstance(priority, int) or isinstance(
                priority, bool
            ):
                raise ProtocolError("priority must be an integer")
            timeout = message.get("timeout")
            if timeout is not None and (
                not isinstance(timeout, (int, float))
                or isinstance(timeout, bool)
            ):
                raise ProtocolError("timeout must be a number")
        except ProtocolError as error:
            response = Response(
                status=STATUS_ERROR,
                request_id=request_id,
                error=str(error),
                error_type=ProtocolError.__name__,
            )
            encoded = None
        else:
            future = self.service.submit(
                op,
                tenant=tenant,
                priority=priority,
                timeout=timeout,
                request_id=request_id,
            )
            response = await asyncio.wrap_future(future)
            encoded = (
                op.encode_result(response.result)
                if response.ok
                else None
            )
        try:
            async with write_lock:
                await write_frame(writer, response.to_wire(encoded))
        except (ConnectionError, OSError):
            pass  # client went away; the job's work is already done
        self._count_request()


def run_server(
    source=None,
    *,
    backend: Optional[str] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    config: Optional[ServiceConfig] = None,
    max_requests: Optional[int] = None,
    on_ready: Optional[Callable[[ServiceServer], None]] = None,
) -> ComputeService:
    """Build a service, serve TCP until stopped, shut down cleanly.

    The blocking entry point behind ``repro serve``: ``on_ready`` fires
    once the socket is bound (with the resolved port), Ctrl-C is a
    clean drain-and-exit, and the service (engine pool included) is
    shut down before returning.
    """
    service = ComputeService(source, backend=backend, config=config)

    async def main() -> None:
        server = ServiceServer(
            service, host=host, port=port, max_requests=max_requests
        )
        await server.start()
        if on_ready is not None:
            on_ready(server)
        await server.serve_until_done()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    finally:
        service.shutdown()
    return service


__all__ = ["ComputeService", "ServiceServer", "run_server"]
