"""Service-op vocabulary: decode, coalesce, merge, split, encode.

Every RPC the :mod:`repro.serve` front end accepts is one
:class:`ServiceOp` subclass.  An op knows five things:

- how to **decode** itself from a JSON ``payload`` (wire requests) or
  build itself from in-process objects (the ``.of(...)`` constructors
  used by :class:`~repro.serve.client.ServiceClient`);
- its **coalesce key** — two queued requests whose keys match run the
  same engine code path on the same plan shape, so the scheduler may
  merge them into one batched ``*_many`` pass;
- how to **merge** a list of same-key ops into one
  :mod:`repro.engine.jobs` job;
- how to **split** the batched result back into per-request results
  (order-preserving, bit-identical to running each request alone);
- how to **encode** a per-request result for the JSON wire.

The merge→split round trip is the service's key performance move: under
load, B compatible single-item requests become one ``B``-row engine
pass (one forward NTT over the stacked batch instead of B small ones)
while every client still receives exactly the answer an individual
submission would have produced.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple, Type

import numpy as np

from repro.engine.jobs import (
    ConvolveJob,
    DGHVMultJob,
    Job,
    MultiplyJob,
    RingTransformJob,
    RLWEMultiplyPlainJob,
)
from repro.serve.protocol import ProtocolError


def _require(payload: dict, key: str):
    try:
        return payload[key]
    except KeyError:
        raise ProtocolError(f"payload is missing {key!r}") from None


def _int_rows(rows, what: str) -> List[List[int]]:
    """Validate a JSON list-of-rows-of-ints (one flat row accepted)."""
    if not isinstance(rows, list) or not rows:
        raise ProtocolError(f"{what} must be a non-empty list")
    if not isinstance(rows[0], list):
        rows = [rows]
    out = []
    for row in rows:
        if not isinstance(row, list) or not all(
            isinstance(v, int) for v in row
        ):
            raise ProtocolError(f"{what} rows must be lists of integers")
        out.append(row)
    return out


class ServiceOp:
    """Base class: one decoded, coalescible service request body."""

    name: str = ""
    #: Ops whose requests may be merged with other same-key requests.
    coalescible: bool = True

    @property
    def count(self) -> int:
        """Number of items this single request carries (batch rows,
        operand pairs, ...) — the unit admission control and fair
        queueing charge for."""
        raise NotImplementedError

    def coalesce_key(self) -> Tuple:
        """Requests with equal keys may share one batched engine pass."""
        raise NotImplementedError

    @classmethod
    def from_payload(cls, payload: dict) -> "ServiceOp":
        raise NotImplementedError

    @staticmethod
    def merge(ops: Sequence["ServiceOp"]) -> Job:
        raise NotImplementedError

    @staticmethod
    def split(ops: Sequence["ServiceOp"], result) -> List[Any]:
        raise NotImplementedError

    def encode_result(self, result) -> Any:
        raise NotImplementedError


def _split_by_counts(ops: Sequence[ServiceOp], result) -> List[Any]:
    """Slice a batched result back into per-op chunks, in order."""
    out = []
    start = 0
    for op in ops:
        stop = start + op.count
        out.append(result[start:stop])
        start = stop
    if start != len(result):
        raise RuntimeError(
            f"batched result has {len(result)} items for {start} requested"
        )
    return out


# -- multiply --------------------------------------------------------------


class MultiplyOp(ServiceOp):
    """Exact SSA products of non-negative big integers.

    Payload: ``{"pairs": [[a, b], ...]}`` (arbitrary-precision JSON
    ints).  Result: the list of products.  The coalesce key buckets the
    operand width to the next power of two, so merged requests size the
    same SSA multiplier (same transform plan shape).
    """

    name = "multiply"

    def __init__(self, pairs: Sequence[Tuple[int, int]]):
        self.pairs = [(int(a), int(b)) for a, b in pairs]
        if not self.pairs:
            raise ProtocolError("multiply needs at least one pair")
        if any(a < 0 or b < 0 for a, b in self.pairs):
            raise ProtocolError("multiply operands must be non-negative")
        bits = max(
            max(a.bit_length(), b.bit_length(), 1) for a, b in self.pairs
        )
        self._bucket = 1 << (bits - 1).bit_length()

    @property
    def count(self) -> int:
        return len(self.pairs)

    def coalesce_key(self) -> Tuple:
        return ("multiply", self._bucket)

    @classmethod
    def from_payload(cls, payload: dict) -> "MultiplyOp":
        pairs = _require(payload, "pairs")
        if not isinstance(pairs, list) or not all(
            isinstance(p, list)
            and len(p) == 2
            and all(isinstance(v, int) for v in p)
            for p in pairs
        ):
            raise ProtocolError("pairs must be a list of [a, b] integers")
        return cls(pairs=[(a, b) for a, b in pairs])

    @classmethod
    def of(cls, pairs: Sequence[Tuple[int, int]]) -> "MultiplyOp":
        return cls(pairs=pairs)

    @staticmethod
    def merge(ops: Sequence["MultiplyOp"]) -> Job:
        merged: List[Tuple[int, int]] = []
        for op in ops:
            merged.extend(op.pairs)
        return MultiplyJob(pairs=tuple(merged))

    @staticmethod
    def split(ops: Sequence["MultiplyOp"], result) -> List[Any]:
        return _split_by_counts(ops, result)

    def encode_result(self, result) -> Any:
        return [int(v) for v in result]


# -- ring transforms -------------------------------------------------------


class RingTransformOp(ServiceOp):
    """A ``(batch, n)`` forward/inverse NTT, optionally negacyclic.

    Payload: ``{"n": ..., "values": [[...], ...], "inverse": false,
    "negacyclic": false, "radices": null}``; a flat ``values`` row is
    accepted and answered flat.  Result: the transformed rows.
    """

    name = "ring-transform"

    def __init__(
        self,
        n: int,
        values: np.ndarray,
        inverse: bool = False,
        negacyclic: bool = False,
        radices: Optional[Tuple[int, ...]] = None,
        flat: bool = False,
    ):
        if values.ndim != 2 or values.shape[1] != n:
            raise ProtocolError(
                f"values must be (batch, {n}), got {values.shape}"
            )
        self.n = int(n)
        self.values = values
        self.inverse = bool(inverse)
        self.negacyclic = bool(negacyclic)
        self.radices = tuple(radices) if radices is not None else None
        self.flat = flat

    @property
    def count(self) -> int:
        return int(self.values.shape[0])

    def coalesce_key(self) -> Tuple:
        return (
            "ring-transform",
            self.n,
            self.inverse,
            self.negacyclic,
            self.radices,
        )

    @classmethod
    def from_payload(cls, payload: dict) -> "RingTransformOp":
        from repro.field.vector import to_field_matrix

        n = _require(payload, "n")
        if not isinstance(n, int) or n < 2:
            raise ProtocolError("n must be an integer >= 2")
        raw = _require(payload, "values")
        flat = isinstance(raw, list) and raw and not isinstance(
            raw[0], list
        )
        rows = _int_rows(raw, "values")
        if any(len(row) != n for row in rows):
            raise ProtocolError(f"every values row must have {n} entries")
        radices = payload.get("radices")
        if radices is not None:
            if not isinstance(radices, list) or not all(
                isinstance(r, int) for r in radices
            ):
                raise ProtocolError("radices must be a list of integers")
            radices = tuple(radices)
        return cls(
            n=n,
            values=to_field_matrix(rows),
            inverse=bool(payload.get("inverse", False)),
            negacyclic=bool(payload.get("negacyclic", False)),
            radices=radices,
            flat=flat,
        )

    @classmethod
    def of(
        cls,
        n: int,
        values,
        *,
        inverse: bool = False,
        negacyclic: bool = False,
        radices: Optional[Sequence[int]] = None,
    ) -> "RingTransformOp":
        from repro.field.vector import to_field_matrix

        values = np.asarray(values)
        flat = values.ndim == 1
        if flat:
            values = values.reshape(1, -1)
        if values.dtype != np.uint64:
            values = to_field_matrix([list(map(int, row)) for row in values])
        return cls(
            n=n,
            values=values,
            inverse=inverse,
            negacyclic=negacyclic,
            radices=tuple(radices) if radices is not None else None,
            flat=flat,
        )

    @staticmethod
    def merge(ops: Sequence["RingTransformOp"]) -> Job:
        first = ops[0]
        return RingTransformJob(
            n=first.n,
            values=np.vstack([op.values for op in ops]),
            inverse=first.inverse,
            negacyclic=first.negacyclic,
            radices=first.radices,
        )

    @staticmethod
    def split(ops: Sequence["RingTransformOp"], result) -> List[Any]:
        return _split_by_counts(ops, result)

    def encode_result(self, result) -> Any:
        rows = [[int(v) for v in row] for row in result]
        return rows[0] if self.flat else rows


# -- convolutions ----------------------------------------------------------


class ConvolveOp(ServiceOp):
    """Cyclic or negacyclic convolution of ``(batch, n)`` operands.

    Payload: ``{"n": ..., "a": [[...], ...], "b": [[...], ...],
    "negacyclic": false}``.  Broadcast requests (one ``b`` row against
    an ``a`` batch) are accepted but never coalesced — the broadcast
    operand's spectrum reuse is already their batching story.
    """

    name = "convolve"

    def __init__(
        self,
        n: int,
        a: np.ndarray,
        b: np.ndarray,
        negacyclic: bool = False,
        radices: Optional[Tuple[int, ...]] = None,
        flat: bool = False,
    ):
        for label, mat in (("a", a), ("b", b)):
            if mat.ndim != 2 or mat.shape[1] != n:
                raise ProtocolError(
                    f"{label} must be (batch, {n}), got {mat.shape}"
                )
        if b.shape[0] not in (a.shape[0], 1):
            raise ProtocolError(
                "b must have one row per a row, or exactly one row"
            )
        self.n = int(n)
        self.a = a
        self.b = b
        self.negacyclic = bool(negacyclic)
        self.radices = tuple(radices) if radices is not None else None
        self.flat = flat
        self.broadcast = b.shape[0] == 1 and a.shape[0] > 1

    @property
    def coalescible(self) -> bool:  # type: ignore[override]
        return not self.broadcast

    @property
    def count(self) -> int:
        return int(self.a.shape[0])

    def coalesce_key(self) -> Tuple:
        return ("convolve", self.n, self.negacyclic, self.radices)

    @classmethod
    def from_payload(cls, payload: dict) -> "ConvolveOp":
        from repro.field.vector import to_field_matrix

        n = _require(payload, "n")
        if not isinstance(n, int) or n < 2:
            raise ProtocolError("n must be an integer >= 2")
        raw_a = _require(payload, "a")
        flat = isinstance(raw_a, list) and raw_a and not isinstance(
            raw_a[0], list
        )
        rows_a = _int_rows(raw_a, "a")
        rows_b = _int_rows(_require(payload, "b"), "b")
        if any(len(row) != n for row in rows_a + rows_b):
            raise ProtocolError(f"every operand row must have {n} entries")
        return cls(
            n=n,
            a=to_field_matrix(rows_a),
            b=to_field_matrix(rows_b),
            negacyclic=bool(payload.get("negacyclic", False)),
            flat=flat,
        )

    @classmethod
    def of(
        cls, n: int, a, b, *, negacyclic: bool = False
    ) -> "ConvolveOp":
        from repro.field.vector import to_field_matrix

        def as_matrix(values):
            values = np.asarray(values)
            was_flat = values.ndim == 1
            if was_flat:
                values = values.reshape(1, -1)
            if values.dtype != np.uint64:
                values = to_field_matrix(
                    [list(map(int, row)) for row in values]
                )
            return values, was_flat

        a, flat = as_matrix(a)
        b, _ = as_matrix(b)
        return cls(n=n, a=a, b=b, negacyclic=negacyclic, flat=flat)

    @staticmethod
    def merge(ops: Sequence["ConvolveOp"]) -> Job:
        first = ops[0]
        if len(ops) == 1:
            a, b = first.a, first.b
        else:
            a = np.vstack([op.a for op in ops])
            b = np.vstack([op.b for op in ops])
        return ConvolveJob(
            n=first.n,
            a=a,
            b=b,
            negacyclic=first.negacyclic,
            radices=first.radices,
        )

    @staticmethod
    def split(ops: Sequence["ConvolveOp"], result) -> List[Any]:
        return _split_by_counts(ops, result)

    def encode_result(self, result) -> Any:
        rows = [[int(v) for v in row] for row in result]
        return rows[0] if self.flat else rows


# -- DGHV homomorphic AND layers -------------------------------------------


class DGHVMultOp(ServiceOp):
    """A layer of DGHV ciphertext products (homomorphic AND gates).

    Payload: ``{"params": {"name", "lam", "rho", "eta", "gamma",
    "tau"}, "x0": ..., "pairs": [[[value, noise_bits], [value,
    noise_bits]], ...]}``.  Result: ``[[value, noise_bits], ...]`` with
    the noise bookkeeping of :func:`repro.fhe.ops.he_mult_many`.
    """

    name = "dghv-mult"

    def __init__(self, params, pairs, x0: Optional[int] = None):
        from repro.fhe.dghv import Ciphertext

        self.params = params
        self.x0 = int(x0) if x0 is not None else None
        self.pairs: List[Tuple[Any, Any]] = []
        for a, b in pairs:
            if not isinstance(a, Ciphertext) or not isinstance(
                b, Ciphertext
            ):
                raise ProtocolError("dghv pairs must hold ciphertexts")
            self.pairs.append((a, b))
        if not self.pairs:
            raise ProtocolError("dghv-mult needs at least one pair")

    @property
    def count(self) -> int:
        return len(self.pairs)

    def coalesce_key(self) -> Tuple:
        p = self.params
        return ("dghv-mult", p.name, p.gamma, p.eta, p.rho, p.tau, self.x0)

    @classmethod
    def from_payload(cls, payload: dict) -> "DGHVMultOp":
        from repro.fhe.dghv import Ciphertext
        from repro.fhe.params import FHEParams

        raw_params = _require(payload, "params")
        if not isinstance(raw_params, dict):
            raise ProtocolError("params must be an object")
        try:
            params = FHEParams(
                name=str(raw_params["name"]),
                lam=int(raw_params["lam"]),
                rho=int(raw_params["rho"]),
                eta=int(raw_params["eta"]),
                gamma=int(raw_params["gamma"]),
                tau=int(raw_params["tau"]),
            )
            params.validate()
        except (KeyError, TypeError, ValueError) as error:
            raise ProtocolError(f"bad DGHV params: {error}") from None
        raw_pairs = _require(payload, "pairs")
        if not isinstance(raw_pairs, list):
            raise ProtocolError("pairs must be a list")

        def ciphertext(raw) -> Ciphertext:
            if (
                not isinstance(raw, list)
                or len(raw) != 2
                or not isinstance(raw[0], int)
                or isinstance(raw[0], bool)
                or not isinstance(raw[1], (int, float))
                or isinstance(raw[1], bool)
            ):
                raise ProtocolError(
                    "each ciphertext must be [value, noise_bits]"
                )
            return Ciphertext(
                value=raw[0], noise_bits=float(raw[1]), params=params
            )

        pairs = []
        for raw in raw_pairs:
            if not isinstance(raw, list) or len(raw) != 2:
                raise ProtocolError("each pair must be [ct, ct]")
            pairs.append((ciphertext(raw[0]), ciphertext(raw[1])))
        x0 = payload.get("x0")
        if x0 is not None and not isinstance(x0, int):
            raise ProtocolError("x0 must be an integer")
        return cls(params=params, pairs=pairs, x0=x0)

    @classmethod
    def of(cls, pairs, x0: Optional[int] = None) -> "DGHVMultOp":
        if not pairs:
            raise ProtocolError("dghv-mult needs at least one pair")
        return cls(params=pairs[0][0].params, pairs=pairs, x0=x0)

    @staticmethod
    def merge(ops: Sequence["DGHVMultOp"]) -> Job:
        merged: List[Tuple[Any, Any]] = []
        for op in ops:
            merged.extend(op.pairs)
        return DGHVMultJob(pairs=tuple(merged), x0=ops[0].x0)

    @staticmethod
    def split(ops: Sequence["DGHVMultOp"], result) -> List[Any]:
        return _split_by_counts(ops, result)

    def encode_result(self, result) -> Any:
        return [[ct.value, ct.noise_bits] for ct in result]


# -- RLWE plaintext products -----------------------------------------------


class RLWEMultiplyPlainOp(ServiceOp):
    """Batched RLWE plaintext-by-ciphertext products.

    Payload: ``{"n": ..., "t": ..., "noise_bound": ...,
    "ciphertexts": [[c0_row, c1_row], ...], "plains": [[...], ...]}``.
    Result: ``[[c0_row, c1_row], ...]``.  Coalesced requests share one
    ``3·B``-transform ``multiply_plain_many`` pass on the engine's
    fused, permutation-free negacyclic plan.
    """

    name = "rlwe-multiply-plain"

    def __init__(self, params, ciphertexts, plains):
        self.params = params
        self.ciphertexts = list(ciphertexts)
        self.plains = [list(map(int, p)) for p in plains]
        if not self.ciphertexts:
            raise ProtocolError("rlwe-multiply-plain needs >= 1 pair")
        if len(self.ciphertexts) != len(self.plains):
            raise ProtocolError("one plaintext per ciphertext")

    @property
    def count(self) -> int:
        return len(self.ciphertexts)

    def coalesce_key(self) -> Tuple:
        p = self.params
        return ("rlwe-multiply-plain", p.n, p.t, p.noise_bound)

    @classmethod
    def from_payload(cls, payload: dict) -> "RLWEMultiplyPlainOp":
        from repro.fhe.rlwe import RLWECiphertext, RLWEParams
        from repro.field.vector import to_field_array

        try:
            params = RLWEParams(
                n=int(_require(payload, "n")),
                t=int(_require(payload, "t")),
                noise_bound=int(payload.get("noise_bound", 8)),
            )
            params.validate()
        except (TypeError, ValueError) as error:
            raise ProtocolError(f"bad RLWE params: {error}") from None
        raw_cts = _require(payload, "ciphertexts")
        raw_plains = _require(payload, "plains")
        if not isinstance(raw_cts, list) or not isinstance(
            raw_plains, list
        ):
            raise ProtocolError("ciphertexts and plains must be lists")
        cts = []
        for raw in raw_cts:
            if not isinstance(raw, list) or len(raw) != 2:
                raise ProtocolError("each ciphertext must be [c0, c1]")
            c0 = _int_rows(raw[0], "c0")[0]
            c1 = _int_rows(raw[1], "c1")[0]
            if len(c0) != params.n or len(c1) != params.n:
                raise ProtocolError(
                    f"ciphertext rows must have {params.n} coefficients"
                )
            cts.append(
                RLWECiphertext(
                    c0=to_field_array(c0),
                    c1=to_field_array(c1),
                    params=params,
                )
            )
        plains = [_int_rows(p, "plain")[0] for p in raw_plains]
        if any(len(p) != params.n for p in plains):
            raise ProtocolError(
                f"plaintexts must have {params.n} coefficients"
            )
        return cls(params=params, ciphertexts=cts, plains=plains)

    @classmethod
    def of(cls, params, ciphertexts, plains) -> "RLWEMultiplyPlainOp":
        return cls(params=params, ciphertexts=ciphertexts, plains=plains)

    @staticmethod
    def merge(ops: Sequence["RLWEMultiplyPlainOp"]) -> Job:
        cts: List[Any] = []
        plains: List[Tuple[int, ...]] = []
        for op in ops:
            cts.extend(op.ciphertexts)
            plains.extend(tuple(p) for p in op.plains)
        return RLWEMultiplyPlainJob(
            params=ops[0].params,
            ciphertexts=tuple(cts),
            plains=tuple(plains),
        )

    @staticmethod
    def split(ops: Sequence["RLWEMultiplyPlainOp"], result) -> List[Any]:
        return _split_by_counts(ops, result)

    def encode_result(self, result) -> Any:
        return [
            [[int(v) for v in ct.c0], [int(v) for v in ct.c1]]
            for ct in result
        ]


# -- RLWE ciphertext products ------------------------------------------------


def _decode_rlwe_params(payload: dict):
    """Shared RLWE parameter decode (single-modulus and RNS)."""
    from repro.fhe.rlwe import RLWEParams

    raw_primes = payload.get("rns_primes")
    if raw_primes is not None:
        if not isinstance(raw_primes, list) or not all(
            isinstance(q, int) for q in raw_primes
        ):
            raise ProtocolError("rns_primes must be a list of integers")
        raw_primes = tuple(raw_primes)
    try:
        params = RLWEParams(
            n=int(_require(payload, "n")),
            t=int(_require(payload, "t")),
            noise_bound=int(payload.get("noise_bound", 8)),
            rns_primes=raw_primes,
            relin_base=int(payload.get("relin_base", 16)),
        )
        params.validate()
    except (TypeError, ValueError) as error:
        raise ProtocolError(f"bad RLWE params: {error}") from None
    return params


class RLWEMultiplyOp(ServiceOp):
    """Batched RLWE ciphertext-by-ciphertext products (tensor +
    relinearization).

    Payload: the :func:`_decode_rlwe_params` fields (``n``, ``t``,
    ``noise_bound``, optional ``rns_primes``/``relin_base``), a
    ``relin`` object (``RelinKeys.to_payload()`` — the evaluator key
    material, never the secret) and ``pairs``:
    ``[[[c0, c1], [d0, d1]], ...]`` where a component is a flat
    coefficient list (single-modulus) or a ``level × n`` list of
    residue-channel rows (RNS).  Result: ``[[c0, c1], ...]`` in the
    same component encoding.  The coalesce key carries the plan shape
    *and* a digest of the relinearization keys, so only requests
    evaluating under the same keyset share a batched
    ``multiply_many`` pass.
    """

    name = "rlwe-multiply"

    def __init__(self, params, relin, pairs):
        self.params = params
        self.relin = relin
        self.pairs = list(pairs)
        if not self.pairs:
            raise ProtocolError("rlwe-multiply needs >= 1 pair")
        levels = {x.level for pair in self.pairs for x in pair}
        if len(levels) != 1:
            raise ProtocolError(
                "all ciphertexts must sit at the same chain level"
            )
        self.level = levels.pop()

    @property
    def count(self) -> int:
        return len(self.pairs)

    def coalesce_key(self) -> Tuple:
        p = self.params
        return (
            "rlwe-multiply",
            p.n,
            p.t,
            p.noise_bound,
            p.rns_primes,
            p.relin_base,
            self.level,
            self.relin.digest(),
        )

    @classmethod
    def from_payload(cls, payload: dict) -> "RLWEMultiplyOp":
        from repro.fhe.rlwe import RelinKeys, RLWECiphertext
        from repro.field.vector import to_field_array, to_field_matrix

        params = _decode_rlwe_params(payload)
        raw_relin = _require(payload, "relin")
        if not isinstance(raw_relin, dict):
            raise ProtocolError("relin must be an object")
        try:
            relin = RelinKeys.from_payload(params, raw_relin)
        except (TypeError, ValueError) as error:
            raise ProtocolError(f"bad relin keys: {error}") from None
        raw_pairs = _require(payload, "pairs")
        if not isinstance(raw_pairs, list):
            raise ProtocolError("pairs must be a list")

        def component(raw, level: int):
            rows = _int_rows(raw, "ciphertext component")
            if any(len(row) != params.n for row in rows):
                raise ProtocolError(
                    f"component rows must have {params.n} coefficients"
                )
            if params.is_rns:
                if len(rows) != level:
                    raise ProtocolError(
                        f"RNS components must carry {level} channel rows"
                    )
                return to_field_matrix(rows)
            if len(rows) != 1:
                raise ProtocolError(
                    "single-modulus components must be flat rows"
                )
            return to_field_array(rows[0])

        def level_of(raw) -> int:
            if not params.is_rns:
                return 1
            rows = _int_rows(raw, "ciphertext component")
            level = len(rows)
            if not 1 <= level <= params.level_count:
                raise ProtocolError(
                    "RNS component row count must match a chain level"
                )
            return level

        pairs = []
        for raw in raw_pairs:
            if not isinstance(raw, list) or len(raw) != 2:
                raise ProtocolError("each pair must be [ct, ct]")
            decoded = []
            for raw_ct in raw:
                if not isinstance(raw_ct, list) or len(raw_ct) != 2:
                    raise ProtocolError(
                        "each ciphertext must be [c0, c1]"
                    )
                level = level_of(raw_ct[0])
                decoded.append(
                    RLWECiphertext(
                        c0=component(raw_ct[0], level),
                        c1=component(raw_ct[1], level),
                        params=params,
                        level=level if params.is_rns else None,
                    )
                )
            pairs.append(tuple(decoded))
        return cls(params=params, relin=relin, pairs=pairs)

    @classmethod
    def of(cls, params, relin, pairs) -> "RLWEMultiplyOp":
        from repro.fhe.rlwe import RLWEKeyPair

        if isinstance(relin, RLWEKeyPair):
            relin = relin.relin
        return cls(params=params, relin=relin, pairs=pairs)

    @staticmethod
    def merge(ops: Sequence["RLWEMultiplyOp"]) -> Job:
        from repro.engine.jobs import RLWEMultiplyJob

        pairs: List[Tuple[Any, Any]] = []
        for op in ops:
            pairs.extend(op.pairs)
        return RLWEMultiplyJob(
            params=ops[0].params,
            relin=ops[0].relin,
            pairs=tuple(pairs),
        )

    @staticmethod
    def split(ops: Sequence["RLWEMultiplyOp"], result) -> List[Any]:
        return _split_by_counts(ops, result)

    def encode_result(self, result) -> Any:
        def encode(component) -> Any:
            if component.ndim == 1:
                return [int(v) for v in component]
            return [[int(v) for v in row] for row in component]

        return [[encode(ct.c0), encode(ct.c1)] for ct in result]


#: Registered op name → class.
OPS: Dict[str, Type[ServiceOp]] = {
    op.name: op
    for op in (
        MultiplyOp,
        RingTransformOp,
        ConvolveOp,
        DGHVMultOp,
        RLWEMultiplyPlainOp,
        RLWEMultiplyOp,
    )
}


def decode_op(name: str, payload: dict) -> ServiceOp:
    """Build the named op from a JSON payload (typed errors)."""
    try:
        op_class = OPS[name]
    except KeyError:
        raise ProtocolError(
            f"unknown op {name!r}; expected one of {sorted(OPS)}"
        ) from None
    if not isinstance(payload, dict):
        raise ProtocolError("payload must be a JSON object")
    return op_class.from_payload(payload)


__all__ = [
    "ServiceOp",
    "MultiplyOp",
    "RingTransformOp",
    "ConvolveOp",
    "DGHVMultOp",
    "RLWEMultiplyPlainOp",
    "RLWEMultiplyOp",
    "OPS",
    "decode_op",
]
