"""Service clients: in-process, blocking TCP, and asyncio TCP.

Three ways to talk to the service, one :class:`Response` surface:

- :class:`ServiceClient` — in-process, wraps a
  :class:`~repro.serve.service.ComputeService` directly.  No sockets,
  no JSON: ops are built from live objects (numpy rows, ciphertexts)
  via the ``Op.of(...)`` constructors and results come back raw.  The
  tool of choice for tests and benchmarks.
- :class:`TCPServiceClient` — blocking sockets, for scripts and the
  ``repro client`` CLI.  One call = submit + wait, but pipelining is
  available through :meth:`~TCPServiceClient.send` /
  :meth:`~TCPServiceClient.wait` (responses arrive completion-ordered
  and are matched by id).
- :class:`AsyncServiceClient` — asyncio, for many concurrent in-flight
  requests on one connection: a background reader task resolves one
  future per request id, so ``await client.submit(...)`` composes with
  ``asyncio.gather`` naturally.
"""

from __future__ import annotations

import asyncio
import itertools
import socket
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.serve.ops import (
    ConvolveOp,
    DGHVMultOp,
    MultiplyOp,
    RingTransformOp,
    RLWEMultiplyOp,
    RLWEMultiplyPlainOp,
    ServiceOp,
)
from repro.serve.protocol import (
    ProtocolError,
    Response,
    recv_frame,
    read_frame,
    send_frame,
    submit_message,
    write_frame,
)
from repro.serve.service import ComputeService


class ServiceClient:
    """In-process client over a :class:`ComputeService`.

    ``submit`` returns the raw ``Future[Response]`` (open-loop load,
    concurrency); ``call`` blocks.  The op helpers below build the op
    and block — e.g. ``client.multiply([(a, b)]).result[0]``.
    """

    def __init__(self, service: ComputeService, *, tenant: str = "default"):
        self.service = service
        self.tenant = tenant

    def submit(
        self,
        op: ServiceOp,
        *,
        tenant: Optional[str] = None,
        priority: int = 0,
        timeout: Optional[float] = None,
        request_id=None,
    ):
        return self.service.submit(
            op,
            tenant=tenant if tenant is not None else self.tenant,
            priority=priority,
            timeout=timeout,
            request_id=request_id,
        )

    def call(self, op: ServiceOp, **kwargs) -> Response:
        return self.submit(op, **kwargs).result()

    def stats(self) -> dict:
        return self.service.stats()

    # -- op helpers --------------------------------------------------------

    def multiply(
        self, pairs: Sequence[Tuple[int, int]], **kwargs
    ) -> Response:
        return self.call(MultiplyOp.of(pairs), **kwargs)

    def ring_transform(
        self,
        n: int,
        values,
        *,
        inverse: bool = False,
        negacyclic: bool = False,
        radices=None,
        **kwargs,
    ) -> Response:
        return self.call(
            RingTransformOp.of(
                n,
                values,
                inverse=inverse,
                negacyclic=negacyclic,
                radices=radices,
            ),
            **kwargs,
        )

    def convolve(
        self, n: int, a, b, *, negacyclic: bool = False, **kwargs
    ) -> Response:
        return self.call(
            ConvolveOp.of(n, a, b, negacyclic=negacyclic), **kwargs
        )

    def dghv_mult(
        self, pairs, x0: Optional[int] = None, **kwargs
    ) -> Response:
        return self.call(DGHVMultOp.of(pairs, x0=x0), **kwargs)

    def rlwe_multiply_plain(
        self, params, ciphertexts, plains, **kwargs
    ) -> Response:
        return self.call(
            RLWEMultiplyPlainOp.of(params, ciphertexts, plains),
            **kwargs,
        )

    def rlwe_multiply(self, params, relin, pairs, **kwargs) -> Response:
        """Ciphertext-by-ciphertext products under ``relin`` keys
        (an :class:`repro.fhe.rlwe.RelinKeys` or a full key pair)."""
        return self.call(
            RLWEMultiplyOp.of(params, relin, pairs), **kwargs
        )


class TCPServiceClient:
    """Blocking-socket client speaking the length-prefixed framing.

    Not thread-safe; one instance per thread.  Out-of-order responses
    (the server answers completion-ordered) are cached internally and
    delivered by :meth:`wait`, so ``send``/``send``/``wait``/``wait``
    pipelines work regardless of which job finishes first.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        tenant: str = "default",
        connect_timeout: Optional[float] = 10.0,
    ):
        self.tenant = tenant
        self._sock = socket.create_connection(
            (host, port), timeout=connect_timeout
        )
        self._sock.settimeout(None)
        self._ids = itertools.count(1)
        self._responses: Dict[Any, Response] = {}

    def close(self) -> None:
        self._sock.close()

    def __enter__(self) -> "TCPServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def ping(self) -> bool:
        send_frame(self._sock, {"type": "ping"})
        message = recv_frame(self._sock)
        return message is not None and message.get("type") == "pong"

    def stats(self) -> dict:
        request_id = f"stats-{next(self._ids)}"
        send_frame(self._sock, {"type": "stats", "id": request_id})
        while True:
            message = self._recv()
            if (
                message.get("type") == "stats"
                and message.get("id") == request_id
            ):
                return message.get("stats", {})

    def send(
        self,
        op: str,
        payload: dict,
        *,
        tenant: Optional[str] = None,
        priority: int = 0,
        timeout: Optional[float] = None,
    ):
        """Pipeline one submit; returns the request id for :meth:`wait`."""
        request_id = next(self._ids)
        send_frame(
            self._sock,
            submit_message(
                op,
                payload,
                tenant=tenant if tenant is not None else self.tenant,
                priority=priority,
                timeout=timeout,
                request_id=request_id,
            ),
        )
        return request_id

    def wait(self, request_id) -> Response:
        """The response for one pipelined submit (any arrival order)."""
        cached = self._responses.pop(request_id, None)
        if cached is not None:
            return cached
        while True:
            message = self._recv()
            if message.get("type") != "response":
                continue
            response = Response.from_wire(message)
            if response.request_id == request_id:
                return response
            self._responses[response.request_id] = response

    def request(self, op: str, payload: dict, **kwargs) -> Response:
        """Submit one request and block for its response."""
        return self.wait(self.send(op, payload, **kwargs))

    def _recv(self) -> dict:
        message = recv_frame(self._sock)
        if message is None:
            raise ConnectionError("service closed the connection")
        if message.get("type") == "error":
            raise ProtocolError(str(message.get("error")))
        return message


class AsyncServiceClient:
    """Asyncio client: many concurrent requests on one connection.

    A background reader task matches ``response`` frames to per-request
    futures by id, so any number of ``await client.submit(...)``
    coroutines may be in flight at once (``asyncio.gather`` them).
    """

    def __init__(self, reader, writer, *, tenant: str = "default"):
        self.tenant = tenant
        self._reader = reader
        self._writer = writer
        self._write_lock = asyncio.Lock()
        self._ids = itertools.count(1)
        self._waiters: Dict[Any, asyncio.Future] = {}
        self._reader_task = asyncio.ensure_future(self._read_loop())

    @classmethod
    async def connect(
        cls,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        tenant: str = "default",
    ) -> "AsyncServiceClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer, tenant=tenant)

    async def _read_loop(self) -> None:
        error: BaseException = ConnectionError(
            "service closed the connection"
        )
        try:
            while True:
                message = await read_frame(self._reader)
                if message is None:
                    break
                message_type = message.get("type")
                if message_type == "response":
                    waiter = self._waiters.pop(message.get("id"), None)
                    if waiter is not None and not waiter.done():
                        waiter.set_result(Response.from_wire(message))
                elif message_type == "stats":
                    waiter = self._waiters.pop(message.get("id"), None)
                    if waiter is not None and not waiter.done():
                        waiter.set_result(message.get("stats", {}))
                elif message_type == "error":
                    failure = ProtocolError(str(message.get("error")))
                    waiter = self._waiters.pop(message.get("id"), None)
                    if waiter is not None:
                        if not waiter.done():
                            waiter.set_exception(failure)
                    else:
                        error = failure
                        break
        except (ProtocolError, ConnectionError, OSError) as err:
            error = err
        except asyncio.CancelledError:
            error = ConnectionError("client closed")
        finally:
            for waiter in self._waiters.values():
                if not waiter.done():
                    waiter.set_exception(error)
            self._waiters.clear()

    def _register(self, request_id) -> asyncio.Future:
        waiter = asyncio.get_event_loop().create_future()
        self._waiters[request_id] = waiter
        return waiter

    async def submit(
        self,
        op: str,
        payload: dict,
        *,
        tenant: Optional[str] = None,
        priority: int = 0,
        timeout: Optional[float] = None,
    ) -> Response:
        request_id = next(self._ids)
        waiter = self._register(request_id)
        async with self._write_lock:
            await write_frame(
                self._writer,
                submit_message(
                    op,
                    payload,
                    tenant=(
                        tenant if tenant is not None else self.tenant
                    ),
                    priority=priority,
                    timeout=timeout,
                    request_id=request_id,
                ),
            )
        return await waiter

    async def stats(self) -> dict:
        request_id = f"stats-{next(self._ids)}"
        waiter = self._register(request_id)
        async with self._write_lock:
            await write_frame(
                self._writer, {"type": "stats", "id": request_id}
            )
        return await waiter

    async def close(self) -> None:
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "AsyncServiceClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()


__all__ = [
    "ServiceClient",
    "TCPServiceClient",
    "AsyncServiceClient",
]
