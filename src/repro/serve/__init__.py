"""``repro.serve`` — the multi-tenant FHE compute service tier.

Turns the batched engine (NTT → SSA → FHE, PR 1–6) and its
fault-tolerant job runtime (PR 7) into a *shared service*: an asyncio
TCP front end speaking length-prefixed JSON, per-tenant weighted-fair
queues with priorities, bounded admission (typed ``REJECTED`` under
overload), request coalescing into single batched engine passes, and a
per-tenant metrics registry exported over a ``stats`` RPC.

Quickstart (in-process)::

    from repro.serve import ComputeService, ServiceClient

    with ComputeService() as service:
        client = ServiceClient(service, tenant="alice")
        response = client.multiply([(3, 5), (7, 11)])
        assert response.result == [15, 77]

Over TCP: ``repro serve --port 7100`` and ``repro client submit ...``,
or :class:`TCPServiceClient` / :class:`AsyncServiceClient`.
"""

from repro.serve.client import (
    AsyncServiceClient,
    ServiceClient,
    TCPServiceClient,
)
from repro.serve.metrics import MetricsRegistry, render_stats
from repro.serve.ops import (
    OPS,
    ConvolveOp,
    DGHVMultOp,
    MultiplyOp,
    RingTransformOp,
    RLWEMultiplyOp,
    RLWEMultiplyPlainOp,
    ServiceOp,
    decode_op,
)
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_REJECTED,
    STATUS_TIMEOUT,
    ProtocolError,
    Response,
)
from repro.serve.scheduler import (
    REJECT_GLOBAL_FULL,
    REJECT_SHUTDOWN,
    REJECT_TENANT_FULL,
    ServiceConfig,
    ServiceScheduler,
)
from repro.serve.service import ComputeService, ServiceServer, run_server

__all__ = [
    "ComputeService",
    "ServiceServer",
    "run_server",
    "ServiceClient",
    "TCPServiceClient",
    "AsyncServiceClient",
    "ServiceConfig",
    "ServiceScheduler",
    "MetricsRegistry",
    "render_stats",
    "ServiceOp",
    "MultiplyOp",
    "RingTransformOp",
    "ConvolveOp",
    "DGHVMultOp",
    "RLWEMultiplyOp",
    "RLWEMultiplyPlainOp",
    "OPS",
    "decode_op",
    "Response",
    "ProtocolError",
    "MAX_FRAME_BYTES",
    "STATUS_OK",
    "STATUS_REJECTED",
    "STATUS_TIMEOUT",
    "STATUS_ERROR",
    "REJECT_TENANT_FULL",
    "REJECT_GLOBAL_FULL",
    "REJECT_SHUTDOWN",
]
