"""The service scheduler: fair queues, admission control, coalescing.

This is the layer that turns the library-internal FIFO
(:class:`repro.engine.jobs.JobScheduler`) into a *shared* resource many
tenants can safely pound on:

**Per-tenant weighted-fair queues with priorities.**  Each tenant owns
one queue ordered by ``(-priority, arrival)``.  Dispatch picks the
backlogged tenant with the lowest *pass* value (stride scheduling): a
tenant's pass advances by ``items / weight`` for every item it gets
executed, so long-run throughput shares converge to the configured
weights and a hog cannot starve anyone.  A tenant going idle keeps its
pass; on re-arrival it is bumped to the current virtual time, so idling
earns credit for at most one scheduling round, never a burst.

**Admission control and backpressure.**  Queue depth is bounded per
tenant and globally.  A request beyond either bound is *never queued*:
its future resolves immediately to a typed ``REJECTED`` response naming
the exhausted bound.  Overload therefore costs O(caps) memory and the
client learns to back off, instead of the service growing an unbounded
heap of promises.

**Request coalescing.**  When the dispatcher pulls a request, it scans
the queues (in fairness order) for further requests with the same
coalesce key — same op, same plan shape, same parameters — and merges
up to ``max_coalesce_requests`` / ``max_coalesce_items`` of them into
ONE batched ``*_many`` engine pass, splitting results back per request.
Because the dispatcher blocks on the engine while the batch runs,
requests arriving meanwhile pile up and the *next* batch is larger:
batch fill self-tunes to load, which is exactly the paper's
macro-pipelined throughput model driven from software.

Failures ride the PR 7 resilience vertical: jobs run under the
service's :class:`~repro.engine.resilience.RetryPolicy` and deadline,
and each member request's response carries the job's fault events
(worker crashes, respawns, retries, dead-letter).
"""

from __future__ import annotations

import bisect
import itertools
import threading
import time
from concurrent.futures import Future
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.engine.jobs import JobScheduler
from repro.engine.resilience import (
    NO_RETRY,
    JobTimeoutError,
    RetryPolicy,
)
from repro.serve.metrics import MetricsRegistry
from repro.serve.ops import ServiceOp
from repro.serve.protocol import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_REJECTED,
    STATUS_TIMEOUT,
    Response,
)

REJECT_TENANT_FULL = "tenant-queue-full"
REJECT_GLOBAL_FULL = "global-queue-full"
REJECT_SHUTDOWN = "shutting-down"


@dataclass(frozen=True)
class ServiceConfig:
    """Every serving-tier knob in one frozen object.

    Parameters
    ----------
    max_queue_per_tenant:
        Queued-request bound per tenant; the ``max_queue_global`` bound
        applies across tenants.  Both are *requests*, the unit clients
        submit and the unit rejections are reported in.
    max_coalesce_requests / max_coalesce_items:
        Per-batch merge budgets: at most this many requests, carrying
        at most this many items, share one engine pass.
    coalesce:
        ``False`` disables merging entirely (every request runs as its
        own engine pass) — the naive baseline the service benchmark
        measures against.
    weights:
        Tenant → weight for the fair scheduler (share of executed
        items); unlisted tenants get ``default_weight``.
    job_timeout_s:
        Deadline for each batched engine job (``None`` = unbounded).
        Per-request ``timeout=`` values additionally expire requests
        still waiting in the queue.
    retry:
        :class:`~repro.engine.resilience.RetryPolicy` for batched jobs
        (retries re-run the *whole* batch; results stay bit-identical).
    """

    max_queue_per_tenant: int = 64
    max_queue_global: int = 256
    max_coalesce_requests: int = 32
    max_coalesce_items: int = 256
    coalesce: bool = True
    default_weight: float = 1.0
    weights: Mapping[str, float] = field(default_factory=dict)
    job_timeout_s: Optional[float] = None
    retry: RetryPolicy = NO_RETRY

    def __post_init__(self) -> None:
        if self.max_queue_per_tenant < 1:
            raise ValueError("max_queue_per_tenant must be >= 1")
        if self.max_queue_global < self.max_queue_per_tenant:
            raise ValueError(
                "max_queue_global must be >= max_queue_per_tenant"
            )
        if self.max_coalesce_requests < 1:
            raise ValueError("max_coalesce_requests must be >= 1")
        if self.max_coalesce_items < 1:
            raise ValueError("max_coalesce_items must be >= 1")
        if self.default_weight <= 0:
            raise ValueError("default_weight must be positive")
        if any(w <= 0 for w in self.weights.values()):
            raise ValueError("tenant weights must be positive")

    def weight_of(self, tenant: str) -> float:
        return float(self.weights.get(tenant, self.default_weight))


@dataclass
class PendingRequest:
    """One admitted request waiting for (or riding) an engine pass."""

    seq: int
    tenant: str
    op: ServiceOp
    priority: int
    request_id: Optional[object]
    enqueued_at: float
    deadline_at: Optional[float]  # monotonic stamp, None = no deadline
    future: "Future[Response]" = field(default_factory=Future)
    dequeued_at: float = 0.0

    @property
    def sort_key(self) -> Tuple[int, int]:
        # Higher priority first; FIFO within a priority level.
        return (-self.priority, self.seq)

    @property
    def expired(self) -> bool:
        return (
            self.deadline_at is not None
            and time.monotonic() >= self.deadline_at
        )


class _TenantQueue:
    """One tenant's sorted backlog plus its fair-share pass value."""

    def __init__(self, name: str, weight: float, pass_value: float):
        self.name = name
        self.weight = weight
        #: Stride-scheduling pass: advanced by items/weight on dispatch.
        self.pass_value = pass_value
        #: ``(sort_key, request)`` kept ascending (bisect insertion).
        self.entries: List[Tuple[Tuple[int, int], PendingRequest]] = []

    def push(self, request: PendingRequest) -> None:
        bisect.insort(self.entries, (request.sort_key, request))

    def __len__(self) -> int:
        return len(self.entries)


class ServiceScheduler:
    """Weighted-fair, coalescing dispatch over one `JobScheduler`."""

    def __init__(
        self,
        jobs: JobScheduler,
        config: Optional[ServiceConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.jobs = jobs
        self.config = config if config is not None else ServiceConfig()
        self.metrics = (
            metrics
            if metrics is not None
            else MetricsRegistry(
                batch_item_budget=self.config.max_coalesce_items
            )
        )
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._tenants: Dict[str, _TenantQueue] = {}
        self._seq = itertools.count()
        self._depth = 0
        self._vtime = 0.0
        self._stopping = False
        self._paused = False
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-dispatch", daemon=True
        )
        self._thread.start()

    # -- admission ---------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        with self._lock:
            return self._depth

    def submit(
        self,
        tenant: str,
        op: ServiceOp,
        *,
        priority: int = 0,
        timeout: Optional[float] = None,
        request_id: Optional[object] = None,
    ) -> "Future[Response]":
        """Admit one request; the future resolves to its Response.

        Admission is decided *here, synchronously*: a request that
        exceeds a queue bound (or arrives during shutdown) resolves
        immediately to a typed ``REJECTED`` response and is never
        queued — queue memory stays bounded no matter how hard a
        client pushes.
        """
        now = time.monotonic()
        request = PendingRequest(
            seq=next(self._seq),
            tenant=tenant,
            op=op,
            priority=int(priority),
            request_id=request_id,
            enqueued_at=now,
            deadline_at=(now + timeout) if timeout else None,
        )
        self.metrics.on_submitted(tenant, op.count)
        with self._cond:
            reason = None
            if self._stopping:
                reason = REJECT_SHUTDOWN
            elif self._depth >= self.config.max_queue_global:
                reason = REJECT_GLOBAL_FULL
            else:
                queue = self._tenants.get(tenant)
                if (
                    queue is not None
                    and len(queue) >= self.config.max_queue_per_tenant
                ):
                    reason = REJECT_TENANT_FULL
            if reason is None:
                queue = self._tenants.get(tenant)
                if queue is None:
                    queue = self._tenants[tenant] = _TenantQueue(
                        tenant,
                        self.config.weight_of(tenant),
                        self._vtime,
                    )
                elif not queue.entries:
                    # Re-arriving after idle: credit stops at the
                    # current virtual time (no stored-up burst).
                    queue.pass_value = max(queue.pass_value, self._vtime)
                queue.push(request)
                self._depth += 1
                self.metrics.on_accepted(tenant)
                self._cond.notify_all()
                return request.future
        # Rejected: resolve outside the lock.
        self.metrics.on_rejected(tenant)
        request.future.set_result(
            Response(
                status=STATUS_REJECTED,
                request_id=request_id,
                error=reason,
                error_type="AdmissionError",
            )
        )
        return request.future

    # -- dispatch ----------------------------------------------------------

    def _backlogged(self) -> List[_TenantQueue]:
        """Backlogged tenants in fairness order (locked)."""
        return sorted(
            (q for q in self._tenants.values() if q.entries),
            key=lambda q: (q.pass_value, q.name),
        )

    def _resolve_timeout(self, request: PendingRequest) -> None:
        now = time.monotonic()
        self.metrics.on_dequeued(
            request.tenant, now - request.enqueued_at
        )
        self.metrics.on_failed(
            request.tenant, now - request.enqueued_at, timed_out=True
        )
        request.future.set_result(
            Response(
                status=STATUS_TIMEOUT,
                request_id=request.request_id,
                error="request expired while queued",
                error_type=JobTimeoutError.__name__,
                latency_s=now - request.enqueued_at,
            )
        )

    def _take_batch_locked(self) -> List[PendingRequest]:
        """Pop the next fair batch (may be empty after expiries)."""
        order = self._backlogged()
        if not order:
            return []
        head = order[0]
        self._vtime = head.pass_value
        _, primary = head.entries.pop(0)
        self._depth -= 1
        if primary.expired:
            self._resolve_timeout(primary)
            return []
        primary.dequeued_at = time.monotonic()
        self.metrics.on_dequeued(
            primary.tenant, primary.dequeued_at - primary.enqueued_at
        )
        batch = [primary]
        taken_items: Dict[str, int] = {primary.tenant: primary.op.count}
        if self.config.coalesce and primary.op.coalescible:
            key = primary.op.coalesce_key()
            budget_requests = self.config.max_coalesce_requests - 1
            budget_items = (
                self.config.max_coalesce_items - primary.op.count
            )
            for queue in self._backlogged():
                if budget_requests <= 0 or budget_items <= 0:
                    break
                kept: List[Tuple[Tuple[int, int], PendingRequest]] = []
                for entry in queue.entries:
                    request = entry[1]
                    if (
                        budget_requests > 0
                        and budget_items >= request.op.count
                        and request.op.coalescible
                        and request.op.coalesce_key() == key
                    ):
                        self._depth -= 1
                        if request.expired:
                            self._resolve_timeout(request)
                            continue
                        request.dequeued_at = time.monotonic()
                        self.metrics.on_dequeued(
                            request.tenant,
                            request.dequeued_at - request.enqueued_at,
                        )
                        batch.append(request)
                        taken_items[request.tenant] = (
                            taken_items.get(request.tenant, 0)
                            + request.op.count
                        )
                        budget_requests -= 1
                        budget_items -= request.op.count
                    else:
                        kept.append(entry)
                queue.entries = kept
        # Charge the fair shares: pass advances by items/weight.
        for tenant, items in taken_items.items():
            queue = self._tenants[tenant]
            queue.pass_value += items / queue.weight
        return batch

    def _job_timeout(self, batch: List[PendingRequest]) -> Optional[float]:
        """Deadline for the merged job.

        The service-level ``job_timeout_s`` always applies; when every
        member also carries its own deadline, the job additionally
        never outlives the *latest* of them (a single short-deadline
        member must not kill a shared batch for everyone else).
        """
        timeout = self.config.job_timeout_s
        deadlines = [r.deadline_at for r in batch]
        if all(d is not None for d in deadlines):
            remaining = max(d for d in deadlines) - time.monotonic()  # type: ignore[operator]
            remaining = max(remaining, 1e-3)
            timeout = (
                remaining if timeout is None else min(timeout, remaining)
            )
        return timeout

    def _execute_batch(self, batch: List[PendingRequest]) -> None:
        ops = [request.op for request in batch]
        op_class = type(ops[0])
        total_items = sum(op.count for op in ops)
        try:
            job = op_class.merge(ops)
            handle = self.jobs.submit(
                job,
                timeout=self._job_timeout(batch),
                retry=self.config.retry,
            )
            error = handle.exception()
        except BaseException as err:  # merge/submit failure
            handle = None
            error = err
        fault_events = (
            [event.render() for event in handle.fault_report.events]
            if handle is not None
            else []
        )
        dead_lettered = (
            handle is not None and handle in self.jobs.dead_letters
        )
        if error is None:
            self.metrics.on_batch(len(batch), total_items)
            results = op_class.split(ops, handle.result())
            now = time.monotonic()
            for request, result in zip(batch, results):
                latency = now - request.enqueued_at
                self.metrics.on_completed(
                    request.tenant, request.op.count, latency
                )
                request.future.set_result(
                    Response(
                        status=STATUS_OK,
                        request_id=request.request_id,
                        result=result,
                        fault_events=fault_events,
                        coalesced=len(batch),
                        queue_wait_s=(
                            request.dequeued_at - request.enqueued_at
                        ),
                        latency_s=latency,
                    )
                )
            return
        timed_out = isinstance(error, JobTimeoutError)
        status = STATUS_TIMEOUT if timed_out else STATUS_ERROR
        now = time.monotonic()
        for request in batch:
            latency = now - request.enqueued_at
            self.metrics.on_failed(
                request.tenant,
                latency,
                timed_out=timed_out,
                dead_lettered=dead_lettered,
            )
            request.future.set_result(
                Response(
                    status=status,
                    request_id=request.request_id,
                    error=str(error),
                    error_type=type(error).__name__,
                    fault_events=fault_events,
                    dead_lettered=dead_lettered,
                    coalesced=len(batch),
                    queue_wait_s=request.dequeued_at - request.enqueued_at,
                    latency_s=latency,
                )
            )

    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._stopping and (
                    self._paused or self._depth == 0
                ):
                    self._cond.wait()
                if self._stopping and self._depth == 0:
                    return
                batch = self._take_batch_locked()
            if batch:
                self._execute_batch(batch)

    # -- lifecycle ---------------------------------------------------------

    @contextmanager
    def paused(self):
        """Hold dispatch (tests): queued requests accumulate — and
        therefore coalesce deterministically — until the block exits.
        The batch already executing, if any, is unaffected."""
        with self._cond:
            self._paused = True
        try:
            yield self
        finally:
            with self._cond:
                self._paused = False
                self._cond.notify_all()

    def stop(
        self, drain: bool = True, timeout: Optional[float] = None
    ) -> bool:
        """Stop accepting requests; drain or reject the backlog.

        ``drain=True`` executes everything already admitted (responses
        are delivered) before the dispatcher exits; ``drain=False``
        resolves queued requests to ``REJECTED``/``shutting-down``.
        Returns ``True`` once the dispatcher thread has exited.
        """
        with self._cond:
            self._stopping = True
            if not drain:
                dropped = [
                    entry[1]
                    for queue in self._tenants.values()
                    for entry in queue.entries
                ]
                for queue in self._tenants.values():
                    queue.entries = []
                self._depth = 0
            else:
                dropped = []
            self._cond.notify_all()
        for request in dropped:
            self.metrics.on_dequeued(
                request.tenant,
                time.monotonic() - request.enqueued_at,
            )
            self.metrics.on_rejected(request.tenant)
            request.future.set_result(
                Response(
                    status=STATUS_REJECTED,
                    request_id=request.request_id,
                    error=REJECT_SHUTDOWN,
                    error_type="AdmissionError",
                )
            )
        self._thread.join(timeout)
        return not self._thread.is_alive()


__all__ = [
    "ServiceConfig",
    "ServiceScheduler",
    "PendingRequest",
    "REJECT_TENANT_FULL",
    "REJECT_GLOBAL_FULL",
    "REJECT_SHUTDOWN",
]
