"""Operand encoding for SSA: integers ↔ coefficient vectors.

The paper decomposes 786,432-bit operands into ``32K`` coefficients of
``m = 24`` bits and transforms over ``64K`` points "in order to
accommodate the multiplication result" (Section III).  The parameter
set is captured by :class:`SSAParameters`, with the paper's operating
point exported as :data:`PAPER_PARAMETERS`.

Encoding and decoding avoid quadratic big-int shifting by going through
the byte representation whenever the coefficient width is a whole
number of bytes (24 bits = 3 bytes at the paper's operating point).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.field.solinas import P


@dataclass(frozen=True)
class SSAParameters:
    """Sizing of one SSA multiplication.

    Attributes
    ----------
    coefficient_bits:
        Bits per polynomial coefficient (``m`` in the paper; 24).
    operand_coefficients:
        Coefficients per operand (32K in the paper).
    """

    coefficient_bits: int
    operand_coefficients: int

    @property
    def operand_bits(self) -> int:
        """Maximum operand width in bits (786,432 for the paper)."""
        return self.coefficient_bits * self.operand_coefficients

    @property
    def transform_size(self) -> int:
        """NTT length: twice the coefficient count, to fit the product."""
        return 2 * self.operand_coefficients

    @property
    def max_convolution_term(self) -> int:
        """Upper bound on any acyclic convolution coefficient."""
        max_coeff = (1 << self.coefficient_bits) - 1
        return self.operand_coefficients * max_coeff * max_coeff

    def validate(self) -> None:
        """Check the no-overflow condition that makes SSA exact mod p."""
        if self.transform_size & (self.transform_size - 1):
            raise ValueError("transform size must be a power of two")
        if self.max_convolution_term >= P:
            raise ValueError(
                "convolution terms may overflow the field: "
                f"{self.max_convolution_term} >= p"
            )


#: The paper's operating point: 786,432-bit operands, 32K × 24-bit
#: coefficients, 64K-point transform (Section III).
PAPER_PARAMETERS = SSAParameters(coefficient_bits=24, operand_coefficients=32768)


def params_for_bits(
    operand_bits: int,
    coefficient_bits: int = 24,
    min_coefficients: int = 1,
) -> SSAParameters:
    """Size an :class:`SSAParameters` for ``operand_bits`` operands.

    Rounds the coefficient count up to the next power of two (so the
    transform size stays a power of two), never below
    ``min_coefficients`` — the one sizing rule shared by
    :meth:`repro.ssa.SSAMultiplier.for_bits` and
    :meth:`repro.engine.Engine.multiplier`.
    """
    count = -(-max(operand_bits, 1) // coefficient_bits)
    size = max(1, min_coefficients)
    while size < count:
        size *= 2
    return SSAParameters(
        coefficient_bits=coefficient_bits, operand_coefficients=size
    )


def decompose(value: int, params: SSAParameters) -> np.ndarray:
    """Split ``value`` into ``transform_size`` coefficients of ``m`` bits.

    The top half of the returned vector is the zero padding that turns
    the cyclic convolution into an acyclic one.
    """
    if value < 0:
        raise ValueError("operands must be non-negative")
    if value.bit_length() > params.operand_bits:
        raise ValueError(
            f"operand of {value.bit_length()} bits exceeds the "
            f"{params.operand_bits}-bit limit of these parameters"
        )
    m = params.coefficient_bits
    coeffs = np.zeros(params.transform_size, dtype=np.uint64)
    if m % 8 == 0:
        _decompose_via_bytes(value, m, coeffs, params.operand_coefficients)
    else:
        mask = (1 << m) - 1
        index = 0
        while value:
            coeffs[index] = value & mask
            value >>= m
            index += 1
    return coeffs


def decompose_many(values: Sequence[int], params: SSAParameters) -> np.ndarray:
    """Decompose a batch of operands into a ``(batch, transform_size)`` matrix.

    Row ``i`` equals ``decompose(values[i], params)``; on the
    byte-aligned fast path all operands are serialized into one byte
    buffer and sliced with a single vectorized pass.
    """
    values = [int(v) for v in values]
    m = params.coefficient_bits
    count = params.operand_coefficients
    for value in values:
        if value < 0:
            raise ValueError("operands must be non-negative")
        if value.bit_length() > params.operand_bits:
            raise ValueError(
                f"operand of {value.bit_length()} bits exceeds the "
                f"{params.operand_bits}-bit limit of these parameters"
            )
    out = np.zeros((len(values), params.transform_size), dtype=np.uint64)
    if not values:
        return out
    if m % 8 == 0:
        step = m // 8
        raw = b"".join(v.to_bytes(count * step, "little") for v in values)
        chunks = np.frombuffer(raw, dtype=np.uint8).reshape(
            len(values), count, step
        )
        acc = np.zeros((len(values), count), dtype=np.uint64)
        for byte_index in range(step):
            acc |= chunks[:, :, byte_index].astype(np.uint64) << np.uint64(
                8 * byte_index
            )
        out[:, :count] = acc
    else:
        for row, value in enumerate(values):
            out[row] = decompose(value, params)
    return out


def _decompose_via_bytes(
    value: int, m: int, out: np.ndarray, count: int
) -> None:
    """Byte-aligned fast path: slice the little-endian byte string."""
    step = m // 8
    raw = value.to_bytes(count * step, "little")
    chunks = np.frombuffer(raw, dtype=np.uint8).reshape(count, step)
    acc = np.zeros(count, dtype=np.uint64)
    for byte_index in range(step):
        acc |= chunks[:, byte_index].astype(np.uint64) << np.uint64(
            8 * byte_index
        )
    out[:count] = acc


def recompose(coefficients: Sequence[int], coefficient_bits: int) -> int:
    """Shifted sum ``Σ c_i · 2**(m·i)`` — inverse of :func:`decompose`.

    Accepts arbitrary non-negative coefficient magnitudes (the raw
    convolution output has up-to-63-bit entries before carry recovery);
    a byte-aligned fast path handles the common post-carry case where
    every coefficient fits its ``m`` bits.
    """
    if isinstance(coefficients, np.ndarray):
        # One C-level pass instead of a per-element int() loop.
        coeffs = coefficients.tolist()
    else:
        coeffs = [int(c) for c in coefficients]
    return _recompose_ints(coeffs, coefficient_bits)


def _recompose_ints(coeffs: "list[int]", m: int) -> int:
    """:func:`recompose` for a list already holding Python ints."""
    if any(c < 0 for c in coeffs):
        raise ValueError("coefficients must be non-negative")
    if m % 8 == 0 and all(c < (1 << m) for c in coeffs):
        return _recompose_via_bytes(coeffs, m)
    value = 0
    for c in reversed(coeffs):
        value = (value << m) + c
    return value


def recompose_many(
    digit_rows: np.ndarray, coefficient_bits: int
) -> "list[int]":
    """Batch inverse of :func:`decompose`: one integer per digit row.

    ``digit_rows`` is a ``(batch, digits)`` uint64 matrix, normally the
    normalized output of
    :func:`repro.ssa.carry.carry_recover_many`.  On the byte-aligned
    fast path (digits already within ``m`` bits) the whole matrix is
    re-serialized with one vectorized byte-slice; otherwise each row
    falls back to :func:`recompose`.
    """
    m = coefficient_bits
    digits = np.ascontiguousarray(digit_rows, dtype=np.uint64)
    if digits.ndim != 2:
        raise ValueError("expected a (batch, digits) matrix")
    batch, width = digits.shape
    if batch == 0 or width == 0:
        return [0] * batch
    if m % 8 == 0 and m < 64 and not (digits >> np.uint64(m)).any():
        step = m // 8
        le_bytes = digits.astype("<u8").view(np.uint8)
        le_bytes = le_bytes.reshape(batch, width, 8)[:, :, :step]
        raw = np.ascontiguousarray(le_bytes).reshape(batch, width * step)
        return [int.from_bytes(row.tobytes(), "little") for row in raw]
    # Slow path: one ndarray→list conversion per row (C-level), not a
    # per-element Python round-trip feeding recompose's own int() loop.
    return [_recompose_ints(row, m) for row in digits.tolist()]


def _recompose_via_bytes(coeffs: Sequence[int], m: int) -> int:
    step = m // 8
    raw = bytearray(len(coeffs) * step)
    for i, c in enumerate(coeffs):
        raw[i * step : (i + 1) * step] = c.to_bytes(step, "little")
    return int.from_bytes(bytes(raw), "little")
