"""Classical multiplication baselines for the crossover study.

The paper motivates SSA as "advantageous for operands of at least
100,000 bits" compared to the "usual schemes used for moderately large
operands (thousands of bits)" (Section III).  These are those usual
schemes, implemented over the same limb decomposition so operation
counts are comparable:

- schoolbook: Θ(n²) limb products;
- Karatsuba: Θ(n^1.585);
- Toom-3: Θ(n^1.465).

Each routine is exact (validated against Python ints) and exposes an
operation counter used by :mod:`benchmarks.bench_ssa_crossover`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass
class OperationCount:
    """Tally of elementary limb multiplications performed."""

    limb_multiplications: int = 0

    def add(self, count: int = 1) -> None:
        self.limb_multiplications += count


def _to_limbs(value: int, limb_bits: int) -> List[int]:
    mask = (1 << limb_bits) - 1
    limbs = []
    while value:
        limbs.append(value & mask)
        value >>= limb_bits
    return limbs or [0]


def _from_limbs(limbs: List[int], limb_bits: int) -> int:
    value = 0
    for limb in reversed(limbs):
        value = (value << limb_bits) + limb
    return value


def schoolbook_multiply(
    a: int, b: int, limb_bits: int = 24, counter: OperationCount = None
) -> int:
    """Quadratic schoolbook multiplication over ``limb_bits`` limbs."""
    if a < 0 or b < 0:
        raise ValueError("operands must be non-negative")
    la = _to_limbs(a, limb_bits)
    lb = _to_limbs(b, limb_bits)
    out = [0] * (len(la) + len(lb))
    for i, x in enumerate(la):
        if x == 0:
            continue
        for j, y in enumerate(lb):
            out[i + j] += x * y
        if counter is not None:
            counter.add(len(lb))
    # Normalize carries.
    mask = (1 << limb_bits) - 1
    carry = 0
    for k in range(len(out)):
        total = out[k] + carry
        out[k] = total & mask
        carry = total >> limb_bits
    while carry:
        out.append(carry & mask)
        carry >>= limb_bits
    return _from_limbs(out, limb_bits)


#: Below this limb count Karatsuba/Toom fall back to the base case.
_KARATSUBA_CUTOFF_BITS = 512
_TOOM_CUTOFF_BITS = 2048


def karatsuba_multiply(
    a: int, b: int, counter: OperationCount = None
) -> int:
    """Karatsuba multiplication with three recursive half-size products."""
    if a < 0 or b < 0:
        raise ValueError("operands must be non-negative")
    n = max(a.bit_length(), b.bit_length())
    if n <= _KARATSUBA_CUTOFF_BITS:
        if counter is not None:
            counter.add(max(1, (n // 64) ** 2))
        return a * b
    half = n // 2
    mask = (1 << half) - 1
    a_lo, a_hi = a & mask, a >> half
    b_lo, b_hi = b & mask, b >> half
    low = karatsuba_multiply(a_lo, b_lo, counter)
    high = karatsuba_multiply(a_hi, b_hi, counter)
    mid = karatsuba_multiply(a_lo + a_hi, b_lo + b_hi, counter) - low - high
    return low + (mid << half) + (high << (2 * half))


def toom3_multiply(a: int, b: int, counter: OperationCount = None) -> int:
    """Toom-3 multiplication: five recursive third-size products.

    Uses the evaluation points {0, 1, −1, 2, ∞} and exact Bodrato-style
    interpolation.
    """
    if a < 0 or b < 0:
        raise ValueError("operands must be non-negative")
    n = max(a.bit_length(), b.bit_length())
    if n <= _TOOM_CUTOFF_BITS:
        return karatsuba_multiply(a, b, counter)
    third = -(-n // 3)
    mask = (1 << third) - 1

    a0, a1, a2 = a & mask, (a >> third) & mask, a >> (2 * third)
    b0, b1, b2 = b & mask, (b >> third) & mask, b >> (2 * third)

    # Evaluate at 0, 1, -1, 2, infinity.
    v0 = toom3_multiply(a0, b0, counter)
    a_sum, b_sum = a0 + a1 + a2, b0 + b1 + b2
    v1 = toom3_multiply(a_sum, b_sum, counter)
    a_alt, b_alt = a0 - a1 + a2, b0 - b1 + b2
    sign = 1
    if a_alt < 0:
        a_alt, sign = -a_alt, -sign
    if b_alt < 0:
        b_alt, sign = -b_alt, -sign
    vm1 = sign * toom3_multiply(a_alt, b_alt, counter)
    v2 = toom3_multiply(
        a0 + 2 * a1 + 4 * a2, b0 + 2 * b1 + 4 * b2, counter
    )
    vinf = toom3_multiply(a2, b2, counter)

    # Interpolation (exact integer divisions).
    t1 = (v2 - vm1) // 3
    t2 = (v1 - vm1) // 2
    t3 = v1 - v0
    t1 = (t1 - t3) // 2 - 2 * vinf
    t3 = t3 - t2 - vinf
    t2 = t2 - t1

    c0, c1, c2, c3, c4 = v0, t2, t3, t1, vinf
    return (
        c0
        + (c1 << third)
        + (c2 << (2 * third))
        + (c3 << (3 * third))
        + (c4 << (4 * third))
    )
