"""The Schönhage–Strassen multiplier (paper Section III pipeline).

``SSAMultiplier`` ties together operand decomposition, the 64K-point
NTT plan, the component-wise product and carry recovery.  The default
configuration is the paper's: 786,432-bit operands, 32K coefficients of
24 bits, a three-stage radix-64/64/16 transform over
``p = 2**64 − 2**32 + 1``.

The multiplier is a *functional* model — bit-exact, validated against
Python big-int multiplication.  The cycle/resource behaviour of the
same pipeline on the FPGA is modeled in :mod:`repro.hw.accelerator`,
which reuses this code for its datapath values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.ntt.convolution import pointwise_mul
from repro.ntt.plan import (
    ORDER_DECIMATED,
    ORDER_NATURAL,
    TransformPlan,
    decimated_companion,
    plan_for_size,
)
from repro.ntt.staged import (
    execute_plan,
    execute_plan_batch,
    execute_plan_inverse,
    execute_plan_inverse_batch,
)
from repro.ssa.carry import carry_recover, carry_recover_many
from repro.ssa.encode import (
    PAPER_PARAMETERS,
    SSAParameters,
    decompose,
    decompose_many,
    params_for_bits,
    recompose,
    recompose_many,
)


@dataclass
class SSAMultiplier:
    """Reusable SSA multiplication context.

    Parameters
    ----------
    params:
        Operand sizing; defaults to the paper's 786,432-bit setting.
    radices:
        NTT stage factorization; defaults to the paper's
        ``(64, 64, 16)`` when the transform size is 64K, otherwise a
        greedy high-radix plan.
    kernel:
        Stage-DFT backend for the NTT plan (``"loop"`` or
        ``"limb-matmul"``); ``None`` resolves through the
        ``REPRO_NTT_KERNEL`` environment variable, defaulting to
        ``limb-matmul``.
    plan:
        A prebuilt :class:`~repro.ntt.plan.TransformPlan` to use
        instead of consulting the module-global plan cache — this is
        how :class:`repro.engine.Engine` pins its multipliers to a
        per-engine cache.  Must match ``params.transform_size``.  A
        natural-ordering plan is accepted as the canonical handle (the
        decimated convolution pair is derived from it); a decimated
        plan pins the convolution pair directly.
    ordering:
        Spectrum ordering of the convolution sandwich inside
        ``multiply``/``multiply_many``/``square``:
        :data:`~repro.ntt.plan.ORDER_DECIMATED` (the default) runs the
        permutation-free DIF/DIT pair, zero digit-reversal gathers;
        :data:`~repro.ntt.plan.ORDER_NATURAL` pins the historical
        permuted route (the bit-exactness/bench baseline).
        :meth:`forward_transform` always returns *natural-order*
        spectra regardless.

    Examples
    --------
    >>> mul = SSAMultiplier.for_bits(4096)
    >>> mul.multiply(3, 5)
    15
    """

    params: SSAParameters = PAPER_PARAMETERS
    radices: Optional[Sequence[int]] = None
    kernel: Optional[str] = None
    plan: Optional[TransformPlan] = field(
        default=None, repr=False, compare=False
    )
    ordering: Optional[str] = None
    _plan: TransformPlan = field(init=False, repr=False, compare=False)
    #: The plan pair the convolution sandwich executes — the decimated
    #: companion of ``plan`` unless ``ordering=ORDER_NATURAL`` pins the
    #: permuted oracle route.
    convolution_plan: TransformPlan = field(
        init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self.params.validate()
        resolved_ordering = (
            ORDER_DECIMATED if self.ordering is None else self.ordering
        )
        if resolved_ordering not in (ORDER_NATURAL, ORDER_DECIMATED):
            raise ValueError(
                f"unknown ordering {self.ordering!r}; expected "
                f"{ORDER_NATURAL!r} or {ORDER_DECIMATED!r}"
            )
        if self.plan is not None:
            if self.plan.n != self.params.transform_size:
                raise ValueError(
                    f"plan is {self.plan.n}-point but params need "
                    f"{self.params.transform_size}"
                )
            if self.radices is not None and self.plan.radices != tuple(
                self.radices
            ):
                raise ValueError("plan radices disagree with radices=")
            if self.kernel is not None and self.plan.kernel != self.kernel:
                raise ValueError(
                    f"plan runs the {self.plan.kernel!r} kernel but "
                    f"kernel={self.kernel!r} was requested"
                )
            if self.plan.ordering == ORDER_DECIMATED:
                if self.plan.base_plan is None:
                    raise ValueError(
                        "decimated plan carries no natural base_plan"
                    )
                self.convolution_plan = self.plan
                self._plan = self.plan.base_plan
            else:
                self._plan = self.plan
                self.convolution_plan = (
                    decimated_companion(self.plan)
                    if resolved_ordering == ORDER_DECIMATED
                    else self.plan
                )
            return
        self._plan = plan_for_size(
            self.params.transform_size,
            tuple(self.radices) if self.radices is not None else None,
            kernel=self.kernel,
        )
        self.convolution_plan = (
            decimated_companion(self._plan)
            if resolved_ordering == ORDER_DECIMATED
            else self._plan
        )
        # ``plan`` doubles as the public accessor (it used to be a
        # read-only property); after init it always holds the live
        # natural-ordering plan.
        self.plan = self._plan

    @classmethod
    def for_bits(
        cls,
        operand_bits: int,
        coefficient_bits: int = 24,
        kernel: Optional[str] = None,
        ordering: Optional[str] = None,
    ) -> "SSAMultiplier":
        """Build a multiplier able to handle ``operand_bits`` operands.

        Rounds the coefficient count up to the next power of two so the
        transform size stays a power of two
        (:func:`repro.ssa.encode.params_for_bits`).
        """
        return cls(
            params=params_for_bits(operand_bits, coefficient_bits),
            kernel=kernel,
            ordering=ordering,
        )

    def forward_transform(self, value: int) -> np.ndarray:
        """Decompose an operand and return its *natural-order* spectrum.

        Always executed under the natural-ordering plan so explicit
        spectrum inspection keeps its historical layout, independent of
        the ``ordering`` the convolution sandwich runs with.
        """
        return execute_plan(decompose(value, self.params), self._plan)

    def multiply(self, a: int, b: int) -> int:
        """Exact product ``a · b`` via the full SSA pipeline."""
        operands = decompose_many([int(a), int(b)], self.params)
        spectra = execute_plan_batch(operands, self.convolution_plan)
        convolution = execute_plan_inverse(
            pointwise_mul(spectra[0], spectra[1]), self.convolution_plan
        )
        digits = carry_recover(convolution, self.params.coefficient_bits)
        return recompose(digits, self.params.coefficient_bits)

    def multiply_many(self, pairs: Sequence[Tuple[int, int]]) -> List[int]:
        """Exact products ``[a·b for (a, b) in pairs]``, batched.

        The whole batch runs through one batched decompose, a single
        forward NTT over all ``2·B`` operand rows, a batched pointwise
        product, one batched inverse NTT, and vectorized carry
        recovery/recompose — bit-exact against looping
        :meth:`multiply`, but with the per-stage interpreter overhead
        amortized across the batch (the software counterpart of the
        Section V batch macro-pipeline).
        """
        pairs = [(int(a), int(b)) for a, b in pairs]
        if not pairs:
            return []
        count = len(pairs)
        operands = decompose_many(
            [a for a, _ in pairs] + [b for _, b in pairs], self.params
        )
        spectra = execute_plan_batch(operands, self.convolution_plan)
        convolutions = execute_plan_inverse_batch(
            pointwise_mul(spectra[:count], spectra[count:]),
            self.convolution_plan,
        )
        digit_rows = carry_recover_many(
            convolutions, self.params.coefficient_bits
        )
        return recompose_many(digit_rows, self.params.coefficient_bits)

    def square(self, a: int) -> int:
        """Exact square ``a²`` using a single forward transform."""
        spectrum_a = execute_plan(
            decompose(int(a), self.params), self.convolution_plan
        )
        convolution = execute_plan_inverse(
            pointwise_mul(spectrum_a, spectrum_a), self.convolution_plan
        )
        digits = carry_recover(convolution, self.params.coefficient_bits)
        return recompose(digits, self.params.coefficient_bits)


def split_batch(count: int, shards: int) -> List[slice]:
    """Balanced contiguous slices covering ``range(count)``.

    The batch axis is the parallelism unit of the stack (every
    ``multiply_many`` / ``(batch, n)`` transform is independent per
    item), and contiguous slices keep each shard's operands adjacent —
    the shape the ``software-mp`` backend ships to worker processes.
    The first ``count % shards`` slices are one item longer, no slice
    is empty, and at most ``count`` slices are returned.

    >>> split_batch(7, 3)
    [slice(0, 3, None), slice(3, 5, None), slice(5, 7, None)]
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if shards < 1:
        raise ValueError("shards must be positive")
    shards = min(shards, count)
    if shards == 0:
        return []
    base, extra = divmod(count, shards)
    slices: List[slice] = []
    start = 0
    for index in range(shards):
        stop = start + base + (1 if index < extra else 0)
        slices.append(slice(start, stop))
        start = stop
    return slices


def ssa_multiply(
    a: int, b: int, params: Optional[SSAParameters] = None
) -> int:
    """One-shot SSA multiplication.

    Sizes the transform automatically when ``params`` is omitted.
    """
    if params is None:
        bits = max(a.bit_length(), b.bit_length(), 1)
        return SSAMultiplier.for_bits(bits).multiply(a, b)
    return SSAMultiplier(params=params).multiply(a, b)
