"""Carry recovery: from convolution coefficients to the final integer.

The last SSA step (Section III: "compute the final result c performing
the shifted sum of the components of c'").  Raw convolution
coefficients are up to ``log2(32K) + 48 = 63`` bits wide; the shifted
sum ``Σ c_i·2**(24·i)`` overlaps neighbouring terms, so carries ripple
upward.  The hardware performs this with a dedicated adder structure
budgeted at ≈20 µs (Section V); functionally it is the digit
normalization implemented here.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np


def carry_recover(
    coefficients: Sequence[int], coefficient_bits: int
) -> List[int]:
    """Normalize convolution output into proper ``m``-bit digits.

    Returns the digit vector of ``Σ c_i · 2**(m·i)`` (least significant
    first), each entry in ``[0, 2**m)``.  The vector is extended as
    needed for the final carry-out.
    """
    m = coefficient_bits
    mask = (1 << m) - 1
    digits: List[int] = []
    carry = 0
    for c in coefficients:
        total = int(c) + carry
        digits.append(total & mask)
        carry = total >> m
    while carry:
        digits.append(carry & mask)
        carry >>= m
    return digits


def carry_recover_many(
    coefficients: np.ndarray, coefficient_bits: int
) -> np.ndarray:
    """Vectorized carry recovery over a ``(batch, n)`` uint64 matrix.

    Row ``i`` of the returned ``(batch, n + extra)`` matrix holds the
    normalized ``m``-bit digits of ``Σ_j c_ij · 2**(m·j)`` — identical
    (up to trailing zeros) to :func:`carry_recover` applied per row.
    Carries are propagated whole-matrix at a time: each pass splits
    every entry into digit and carry and adds the carries one column
    up; random convolution output settles in a handful of passes, and
    saturated digit runs ripple one column per pass.
    """
    m = coefficient_bits
    if not 0 < m < 64:
        raise ValueError("coefficient width must be in (0, 64)")
    coeffs = np.ascontiguousarray(coefficients, dtype=np.uint64)
    if coeffs.ndim != 2:
        raise ValueError("expected a (batch, n) matrix")
    batch, n = coeffs.shape
    # Headroom for the final carry-out: entries are < 2**64, so the row
    # value is < 2**(m·(n-1) + 65) and ceil(64/m) + 1 extra digits
    # always suffice.
    extra = -(-64 // m) + 1
    work = np.zeros((batch, n + extra), dtype=np.uint64)
    work[:, :n] = coeffs
    mask = np.uint64((1 << m) - 1)
    shift = np.uint64(m)
    while True:
        carry = work >> shift
        if not carry.any():
            return work
        # digit + carry < 2**m + 2**(64-m) <= 2**64: never overflows,
        # and the sizing above guarantees the last column stays clean.
        work &= mask
        work[:, 1:] += carry[:, :-1]


def carry_recover_blocked(
    coefficients: Sequence[int], coefficient_bits: int, block_size: int = 64
) -> List[int]:
    """Carry recovery in the blocked style of the hardware adder.

    The paper's carry-recovery adder is only sketched ("an ad-hoc adder
    structure ... maximum delay approximately 20 µs").  We model the
    natural blocked/carry-select design: digits are normalized inside
    fixed-size blocks in parallel, then single-bit block carries ripple
    between blocks.  The result is identical to :func:`carry_recover`;
    the block structure exists so the timing model can count block
    stages (see :mod:`repro.hw.timing`).
    """
    m = coefficient_bits
    mask = (1 << m) - 1
    n = len(coefficients)
    blocks = [
        list(coefficients[start : start + block_size])
        for start in range(0, n, block_size)
    ]
    normalized: List[List[int]] = []
    block_carries: List[int] = []
    for block in blocks:
        digits = []
        carry = 0
        for c in block:
            total = int(c) + carry
            digits.append(total & mask)
            carry = total >> m
        normalized.append(digits)
        block_carries.append(carry)

    # Ripple the inter-block carries (the carry-select stage).
    out: List[int] = []
    carry = 0
    for digits, block_carry in zip(normalized, block_carries):
        for d in digits:
            total = d + carry
            out.append(total & mask)
            carry = total >> m
        carry += block_carry
    while carry:
        out.append(carry & mask)
        carry >>= m
    return out
