"""Schönhage–Strassen multiplication for ultralong operands.

The paper's target operation (Section III): multiply 786,432-bit
integers — the DGHV "small setting" ciphertext size — by

1. decomposing each operand into 32K coefficients of 24 bits
   (:mod:`repro.ssa.encode`),
2. two forward 64K-point NTTs, a component-wise product, one inverse
   NTT (:mod:`repro.ntt`),
3. a carry-recovery shifted sum (:mod:`repro.ssa.carry`).

:class:`repro.ssa.multiplier.SSAMultiplier` packages the pipeline with
configurable parameters; :mod:`repro.ssa.baselines` provides the
schoolbook/Karatsuba/Toom-3 comparison multipliers for the crossover
study ("advantageous for operands of at least 100,000 bits").
"""

from repro.ssa.encode import (
    decompose,
    decompose_many,
    recompose,
    recompose_many,
    SSAParameters,
    PAPER_PARAMETERS,
)
from repro.ssa.carry import carry_recover, carry_recover_many
from repro.ssa.multiplier import SSAMultiplier, split_batch, ssa_multiply
from repro.ssa.baselines import (
    schoolbook_multiply,
    karatsuba_multiply,
    toom3_multiply,
)

__all__ = [
    "decompose",
    "decompose_many",
    "recompose",
    "recompose_many",
    "SSAParameters",
    "PAPER_PARAMETERS",
    "carry_recover",
    "carry_recover_many",
    "SSAMultiplier",
    "split_batch",
    "ssa_multiply",
    "schoolbook_multiply",
    "karatsuba_multiply",
    "toom3_multiply",
]
