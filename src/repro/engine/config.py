"""Execution configuration for the :class:`repro.engine.Engine` façade.

One frozen :class:`ExecutionConfig` fixes every knob that used to be
hand-threaded through the stack (``kernel=`` kwargs, ``REPRO_NTT_KERNEL``
environment lookups, PE counts, clock period, batch chunking) so the
whole field→NTT→SSA→FHE→hw pipeline is configured in exactly one place.

Kernel precedence (resolved **once**, at config construction):

1. an explicit ``kernel=`` passed to :class:`ExecutionConfig` (or to
   :meth:`ExecutionConfig.default`),
2. the ``REPRO_NTT_KERNEL`` environment variable as read *at the moment
   the config is constructed* — later changes to the environment do not
   retroactively affect an engine that is already built,
3. the built-in default (``limb-matmul``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.arch.spec import ArchSpec
from repro.ntt.kernels import (
    KERNEL_ENV_VAR,
    available_kernels,
    resolve_kernel,
)

#: Allowed values of :attr:`ExecutionConfig.cache`.
CACHE_PRIVATE = "private"
CACHE_SHARED = "shared"
CACHE_OFF = "off"
_CACHE_MODES = (CACHE_PRIVATE, CACHE_SHARED, CACHE_OFF)


@dataclass(frozen=True)
class ExecutionConfig:
    """Every tunable of an :class:`repro.engine.Engine`, in one object.

    Parameters
    ----------
    kernel:
        NTT stage-DFT backend (``"loop"`` or ``"limb-matmul"``).
        ``None`` resolves through ``REPRO_NTT_KERNEL`` **once, here at
        construction** (see the module docstring for the precedence
        rule); the resolved name is stored, so the engine never touches
        the environment again.
    batch_chunk:
        Upper bound on the number of operand pairs fed to one batched
        SSA pass.  ``None`` runs any batch in a single pass; a positive
        value bounds the peak working-set of very large batches.
    cache:
        Plan-cache policy.  ``"private"`` (default) gives the engine
        its own :class:`repro.ntt.plan.PlanCache`; ``"shared"`` uses the
        process-wide default cache (what the legacy module-level API
        uses, so plans are shared with it); ``"off"`` rebuilds plans on
        every request.  ``True`` / ``False`` are accepted as aliases
        for ``"private"`` / ``"off"``.
    arch:
        Full declarative architecture description
        (:class:`repro.arch.spec.ArchSpec`) for the ``hw-model``
        backend.  When given it is authoritative: ``pes`` and
        ``clock_ns`` are overwritten from it so every reader of the
        config sees one consistent configuration.  When ``None`` the
        two scalars act as back-compat shorthands and a paper-shaped
        spec is built from them.
    pes:
        Processing-element count for the ``hw-model`` backend (power of
        two).  Backends shrink this automatically for transforms too
        small to partition over the full count.
    clock_ns:
        Clock period of the ``hw-model`` cycle model (5 ns = 200 MHz,
        the paper's Stratix V operating point).
    fidelity:
        ``hw-model`` simulation fidelity: ``"fast"`` (vectorized math,
        analytic cycle ledgers) or ``"datapath"`` (every beat through
        the banked memories and the shift-only FFT-64 unit).
    coefficient_bits:
        SSA digit width used when the engine sizes a multiplier from an
        operand bit length (the paper uses 24).
    workers:
        Worker-process count for the ``software-mp`` backend (the
        batch-axis sharding pool).  ``None`` asks for one worker per
        CPU (``os.cpu_count()``); other backends ignore it.
    max_respawns:
        How many times the ``software-mp`` backend rebuilds its worker
        pool *within one batch* after a worker crash before it stops
        retrying the pool and degrades gracefully: the remaining shards
        run in-process on the ``software`` path (bit-identical by
        construction), the batch still succeeds, and the degradation is
        recorded in the backend's
        :class:`~repro.engine.resilience.FaultReport`.
    verify_shards:
        ``software-mp`` spot-check: after reassembling a sharded batch,
        re-run the first row/product of every shard on the in-process
        ``software`` oracle and raise
        :class:`~repro.engine.resilience.ShardVerificationError` on any
        mismatch instead of returning silently wrong values.  Costs one
        extra row/product per shard; off by default.

    A config is hashable and pickle-stable: the kernel name is resolved
    (including the one-time environment read) at construction, so a
    config shipped to a ``software-mp`` worker process reconstructs the
    *same* engine regardless of the worker's environment, and
    ``pickle.loads(pickle.dumps(cfg)) == cfg`` always holds.
    """

    kernel: Optional[str] = None
    batch_chunk: Optional[int] = None
    cache: object = CACHE_PRIVATE
    arch: Optional[ArchSpec] = None
    pes: int = 4
    clock_ns: float = 5.0
    fidelity: str = "fast"
    coefficient_bits: int = 24
    workers: Optional[int] = None
    max_respawns: int = 2
    verify_shards: bool = False

    def __post_init__(self) -> None:
        # The one and only environment read: resolve_kernel(None)
        # consults REPRO_NTT_KERNEL; the resolved name is frozen in.
        object.__setattr__(self, "kernel", resolve_kernel(self.kernel))
        cache = self.cache
        if cache is True:
            cache = CACHE_PRIVATE
        elif cache is False:
            cache = CACHE_OFF
        if cache not in _CACHE_MODES:
            raise ValueError(
                f"cache must be one of {_CACHE_MODES} (or True/False), "
                f"got {self.cache!r}"
            )
        object.__setattr__(self, "cache", cache)
        if self.batch_chunk is not None and self.batch_chunk < 1:
            raise ValueError("batch_chunk must be a positive integer")
        if self.arch is not None:
            # The spec is authoritative: mirror its scalars so every
            # reader of config.pes / config.clock_ns stays consistent.
            object.__setattr__(self, "pes", self.arch.pes)
            object.__setattr__(self, "clock_ns", self.arch.clock_ns)
        if self.pes < 1 or self.pes & (self.pes - 1):
            raise ValueError("pes must be a power of two")
        if self.fidelity not in ("fast", "datapath"):
            raise ValueError(
                f"fidelity must be 'fast' or 'datapath', got {self.fidelity!r}"
            )
        if self.coefficient_bits < 1:
            raise ValueError("coefficient_bits must be positive")
        if self.workers is not None and self.workers < 1:
            raise ValueError("workers must be a positive integer or None")
        if self.max_respawns < 0:
            raise ValueError("max_respawns must be >= 0")

    @classmethod
    def default(cls, **overrides: object) -> "ExecutionConfig":
        """The stock configuration, with the environment consulted once.

        Equivalent to ``ExecutionConfig(**overrides)``; exists to make
        the construction-time environment read explicit at call sites:
        ``ExecutionConfig.default()`` is the moment ``REPRO_NTT_KERNEL``
        is read, not every later ``plan`` / ``multiply`` call.
        """
        return cls(**overrides)  # type: ignore[arg-type]

    def with_overrides(self, **overrides: object) -> "ExecutionConfig":
        """A copy with the given fields replaced (validation re-run)."""
        return replace(self, **overrides)  # type: ignore[arg-type]

    def resolved_arch(self) -> ArchSpec:
        """The effective architecture description.

        The explicit ``arch`` when set; otherwise a paper-shaped spec
        carrying the ``pes``/``clock_ns`` shorthands.
        """
        if self.arch is not None:
            return self.arch
        spec = ArchSpec.paper_default()
        if self.pes != spec.pes or self.clock_ns != spec.clock_ns:
            spec = spec.with_overrides(
                pes=self.pes,
                clock_ns=self.clock_ns,
                name=f"hypercube-p{self.pes}",
            )
        return spec


__all__ = [
    "ExecutionConfig",
    "CACHE_PRIVATE",
    "CACHE_SHARED",
    "CACHE_OFF",
    "KERNEL_ENV_VAR",
    "available_kernels",
]
