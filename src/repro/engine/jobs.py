"""``repro.jobs`` — futures-style submission over an :class:`Engine`.

The paper's accelerator is a throughput machine: a macro-pipelined
FFT-64 datapath fed with *streams* of large-integer products.  The
:class:`~repro.engine.Engine` façade, by contrast, is call-and-block.
This module closes the gap with a job model:

>>> from repro.jobs import JobScheduler, MultiplyJob, as_completed
>>> with JobScheduler(engine) as jobs:
...     handle = jobs.submit(MultiplyJob.of(a, b))   # returns at once
...     handle.done(), handle.result()               # futures-style
...     products = jobs.map("multiply", pairs, chunk=64)
...     for h in as_completed(jobs.submit_map("multiply", pairs)):
...         consume(h.result())

Every workload of the stack flows through the same queue: SSA products
(:class:`MultiplyJob`), ring forward/inverse/convolution batches
(:class:`RingTransformJob`, :class:`ConvolveJob`), DGHV homomorphic
AND layers (:class:`DGHVMultJob`) and RLWE plaintext products
(:class:`RLWEMultiplyPlainJob`).  Jobs execute **in submission order**
on one dispatcher thread that owns the engine — the engine's caches
are never raced — while intra-job parallelism comes from the engine's
compute backend (``software-mp`` shards each job's batch axis across
worker processes).  While jobs are in flight, route further compute on
that engine through the queue too (engine caches and hw-model stage
buffers are unsynchronized; only report slots are per-thread) — the
caller's own non-engine work overlaps freely.

``Engine.submit`` / ``Engine.map`` are conveniences over a lazily
created per-engine scheduler.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import as_completed as _futures_as_completed
from concurrent.futures import wait as futures_wait
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.engine.config import ExecutionConfig
from repro.engine.resilience import (
    NO_RETRY,
    Deadline,
    FaultReport,
    JobTimeoutError,
    RetryPolicy,
    RuntimeFaultError,
    deadline_scope,
)

# -- job types ------------------------------------------------------------


@dataclass(frozen=True)
class MultiplyJob:
    """A batch of exact SSA products ``[a·b for (a, b) in pairs]``."""

    pairs: Tuple[Tuple[int, int], ...]

    kind = "multiply"

    @classmethod
    def of(cls, a: int, b: int) -> "MultiplyJob":
        """A single-product job (``result()`` is a one-element list)."""
        return cls(pairs=((int(a), int(b)),))

    @classmethod
    def batched(
        cls, pairs: Iterable[Tuple[int, int]]
    ) -> "MultiplyJob":
        return cls(pairs=tuple((int(a), int(b)) for a, b in pairs))

    def run(self, engine) -> List[int]:
        left = [a for a, _ in self.pairs]
        right = [b for _, b in self.pairs]
        return engine.multiply(left, right)


@dataclass(frozen=True, eq=False)
class RingTransformJob:
    """A ``(batch, n)`` (inverse) NTT batch, optionally ψ-twisted."""

    n: int
    values: np.ndarray
    inverse: bool = False
    negacyclic: bool = False
    radices: Optional[Tuple[int, ...]] = None

    kind = "ring-transform"

    def run(self, engine) -> np.ndarray:
        ring = engine.ring(self.n, self.radices)
        if self.negacyclic:
            method = (
                ring.negacyclic_inverse
                if self.inverse
                else ring.negacyclic_forward
            )
        else:
            method = ring.inverse if self.inverse else ring.forward
        return method(self.values)


@dataclass(frozen=True, eq=False)
class ConvolveJob:
    """A cyclic or negacyclic convolution batch (broadcast included)."""

    n: int
    a: np.ndarray
    b: np.ndarray
    negacyclic: bool = False
    radices: Optional[Tuple[int, ...]] = None

    kind = "convolve"

    def run(self, engine) -> np.ndarray:
        return engine.ring(self.n, self.radices).convolve(
            self.a, self.b, negacyclic=self.negacyclic
        )


class _MultiplierStrategy:
    """The minimal ``scheme`` shape :func:`repro.fhe.ops.he_mult_many`
    needs: an object exposing the engine's multiplier strategy."""

    def __init__(self, engine):
        from repro.engine.core import EngineMultiplier

        self.multiplier = EngineMultiplier(engine)


@dataclass(frozen=True, eq=False)
class DGHVMultJob:
    """A layer of DGHV homomorphic AND gates (ciphertext products).

    Semantics and noise bookkeeping of
    :func:`repro.fhe.ops.he_mult_many`: the γ×γ-bit products run as one
    batched SSA pass through the engine (and therefore through its
    backend — sharded on ``software-mp``, cycle-counted on
    ``hw-model``).
    """

    pairs: Tuple[Tuple[Any, Any], ...]  # (Ciphertext, Ciphertext) pairs
    x0: Optional[int] = None

    kind = "dghv-mult"

    def run(self, engine) -> List[Any]:
        from repro.fhe.ops import _he_mult_many

        return _he_mult_many(
            _MultiplierStrategy(engine), self.pairs, x0=self.x0
        )


@dataclass(frozen=True, eq=False)
class RLWEMultiplyPlainJob:
    """Batched RLWE plaintext-by-ciphertext products.

    Bit-identical to
    :meth:`repro.fhe.rlwe.RLWE.multiply_plain_many` on a scheme bound
    to the engine's plan (``3·B`` negacyclic transforms total).
    """

    params: Any  # repro.fhe.rlwe.RLWEParams
    ciphertexts: Tuple[Any, ...]
    plains: Tuple[Tuple[int, ...], ...]

    kind = "rlwe-multiply-plain"

    def run(self, engine) -> List[Any]:
        scheme = engine.fhe(self.params)
        return scheme.multiply_plain_many(
            list(self.ciphertexts), [list(p) for p in self.plains]
        )


@dataclass(frozen=True, eq=False)
class RLWEMultiplyJob:
    """Batched RLWE ciphertext-by-ciphertext products.

    One tensor pass + one relinearization pass over the whole batch,
    bit-identical to :meth:`repro.fhe.rlwe.RLWE.multiply_many` on a
    scheme bound to the engine (every ring product rides the engine's
    batch axis — sharded on ``software-mp``, cycle-counted on
    ``hw-model``).  ``relin`` is the evaluator-side
    :class:`repro.fhe.rlwe.RelinKeys`; the secret never enters the job.
    """

    params: Any  # repro.fhe.rlwe.RLWEParams
    relin: Any  # repro.fhe.rlwe.RelinKeys
    pairs: Tuple[Tuple[Any, Any], ...]  # (RLWECiphertext, RLWECiphertext)

    kind = "rlwe-multiply"

    def run(self, engine) -> List[Any]:
        scheme = engine.fhe(self.params)
        return scheme.multiply_many(self.relin, list(self.pairs))


Job = Union[
    MultiplyJob,
    RingTransformJob,
    ConvolveJob,
    DGHVMultJob,
    RLWEMultiplyPlainJob,
    RLWEMultiplyJob,
]


# -- handles ---------------------------------------------------------------


class JobHandle:
    """A future over one submitted job.

    ``result(timeout=None)`` blocks for (and returns or re-raises) the
    job's outcome; ``done()`` / ``exception()`` / ``cancel()`` follow
    :class:`concurrent.futures.Future` semantics.  After completion,
    :attr:`report` holds whatever timing artifact the engine's backend
    produced for the job (``None`` on the software backends) and
    :attr:`fault_report` holds the job's own resilience story: the
    backend fault events observed while it ran (worker crashes, pool
    respawns, degradation), plus any scheduler-level retries and the
    final outcome (``recovered`` / ``dead-letter``).
    """

    def __init__(
        self,
        job: Job,
        job_id: int,
        deadline: Optional[Deadline] = None,
        retry: Optional[RetryPolicy] = None,
    ):
        self.job = job
        self.job_id = job_id
        self._future: Future = Future()
        self._report: Optional[object] = None
        self._deadline = deadline
        self._retry = retry if retry is not None else NO_RETRY
        #: This job's fault/recovery event log (see class docstring).
        self.fault_report = FaultReport()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "done" if self.done() else "pending"
        return (
            f"JobHandle(id={self.job_id}, "
            f"kind={getattr(self.job, 'kind', '?')!r}, {state})"
        )

    def done(self) -> bool:
        return self._future.done()

    def cancel(self) -> bool:
        """Cancel if not yet started (single dispatcher ⇒ FIFO queue)."""
        return self._future.cancel()

    def result(self, timeout: Optional[float] = None):
        return self._future.result(timeout)

    def exception(self, timeout: Optional[float] = None):
        return self._future.exception(timeout)

    @property
    def report(self) -> Optional[object]:
        """The backend's timing artifact for this job (post-completion)."""
        return self._report


def as_completed(
    handles: Iterable[JobHandle], timeout: Optional[float] = None
) -> Iterator[JobHandle]:
    """Yield handles as their jobs finish (completion order)."""
    handles = list(handles)
    by_future = {h._future: h for h in handles}
    for future in _futures_as_completed(by_future, timeout=timeout):
        yield by_future[future]


# -- the scheduler ---------------------------------------------------------

#: ``map(op, ...)`` kinds → chunk-of-items → job factories.  ``items``
#: is the chunk (a list); extra ``map`` kwargs are forwarded.
_MAP_FACTORIES: dict = {
    "multiply": lambda items, **kw: MultiplyJob.batched(items),
    "dghv-mult": lambda items, **kw: DGHVMultJob(
        pairs=tuple(items), x0=kw.get("x0")
    ),
    "ring-forward": lambda items, **kw: RingTransformJob(
        n=kw["n"],
        values=np.vstack(items),
        inverse=False,
        negacyclic=kw.get("negacyclic", False),
        radices=kw.get("radices"),
    ),
    "ring-inverse": lambda items, **kw: RingTransformJob(
        n=kw["n"],
        values=np.vstack(items),
        inverse=True,
        negacyclic=kw.get("negacyclic", False),
        radices=kw.get("radices"),
    ),
}


class JobScheduler:
    """Futures-style submission queue over one engine.

    Parameters
    ----------
    source:
        An :class:`~repro.engine.Engine` to run jobs on, an
        :class:`~repro.engine.config.ExecutionConfig` (a private engine
        is built from it), or ``None`` (a default engine).
    backend:
        Backend name for the private engine when ``source`` is a
        config or ``None``; ignored when an engine is passed.

    One dispatcher thread owns the engine and executes jobs strictly in
    submission order — callers get their :class:`JobHandle` back
    immediately and overlap their own work (or further submissions)
    with the compute.  Parallelism *within* a job comes from the
    engine's backend; pair the scheduler with ``software-mp`` to shard
    each job's batch axis across worker processes.
    """

    def __init__(
        self,
        source=None,
        *,
        backend: Optional[str] = None,
    ):
        from repro.engine.core import Engine

        self._owns_engine = False
        if source is None:
            self.engine = Engine(backend=backend or "software")
            self._owns_engine = True
        elif isinstance(source, ExecutionConfig):
            self.engine = Engine(
                config=source, backend=backend or "software"
            )
            self._owns_engine = True
        elif isinstance(source, Engine):
            if backend is not None:
                raise ValueError(
                    "backend= applies only when the scheduler builds "
                    "its own engine; this Engine already has one"
                )
            self.engine = source
        else:
            raise TypeError(
                "source must be an Engine, an ExecutionConfig or None; "
                f"got {type(source)!r}"
            )
        self._ids = itertools.count()
        self._lock = threading.Lock()
        self._pool: Optional[ThreadPoolExecutor] = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-jobs"
        )
        # Handles whose futures are not yet resolved (pruned by a
        # done-callback); close() cancels whatever is still queued here.
        self._pending: set = set()
        #: Jobs that failed for good on an infrastructure fault — retry
        #: budget exhausted, deadline blown, or cancelled by
        #: :meth:`close` — kept with their handles (job payload +
        #: :attr:`JobHandle.fault_report`) for post-mortem inspection
        #: or manual resubmission.
        self.dead_letters: List[JobHandle] = []

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "JobScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(wait=True)

    @property
    def active(self) -> bool:
        return self._pool is not None

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting jobs; optionally wait for the queue to drain.

        Idempotent.  Pending jobs still execute (FIFO) unless the
        interpreter is exiting; call ``cancel()`` on handles first to
        drop queued work.  An engine the scheduler built for itself
        (the config / ``None`` constructor forms) is closed with it —
        its ``software-mp`` worker pool does not outlive the queue.
        """
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is None:
            return
        if wait or not self._owns_engine:
            pool.shutdown(wait=wait)
            if self._owns_engine:
                self.engine.close()
            return
        # wait=False on an owned engine: queued jobs may still be
        # executing, so the engine (and its software-mp worker pool)
        # must only close once the dispatcher drains — hand that to a
        # reaper thread instead of blocking the caller.
        pool.shutdown(wait=False)

        def _drain_then_close() -> None:
            pool.shutdown(wait=True)  # idempotent: waits for drain
            self.engine.close()

        threading.Thread(
            target=_drain_then_close,
            name="repro-jobs-reaper",
            daemon=True,
        ).start()

    def close(self, wait: bool = True) -> List[JobHandle]:
        """Shut down, *cancelling* still-queued jobs first.

        Where :meth:`shutdown` drains the queue, ``close`` drops it:
        every job that has not started is cancelled (its handle
        resolves to :exc:`~concurrent.futures.CancelledError` and lands
        on :attr:`dead_letters`), the job currently running — if any —
        finishes, and the scheduler then shuts down.  Returns the
        cancelled handles.  Idempotent, like :meth:`shutdown`.
        """
        with self._lock:
            pending = list(self._pending)
        cancelled = [
            handle
            for handle in sorted(pending, key=lambda h: h.job_id)
            if handle.cancel()
        ]
        for handle in cancelled:
            handle.fault_report.record(
                "dead-letter",
                "cancelled while queued by JobScheduler.close()",
            )
        with self._lock:
            self.dead_letters.extend(cancelled)
        self.shutdown(wait=wait)
        return cancelled

    def drain(self, timeout: Optional[float] = None) -> List[JobHandle]:
        """Block until every submitted job reaches a terminal state.

        Unlike :meth:`shutdown`, draining does **not** stop the
        scheduler: it simply waits (from any thread) for the work
        already queued — including jobs submitted by *other* threads —
        to finish, then returns the current :attr:`dead_letters` so the
        caller can observe what failed for good.  Jobs submitted while
        the drain is in progress are waited on too.

        Raises :class:`~repro.engine.resilience.JobTimeoutError` if the
        queue has not emptied after ``timeout`` seconds; the scheduler
        and its queue are left untouched in that case.
        """
        deadline = Deadline.after(timeout) if timeout is not None else None
        while True:
            with self._lock:
                futures = [handle._future for handle in self._pending]
            if not futures:
                with self._lock:
                    return list(self.dead_letters)
            remaining = None
            if deadline is not None:
                remaining = deadline.remaining()
                if remaining <= 0:
                    raise JobTimeoutError(
                        f"queue failed to drain within {timeout}s "
                        f"({len(futures)} job(s) still pending)"
                    )
            _, not_done = futures_wait(futures, timeout=remaining)
            if not_done:
                raise JobTimeoutError(
                    f"queue failed to drain within {timeout}s "
                    f"({len(not_done)} job(s) still pending)"
                )

    # -- submission --------------------------------------------------------

    def submit(
        self,
        job: Job,
        *,
        timeout: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> JobHandle:
        """Queue one job; returns its :class:`JobHandle` immediately.

        ``timeout`` (seconds) arms a :class:`Deadline` whose clock
        starts *now*, at submission — queue wait, every retry and every
        backend shard wait all consume the same budget.  A blown
        deadline resolves the handle with
        :class:`~repro.engine.resilience.JobTimeoutError` (hung
        ``software-mp`` workers are abandoned, not joined).

        ``retry`` (a :class:`~repro.engine.resilience.RetryPolicy`)
        re-runs the job after retryable infrastructure faults with the
        policy's deterministic backoff; the default ``NO_RETRY`` fails
        fast.  A job that exhausts its budget (or fails on a
        non-retryable :class:`RuntimeFaultError`) lands on
        :attr:`dead_letters`.
        """
        run = getattr(job, "run", None)
        if not callable(run):
            raise TypeError(
                f"not a job (no run(engine) method): {job!r}"
            )
        deadline = Deadline.after(timeout) if timeout is not None else None
        handle = JobHandle(
            job, next(self._ids), deadline=deadline, retry=retry
        )
        with self._lock:
            if self._pool is None:
                raise RuntimeError("scheduler is shut down")
            self._pending.add(handle)
            handle._future.add_done_callback(
                lambda _f, h=handle: self._pending.discard(h)
            )
            self._pool.submit(self._execute, job, handle)
        return handle

    def _execute(self, job: Job, handle: JobHandle) -> None:
        """Dispatcher-thread body: run under deadline/retry, resolve.

        Backend fault events that occur while this job runs are copied
        onto the handle's :attr:`~JobHandle.fault_report` (the backend
        keeps its own cumulative log), so a caller holding only the
        handle sees the full story of *their* job.
        """
        if not handle._future.set_running_or_notify_cancel():
            return
        backend_report = getattr(
            self.engine.backend, "fault_report", None
        )
        policy = handle._retry
        deadline = handle._deadline
        attempt = 0
        while True:
            mark = (
                len(backend_report.events)
                if backend_report is not None
                else 0
            )
            # Clear this thread's report slot first: a job that fails
            # (or never reaches a backend call) must not inherit the
            # previous job's timing artifact.
            self.engine.last_report = None
            error: Optional[BaseException] = None
            result = None
            try:
                if deadline is not None and deadline.expired:
                    raise JobTimeoutError(
                        f"job {handle.job_id} "
                        f"({getattr(job, 'kind', '?')}) expired before "
                        f"it ran — queue wait and/or earlier attempts "
                        f"consumed its timeout"
                    )
                with deadline_scope(deadline):
                    result = job.run(self.engine)
            except BaseException as err:
                error = err
            if backend_report is not None:
                handle.fault_report.extend(backend_report.events[mark:])
            if error is None:
                if attempt > 0:
                    handle.fault_report.record(
                        "recovered",
                        f"succeeded on retry {attempt}",
                    )
                handle._report = self.engine.last_report
                handle._future.set_result(result)
                return
            expired = deadline is not None and deadline.expired
            if policy.should_retry(error, attempt) and not expired:
                delay = policy.delay(attempt)
                if deadline is not None:
                    delay = min(delay, max(deadline.remaining(), 0.0))
                handle.fault_report.record(
                    "retry",
                    f"attempt {attempt + 1} failed ({error!r}); "
                    f"retrying after {delay:.3g}s backoff",
                )
                if delay > 0:
                    time.sleep(delay)
                attempt += 1
                continue
            if isinstance(error, RuntimeFaultError):
                handle.fault_report.record(
                    "dead-letter",
                    f"failed for good after {attempt + 1} attempt(s): "
                    f"{error!r}",
                )
                with self._lock:
                    self.dead_letters.append(handle)
            handle._report = self.engine.last_report
            handle._future.set_exception(error)
            return

    # -- mapping -----------------------------------------------------------

    def default_chunk(self, total: int) -> int:
        """One chunk covering all items.

        Chunk jobs run *sequentially* on the FIFO dispatcher, and the
        compute backend already shards each job's batch axis across
        its workers — splitting a map into W chunks would just re-shard
        each W ways (W² tiny pool round-trips).  Smaller chunks only
        pay off for streaming partial results through
        :func:`as_completed`; pass ``chunk=`` explicitly for that.
        """
        return max(1, total)

    def submit_map(
        self,
        op: Union[str, Callable[[list], Job]],
        items: Sequence,
        chunk: Optional[int] = None,
        **op_kwargs,
    ) -> List[JobHandle]:
        """Split ``items`` into chunk jobs; return one handle per chunk.

        ``op`` is a registered kind (``"multiply"``, ``"dghv-mult"``,
        ``"ring-forward"``, ``"ring-inverse"`` — extra kwargs such as
        ``n=`` or ``x0=`` are forwarded to the job) or any callable
        taking a chunk (list of items) and returning a job.  Chunks
        preserve item order; ``chunk=None`` uses
        :meth:`default_chunk`.
        """
        if isinstance(op, str):
            try:
                factory = _MAP_FACTORIES[op]
            except KeyError:
                raise ValueError(
                    f"unknown map op {op!r}; expected one of "
                    f"{sorted(_MAP_FACTORIES)} or a callable"
                ) from None
        else:
            # Extra kwargs are forwarded so a callable op is not a
            # silent kwargs sink (a callable that takes none raises).
            factory = lambda chunk_items, **kw: op(chunk_items, **kw)  # noqa: E731
        items = list(items)
        if chunk is None:
            chunk = self.default_chunk(len(items))
        if chunk < 1:
            raise ValueError("chunk must be a positive integer")
        return [
            self.submit(factory(items[start : start + chunk], **op_kwargs))
            for start in range(0, len(items), chunk)
        ]

    def map(
        self,
        op: Union[str, Callable[[list], Job]],
        items: Sequence,
        chunk: Optional[int] = None,
        **op_kwargs,
    ) -> Union[list, np.ndarray]:
        """Run ``op`` over ``items`` in chunk jobs; ordered results.

        Blocks until every chunk completes and flattens the per-chunk
        results back to one per-item sequence (rows are re-stacked for
        array-valued ops), in the original item order.
        """
        handles = self.submit_map(op, items, chunk, **op_kwargs)
        results = [handle.result() for handle in handles]
        if not results:
            return []
        if isinstance(results[0], np.ndarray):
            return np.concatenate(results, axis=0)
        flattened: list = []
        for result in results:
            flattened.extend(result)
        return flattened


__all__ = [
    "JobScheduler",
    "JobHandle",
    "Job",
    "MultiplyJob",
    "RingTransformJob",
    "ConvolveJob",
    "DGHVMultJob",
    "RLWEMultiplyPlainJob",
    "RLWEMultiplyJob",
    "as_completed",
]
