"""Resilience primitives for the jobs → backend → mp vertical.

The paper's accelerator is a throughput machine meant to run sustained
streams of products; a serving tier on top of it has to survive the
failures a long-running process pool actually sees — a worker SIGKILLed
by the OOM killer, a shard that hangs, a result corrupted in flight.
This module holds the vocabulary every layer shares:

- :class:`RetryPolicy` — deterministic capped exponential backoff (no
  wall-clock randomness: the delay for attempt *k* is a pure function
  of the policy, so recovery schedules are reproducible in tests);
- :class:`Deadline` — an absolute monotonic-clock cutoff threaded from
  ``JobScheduler.submit(timeout=...)`` down to the backend's shard
  waits via :func:`deadline_scope` / :func:`current_deadline`;
- typed failures (:class:`WorkerCrashError`, :class:`JobTimeoutError`,
  :class:`ShardVerificationError`) so callers can route infrastructure
  faults differently from value errors in their own job code;
- :class:`FaultReport` — an append-only event log recording what
  failed, what was retried or replayed, and how the run recovered
  (pool respawn, graceful degradation, dead-letter).

Nothing here sleeps or spawns by itself; the scheduler and the
``software-mp`` backend drive these types.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple, Type


# -- typed failures --------------------------------------------------------


class RuntimeFaultError(RuntimeError):
    """Base class for runtime (infrastructure) faults.

    Distinguishes "the machinery running the job broke" from "the job's
    own math raised": only the former is eligible for automatic retry
    and dead-lettering.
    """


class WorkerCrashError(RuntimeFaultError):
    """A worker process died (or never answered the liveness probe)."""


class JobTimeoutError(RuntimeFaultError, TimeoutError):
    """A job (or one of its shards) exceeded its deadline."""


class ShardVerificationError(RuntimeFaultError):
    """A shard result failed its spot-check against the in-process
    oracle — the batch was NOT silently reassembled."""


#: Exception types the stock retry policy treats as transient.  A
#: :class:`JobTimeoutError` is deliberately absent: its deadline is
#: already blown, so a retry would expire immediately.
DEFAULT_RETRYABLE: Tuple[Type[BaseException], ...] = (
    WorkerCrashError,
    ShardVerificationError,
)


# -- retry policy ----------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic capped exponential backoff.

    The delay before retry ``attempt`` (0-based) is
    ``min(base_delay_s * backoff_factor**attempt, max_delay_s)`` —
    no jitter, by design: recovery schedules must be reproducible so
    the fault-injection tests can assert them exactly.
    """

    max_retries: int = 0
    base_delay_s: float = 0.01
    backoff_factor: float = 2.0
    max_delay_s: float = 1.0
    retry_on: Tuple[Type[BaseException], ...] = DEFAULT_RETRYABLE

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.base_delay_s < 0:
            raise ValueError("base_delay_s must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.max_delay_s < self.base_delay_s:
            raise ValueError("max_delay_s must be >= base_delay_s")

    def delay(self, attempt: int) -> float:
        """Backoff before 0-based retry ``attempt`` (capped)."""
        if attempt < 0:
            raise ValueError("attempt must be >= 0")
        return min(
            self.base_delay_s * self.backoff_factor**attempt,
            self.max_delay_s,
        )

    def delays(self) -> List[float]:
        """The full deterministic backoff schedule."""
        return [self.delay(a) for a in range(self.max_retries)]

    def should_retry(self, error: BaseException, attempt: int) -> bool:
        """Whether 0-based ``attempt`` may be retried after ``error``."""
        return attempt < self.max_retries and isinstance(
            error, self.retry_on
        )


#: The stock "fail fast" policy (``submit`` default).
NO_RETRY = RetryPolicy(max_retries=0)


# -- deadlines -------------------------------------------------------------


@dataclass(frozen=True)
class Deadline:
    """An absolute cutoff on the monotonic clock.

    Built once (at job submission), then threaded *by value* through
    retries and shard waits — every layer measures against the same
    instant, so queue wait, retries and backoff all consume the same
    budget.
    """

    expires_at: float  # time.monotonic() stamp

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        """A deadline ``seconds`` from now."""
        if seconds <= 0:
            raise ValueError("timeout must be positive")
        return cls(expires_at=time.monotonic() + seconds)

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self.expires_at - time.monotonic()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0


_SCOPE = threading.local()


def current_deadline() -> Optional[Deadline]:
    """The innermost active :func:`deadline_scope` of this thread."""
    stack = getattr(_SCOPE, "stack", None)
    return stack[-1] if stack else None


@contextmanager
def deadline_scope(deadline: Optional[Deadline]) -> Iterator[None]:
    """Make ``deadline`` visible to backend calls on this thread.

    ``None`` is accepted (and pushes nothing) so callers can wrap
    unconditionally.  Scopes nest; the innermost wins.
    """
    if deadline is None:
        yield
        return
    stack = getattr(_SCOPE, "stack", None)
    if stack is None:
        stack = _SCOPE.stack = []
    stack.append(deadline)
    try:
        yield
    finally:
        stack.pop()


# -- fault reporting -------------------------------------------------------


@dataclass(frozen=True)
class FaultEvent:
    """One observed fault or recovery action."""

    kind: str  # worker-crash | respawn | degraded | timeout |
    #            shard-corruption | retry | recovered | dead-letter
    detail: str = ""
    shards: Tuple[int, ...] = ()

    def render(self) -> str:
        where = f" shards={list(self.shards)}" if self.shards else ""
        return f"[{self.kind}]{where} {self.detail}".rstrip()


@dataclass
class FaultReport:
    """Append-only log of what failed and how the run recovered.

    One lives on each :class:`~repro.engine.backends.SoftwareMPBackend`
    (the pool-supervision story: crashes, respawns, degradation) and
    one on each :class:`~repro.engine.jobs.JobHandle` (the job's own
    story: the backend events observed during its run, plus retries and
    the final outcome).  Appends are GIL-atomic list appends, so the
    dispatcher thread and callers can read concurrently.
    """

    events: List[FaultEvent] = field(default_factory=list)

    def record(
        self, kind: str, detail: str = "", shards: Tuple[int, ...] = ()
    ) -> FaultEvent:
        event = FaultEvent(kind=kind, detail=detail, shards=tuple(shards))
        self.events.append(event)
        return event

    def extend(self, events) -> None:
        self.events.extend(events)

    def count(self, kind: str) -> int:
        return sum(1 for e in self.events if e.kind == kind)

    @property
    def respawns(self) -> int:
        return self.count("respawn")

    @property
    def retries(self) -> int:
        return self.count("retry")

    @property
    def degraded(self) -> bool:
        return self.count("degraded") > 0

    @property
    def clean(self) -> bool:
        return not self.events

    def render(self) -> str:
        if not self.events:
            return "fault report: clean run (no faults observed)"
        lines = [f"fault report: {len(self.events)} event(s)"]
        lines += [f"  {event.render()}" for event in self.events]
        return "\n".join(lines)


__all__ = [
    "RuntimeFaultError",
    "WorkerCrashError",
    "JobTimeoutError",
    "ShardVerificationError",
    "DEFAULT_RETRYABLE",
    "RetryPolicy",
    "NO_RETRY",
    "Deadline",
    "deadline_scope",
    "current_deadline",
    "FaultEvent",
    "FaultReport",
]
