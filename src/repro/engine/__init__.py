"""``repro.engine`` — the configurable façade over the whole stack.

One :class:`Engine` object is the front door to everything the library
does: mixed-radix NTT rings (:meth:`Engine.ring`), Schönhage–Strassen
multiplication (:meth:`Engine.multiply`), FHE contexts
(:meth:`Engine.fhe`) and the cycle-counted hardware model
(``Engine(backend="hw-model")``).  Configuration lives in one frozen
:class:`ExecutionConfig`; plans live in a per-engine
:class:`~repro.ntt.plan.PlanCache`; compute is pluggable through the
:class:`~repro.engine.backends.ComputeBackend` registry.

Quickstart::

    from repro.engine import Engine

    eng = Engine()                       # software backend
    assert eng.multiply(a, b) == a * b   # SSA, sized automatically
    ring = eng.ring(4096)                # (n,) or (batch, n) polymorphic
    spec = ring.forward(rows)

    hw = Engine(backend="hw-model")      # same values, plus timing
    product = hw.multiply(a, b)
    print(hw.last_report.render())       # ≈122 us at the paper's point
"""

from repro.engine.backends import (
    HW_MODEL,
    SOFTWARE,
    SOFTWARE_MP,
    ComputeBackend,
    HardwareModelBackend,
    SoftwareBackend,
    SoftwareMPBackend,
    available_backends,
    create_backend,
    register_backend,
)
from repro.engine.config import (
    CACHE_OFF,
    CACHE_PRIVATE,
    CACHE_SHARED,
    ExecutionConfig,
)
from repro.engine.core import Engine, EngineMultiplier, default_engine
from repro.engine.jobs import JobHandle, JobScheduler, as_completed
from repro.engine.resilience import (
    NO_RETRY,
    Deadline,
    FaultEvent,
    FaultReport,
    JobTimeoutError,
    RetryPolicy,
    RuntimeFaultError,
    ShardVerificationError,
    WorkerCrashError,
    current_deadline,
    deadline_scope,
)
from repro.engine.ring import Ring

__all__ = [
    "Engine",
    "EngineMultiplier",
    "ExecutionConfig",
    "Ring",
    "JobScheduler",
    "JobHandle",
    "as_completed",
    "ComputeBackend",
    "SoftwareBackend",
    "SoftwareMPBackend",
    "HardwareModelBackend",
    "register_backend",
    "available_backends",
    "create_backend",
    "default_engine",
    "SOFTWARE",
    "SOFTWARE_MP",
    "HW_MODEL",
    "CACHE_PRIVATE",
    "CACHE_SHARED",
    "CACHE_OFF",
    "RetryPolicy",
    "NO_RETRY",
    "Deadline",
    "deadline_scope",
    "current_deadline",
    "RuntimeFaultError",
    "WorkerCrashError",
    "JobTimeoutError",
    "ShardVerificationError",
    "FaultEvent",
    "FaultReport",
]
