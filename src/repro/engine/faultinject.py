"""Deterministic runtime fault injection for the ``software-mp`` path.

``tests/test_fault_injection.py`` proves corrupted *hardware state* is
detected; this harness extends the same discipline to the *runtime*:
it arms injection points that kill a worker on a chosen shard, delay a
shard past its deadline, or flip a bit in a shard result before
reassembly — so the recovery paths in
:class:`~repro.engine.backends.SoftwareMPBackend` and
:class:`~repro.engine.jobs.JobScheduler` can be proven end to end.

Everything is deterministic.  Faults are keyed to *parent-side shard
indices* (which are a pure function of batch size and worker count via
:func:`repro.ssa.multiplier.split_batch`), never to wall-clock or
randomness.  The kill/delay directive travels to the worker inside the
shard's task payload, so it behaves identically under ``fork`` and
``spawn`` and never leaks across a pool respawn: a one-shot fault is
consumed in the parent the moment its shard is submitted, so the
replayed shard runs clean.

Activation, in precedence order:

1. programmatic — ``with faultinject.inject("worker-kill:0"): ...`` or
   :func:`activate` / :func:`deactivate` with a :class:`FaultPlan`;
2. the ``REPRO_FAULTS`` environment variable (read once, at the first
   injection query), for CLI/CI smoke runs.

Spec grammar (comma-separated clauses)::

    worker-kill[:SHARD]          SIGKILL the worker running shard N (default 0)
    shard-delay[:SHARD[:SECS]]   sleep SECS in shard N (defaults 0, 2.0)
    corrupt-shard[:SHARD]        flip one bit of shard N's result (default 0)
    repeat                       re-arm after firing (default: one-shot)

With the default one-shot arming a kill fires exactly once — the
respawned pool replays the shard clean.  ``repeat`` keeps re-firing on
every replay, which is how the tests exhaust ``max_respawns`` and
force graceful degradation.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Union

#: Environment hook for CLI/CI smoke runs (read once, lazily).
FAULTS_ENV_VAR = "REPRO_FAULTS"

#: Directives understood by the worker side
#: (:func:`repro.engine.mp.apply_inject`).
DIRECTIVE_KILL = "kill"
DIRECTIVE_DELAY = "delay"  # serialized as "delay:<seconds>"


@dataclass
class FaultPlan:
    """An armed set of injection points (mutable: arms are consumed).

    ``None`` disables a fault; a shard index arms it.  One plan is
    active at a time (module-global), mirroring how an operator flips
    one chaos experiment on at a time.
    """

    kill_on_shard: Optional[int] = None
    delay_on_shard: Optional[int] = None
    delay_s: float = 2.0
    corrupt_on_shard: Optional[int] = None
    #: ``False`` (default): each fault fires once, then disarms —
    #: replayed shards run clean.  ``True``: faults re-fire on every
    #: matching shard (used to exhaust ``max_respawns``).
    repeat: bool = False
    _fired: dict = field(default_factory=dict, repr=False)

    def _fires(self, fault: str, armed: Optional[int], index: int) -> bool:
        if armed is None or armed != index:
            return False
        if self.repeat:
            return True
        if self._fired.get(fault):
            return False
        self._fired[fault] = True
        return True

    def directive_for_shard(self, index: int) -> str:
        """The worker-side directive for shard ``index`` (consuming)."""
        if self._fires("kill", self.kill_on_shard, index):
            return DIRECTIVE_KILL
        if self._fires("delay", self.delay_on_shard, index):
            return f"{DIRECTIVE_DELAY}:{self.delay_s}"
        return ""

    def should_corrupt(self, index: int) -> bool:
        """Whether shard ``index``'s result gets one bit flipped."""
        return self._fires("corrupt", self.corrupt_on_shard, index)


def parse_spec(spec: str) -> FaultPlan:
    """Parse the spec grammar (see module docstring) into a plan."""
    plan = FaultPlan()
    armed = False
    for clause in spec.split(","):
        clause = clause.strip()
        if not clause:
            continue
        parts = clause.split(":")
        name, args = parts[0], parts[1:]
        try:
            if name == "worker-kill":
                plan.kill_on_shard = int(args[0]) if args else 0
            elif name == "shard-delay":
                plan.delay_on_shard = int(args[0]) if args else 0
                if len(args) > 1:
                    plan.delay_s = float(args[1])
            elif name == "corrupt-shard":
                plan.corrupt_on_shard = int(args[0]) if args else 0
            elif name == "repeat":
                plan.repeat = True
            else:
                raise ValueError(f"unknown fault clause {name!r}")
        except (IndexError, ValueError) as error:
            if "unknown fault clause" in str(error):
                raise
            raise ValueError(
                f"malformed fault clause {clause!r}: {error}"
            ) from None
        armed = True
    if not armed:
        raise ValueError(f"empty fault spec {spec!r}")
    return plan


# -- activation ------------------------------------------------------------

_LOCK = threading.Lock()
_ACTIVE: Optional[FaultPlan] = None
_ENV_CHECKED = False


def activate(plan: Union[FaultPlan, str]) -> FaultPlan:
    """Arm ``plan`` (or a spec string) as the active fault plan."""
    global _ACTIVE, _ENV_CHECKED
    if isinstance(plan, str):
        plan = parse_spec(plan)
    with _LOCK:
        _ACTIVE = plan
        _ENV_CHECKED = True  # explicit activation overrides the env
    return plan


def deactivate() -> None:
    """Disarm every injection point."""
    global _ACTIVE, _ENV_CHECKED
    with _LOCK:
        _ACTIVE = None
        _ENV_CHECKED = True


def active_plan() -> Optional[FaultPlan]:
    """The active plan, arming ``REPRO_FAULTS`` lazily on first query."""
    global _ACTIVE, _ENV_CHECKED
    with _LOCK:
        if not _ENV_CHECKED:
            _ENV_CHECKED = True
            spec = os.environ.get(FAULTS_ENV_VAR, "").strip()
            if spec:
                _ACTIVE = parse_spec(spec)
        return _ACTIVE


@contextmanager
def inject(plan: Union[FaultPlan, str]) -> Iterator[FaultPlan]:
    """Scoped activation: arm on entry, disarm on exit.

    The previous plan (if any) is restored, so nested experiments
    compose in tests.
    """
    global _ACTIVE
    with _LOCK:
        previous = _ACTIVE
    armed = activate(plan)
    try:
        yield armed
    finally:
        with _LOCK:
            _ACTIVE = previous


# -- injection points (called by the backend) ------------------------------


def directive_for_shard(index: int) -> str:
    """Worker-side directive for shard ``index`` ("" = no fault)."""
    plan = active_plan()
    return plan.directive_for_shard(index) if plan is not None else ""


def should_corrupt(index: int) -> bool:
    """Whether the parent must flip a bit in shard ``index``'s result."""
    plan = active_plan()
    return plan.should_corrupt(index) if plan is not None else False


def corrupt_result(result):
    """Flip the lowest bit of the first element of a shard result.

    Returns a corrupted *copy* for lists and numpy arrays alike; the
    original object is never mutated (shared-memory rows are corrupted
    in place by the caller instead).
    """
    import numpy as np

    if isinstance(result, np.ndarray):
        corrupted = result.copy()
        corrupted.flat[0] = corrupted.flat[0] ^ type(corrupted.flat[0])(1)
        return corrupted
    corrupted: List[int] = list(result)
    corrupted[0] ^= 1
    return corrupted


__all__ = [
    "FAULTS_ENV_VAR",
    "FaultPlan",
    "parse_spec",
    "activate",
    "deactivate",
    "active_plan",
    "inject",
    "directive_for_shard",
    "should_corrupt",
    "corrupt_result",
]
