"""``engine.ring(n)`` — one polymorphic surface over transform twins.

Before the engine façade, every ring operation came in scalar/batch
pairs (``execute_plan`` / ``execute_plan_batch``,
``negacyclic_convolution`` / ``_many`` / ``_broadcast``, ...).  A
:class:`Ring` retires the twin explosion: every method accepts either a
flat ``(n,)`` vector or a ``(batch, n)`` matrix and answers in kind —
flat in, flat out; matrix in, matrix out.  Convolutions additionally
broadcast: a ``(batch, n)`` operand against a single ``(n,)``
polynomial transforms the fixed operand once and reuses its spectrum
across the batch (the RLWE secret-key shape).

All transforms are routed through the owning engine's backend, so the
same ring runs on the staged software executor or on the cycle-counted
accelerator model — bit-identically.

Negacyclic operations execute *fused* plans
(:data:`repro.ntt.plan.TWIST_NEGACYCLIC`): the ψ-twist/untwist lives in
the stage constants, so ``negacyclic_forward`` / ``negacyclic_inverse``
and ``convolve(negacyclic=True)`` are plain plan executions with zero
extra vector passes, on every backend.  The fused companion plan is
built lazily from the engine's cache the first time a ring touches the
``x^n + 1`` algebra.

:meth:`Ring.convolve` additionally runs the *decimated*
(permutation-free) plan pair — DIF forward spectra stay in decimated
order through the pointwise product and the DIT inverse consumes them
directly, so convolutions skip every digit-reversal gather.  The
explicit transform methods (``forward`` / ``inverse`` /
``negacyclic_forward`` / ``negacyclic_inverse``) keep natural-order
spectra, so code that inspects spectra sees the historical layout.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

from repro.field.vector import vmul
from repro.ntt.plan import ORDER_DECIMATED, TWIST_NEGACYCLIC, TransformPlan

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.core import Engine


def _as_rows(values: np.ndarray, n: int) -> Tuple[np.ndarray, bool]:
    """Coerce to a ``(batch, n)`` uint64 matrix; report flat inputs."""
    arr = np.ascontiguousarray(values, dtype=np.uint64)
    if arr.ndim == 1:
        if arr.shape != (n,):
            raise ValueError(f"expected a flat array of length {n}")
        return arr.reshape(1, n), True
    if arr.ndim == 2 and arr.shape[1] == n:
        return arr, False
    raise ValueError(f"expected a (n,) vector or (batch, {n}) matrix")


class Ring:
    """Cyclic and negacyclic arithmetic in one transform length.

    Obtained from :meth:`repro.engine.Engine.ring`; holds the engine's
    cached :class:`~repro.ntt.plan.TransformPlan` and dispatches every
    transform through the engine's compute backend.
    """

    def __init__(self, engine: "Engine", plan: TransformPlan):
        self._engine = engine
        self._plan = plan
        self._nega_plan: Optional[TransformPlan] = None
        self._conv_plan: Optional[TransformPlan] = None
        self._nega_conv_plan: Optional[TransformPlan] = None

    @property
    def n(self) -> int:
        """Transform length (ring dimension)."""
        return self._plan.n

    @property
    def plan(self) -> TransformPlan:
        """The underlying precomputed transform plan."""
        return self._plan

    @property
    def negacyclic_plan(self) -> TransformPlan:
        """The fused negacyclic companion plan (built on first use)."""
        if self._nega_plan is None:
            self._nega_plan = self._engine.plan(
                self.n, self._plan.radices, twist=TWIST_NEGACYCLIC
            )
        return self._nega_plan

    @property
    def convolution_plan(self) -> TransformPlan:
        """The decimated (permutation-free) cyclic convolution pair.

        :meth:`convolve` runs it instead of the natural plan: the
        pointwise sandwich never looks at spectrum order, so both
        digit-reversal gathers drop at bit-identical output.
        """
        if self._conv_plan is None:
            self._conv_plan = self._engine.plan(
                self.n, self._plan.radices, ordering=ORDER_DECIMATED
            )
        return self._conv_plan

    @property
    def negacyclic_convolution_plan(self) -> TransformPlan:
        """The fused *and* decimated negacyclic convolution pair."""
        if self._nega_conv_plan is None:
            self._nega_conv_plan = self._engine.plan(
                self.n,
                self._plan.radices,
                twist=TWIST_NEGACYCLIC,
                ordering=ORDER_DECIMATED,
            )
        return self._nega_conv_plan

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Ring(n={self.n}, radices={self._plan.radices}, "
            f"kernel={self._plan.kernel!r}, "
            f"backend={self._engine.backend.name!r})"
        )

    # -- transforms -------------------------------------------------------

    def forward(self, values: np.ndarray) -> np.ndarray:
        """Forward NTT; ``(n,)`` or ``(batch, n)``, answered in kind."""
        rows, flat = _as_rows(values, self.n)
        out = self._engine._transform(self._plan, rows, inverse=False)
        return out[0] if flat else out

    def inverse(self, values: np.ndarray) -> np.ndarray:
        """Inverse NTT (scaled by ``n^{-1}``), shape-polymorphic."""
        rows, flat = _as_rows(values, self.n)
        out = self._engine._transform(self._plan, rows, inverse=True)
        return out[0] if flat else out

    def negacyclic_forward(self, values: np.ndarray) -> np.ndarray:
        """ψ-twisted forward spectrum (for explicit spectrum reuse).

        One fused plan execution — the twist is baked into the plan's
        first-stage constants, not paid as a vector pass.
        """
        rows, flat = _as_rows(values, self.n)
        out = self._engine._transform(
            self.negacyclic_plan, rows, inverse=False
        )
        return out[0] if flat else out

    def negacyclic_inverse(self, values: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`negacyclic_forward` (untwisted rows).

        One fused plan execution — untwist and ``n^{-1}`` live in the
        inverse companion's stage constants.
        """
        rows, flat = _as_rows(values, self.n)
        out = self._engine._transform(
            self.negacyclic_plan, rows, inverse=True
        )
        return out[0] if flat else out

    def pointwise(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Component-wise spectrum product (broadcasting rows)."""
        return vmul(
            np.asarray(a, dtype=np.uint64), np.asarray(b, dtype=np.uint64)
        )

    # -- convolutions -----------------------------------------------------

    def convolve(
        self, a: np.ndarray, b: np.ndarray, negacyclic: bool = False
    ) -> np.ndarray:
        """Cyclic (or negacyclic) convolution, shape-polymorphic.

        Shapes: ``(n,)·(n,)`` → ``(n,)``; ``(B, n)·(B, n)`` row-wise →
        ``(B, n)``; ``(B, n)·(n,)`` (either order) broadcasts the fixed
        operand's spectrum across the batch, paying ``B + 1`` forward
        transforms instead of ``2B``.

        The negacyclic flavor dispatches the fused plan — same transform
        count as the cyclic one, with the twist folded into the stage
        constants instead of costing per-operand vector passes.

        Both flavors run the *decimated* plan pair: the intermediate
        spectra stay in decimated order through the order-agnostic
        pointwise product, so no transform pays a digit-reversal
        gather.  Use :meth:`forward` / :meth:`negacyclic_forward` when
        you need natural-order spectra explicitly.
        """
        rows_a, flat_a = _as_rows(a, self.n)
        rows_b, flat_b = _as_rows(b, self.n)
        plan = (
            self.negacyclic_convolution_plan
            if negacyclic
            else self.convolution_plan
        )

        batch_a, batch_b = rows_a.shape[0], rows_b.shape[0]
        if batch_a == batch_b:
            spectra = self._engine._transform(
                plan, np.concatenate([rows_a, rows_b], axis=0)
            )
            spectrum = vmul(
                spectra[:batch_a],
                spectra[batch_a:],
                out=spectra[:batch_a],
            )
        elif batch_b == 1 or batch_a == 1:
            if batch_a == 1:  # symmetric: keep the batch first
                rows_a, rows_b = rows_b, rows_a
                batch_a, batch_b = batch_b, batch_a
            spectra = self._engine._transform(
                plan, np.concatenate([rows_a, rows_b], axis=0)
            )
            spectrum = vmul(spectra[:-1], spectra[-1:], out=spectra[:-1])
        else:
            raise ValueError(
                "operand batches must match (or one operand be a single "
                f"polynomial); got {batch_a} and {batch_b} rows"
            )

        product = self._engine._transform(plan, spectrum, inverse=True)
        return product[0] if flat_a and flat_b else product

    def negacyclic_convolve(
        self, a: np.ndarray, b: np.ndarray
    ) -> np.ndarray:
        """``a(x)·b(x) mod (x^n + 1)`` — :meth:`convolve` shorthand."""
        return self.convolve(a, b, negacyclic=True)


__all__ = ["Ring"]
