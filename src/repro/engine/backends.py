"""Compute backends: where an :class:`~repro.engine.Engine` runs its math.

The paper describes one machine with two faces — the *values* an
FFT/SSA pipeline produces and the *cycles* the FPGA spends producing
them.  A :class:`ComputeBackend` is that seam made explicit: the engine
routes every transform and every multiplication through its backend,
and the two stock backends answer with identical bits:

``software``
    The staged vectorized executor (:mod:`repro.ntt.staged`) and the
    functional :class:`repro.ssa.SSAMultiplier`.  Fast; no timing.

``hw-model``
    The transaction-level accelerator model
    (:class:`repro.hw.accelerator.HEAccelerator`): the same values,
    computed through the distributed multi-PE dataflow, plus
    cycle-accurate :class:`~repro.hw.accelerator.MultiplyReport` /
    :class:`~repro.hw.accelerator.DistributedFFTReport` timing.
    Accelerator instances (and therefore their ping-pong stage
    buffers) are cached per plan, so repeated workloads reuse both
    plans and buffers.

``software-mp``
    The software executor sharded over a persistent
    :class:`concurrent.futures.ProcessPoolExecutor`: the batch axis of
    ``multiply_many`` and of ``(batch, n)`` transforms is split into
    balanced contiguous shards (:func:`repro.ssa.multiplier.split_batch`),
    each worker rebuilds its engine from the pickled
    :class:`~repro.engine.config.ExecutionConfig` and warms its own
    plan cache once, and results are reassembled in submission order —
    bit-identical to ``software``.  Transform batches of ≥1 MiB move
    through :mod:`multiprocessing.shared_memory` blocks instead of
    being pickled row-shard by row-shard.

Third-party backends register through :func:`register_backend` and are
then constructible by name: ``Engine(backend="my-backend")``.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.engine.config import CACHE_OFF, ExecutionConfig
from repro.ntt.plan import TransformPlan
from repro.ntt.staged import execute_plan_batch, execute_plan_inverse_batch
from repro.ssa.encode import SSAParameters
from repro.ssa.multiplier import SSAMultiplier

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.engine.core import Engine

try:  # Python 3.8+: typing.Protocol
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - ancient interpreters
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


SOFTWARE = "software"
SOFTWARE_MP = "software-mp"
HW_MODEL = "hw-model"


@runtime_checkable
class ComputeBackend(Protocol):
    """The contract an engine backend fulfils.

    A backend is a *value producer*: given a plan and operands it must
    return bit-exact GF(p) results.  It may additionally produce timing
    reports, which the engine surfaces via ``Engine.last_report``.
    """

    name: str

    def transform(
        self,
        engine: "Engine",
        plan: TransformPlan,
        values: np.ndarray,
        inverse: bool = False,
    ) -> np.ndarray:
        """Row-wise (inverse) NTT of a ``(batch, n)`` uint64 matrix."""
        ...

    def multiply(
        self, engine: "Engine", multiplier: SSAMultiplier, a: int, b: int
    ) -> Tuple[int, Optional[object]]:
        """One exact product; returns ``(product, report-or-None)``."""
        ...

    def multiply_many(
        self,
        engine: "Engine",
        multiplier: SSAMultiplier,
        pairs: List[Tuple[int, int]],
    ) -> Tuple[List[int], Optional[object]]:
        """Batched exact products; ``(products, report-or-None)``."""
        ...


_REGISTRY: Dict[str, Callable[[], ComputeBackend]] = {}


def register_backend(
    name: str, factory: Callable[[], ComputeBackend]
) -> None:
    """Register a backend constructor under ``name``.

    Registered names are accepted by ``Engine(backend=...)``.  Names
    are unique; re-registering an existing name replaces it (useful for
    tests injecting instrumented backends).
    """
    if not name:
        raise ValueError("backend name must be non-empty")
    _REGISTRY[name] = factory


def available_backends() -> Tuple[str, ...]:
    """The registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def create_backend(name: str) -> ComputeBackend:
    """Instantiate a registered backend by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; expected one of "
            f"{available_backends()}"
        ) from None
    return factory()


class SoftwareBackend:
    """Staged vectorized execution — values only, maximum throughput."""

    name = SOFTWARE

    def transform(
        self,
        engine: "Engine",
        plan: TransformPlan,
        values: np.ndarray,
        inverse: bool = False,
    ) -> np.ndarray:
        if inverse:
            return execute_plan_inverse_batch(values, plan)
        return execute_plan_batch(values, plan)

    def multiply(
        self, engine: "Engine", multiplier: SSAMultiplier, a: int, b: int
    ) -> Tuple[int, Optional[object]]:
        return multiplier.multiply(a, b), None

    def multiply_many(
        self,
        engine: "Engine",
        multiplier: SSAMultiplier,
        pairs: List[Tuple[int, int]],
    ) -> Tuple[List[int], Optional[object]]:
        chunk = engine.config.batch_chunk
        if chunk is None or len(pairs) <= chunk:
            return multiplier.multiply_many(pairs), None
        products: List[int] = []
        for start in range(0, len(pairs), chunk):
            products.extend(
                multiplier.multiply_many(pairs[start : start + chunk])
            )
        return products, None


class SoftwareMPBackend(SoftwareBackend):
    """Batch-axis sharding over a persistent worker-process pool.

    The throughput backend for multi-core hosts: big batches of SSA
    products and big ``(batch, n)`` transforms are split into balanced
    contiguous shards (:func:`repro.ssa.multiplier.split_batch`), each
    shard runs on one worker of a lazily created
    :class:`~concurrent.futures.ProcessPoolExecutor`, and the ordered
    reassembly is bit-identical to :class:`SoftwareBackend`.

    Workers are initialized exactly once per pool with the engine's
    pickled :class:`~repro.engine.config.ExecutionConfig`
    (:func:`repro.engine.mp.initialize_worker`); their engines — and
    therefore their plan caches — persist across shards.  Single
    products, one-row transforms and batches below
    :attr:`min_shard_items` run inline on the parent's software path,
    where the inter-process copy would cost more than it buys.
    """

    name = SOFTWARE_MP
    #: Below this many batch items the work runs inline (IPC floor).
    min_shard_items = 2
    #: Operand matrices at least this large move through
    #: :mod:`multiprocessing.shared_memory` instead of being pickled
    #: row-shard by row-shard (``transform_shard_shm``): the parent
    #: publishes one input and one output block, workers attach by name
    #: and write their rows in place.  Below the threshold the pickle
    #: path is cheaper than two block creations.
    min_shm_bytes = 1 << 20

    def __init__(self, workers: Optional[int] = None):
        import threading

        self._workers_override = workers
        self._pool = None
        self._pool_key: Optional[Tuple[ExecutionConfig, int]] = None
        # Guards pool create/replace/close: the engine is reachable
        # from both the caller's thread and a scheduler's dispatcher
        # thread, and an unsynchronized double-create would orphan a
        # pool (its workers never shut down).
        self._pool_lock = threading.Lock()

    # -- pool management ---------------------------------------------------

    def workers(self, engine: "Engine") -> int:
        """Resolved worker count: override > config.workers > cpu_count."""
        if self._workers_override is not None:
            return self._workers_override
        if engine.config.workers is not None:
            return engine.config.workers
        return os.cpu_count() or 1

    def _pool_for(self, engine: "Engine"):
        """The persistent pool for ``engine``'s config (built lazily).

        Rebuilt only if the same backend instance is reused by an
        engine with a different config — workers must mirror the
        config they were initialized with.
        """
        from concurrent.futures import ProcessPoolExecutor

        from repro.engine import mp as mp_workers

        key = (engine.config, self.workers(engine))
        with self._pool_lock:
            if self._pool is not None and self._pool_key == key:
                return self._pool
            stale, self._pool = self._pool, None
            self._pool_key = None
            if stale is not None:
                stale.shutdown(wait=True)
            self._pool = ProcessPoolExecutor(
                max_workers=key[1],
                initializer=mp_workers.initialize_worker,
                initargs=(engine.config,),
            )
            self._pool_key = key
            return self._pool

    def close(self) -> None:
        """Shut the worker pool down (it restarts lazily on next use)."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
            self._pool_key = None
        if pool is not None:
            pool.shutdown(wait=True)

    def clear(self) -> None:
        """``Engine.clear_cache`` hook: drop the pool with the caches."""
        self.close()

    # -- sharded execution -------------------------------------------------

    def _shards(self, engine: "Engine", count: int) -> List[slice]:
        from repro.ssa.multiplier import split_batch

        return split_batch(count, self.workers(engine))

    def transform(
        self,
        engine: "Engine",
        plan: TransformPlan,
        values: np.ndarray,
        inverse: bool = False,
    ) -> np.ndarray:
        batch = values.shape[0]
        if self.workers(engine) <= 1 or batch < self.min_shard_items:
            return super().transform(engine, plan, values, inverse=inverse)
        values = np.ascontiguousarray(values, dtype=np.uint64)
        shards = self._shards(engine, batch)
        if values.nbytes >= self.min_shm_bytes:
            return self._transform_shm(engine, plan, values, inverse, shards)
        from repro.engine import mp as mp_workers

        pool = self._pool_for(engine)
        futures = [
            pool.submit(
                mp_workers.transform_shard,
                plan.n,
                plan.radices,
                values[rows],
                inverse,
                plan.twist,
                plan.ordering,
            )
            for rows in shards
        ]
        return np.concatenate([f.result() for f in futures], axis=0)

    def _transform_shm(
        self,
        engine: "Engine",
        plan: TransformPlan,
        values: np.ndarray,
        inverse: bool,
        shards: List[slice],
    ) -> np.ndarray:
        """Shared-memory row transfer: pickle names and bounds, not rows.

        The parent owns both blocks (created here, unlinked here);
        workers attach by name, transform their row range and write
        results straight into the output block, so a ``(batch, 64K)``
        operand matrix crosses the process boundary zero times.
        """
        from multiprocessing import shared_memory

        from repro.engine import mp as mp_workers

        pool = self._pool_for(engine)
        shm_in = shared_memory.SharedMemory(
            create=True, size=values.nbytes
        )
        try:
            shm_out = shared_memory.SharedMemory(
                create=True, size=values.nbytes
            )
            try:
                src = np.ndarray(
                    values.shape, dtype=np.uint64, buffer=shm_in.buf
                )
                np.copyto(src, values)
                futures = [
                    pool.submit(
                        mp_workers.transform_shard_shm,
                        shm_in.name,
                        shm_out.name,
                        values.shape,
                        rows.start,
                        rows.stop,
                        plan.n,
                        plan.radices,
                        inverse,
                        plan.twist,
                        plan.ordering,
                    )
                    for rows in shards
                ]
                for future in futures:
                    future.result()
                out = np.ndarray(
                    values.shape, dtype=np.uint64, buffer=shm_out.buf
                )
                result = out.copy()
            finally:
                shm_out.close()
                shm_out.unlink()
        finally:
            shm_in.close()
            shm_in.unlink()
        return result

    def multiply_many(
        self,
        engine: "Engine",
        multiplier: SSAMultiplier,
        pairs: List[Tuple[int, int]],
    ) -> Tuple[List[int], Optional[object]]:
        if self.workers(engine) <= 1 or len(pairs) < self.min_shard_items:
            return super().multiply_many(engine, multiplier, pairs)
        from repro.engine import mp as mp_workers

        pool = self._pool_for(engine)
        futures = [
            pool.submit(
                mp_workers.multiply_shard,
                multiplier.params,
                pairs[shard],
            )
            for shard in self._shards(engine, len(pairs))
        ]
        products: List[int] = []
        for future in futures:
            products.extend(future.result())
        return products, None


class HardwareModelBackend:
    """The cycle-counted accelerator model as an engine backend.

    Values are bit-identical to :class:`SoftwareBackend`; every call
    additionally produces the paper's timing reports.  One
    :class:`~repro.hw.accelerator.HEAccelerator` is built per transform
    plan and reused across calls, so its plans *and* its ping-pong
    stage buffers persist for the life of the engine.
    """

    name = HW_MODEL
    #: The shift-only FFT unit supports radices 8..64, so the smallest
    #: transform the model can execute is 8 points; Engine.multiplier
    #: floors its sizing here.
    min_transform_size = 8

    def __init__(self) -> None:
        self._accelerators: Dict[object, object] = {}

    def clear(self) -> None:
        """Drop the accelerator pool (called by ``Engine.clear_cache``).

        The pool is keyed by plan identity, so it must be emptied
        whenever the engine drops its plan cache — otherwise every
        evicted plan would stay alive through its pooled accelerator.
        """
        self._accelerators.clear()

    # -- accelerator pool -------------------------------------------------

    def accelerator(
        self,
        engine: "Engine",
        plan: Optional[TransformPlan] = None,
        params: Optional[SSAParameters] = None,
    ):
        """The pooled :class:`HEAccelerator` for ``(plan, params)``.

        ``plan`` defaults to the paper's 64K plan (built in the
        engine's cache) and ``params`` to the matching SSA sizing.  The
        PE count is the engine's configured ``pes``, shrunk to the
        largest power of two the plan's smallest stage can still be
        partitioned over.
        """
        from repro.hw.accelerator import HEAccelerator
        from repro.ssa.encode import PAPER_PARAMETERS

        if plan is None:
            if params is None:
                params = PAPER_PARAMETERS
            plan = engine.plan(params.transform_size)
        elif params is None:
            params = engine._params_for_plan(plan)
        pes = self._compatible_pes(engine.config.pes, plan)
        key = (id(plan), params, pes, engine.config.clock_ns)
        accelerator = self._accelerators.get(key)
        if accelerator is None:
            accelerator = HEAccelerator(
                pes=pes,
                plan=plan,
                params=params,
                clock_ns=engine.config.clock_ns,
            )
            # With cache="off" every plan() call yields a fresh object,
            # so an id-keyed pool would grow without bound — skip it.
            if engine.config.cache != CACHE_OFF:
                self._accelerators[key] = accelerator
        return accelerator

    @staticmethod
    def _compatible_pes(pes: int, plan: TransformPlan) -> int:
        """Largest power of two ≤ ``pes`` dividing every stage's work."""
        while pes > 1 and any(
            count % pes for _, count in plan.sub_transform_counts()
        ):
            pes //= 2
        return pes

    # -- backend contract -------------------------------------------------

    def transform(
        self,
        engine: "Engine",
        plan: TransformPlan,
        values: np.ndarray,
        inverse: bool = False,
    ) -> np.ndarray:
        accelerator = self.accelerator(
            engine, plan, engine._params_for_plan(plan)
        )
        # One batched call: the whole row batch streams through the
        # cycle model's macro-pipeline (no per-row Python loop on the
        # fast fidelity).
        out, report = accelerator.distributed_ntt_batch(
            values, inverse=inverse, fidelity=engine.config.fidelity
        )
        engine._record_report(
            report.per_row if report.rows == 1 else report
        )
        return out

    def multiply(
        self, engine: "Engine", multiplier: SSAMultiplier, a: int, b: int
    ) -> Tuple[int, Optional[object]]:
        accelerator = self.accelerator(
            engine, multiplier.plan, multiplier.params
        )
        product, report = accelerator.multiply(
            a, b, fidelity=engine.config.fidelity
        )
        return product, report

    def multiply_many(
        self,
        engine: "Engine",
        multiplier: SSAMultiplier,
        pairs: List[Tuple[int, int]],
    ) -> Tuple[List[int], Optional[object]]:
        accelerator = self.accelerator(
            engine, multiplier.plan, multiplier.params
        )
        products: List[int] = []
        reports = []
        for a, b in pairs:
            product, report = accelerator.multiply(
                a, b, fidelity=engine.config.fidelity
            )
            products.append(product)
            reports.append(report)
        return products, reports


register_backend(SOFTWARE, SoftwareBackend)
register_backend(SOFTWARE_MP, SoftwareMPBackend)
register_backend(HW_MODEL, HardwareModelBackend)

__all__ = [
    "ComputeBackend",
    "SoftwareBackend",
    "SoftwareMPBackend",
    "HardwareModelBackend",
    "register_backend",
    "available_backends",
    "create_backend",
    "SOFTWARE",
    "SOFTWARE_MP",
    "HW_MODEL",
]
