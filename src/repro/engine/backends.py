"""Compute backends: where an :class:`~repro.engine.Engine` runs its math.

The paper describes one machine with two faces — the *values* an
FFT/SSA pipeline produces and the *cycles* the FPGA spends producing
them.  A :class:`ComputeBackend` is that seam made explicit: the engine
routes every transform and every multiplication through its backend,
and the two stock backends answer with identical bits:

``software``
    The staged vectorized executor (:mod:`repro.ntt.staged`) and the
    functional :class:`repro.ssa.SSAMultiplier`.  Fast; no timing.

``hw-model``
    The transaction-level accelerator model
    (:class:`repro.hw.accelerator.HEAccelerator`): the same values,
    computed through the distributed multi-PE dataflow, plus
    cycle-accurate :class:`~repro.hw.accelerator.MultiplyReport` /
    :class:`~repro.hw.accelerator.DistributedFFTReport` timing.
    Accelerator instances (and therefore their ping-pong stage
    buffers) are cached per plan, so repeated workloads reuse both
    plans and buffers.

``software-mp``
    The software executor sharded over a persistent
    :class:`concurrent.futures.ProcessPoolExecutor`: the batch axis of
    ``multiply_many`` and of ``(batch, n)`` transforms is split into
    balanced contiguous shards (:func:`repro.ssa.multiplier.split_batch`),
    each worker rebuilds its engine from the pickled
    :class:`~repro.engine.config.ExecutionConfig` and warms its own
    plan cache once, and results are reassembled in submission order —
    bit-identical to ``software``.  Transform batches of ≥1 MiB move
    through :mod:`multiprocessing.shared_memory` blocks instead of
    being pickled row-shard by row-shard.

Third-party backends register through :func:`register_backend` and are
then constructible by name: ``Engine(backend="my-backend")``.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.engine.config import CACHE_OFF, ExecutionConfig
from repro.ntt.plan import TransformPlan
from repro.ntt.staged import execute_plan_batch, execute_plan_inverse_batch
from repro.ssa.encode import SSAParameters
from repro.ssa.multiplier import SSAMultiplier

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.engine.core import Engine

try:  # Python 3.8+: typing.Protocol
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - ancient interpreters
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


SOFTWARE = "software"
SOFTWARE_MP = "software-mp"
HW_MODEL = "hw-model"


@runtime_checkable
class ComputeBackend(Protocol):
    """The contract an engine backend fulfils.

    A backend is a *value producer*: given a plan and operands it must
    return bit-exact GF(p) results.  It may additionally produce timing
    reports, which the engine surfaces via ``Engine.last_report``.
    """

    name: str

    def transform(
        self,
        engine: "Engine",
        plan: TransformPlan,
        values: np.ndarray,
        inverse: bool = False,
    ) -> np.ndarray:
        """Row-wise (inverse) NTT of a ``(batch, n)`` uint64 matrix."""
        ...

    def multiply(
        self, engine: "Engine", multiplier: SSAMultiplier, a: int, b: int
    ) -> Tuple[int, Optional[object]]:
        """One exact product; returns ``(product, report-or-None)``."""
        ...

    def multiply_many(
        self,
        engine: "Engine",
        multiplier: SSAMultiplier,
        pairs: List[Tuple[int, int]],
    ) -> Tuple[List[int], Optional[object]]:
        """Batched exact products; ``(products, report-or-None)``."""
        ...


_REGISTRY: Dict[str, Callable[[], ComputeBackend]] = {}


def register_backend(
    name: str, factory: Callable[[], ComputeBackend]
) -> None:
    """Register a backend constructor under ``name``.

    Registered names are accepted by ``Engine(backend=...)``.  Names
    are unique; re-registering an existing name replaces it (useful for
    tests injecting instrumented backends).
    """
    if not name:
        raise ValueError("backend name must be non-empty")
    _REGISTRY[name] = factory


def available_backends() -> Tuple[str, ...]:
    """The registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def create_backend(name: str) -> ComputeBackend:
    """Instantiate a registered backend by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; expected one of "
            f"{available_backends()}"
        ) from None
    return factory()


class SoftwareBackend:
    """Staged vectorized execution — values only, maximum throughput."""

    name = SOFTWARE

    def transform(
        self,
        engine: "Engine",
        plan: TransformPlan,
        values: np.ndarray,
        inverse: bool = False,
    ) -> np.ndarray:
        if inverse:
            return execute_plan_inverse_batch(values, plan)
        return execute_plan_batch(values, plan)

    def multiply(
        self, engine: "Engine", multiplier: SSAMultiplier, a: int, b: int
    ) -> Tuple[int, Optional[object]]:
        return multiplier.multiply(a, b), None

    def multiply_many(
        self,
        engine: "Engine",
        multiplier: SSAMultiplier,
        pairs: List[Tuple[int, int]],
    ) -> Tuple[List[int], Optional[object]]:
        chunk = engine.config.batch_chunk
        if chunk is None or len(pairs) <= chunk:
            return multiplier.multiply_many(pairs), None
        products: List[int] = []
        for start in range(0, len(pairs), chunk):
            products.extend(
                multiplier.multiply_many(pairs[start : start + chunk])
            )
        return products, None


class SoftwareMPBackend(SoftwareBackend):
    """Batch-axis sharding over a *supervised* worker-process pool.

    The throughput backend for multi-core hosts: big batches of SSA
    products and big ``(batch, n)`` transforms are split into balanced
    contiguous shards (:func:`repro.ssa.multiplier.split_batch`), each
    shard runs on one worker of a lazily created
    :class:`~concurrent.futures.ProcessPoolExecutor`, and the ordered
    reassembly is bit-identical to :class:`SoftwareBackend`.

    Workers are initialized exactly once per pool with the engine's
    pickled :class:`~repro.engine.config.ExecutionConfig`
    (:func:`repro.engine.mp.initialize_worker`); their engines — and
    therefore their plan caches — persist across shards.  Single
    products, one-row transforms and batches below
    :attr:`min_shard_items` run inline on the parent's software path,
    where the inter-process copy would cost more than it buys.

    **Supervision.**  Shards are pure functions of ``(config,
    payload)``, so every recovery below is bit-identical to the clean
    run by construction:

    - a worker death mid-shard (``BrokenProcessPool``) rebuilds the
      pool — re-warming worker engines via ``initialize_worker`` and
      re-probing every worker — and replays *only the lost shards*;
    - after :attr:`~repro.engine.config.ExecutionConfig.max_respawns`
      pool rebuilds within one batch the backend stops trusting the
      pool and degrades gracefully: the remaining shards run in-process
      on the ``software`` path and the batch still succeeds;
    - a shard blocking past the ambient
      :class:`~repro.engine.resilience.Deadline` (threaded down from
      ``JobScheduler.submit(timeout=...)``) raises
      :class:`~repro.engine.resilience.JobTimeoutError` and abandons
      the hung pool (it respawns lazily on next use);
    - with ``ExecutionConfig(verify_shards=True)`` the first
      row/product of every shard is spot-checked against the
      in-process oracle and any mismatch raises
      :class:`~repro.engine.resilience.ShardVerificationError` instead
      of reassembling silently.

    Every event lands in :attr:`fault_report`
    (a cumulative :class:`~repro.engine.resilience.FaultReport`);
    :attr:`worker_pids` exposes the PIDs that answered the most recent
    health probe, so tests can assert a respawn actually happened.
    """

    name = SOFTWARE_MP
    #: Below this many batch items the work runs inline (IPC floor).
    min_shard_items = 2
    #: Operand matrices at least this large move through
    #: :mod:`multiprocessing.shared_memory` instead of being pickled
    #: row-shard by row-shard (``transform_shard_shm``): the parent
    #: publishes one input and one output block, workers attach by name
    #: and write their rows in place.  Below the threshold the pickle
    #: path is cheaper than two block creations.
    min_shm_bytes = 1 << 20
    #: Probe block times per health-check round (seconds).  Rounds
    #: escalate until every worker has answered with a distinct PID;
    #: short early rounds keep the common case cheap.
    probe_schedule = (0.0, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0)
    #: Hard ceiling on one probe answer (covers ``spawn`` cold starts).
    probe_timeout_s = 60.0

    def __init__(
        self,
        workers: Optional[int] = None,
        start_method: Optional[str] = None,
    ):
        import itertools
        import threading

        from repro.engine.resilience import FaultReport

        self._workers_override = workers
        self._start_method = start_method
        self._pool = None
        self._pool_key: Optional[Tuple[ExecutionConfig, int]] = None
        # Guards pool create/replace/close: the engine is reachable
        # from both the caller's thread and a scheduler's dispatcher
        # thread, and an unsynchronized double-create would orphan a
        # pool (its workers never shut down).
        self._pool_lock = threading.Lock()
        #: Cumulative log of crashes, respawns, timeouts, degradations
        #: and verification failures over this backend's lifetime.
        self.fault_report = FaultReport()
        self._worker_pids: Tuple[int, ...] = ()
        # Pool generation: bumped on every (re)build and baked into
        # shared-memory block names, so a respawned pool can never
        # collide with a block a dying worker still has attached.
        self._generation = 0
        self._shm_seq = itertools.count()

    # -- pool management ---------------------------------------------------

    def workers(self, engine: "Engine") -> int:
        """Resolved worker count: override > config.workers > cpu_count."""
        if self._workers_override is not None:
            return self._workers_override
        if engine.config.workers is not None:
            return engine.config.workers
        return os.cpu_count() or 1

    @property
    def worker_pids(self) -> Tuple[int, ...]:
        """PIDs that answered the most recent pool health probe."""
        return self._worker_pids

    @property
    def pool_generation(self) -> int:
        """How many pools this backend has built (respawns included)."""
        return self._generation

    def _pool_for(self, engine: "Engine"):
        """The persistent pool for ``engine``'s config (built lazily).

        Rebuilt only if the same backend instance is reused by an
        engine with a different config — workers must mirror the
        config they were initialized with.  A freshly built pool is
        only returned once every worker answered the liveness probe
        (:meth:`_health_check`).
        """
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        from repro.engine import mp as mp_workers

        key = (engine.config, self.workers(engine))
        with self._pool_lock:
            if self._pool is not None and self._pool_key == key:
                return self._pool
            stale, self._pool = self._pool, None
            self._pool_key = None
            if stale is not None:
                stale.shutdown(wait=True)
            mp_context = None
            if self._start_method is not None:
                mp_context = multiprocessing.get_context(
                    self._start_method
                )
            pool = ProcessPoolExecutor(
                max_workers=key[1],
                mp_context=mp_context,
                initializer=mp_workers.initialize_worker,
                initargs=(engine.config,),
            )
            self._generation += 1
            try:
                self._health_check(pool, key[1])
            except BaseException:
                pool.shutdown(wait=False, cancel_futures=True)
                raise
            self._pool = pool
            self._pool_key = key
            return self._pool

    def _health_check(self, pool, workers: int) -> None:
        """Probe until every worker answers (distinct PIDs) or give up.

        Each round submits one :func:`repro.engine.mp.probe` per
        worker; rounds escalate the probe's block time so busy/slow
        workers are forced to pick up their own probe rather than one
        fast worker answering them all.  Raises
        :class:`~repro.engine.resilience.WorkerCrashError` when a
        worker dies probing or never answers.
        """
        from concurrent.futures import TimeoutError as FuturesTimeout
        from concurrent.futures.process import BrokenProcessPool

        from repro.engine import mp as mp_workers
        from repro.engine.resilience import WorkerCrashError

        pids: set = set()
        for block_s in self.probe_schedule:
            futures = [
                pool.submit(mp_workers.probe, block_s)
                for _ in range(workers)
            ]
            try:
                for future in futures:
                    pids.add(future.result(timeout=self.probe_timeout_s))
            except (BrokenProcessPool, FuturesTimeout, OSError) as error:
                raise WorkerCrashError(
                    f"worker died answering the liveness probe: {error!r}"
                ) from error
            if len(pids) >= workers:
                self._worker_pids = tuple(sorted(pids))
                return
        raise WorkerCrashError(
            f"only {len(pids)} of {workers} workers answered the "
            f"liveness probe"
        )

    def _discard_pool(self) -> None:
        """Abandon the current pool without waiting (crash/timeout path).

        ``shutdown(wait=False, cancel_futures=True)`` returns at once
        even when a worker is hung or dead; the next
        :meth:`_pool_for` call builds a fresh generation.
        """
        with self._pool_lock:
            stale, self._pool = self._pool, None
            self._pool_key = None
        if stale is not None:
            stale.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        """Shut the worker pool down (it restarts lazily on next use)."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
            self._pool_key = None
        if pool is not None:
            pool.shutdown(wait=True)

    def clear(self) -> None:
        """``Engine.clear_cache`` hook: drop the pool with the caches."""
        self.close()

    # -- sharded execution -------------------------------------------------

    def _shards(self, engine: "Engine", count: int) -> List[slice]:
        from repro.ssa.multiplier import split_batch

        return split_batch(count, self.workers(engine))

    def _run_supervised(
        self,
        engine: "Engine",
        count: int,
        submit_one,
        inline_one,
        describe: str,
    ) -> Dict[int, object]:
        """Run ``count`` shards through the pool under supervision.

        ``submit_one(pool, index)`` submits shard ``index`` and returns
        its future; ``inline_one(index)`` computes the same shard
        in-process (the degradation path).  Returns ``{index: result}``
        for every shard, replaying crashed shards on a respawned pool
        up to ``engine.config.max_respawns`` times, then degrading
        in-process.  Raises
        :class:`~repro.engine.resilience.JobTimeoutError` when the
        ambient deadline expires mid-wait (the hung pool is abandoned,
        not joined).
        """
        from concurrent.futures import TimeoutError as FuturesTimeout
        from concurrent.futures.process import BrokenProcessPool

        from repro.engine.resilience import (
            JobTimeoutError,
            WorkerCrashError,
            current_deadline,
        )

        deadline = current_deadline()
        pending = list(range(count))
        results: Dict[int, object] = {}
        respawns = 0
        while pending:
            if respawns > engine.config.max_respawns:
                self.fault_report.record(
                    "degraded",
                    f"{describe}: max_respawns="
                    f"{engine.config.max_respawns} exhausted; running "
                    f"{len(pending)} shard(s) in-process on the "
                    f"software path",
                    shards=tuple(pending),
                )
                for index in pending:
                    results[index] = inline_one(index)
                return results
            try:
                pool = self._pool_for(engine)
                futures = {i: submit_one(pool, i) for i in pending}
            except (
                BrokenProcessPool,
                WorkerCrashError,
                OSError,
            ) as error:
                respawns += 1
                self.fault_report.record(
                    "respawn",
                    f"{describe}: pool unusable at submit "
                    f"({error!r}); rebuild {respawns}",
                    shards=tuple(pending),
                )
                self._discard_pool()
                continue
            failed: List[int] = []
            crash: Optional[BaseException] = None
            for index, future in futures.items():
                timeout = None
                if deadline is not None:
                    timeout = max(deadline.remaining(), 0.0)
                try:
                    results[index] = future.result(timeout=timeout)
                except FuturesTimeout:
                    self.fault_report.record(
                        "timeout",
                        f"{describe}: shard {index} missed its "
                        f"deadline; abandoning the pool",
                        shards=(index,),
                    )
                    self._discard_pool()
                    raise JobTimeoutError(
                        f"{describe}: shard {index} exceeded its "
                        f"deadline (hung workers abandoned; the pool "
                        f"respawns lazily)"
                    ) from None
                except (
                    BrokenProcessPool,
                    BrokenPipeError,
                    EOFError,
                ) as error:
                    crash = error
                    failed.append(index)
            if failed:
                respawns += 1
                self.fault_report.record(
                    "worker-crash",
                    f"{describe}: worker died mid-shard ({crash!r})",
                    shards=tuple(failed),
                )
                self.fault_report.record(
                    "respawn",
                    f"{describe}: rebuild {respawns}, replaying "
                    f"{len(failed)} shard(s)",
                    shards=tuple(failed),
                )
                self._discard_pool()
            pending = failed
        return results

    def transform(
        self,
        engine: "Engine",
        plan: TransformPlan,
        values: np.ndarray,
        inverse: bool = False,
    ) -> np.ndarray:
        batch = values.shape[0]
        if self.workers(engine) <= 1 or batch < self.min_shard_items:
            return super().transform(engine, plan, values, inverse=inverse)
        values = np.ascontiguousarray(values, dtype=np.uint64)
        shards = self._shards(engine, batch)
        if values.nbytes >= self.min_shm_bytes:
            return self._transform_shm(engine, plan, values, inverse, shards)
        from repro.engine import faultinject
        from repro.engine import mp as mp_workers

        def submit_one(pool, index: int):
            return pool.submit(
                mp_workers.transform_shard,
                plan.n,
                plan.radices,
                values[shards[index]],
                inverse,
                plan.twist,
                plan.ordering,
                faultinject.directive_for_shard(index),
            )

        def inline_one(index: int):
            return SoftwareBackend.transform(
                self, engine, plan, values[shards[index]], inverse=inverse
            )

        results = self._run_supervised(
            engine, len(shards), submit_one, inline_one, "transform"
        )
        pieces = []
        for index in range(len(shards)):
            rows_out = results[index]
            if faultinject.should_corrupt(index):
                rows_out = faultinject.corrupt_result(rows_out)
            pieces.append(rows_out)
        result = np.concatenate(pieces, axis=0)
        if engine.config.verify_shards:
            self._verify_transform_shards(
                engine, plan, values, inverse, shards, result
            )
        return result

    def _create_block(self, nbytes: int):
        """A parent-owned shared-memory block with a generation-tagged
        name (``repro-mp-<pid>-g<generation>-<seq>``).

        Deterministic names make leak checks trivial (anything matching
        ``repro-mp-*`` in ``/dev/shm`` after a run is a bug) and the
        generation tag guarantees a respawned pool's fresh blocks never
        reuse a name some dying worker of a previous generation still
        has attached.
        """
        from multiprocessing import shared_memory

        while True:
            name = (
                f"repro-mp-{os.getpid()}-g{self._generation}"
                f"-{next(self._shm_seq)}"
            )
            try:
                return shared_memory.SharedMemory(
                    name=name, create=True, size=nbytes
                )
            except FileExistsError:  # pragma: no cover - stale leftover
                continue

    def _transform_shm(
        self,
        engine: "Engine",
        plan: TransformPlan,
        values: np.ndarray,
        inverse: bool,
        shards: List[slice],
    ) -> np.ndarray:
        """Shared-memory row transfer: pickle names and bounds, not rows.

        The parent owns both blocks (created here, unlinked in the
        ``finally`` below — no exception, injected kill or timeout can
        strand a ``/dev/shm`` block); workers attach by name, transform
        their row range and write results straight into the output
        block, so a ``(batch, 64K)`` operand matrix crosses the process
        boundary zero times.  The blocks outlive any pool respawn
        inside this call, so replayed shards simply overwrite their own
        rows.
        """
        from repro.engine import faultinject
        from repro.engine import mp as mp_workers

        shm_in = self._create_block(values.nbytes)
        try:
            shm_out = self._create_block(values.nbytes)
            try:
                src = np.ndarray(
                    values.shape, dtype=np.uint64, buffer=shm_in.buf
                )
                np.copyto(src, values)
                out = np.ndarray(
                    values.shape, dtype=np.uint64, buffer=shm_out.buf
                )

                def submit_one(pool, index: int):
                    rows = shards[index]
                    return pool.submit(
                        mp_workers.transform_shard_shm,
                        shm_in.name,
                        shm_out.name,
                        values.shape,
                        rows.start,
                        rows.stop,
                        plan.n,
                        plan.radices,
                        inverse,
                        plan.twist,
                        plan.ordering,
                        faultinject.directive_for_shard(index),
                    )

                def inline_one(index: int):
                    rows = shards[index]
                    out[rows] = SoftwareBackend.transform(
                        self, engine, plan, values[rows], inverse=inverse
                    )
                    return rows.start, rows.stop

                self._run_supervised(
                    engine,
                    len(shards),
                    submit_one,
                    inline_one,
                    "transform-shm",
                )
                for index, rows in enumerate(shards):
                    if faultinject.should_corrupt(index):
                        out[rows.start, 0] ^= np.uint64(1)
                if engine.config.verify_shards:
                    self._verify_transform_shards(
                        engine, plan, values, inverse, shards, out
                    )
                result = out.copy()
            finally:
                shm_out.close()
                shm_out.unlink()
        finally:
            shm_in.close()
            shm_in.unlink()
        return result

    def _verify_transform_shards(
        self,
        engine: "Engine",
        plan: TransformPlan,
        values: np.ndarray,
        inverse: bool,
        shards: List[slice],
        result: np.ndarray,
    ) -> None:
        """Spot-check the first row of every shard against the oracle."""
        from repro.engine.resilience import ShardVerificationError

        for index, rows in enumerate(shards):
            first = rows.start
            oracle = SoftwareBackend.transform(
                self,
                engine,
                plan,
                values[first : first + 1],
                inverse=inverse,
            )
            if not np.array_equal(result[first : first + 1], oracle):
                self.fault_report.record(
                    "shard-corruption",
                    f"transform shard {index} (row {first}) failed its "
                    f"in-process oracle spot-check",
                    shards=(index,),
                )
                raise ShardVerificationError(
                    f"transform shard {index} (row {first}) does not "
                    f"match the in-process oracle — corrupted shard "
                    f"result detected before reassembly was trusted"
                )

    def multiply_many(
        self,
        engine: "Engine",
        multiplier: SSAMultiplier,
        pairs: List[Tuple[int, int]],
    ) -> Tuple[List[int], Optional[object]]:
        if self.workers(engine) <= 1 or len(pairs) < self.min_shard_items:
            return super().multiply_many(engine, multiplier, pairs)
        from repro.engine import faultinject
        from repro.engine import mp as mp_workers

        shards = self._shards(engine, len(pairs))

        def submit_one(pool, index: int):
            return pool.submit(
                mp_workers.multiply_shard,
                multiplier.params,
                pairs[shards[index]],
                faultinject.directive_for_shard(index),
            )

        def inline_one(index: int):
            products, _ = SoftwareBackend.multiply_many(
                self, engine, multiplier, pairs[shards[index]]
            )
            return products

        results = self._run_supervised(
            engine, len(shards), submit_one, inline_one, "multiply_many"
        )
        products: List[int] = []
        for index in range(len(shards)):
            shard_products = results[index]
            if faultinject.should_corrupt(index):
                shard_products = faultinject.corrupt_result(shard_products)
            products.extend(shard_products)
        if engine.config.verify_shards:
            self._verify_multiply_shards(
                multiplier, pairs, shards, products
            )
        return products, None

    def _verify_multiply_shards(
        self,
        multiplier: SSAMultiplier,
        pairs: List[Tuple[int, int]],
        shards: List[slice],
        products: List[int],
    ) -> None:
        """Spot-check the first product of every shard in-process."""
        from repro.engine.resilience import ShardVerificationError

        for index, shard in enumerate(shards):
            a, b = pairs[shard.start]
            if products[shard.start] != multiplier.multiply(a, b):
                self.fault_report.record(
                    "shard-corruption",
                    f"multiply shard {index} (pair {shard.start}) "
                    f"failed its in-process oracle spot-check",
                    shards=(index,),
                )
                raise ShardVerificationError(
                    f"multiply shard {index} (pair {shard.start}) does "
                    f"not match the in-process oracle — corrupted shard "
                    f"result detected before reassembly was trusted"
                )


class HardwareModelBackend:
    """The cycle-counted accelerator model as an engine backend.

    Values are bit-identical to :class:`SoftwareBackend`; every call
    additionally produces the paper's timing reports.  One
    :class:`~repro.hw.accelerator.HEAccelerator` is built per transform
    plan and reused across calls, so its plans *and* its ping-pong
    stage buffers persist for the life of the engine.
    """

    name = HW_MODEL
    #: The shift-only FFT unit supports radices 8..64, so the smallest
    #: transform the model can execute is 8 points; Engine.multiplier
    #: floors its sizing here.
    min_transform_size = 8

    def __init__(self) -> None:
        self._accelerators: Dict[object, object] = {}

    def clear(self) -> None:
        """Drop the accelerator pool (called by ``Engine.clear_cache``).

        The pool is keyed by plan identity, so it must be emptied
        whenever the engine drops its plan cache — otherwise every
        evicted plan would stay alive through its pooled accelerator.
        """
        self._accelerators.clear()

    # -- accelerator pool -------------------------------------------------

    def accelerator(
        self,
        engine: "Engine",
        plan: Optional[TransformPlan] = None,
        params: Optional[SSAParameters] = None,
    ):
        """The pooled :class:`HEAccelerator` for ``(plan, params)``.

        ``plan`` defaults to the paper's 64K plan (built in the
        engine's cache) and ``params`` to the matching SSA sizing.  The
        architecture is the engine's resolved
        :class:`~repro.arch.spec.ArchSpec`, with the PE count shrunk to
        the largest power of two the plan's smallest stage can still be
        partitioned over.
        """
        from repro.hw.accelerator import HEAccelerator
        from repro.ssa.encode import PAPER_PARAMETERS

        if plan is None:
            if params is None:
                params = PAPER_PARAMETERS
            plan = engine.plan(params.transform_size)
        elif params is None:
            params = engine._params_for_plan(plan)
        arch = engine.config.resolved_arch()
        pes = self._compatible_pes(arch.pes, plan)
        if pes != arch.pes:
            arch = arch.with_overrides(
                pes=pes, name=f"{arch.name}-shrunk-p{pes}"
            )
        key = (id(plan), params, arch)
        accelerator = self._accelerators.get(key)
        if accelerator is None:
            accelerator = HEAccelerator(
                plan=plan,
                params=params,
                arch=arch,
            )
            # With cache="off" every plan() call yields a fresh object,
            # so an id-keyed pool would grow without bound — skip it.
            if engine.config.cache != CACHE_OFF:
                self._accelerators[key] = accelerator
        return accelerator

    @staticmethod
    def _compatible_pes(pes: int, plan: TransformPlan) -> int:
        """Largest power of two ≤ ``pes`` dividing every stage's work."""
        while pes > 1 and any(
            count % pes for _, count in plan.sub_transform_counts()
        ):
            pes //= 2
        return pes

    # -- backend contract -------------------------------------------------

    def transform(
        self,
        engine: "Engine",
        plan: TransformPlan,
        values: np.ndarray,
        inverse: bool = False,
    ) -> np.ndarray:
        accelerator = self.accelerator(
            engine, plan, engine._params_for_plan(plan)
        )
        # One batched call: the whole row batch streams through the
        # cycle model's macro-pipeline (no per-row Python loop on the
        # fast fidelity).
        out, report = accelerator.distributed_ntt_batch(
            values, inverse=inverse, fidelity=engine.config.fidelity
        )
        engine._record_report(
            report.per_row if report.rows == 1 else report
        )
        return out

    def multiply(
        self, engine: "Engine", multiplier: SSAMultiplier, a: int, b: int
    ) -> Tuple[int, Optional[object]]:
        accelerator = self.accelerator(
            engine, multiplier.plan, multiplier.params
        )
        product, report = accelerator.multiply(
            a, b, fidelity=engine.config.fidelity
        )
        return product, report

    def multiply_many(
        self,
        engine: "Engine",
        multiplier: SSAMultiplier,
        pairs: List[Tuple[int, int]],
    ) -> Tuple[List[int], Optional[object]]:
        accelerator = self.accelerator(
            engine, multiplier.plan, multiplier.params
        )
        products: List[int] = []
        reports = []
        for a, b in pairs:
            product, report = accelerator.multiply(
                a, b, fidelity=engine.config.fidelity
            )
            products.append(product)
            reports.append(report)
        return products, reports


register_backend(SOFTWARE, SoftwareBackend)
register_backend(SOFTWARE_MP, SoftwareMPBackend)
register_backend(HW_MODEL, HardwareModelBackend)

__all__ = [
    "ComputeBackend",
    "SoftwareBackend",
    "SoftwareMPBackend",
    "HardwareModelBackend",
    "register_backend",
    "available_backends",
    "create_backend",
    "SOFTWARE",
    "SOFTWARE_MP",
    "HW_MODEL",
]
