"""Worker-process side of the ``software-mp`` compute backend.

The parent process never ships engines, plans or multipliers across
the pipe — only an :class:`~repro.engine.config.ExecutionConfig` (at
pool construction) and per-shard payloads (operand pairs or coefficient
rows).  Each worker rebuilds its own :class:`~repro.engine.Engine` from
the pickled config in :func:`initialize_worker` and keeps it for the
life of the pool, so its :class:`~repro.ntt.plan.PlanCache` warms once
— the first shard of a given shape pays the plan build, every later
shard hits the cache.

Everything in this module must stay importable at top level (picklable
by reference) for both the ``fork`` and ``spawn`` start methods.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.config import ExecutionConfig

#: The per-process engine, built once by :func:`initialize_worker`.
_WORKER_ENGINE = None


def initialize_worker(config: ExecutionConfig) -> None:
    """Pool initializer: rebuild the engine from the pickled config.

    The worker always runs the plain ``software`` backend — sharding
    recursion (a worker spawning its own pool) is structurally
    impossible.
    """
    global _WORKER_ENGINE
    from repro.engine.core import Engine

    _WORKER_ENGINE = Engine(config=config, backend="software")


def _engine():
    """The worker's engine (tolerates pools built without initializer)."""
    global _WORKER_ENGINE
    if _WORKER_ENGINE is None:  # pragma: no cover - defensive
        initialize_worker(ExecutionConfig())
    return _WORKER_ENGINE


def multiply_shard(params, pairs: Sequence[Tuple[int, int]]) -> List[int]:
    """One contiguous shard of a ``multiply_many`` batch.

    ``params`` is the :class:`~repro.ssa.encode.SSAParameters` the
    *parent* sized for the full batch, so every shard uses the same
    transform length regardless of which operands it drew.  The shard
    runs through the worker engine's ``software`` backend, so the
    config's ``batch_chunk`` (the peak-working-set bound on one SSA
    pass) is honored by the same code path the parent uses.
    """
    engine = _engine()
    products, _ = engine.backend.multiply_many(
        engine, engine.multiplier(params=params), list(pairs)
    )
    return products


def transform_shard(
    n: int,
    radices: Optional[Tuple[int, ...]],
    rows: np.ndarray,
    inverse: bool,
    twist: str = "",
) -> np.ndarray:
    """One contiguous row-shard of a ``(batch, n)`` transform.

    ``twist`` travels with the shard so a fused negacyclic parent plan
    is rebuilt as the *same* fused plan in the worker — the constants
    are derived deterministically, so shard results stay bit-identical
    to the parent's in-process path.
    """
    from repro.ntt.staged import (
        execute_plan_batch,
        execute_plan_inverse_batch,
    )

    plan = _engine().plan(n, radices, twist=twist)
    if inverse:
        return execute_plan_inverse_batch(rows, plan)
    return execute_plan_batch(rows, plan)


def probe() -> int:
    """Cheap liveness probe (returns the worker's PID)."""
    import os

    return os.getpid()


__all__ = [
    "initialize_worker",
    "multiply_shard",
    "transform_shard",
    "probe",
]
