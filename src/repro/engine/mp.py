"""Worker-process side of the ``software-mp`` compute backend.

The parent process never ships engines, plans or multipliers across
the pipe — only an :class:`~repro.engine.config.ExecutionConfig` (at
pool construction) and per-shard payloads (operand pairs or coefficient
rows).  Each worker rebuilds its own :class:`~repro.engine.Engine` from
the pickled config in :func:`initialize_worker` and keeps it for the
life of the pool, so its :class:`~repro.ntt.plan.PlanCache` warms once
— the first shard of a given shape pays the plan build, every later
shard hits the cache.

Large transform batches skip the pipe entirely: the parent places the
operand matrix in a :mod:`multiprocessing.shared_memory` block, workers
attach by name (:func:`transform_shard_shm`), transform their row range
in place and write results into a second parent-owned block — only
block names and row bounds are pickled, never ``(batch, 64K)`` rows.

Everything in this module must stay importable at top level (picklable
by reference) for both the ``fork`` and ``spawn`` start methods.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.config import ExecutionConfig

#: The per-process engine, built once by :func:`initialize_worker`.
_WORKER_ENGINE = None


def initialize_worker(config: ExecutionConfig) -> None:
    """Pool initializer: rebuild the engine from the pickled config.

    The worker always runs the plain ``software`` backend — sharding
    recursion (a worker spawning its own pool) is structurally
    impossible.
    """
    global _WORKER_ENGINE
    from repro.engine.core import Engine

    _WORKER_ENGINE = Engine(config=config, backend="software")


def _engine():
    """The worker's engine (tolerates pools built without initializer)."""
    global _WORKER_ENGINE
    if _WORKER_ENGINE is None:  # pragma: no cover - defensive
        initialize_worker(ExecutionConfig())
    return _WORKER_ENGINE


def apply_inject(inject: str) -> None:
    """Execute a fault-injection directive inside the worker.

    ``""`` is the hot path (no fault armed).  ``"kill"`` SIGKILLs this
    worker before it computes — the parent sees a broken pool exactly
    as it would for an OOM kill.  ``"delay:<s>"`` sleeps, modelling a
    hung shard.  Directives arrive in the task payload (never via
    shared state), so they behave identically under ``fork`` and
    ``spawn`` and cannot leak into replayed shards.
    """
    if not inject:
        return
    if inject == "kill":
        import signal

        os.kill(os.getpid(), signal.SIGKILL)
    elif inject.startswith("delay:"):
        import time

        time.sleep(float(inject.split(":", 1)[1]))
    else:  # pragma: no cover - parent validates specs before shipping
        raise ValueError(f"unknown inject directive {inject!r}")


def multiply_shard(
    params, pairs: Sequence[Tuple[int, int]], inject: str = ""
) -> List[int]:
    """One contiguous shard of a ``multiply_many`` batch.

    ``params`` is the :class:`~repro.ssa.encode.SSAParameters` the
    *parent* sized for the full batch, so every shard uses the same
    transform length regardless of which operands it drew.  The shard
    runs through the worker engine's ``software`` backend, so the
    config's ``batch_chunk`` (the peak-working-set bound on one SSA
    pass) is honored by the same code path the parent uses.
    """
    apply_inject(inject)
    engine = _engine()
    products, _ = engine.backend.multiply_many(
        engine, engine.multiplier(params=params), list(pairs)
    )
    return products


def _shard_plan(
    n: int,
    radices: Optional[Tuple[int, ...]],
    twist: str,
    ordering: str,
):
    from repro.ntt.plan import ORDER_NATURAL

    return _engine().plan(
        n, radices, twist=twist, ordering=ordering or ORDER_NATURAL
    )


def transform_shard(
    n: int,
    radices: Optional[Tuple[int, ...]],
    rows: np.ndarray,
    inverse: bool,
    twist: str = "",
    ordering: str = "",
    inject: str = "",
) -> np.ndarray:
    """One contiguous row-shard of a ``(batch, n)`` transform.

    ``twist`` and ``ordering`` travel with the shard so a fused and/or
    decimated parent plan is rebuilt as the *same* flavor of plan in
    the worker — the constants are derived deterministically, so shard
    results stay bit-identical to the parent's in-process path
    (decimated shards emit decimated spectra, exactly like the parent
    would).
    """
    from repro.ntt.staged import (
        execute_plan_batch,
        execute_plan_inverse_batch,
    )

    apply_inject(inject)
    plan = _shard_plan(n, radices, twist, ordering)
    if inverse:
        return execute_plan_inverse_batch(rows, plan)
    return execute_plan_batch(rows, plan)


def _attach_shm(name: str):
    """Attach to a parent-owned shared-memory block, untracked.

    The parent creates and unlinks every block, so a worker must not
    register its attach with the resource tracker: on Python < 3.13
    every attach registers unconditionally (bpo-39959), and N workers
    attaching the same block would race the shared tracker with N
    unregisters for one entry.  Pool workers run tasks serially on
    their main thread, so briefly stubbing the register hook is safe.
    """
    from multiprocessing import resource_tracker, shared_memory

    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register


def transform_shard_shm(
    in_name: str,
    out_name: str,
    shape: Tuple[int, int],
    start: int,
    stop: int,
    n: int,
    radices: Optional[Tuple[int, ...]],
    inverse: bool,
    twist: str = "",
    ordering: str = "",
    inject: str = "",
) -> Tuple[int, int]:
    """Shared-memory variant of :func:`transform_shard`.

    The parent placed the full ``shape`` operand matrix in the
    ``in_name`` block and preallocated an equal-shape ``out_name``
    block; this worker transforms rows ``[start, stop)`` and writes
    them straight into the output block.  Only the two block names and
    the row range cross the pipe — the ``(batch, n)`` payload itself is
    never pickled.
    """
    from repro.ntt.staged import (
        execute_plan_batch,
        execute_plan_inverse_batch,
    )

    apply_inject(inject)
    plan = _shard_plan(n, radices, twist, ordering)
    shm_in = _attach_shm(in_name)
    shm_out = _attach_shm(out_name)
    try:
        values = np.ndarray(shape, dtype=np.uint64, buffer=shm_in.buf)
        out = np.ndarray(shape, dtype=np.uint64, buffer=shm_out.buf)
        rows = values[start:stop]
        if inverse:
            out[start:stop] = execute_plan_inverse_batch(rows, plan)
        else:
            out[start:stop] = execute_plan_batch(rows, plan)
    finally:
        shm_in.close()
        shm_out.close()
    return start, stop


def probe(block_s: float = 0.0) -> int:
    """Liveness probe: returns this worker's PID.

    ``block_s`` briefly occupies the worker before answering, so a
    health check submitting one probe per worker can force *distinct*
    workers to answer (an idle worker picks up the next queued probe
    instead of the one already blocking) — that is how
    :class:`~repro.engine.backends.SoftwareMPBackend` declares a pool
    healthy only once every worker has answered.
    """
    if block_s > 0:
        import time

        time.sleep(block_s)
    return os.getpid()


__all__ = [
    "initialize_worker",
    "apply_inject",
    "multiply_shard",
    "transform_shard",
    "transform_shard_shm",
    "probe",
]
