"""The :class:`Engine` façade — one configurable front door to the stack.

The paper describes a single coherent machine: one FFT-64 datapath
serving SSA big-integer multiplication for homomorphic-encryption
workloads.  :class:`Engine` is that machine's software face:

>>> from repro.engine import Engine, ExecutionConfig
>>> eng = Engine(config=ExecutionConfig(kernel="limb-matmul"))
>>> eng.multiply(3, 5)                      # SSA big-int product
15
>>> ring = eng.ring(64)                     # cyclic/negacyclic algebra
>>> spectrum = ring.forward(vector)         # (n,) or (batch, n) alike
>>> hw = Engine(backend="hw-model")         # same values + cycle model
>>> product = hw.multiply(a, b)
>>> hw.last_report.render()                 # the Section V phase timing

An engine owns:

- a **per-engine plan cache** (:class:`repro.ntt.plan.PlanCache`) —
  plans, twiddles and limb tables built once per engine rather than
  leaked into process-global state;
- a pool of :class:`~repro.ssa.SSAMultiplier` instances keyed by
  operand sizing, all pinned to the engine's kernel and plan cache;
- a :class:`~repro.engine.backends.ComputeBackend` that actually runs
  transforms and multiplications — ``"software"`` for throughput,
  ``"hw-model"`` for the cycle-counted accelerator model, or any
  backend registered via
  :func:`repro.engine.backends.register_backend`.
"""

from __future__ import annotations

import random
import threading
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.engine.backends import (
    ComputeBackend,
    HardwareModelBackend,
    create_backend,
)
from repro.engine.config import (
    CACHE_OFF,
    CACHE_SHARED,
    ExecutionConfig,
)
from repro.engine.ring import Ring
from repro.ntt.plan import (
    DEFAULT_PLAN_CACHE,
    ORDER_DECIMATED,
    ORDER_NATURAL,
    PlanCache,
    PlanCacheStats,
    TransformPlan,
)
from repro.ssa.encode import SSAParameters, params_for_bits
from repro.ssa.multiplier import SSAMultiplier


class Engine:
    """One configurable entry point to the field→NTT→SSA→FHE→hw stack.

    Parameters
    ----------
    config:
        An :class:`~repro.engine.config.ExecutionConfig`; defaults to
        ``ExecutionConfig.default()`` (which consults the
        ``REPRO_NTT_KERNEL`` environment variable exactly once, at
        construction).
    backend:
        A registered backend name (``"software"``, ``"hw-model"``) or a
        ready :class:`~repro.engine.backends.ComputeBackend` instance.
    """

    def __init__(
        self,
        config: Optional[ExecutionConfig] = None,
        backend: Union[str, ComputeBackend] = "software",
    ):
        self.config = config if config is not None else ExecutionConfig()
        if isinstance(backend, str):
            self.backend: ComputeBackend = create_backend(backend)
        else:
            self.backend = backend
        if self.config.cache == CACHE_SHARED:
            self._plan_cache: Optional[PlanCache] = DEFAULT_PLAN_CACHE
        elif self.config.cache == CACHE_OFF:
            self._plan_cache = None
        else:
            self._plan_cache = PlanCache()
        self._rings: Dict[Tuple[int, Optional[Tuple[int, ...]]], Ring] = {}
        self._multipliers: Dict[SSAParameters, SSAMultiplier] = {}
        self._scheduler = None  # lazily built by scheduler()
        # Per-thread report slots: the jobs dispatcher must never
        # clobber (or inherit) the caller thread's report.  This keeps
        # *reports* from cross-talking; it does NOT make concurrent
        # compute on one engine safe — see last_report's docstring.
        self._thread_reports = threading.local()

    @property
    def last_report(self) -> Optional[object]:
        """Timing artifact of this thread's most recent backend call.

        ``None`` for backends that do not produce one (``software``).
        The slot is per-thread so a completed job's report
        (:attr:`repro.engine.jobs.JobHandle.report`) is exactly the
        job's own, never the caller's.  Note this isolation covers
        reports only: running compute on an engine from two threads at
        once (e.g. synchronous calls while jobs are in flight) is not
        supported — caches and the hw-model's stage buffers are
        unsynchronized.  Route concurrent work through the job queue.
        """
        return getattr(self._thread_reports, "value", None)

    @last_report.setter
    def last_report(self, report: Optional[object]) -> None:
        self._thread_reports.value = report

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Engine(backend={self.backend.name!r}, "
            f"kernel={self.config.kernel!r}, cache={self.config.cache!r})"
        )

    # -- plans and rings ---------------------------------------------------

    def plan(
        self,
        n: int,
        radices: Optional[Sequence[int]] = None,
        omega: Optional[int] = None,
        kernel: Optional[str] = None,
        twist: str = "",
        ordering: str = ORDER_NATURAL,
    ) -> TransformPlan:
        """An ``n``-point plan from the engine's cache.

        ``kernel`` defaults to the engine's configured kernel (never to
        the environment — that was resolved at config construction).
        ``twist=TWIST_NEGACYCLIC`` yields the fused negacyclic variant,
        ``ordering=ORDER_DECIMATED`` the permutation-free DIF/DIT pair
        (see :meth:`repro.ntt.plan.PlanCache.plan_for_size`).
        """
        kernel = kernel if kernel is not None else self.config.kernel
        cache = self._plan_cache
        if cache is None:  # cache="off": build fresh, keep nothing
            cache = PlanCache()
        return cache.plan_for_size(
            n, radices, omega, kernel, twist, ordering
        )

    def ring(
        self, n: int, radices: Optional[Sequence[int]] = None
    ) -> Ring:
        """The :class:`~repro.engine.ring.Ring` of transform length ``n``.

        Rings are cached per ``(n, radices)``; every transform they run
        dispatches through the engine's backend.
        """
        key = (n, tuple(radices) if radices is not None else None)
        ring = self._rings.get(key)
        if ring is None:
            ring = Ring(self, self.plan(n, radices))
            self._rings[key] = ring
        return ring

    # -- SSA multiplication ------------------------------------------------

    def multiplier(
        self,
        bits: Optional[int] = None,
        params: Optional[SSAParameters] = None,
    ) -> SSAMultiplier:
        """A pooled :class:`SSAMultiplier` for the given sizing.

        Exactly one of ``bits`` (operand bit length, rounded up to the
        next power-of-two coefficient count) or ``params`` (explicit
        :class:`~repro.ssa.SSAParameters`) must be given.  The
        multiplier's plan comes from the engine's cache and kernel.
        """
        if (bits is None) == (params is None):
            raise ValueError("give exactly one of bits= or params=")
        if params is None:
            assert bits is not None
            # Backends may require a minimum transform length (the
            # hw-model's shift-only FFT unit starts at radix 8).
            params = params_for_bits(
                bits,
                self.config.coefficient_bits,
                min_coefficients=getattr(
                    self.backend, "min_transform_size", 2
                )
                // 2,
            )
        multiplier = self._multipliers.get(params)
        if multiplier is None:
            multiplier = SSAMultiplier(
                params=params,
                kernel=self.config.kernel,
                plan=self.plan(params.transform_size),
            )
            self._multipliers[params] = multiplier
        return multiplier

    def multiply(
        self,
        a: Union[int, Sequence[int]],
        b: Union[int, Sequence[int]],
    ) -> Union[int, List[int]]:
        """Exact SSA product(s) through the engine's backend.

        ``multiply(int, int)`` returns one product; two equal-length
        sequences return the elementwise products as a list (one
        batched SSA pass on the software backend, chunked per
        ``config.batch_chunk``).  Any timing artifact the backend
        produced is available as :attr:`last_report` afterwards.
        """
        if isinstance(a, (int, np.integer)) != isinstance(
            b, (int, np.integer)
        ):
            raise TypeError("multiply takes two ints or two sequences")
        if isinstance(a, (int, np.integer)):
            product, _ = self.multiply_with_report(int(a), int(b))
            return product
        left = [int(x) for x in a]
        right = [int(y) for y in b]
        if len(left) != len(right):
            raise ValueError("operand sequences must have equal length")
        pairs = list(zip(left, right))
        if not pairs:
            self._record_report(None)
            return []
        bits = max(max(x.bit_length(), y.bit_length(), 1) for x, y in pairs)
        products, report = self.backend.multiply_many(
            self, self.multiplier(bits=bits), pairs
        )
        self._record_report(report)
        return products

    def multiply_with_report(
        self, a: int, b: int
    ) -> Tuple[int, Optional[object]]:
        """One product plus the backend's timing report (or ``None``)."""
        bits = max(int(a).bit_length(), int(b).bit_length(), 1)
        product, report = self.backend.multiply(
            self, self.multiplier(bits=bits), int(a), int(b)
        )
        self._record_report(report)
        return product, report

    # -- jobs --------------------------------------------------------------

    def scheduler(self):
        """The engine's lazily created :class:`~repro.engine.jobs.JobScheduler`.

        One scheduler per engine: jobs submitted through
        :meth:`submit` / :meth:`map` all share its FIFO dispatcher
        thread (and therefore execute in submission order against this
        engine).  Shut down via :meth:`close`.
        """
        from repro.engine.jobs import JobScheduler

        if self._scheduler is None or not self._scheduler.active:
            self._scheduler = JobScheduler(self)
        return self._scheduler

    def submit(self, job):
        """Queue a job (see :mod:`repro.engine.jobs`); returns its handle."""
        return self.scheduler().submit(job)

    def map(self, op, items, chunk=None, **op_kwargs):
        """Chunked job map over ``items`` — ordered, flattened results.

        Delegates to :meth:`repro.engine.jobs.JobScheduler.map` on the
        engine's scheduler.
        """
        return self.scheduler().map(op, items, chunk, **op_kwargs)

    def close(self) -> None:
        """Release the engine's asynchronous resources (idempotent).

        Drains and stops the job scheduler (if one was created) and
        shuts down any worker pool the backend holds (the
        ``software-mp`` process pool).  The engine itself stays usable
        for synchronous calls; schedulers and pools are rebuilt lazily
        on next use.
        """
        if self._scheduler is not None:
            self._scheduler.shutdown(wait=True)
            self._scheduler = None
        close_backend = getattr(self.backend, "close", None)
        if close_backend is not None:
            close_backend()

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- FHE contexts ------------------------------------------------------

    def fhe(self, params=None, rng: Optional[random.Random] = None):
        """An FHE context bound to this engine.

        ``params`` selects the scheme by type:

        - :class:`repro.fhe.params.FHEParams` (default: ``TOY``) → a
          :class:`repro.fhe.DGHV` instance whose ciphertext products
          run through :meth:`multiply` (and therefore through the
          engine's backend — on ``hw-model`` every homomorphic AND is
          cycle-counted);
        - :class:`repro.fhe.rlwe.RLWEParams` → an
          :class:`repro.fhe.RLWE` instance whose negacyclic ring
          products use the engine's *fused, decimated* negacyclic plan
          (kernel and cache included) — ψ-twist and untwist folded into
          the stage constants and the digit-reversal gathers skipped:
          RLWE spectra are internal to the scheme, so the
          permutation-free pair is safe end to end.  The scheme is also
          bound to this engine's compute backend, so every ring product
          (encryption masks, plaintext products, tensor/relinearization
          passes) shards on ``software-mp`` and is cycle-counted on
          ``hw-model``.

        Both return types implement the
        :class:`repro.fhe.ops.HEScheme` protocol.
        """
        from repro.fhe.dghv import DGHV
        from repro.fhe.params import FHEParams, TOY
        from repro.fhe.rlwe import RLWE, RLWEParams
        from repro.ntt.plan import TWIST_NEGACYCLIC

        if params is None:
            params = TOY
        if isinstance(params, RLWEParams):
            return RLWE(
                params,
                rng=rng,
                plan=self.plan(
                    params.n,
                    twist=TWIST_NEGACYCLIC,
                    ordering=ORDER_DECIMATED,
                ),
                engine=self,
            )
        if isinstance(params, FHEParams):
            return DGHV(
                params, multiplier=EngineMultiplier(self), rng=rng
            )
        raise TypeError(
            f"params must be FHEParams or RLWEParams, got {type(params)!r}"
        )

    # -- hardware model ----------------------------------------------------

    def hardware(
        self,
        plan: Optional[TransformPlan] = None,
        params: Optional[SSAParameters] = None,
    ):
        """The pooled :class:`~repro.hw.accelerator.HEAccelerator`.

        Only meaningful on the ``hw-model`` backend (raises otherwise).
        Defaults to the paper's 64K plan and SSA sizing.
        """
        if not isinstance(self.backend, HardwareModelBackend):
            raise ValueError(
                "hardware() requires the 'hw-model' backend; this engine "
                f"runs {self.backend.name!r}"
            )
        return self.backend.accelerator(self, plan, params)

    # -- cache management --------------------------------------------------

    def cache_stats(self) -> PlanCacheStats:
        """Stats of the engine's plan cache (empty when ``cache="off"``)."""
        if self._plan_cache is None:
            return PlanCacheStats(size=0, hits=0, misses=0)
        return self._plan_cache.stats()

    def clear_cache(self) -> None:
        """Drop the engine's cached plans, rings and multipliers.

        Also clears whatever the backend pooled against those plans
        (the hw-model's accelerator pool), so no dropped plan stays
        pinned through a backend reference.
        """
        if self._plan_cache is not None:
            self._plan_cache.clear()
        self._rings.clear()
        self._multipliers.clear()
        clear_backend = getattr(self.backend, "clear", None)
        if clear_backend is not None:
            clear_backend()

    # -- backend plumbing --------------------------------------------------

    def _transform(
        self,
        plan: TransformPlan,
        values: np.ndarray,
        inverse: bool = False,
    ) -> np.ndarray:
        """Backend dispatch for :class:`Ring` (``(batch, n)`` matrices)."""
        return self.backend.transform(self, plan, values, inverse=inverse)

    def _record_report(self, report: Optional[object]) -> None:
        self.last_report = report

    def _params_for_plan(self, plan: TransformPlan) -> SSAParameters:
        """SSA sizing matching ``plan`` (for accelerator construction)."""
        return SSAParameters(
            coefficient_bits=self.config.coefficient_bits,
            operand_coefficients=plan.n // 2,
        )


class EngineMultiplier:
    """A multiplier *strategy* delegating to an engine.

    Fulfils the pluggable-multiplier contract of :class:`repro.fhe.DGHV`
    (a ``(int, int) -> int`` callable) and additionally exposes
    ``multiply_many`` so :func:`repro.fhe.ops.he_mult_many` batches
    whole gate layers through one SSA pass.
    """

    def __init__(self, engine: Engine):
        self.engine = engine

    def __call__(self, a: int, b: int) -> int:
        return self.engine.multiply(a, b)  # type: ignore[return-value]

    def multiply(self, a: int, b: int) -> int:
        return self(a, b)

    def multiply_many(
        self, pairs: Sequence[Tuple[int, int]]
    ) -> List[int]:
        pairs = list(pairs)
        return self.engine.multiply(  # type: ignore[return-value]
            [a for a, _ in pairs], [b for _, b in pairs]
        )


_default_engine: Optional[Engine] = None


def default_engine() -> Engine:
    """The lazily-built process-default engine.

    Backs the deprecated top-level convenience functions
    (:func:`repro.ssa_multiply`, :func:`repro.plan_for_size`, ...).  It
    shares the process-wide plan cache, so plans it builds are the same
    objects legacy module-level calls see.  Constructed on first use —
    which is when its config reads ``REPRO_NTT_KERNEL``.
    """
    global _default_engine
    if _default_engine is None:
        _default_engine = Engine(
            config=ExecutionConfig(cache=CACHE_SHARED)
        )
    return _default_engine


__all__ = ["Engine", "EngineMultiplier", "default_engine"]
