"""The common FHE surface: the :class:`HEScheme` protocol and the
legacy DGHV gate helpers.

Every scheme the engine can hand out (`engine.fhe(...)` returns DGHV
for integer parameters and RLWE for ring parameters) implements one
method vocabulary — :class:`HEScheme` — so circuits, the jobs layer
and the serving tier can be written once:

    ``keygen() → encrypt/decrypt → add/multiply → noise_budget``

plus batched ``*_many`` forms of each.

The original free functions (``he_add``, ``he_mult``, ``he_mult_many``,
``he_xor_and_eval``) predate the protocol and survive as
``DeprecationWarning`` shims delegating to the private implementations
below; migrate to scheme methods (``scheme.add(a, b)``,
``scheme.multiply(keys, a, b)``, ...) — see the README migration table.

DGHV noise bookkeeping: addition sums noises (≈ +1 bit), multiplication
sums noise bit-lengths; reduction modulo ``x_0`` adds a constant.  A
:class:`NoiseBudgetError` is raised when an operation would exceed the
decryptable budget, so circuits fail loudly instead of silently
corrupting results.
"""

from __future__ import annotations

import warnings
from typing import (
    Any,
    Iterable,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from repro.fhe.dghv import DGHV, Ciphertext, KeyPair


@runtime_checkable
class HEScheme(Protocol):
    """The unified homomorphic-scheme vocabulary.

    Both `engine.fhe` bindings — :class:`repro.fhe.DGHV` (integers,
    bit plaintexts) and :class:`repro.fhe.RLWE` (rings, polynomial
    plaintexts) — satisfy this protocol, so generic circuits can take
    "any scheme".  ``key`` arguments are whatever the scheme's
    ``keygen`` returned (the evaluation subset suffices where the
    scheme supports it, e.g. RLWE relinearization keys).
    """

    def keygen(self) -> Any:
        """Draw a fresh key object (secret + evaluation material)."""
        ...

    def encrypt(self, key: Any, message: Any) -> Any:
        ...

    def decrypt(self, key: Any, ciphertext: Any) -> Any:
        ...

    def encrypt_many(self, key: Any, messages: Sequence[Any]) -> List[Any]:
        ...

    def decrypt_many(
        self, key: Any, ciphertexts: Sequence[Any]
    ) -> List[Any]:
        ...

    def add(self, x: Any, y: Any) -> Any:
        """Homomorphic plaintext addition (no key material needed)."""
        ...

    def multiply(self, key: Any, x: Any, y: Any) -> Any:
        """Homomorphic plaintext product (key carries whatever the
        scheme needs: ``x_0`` for DGHV, relinearization keys for
        RLWE)."""
        ...

    def multiply_many(
        self, key: Any, pairs: Sequence[Tuple[Any, Any]]
    ) -> List[Any]:
        """Batched :meth:`multiply` — the accelerator-shaped form."""
        ...

    def noise_budget(self, key: Any, ciphertext: Any) -> float:
        """Remaining decryption headroom in bits (≤ 0: unreliable)."""
        ...


class NoiseBudgetError(RuntimeError):
    """The homomorphic noise outgrew the decryption budget."""


def _check_budget(result: Ciphertext, operation: str) -> Ciphertext:
    if not result.decryptable:
        raise NoiseBudgetError(
            f"{operation} pushes noise to ~2^{result.noise_bits:.0f}, "
            f"beyond the 2^{result.params.eta - 2} budget"
        )
    return result


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use {new} (HEScheme protocol)",
        DeprecationWarning,
        stacklevel=3,
    )


def _he_add(
    a: Ciphertext, b: Ciphertext, x0: Optional[int] = None
) -> Ciphertext:
    """Homomorphic XOR: ``c = c_a + c_b`` (optionally mod ``x_0``)."""
    if a.params is not b.params and a.params != b.params:
        raise ValueError("ciphertexts from different parameter sets")
    value = a.value + b.value
    if x0 is not None:
        value %= x0  # noise-free: x_0 is an exact multiple of p
    noise = max(a.noise_bits, b.noise_bits) + 1
    return _check_budget(
        Ciphertext(value=value, noise_bits=noise, params=a.params), "he_add"
    )


def _he_mult(
    scheme: DGHV,
    a: Ciphertext,
    b: Ciphertext,
    x0: Optional[int] = None,
) -> Ciphertext:
    """Homomorphic AND: ``c = c_a · c_b`` through the multiplier strategy.

    This is the accelerator workload: a full gamma × gamma-bit product
    (786,432 bits at the paper's parameters) for every gate.
    """
    if a.params != b.params:
        raise ValueError("ciphertexts from different parameter sets")
    value = scheme.multiplier(a.value, b.value)
    noise = a.noise_bits + b.noise_bits + 1
    if x0 is not None:
        # Reduce the 2·gamma-bit product back to gamma bits.  Because
        # x_0 = q_0·p exactly, the reduction leaves c mod p untouched.
        value %= x0
    return _check_budget(
        Ciphertext(value=value, noise_bits=noise, params=a.params), "he_mult"
    )


def _defining_class(cls: type, name: str):
    for klass in cls.__mro__:
        if name in klass.__dict__:
            return klass
    return None


def _product_batch(
    multiplier, operand_pairs: Sequence[Tuple[int, int]]
) -> List[int]:
    """Batched big-int products through a multiplier strategy.

    Uses the strategy's ``multiply_many`` when one is reachable: on
    the callable itself (the ``SSAMultiplier`` /
    :class:`repro.engine.EngineMultiplier` case), or on the object a
    bound ``multiply`` method belongs to — but only when
    ``multiply`` and ``multiply_many`` are defined by the same class,
    so a subclass that overrides one without the other (instrumented
    or clamped ``multiply``, say) is never silently bypassed.
    Otherwise falls back to a per-pair loop.
    """
    many = getattr(multiplier, "multiply_many", None)
    if many is None:
        owner = getattr(multiplier, "__self__", None)
        if (
            owner is not None
            and getattr(multiplier, "__func__", None)
            is getattr(type(owner), "multiply", None)
        ):
            cls = _defining_class(type(owner), "multiply")
            if cls is not None and cls is _defining_class(
                type(owner), "multiply_many"
            ):
                many = owner.multiply_many
    if many is not None:
        return [int(v) for v in many(operand_pairs)]
    return [multiplier(a, b) for a, b in operand_pairs]


def _he_mult_many(
    scheme: DGHV,
    pairs: Sequence[Tuple[Ciphertext, Ciphertext]],
    x0: Optional[int] = None,
) -> List[Ciphertext]:
    """Batched homomorphic AND: one result per ciphertext pair.

    Same semantics and noise bookkeeping as looping :func:`_he_mult`,
    but the gamma × gamma-bit ciphertext products are computed in one
    batched SSA pass whenever the scheme's multiplier strategy supports
    it — the realistic FHE-server shape of the accelerator workload
    (thousands of independent gate products per batch).
    """
    pairs = list(pairs)
    for a, b in pairs:
        if a.params != b.params:
            raise ValueError("ciphertexts from different parameter sets")
    values = _product_batch(
        scheme.multiplier, [(a.value, b.value) for a, b in pairs]
    )
    out: List[Ciphertext] = []
    for (a, b), value in zip(pairs, values):
        if x0 is not None:
            value %= x0
        noise = a.noise_bits + b.noise_bits + 1
        out.append(
            _check_budget(
                Ciphertext(value=value, noise_bits=noise, params=a.params),
                "he_mult",
            )
        )
    return out


def _he_xor_and_eval(
    scheme: DGHV,
    keys: KeyPair,
    bits_a: Iterable[int],
    bits_b: Iterable[int],
) -> List[int]:
    """Demo circuit: encrypted ``(a_i XOR b_i, a_i AND b_i)`` pairs.

    Encrypts both bit vectors, evaluates one XOR and one AND per
    position homomorphically, decrypts, and returns the interleaved
    plaintext results — a one-call end-to-end exercise used by tests
    and the quickstart example.  The AND gates (the accelerator
    workload) are evaluated as one :func:`_he_mult_many` batch.
    """
    encrypted = []
    xors: List[Ciphertext] = []
    for bit_a, bit_b in zip(bits_a, bits_b):
        ca = scheme.encrypt(keys, bit_a)
        cb = scheme.encrypt(keys, bit_b)
        encrypted.append((ca, cb))
        xors.append(_he_add(ca, cb, x0=keys.x0))
    ands = _he_mult_many(scheme, encrypted, x0=keys.x0)
    out: List[int] = []
    for c_xor, c_and in zip(xors, ands):
        out.append(scheme.decrypt(keys, c_xor))
        out.append(scheme.decrypt(keys, c_and))
    return out


# -- deprecation shims -------------------------------------------------------
#
# The pre-HEScheme free-function API.  Every shim is behavior-identical
# to its private implementation; new code should call the scheme
# methods instead (``scheme.add(a, b)``, ``scheme.multiply(keys, a, b)``,
# ``scheme.multiply_many(keys, pairs)``).


def he_add(
    a: Ciphertext, b: Ciphertext, x0: Optional[int] = None
) -> Ciphertext:
    """Deprecated: use ``scheme.add(a, b)`` (reduce mod ``x_0`` by
    passing the full scheme key to ``multiply``/gates instead)."""
    _deprecated("he_add", "DGHV.add")
    return _he_add(a, b, x0=x0)


def he_mult(
    scheme: DGHV,
    a: Ciphertext,
    b: Ciphertext,
    x0: Optional[int] = None,
) -> Ciphertext:
    """Deprecated: use ``scheme.multiply(keys, a, b)``."""
    _deprecated("he_mult", "DGHV.multiply")
    return _he_mult(scheme, a, b, x0=x0)


def he_mult_many(
    scheme: DGHV,
    pairs: Sequence[Tuple[Ciphertext, Ciphertext]],
    x0: Optional[int] = None,
) -> List[Ciphertext]:
    """Deprecated: use ``scheme.multiply_many(keys, pairs)``."""
    _deprecated("he_mult_many", "DGHV.multiply_many")
    return _he_mult_many(scheme, pairs, x0=x0)


def he_xor_and_eval(
    scheme: DGHV,
    keys: KeyPair,
    bits_a: Iterable[int],
    bits_b: Iterable[int],
) -> List[int]:
    """Deprecated: use ``DGHV.xor_and_eval(keys, bits_a, bits_b)``."""
    _deprecated("he_xor_and_eval", "DGHV.xor_and_eval")
    return _he_xor_and_eval(scheme, keys, bits_a, bits_b)
