"""Homomorphic operations on DGHV ciphertexts.

Addition is XOR and multiplication is AND on the encrypted bits; the
ciphertext product — a gamma × gamma-bit integer multiplication — is
exactly the operation the accelerator exists for, and is delegated to
the scheme's ``multiplier`` strategy.

Noise bookkeeping: addition sums noises (≈ +1 bit), multiplication
sums noise bit-lengths; reduction modulo ``x_0`` adds a constant.  A
:class:`NoiseBudgetError` is raised when an operation would exceed the
decryptable budget, so circuits fail loudly instead of silently
corrupting results.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.fhe.dghv import DGHV, Ciphertext, KeyPair


class NoiseBudgetError(RuntimeError):
    """The homomorphic noise outgrew the decryption budget."""


def _check_budget(result: Ciphertext, operation: str) -> Ciphertext:
    if not result.decryptable:
        raise NoiseBudgetError(
            f"{operation} pushes noise to ~2^{result.noise_bits:.0f}, "
            f"beyond the 2^{result.params.eta - 2} budget"
        )
    return result


def he_add(
    a: Ciphertext, b: Ciphertext, x0: Optional[int] = None
) -> Ciphertext:
    """Homomorphic XOR: ``c = c_a + c_b`` (optionally mod ``x_0``)."""
    if a.params is not b.params and a.params != b.params:
        raise ValueError("ciphertexts from different parameter sets")
    value = a.value + b.value
    if x0 is not None:
        value %= x0  # noise-free: x_0 is an exact multiple of p
    noise = max(a.noise_bits, b.noise_bits) + 1
    return _check_budget(
        Ciphertext(value=value, noise_bits=noise, params=a.params), "he_add"
    )


def he_mult(
    scheme: DGHV,
    a: Ciphertext,
    b: Ciphertext,
    x0: Optional[int] = None,
) -> Ciphertext:
    """Homomorphic AND: ``c = c_a · c_b`` through the multiplier strategy.

    This is the accelerator workload: a full gamma × gamma-bit product
    (786,432 bits at the paper's parameters) for every gate.
    """
    if a.params != b.params:
        raise ValueError("ciphertexts from different parameter sets")
    value = scheme.multiplier(a.value, b.value)
    noise = a.noise_bits + b.noise_bits + 1
    if x0 is not None:
        # Reduce the 2·gamma-bit product back to gamma bits.  Because
        # x_0 = q_0·p exactly, the reduction leaves c mod p untouched.
        value %= x0
    return _check_budget(
        Ciphertext(value=value, noise_bits=noise, params=a.params), "he_mult"
    )


def _defining_class(cls: type, name: str):
    for klass in cls.__mro__:
        if name in klass.__dict__:
            return klass
    return None


def _product_batch(
    multiplier, operand_pairs: Sequence[Tuple[int, int]]
) -> List[int]:
    """Batched big-int products through a multiplier strategy.

    Uses the strategy's ``multiply_many`` when one is reachable: on
    the callable itself (the ``SSAMultiplier`` /
    :class:`repro.engine.EngineMultiplier` case), or on the object a
    bound ``multiply`` method belongs to — but only when
    ``multiply`` and ``multiply_many`` are defined by the same class,
    so a subclass that overrides one without the other (instrumented
    or clamped ``multiply``, say) is never silently bypassed.
    Otherwise falls back to a per-pair loop.
    """
    many = getattr(multiplier, "multiply_many", None)
    if many is None:
        owner = getattr(multiplier, "__self__", None)
        if (
            owner is not None
            and getattr(multiplier, "__func__", None)
            is getattr(type(owner), "multiply", None)
        ):
            cls = _defining_class(type(owner), "multiply")
            if cls is not None and cls is _defining_class(
                type(owner), "multiply_many"
            ):
                many = owner.multiply_many
    if many is not None:
        return [int(v) for v in many(operand_pairs)]
    return [multiplier(a, b) for a, b in operand_pairs]


def he_mult_many(
    scheme: DGHV,
    pairs: Sequence[Tuple[Ciphertext, Ciphertext]],
    x0: Optional[int] = None,
) -> List[Ciphertext]:
    """Batched homomorphic AND: one result per ciphertext pair.

    Same semantics and noise bookkeeping as looping :func:`he_mult`,
    but the gamma × gamma-bit ciphertext products are computed in one
    batched SSA pass whenever the scheme's multiplier strategy supports
    it — the realistic FHE-server shape of the accelerator workload
    (thousands of independent gate products per batch).
    """
    pairs = list(pairs)
    for a, b in pairs:
        if a.params != b.params:
            raise ValueError("ciphertexts from different parameter sets")
    values = _product_batch(
        scheme.multiplier, [(a.value, b.value) for a, b in pairs]
    )
    out: List[Ciphertext] = []
    for (a, b), value in zip(pairs, values):
        if x0 is not None:
            value %= x0
        noise = a.noise_bits + b.noise_bits + 1
        out.append(
            _check_budget(
                Ciphertext(value=value, noise_bits=noise, params=a.params),
                "he_mult",
            )
        )
    return out


def he_xor_and_eval(
    scheme: DGHV,
    keys: KeyPair,
    bits_a: Iterable[int],
    bits_b: Iterable[int],
) -> List[int]:
    """Demo circuit: encrypted ``(a_i XOR b_i, a_i AND b_i)`` pairs.

    Encrypts both bit vectors, evaluates one XOR and one AND per
    position homomorphically, decrypts, and returns the interleaved
    plaintext results — a one-call end-to-end exercise used by tests
    and the quickstart example.  The AND gates (the accelerator
    workload) are evaluated as one :func:`he_mult_many` batch.
    """
    encrypted = []
    xors: List[Ciphertext] = []
    for bit_a, bit_b in zip(bits_a, bits_b):
        ca = scheme.encrypt(keys, bit_a)
        cb = scheme.encrypt(keys, bit_b)
        encrypted.append((ca, cb))
        xors.append(he_add(ca, cb, x0=keys.x0))
    ands = he_mult_many(scheme, encrypted, x0=keys.x0)
    out: List[int] = []
    for c_xor, c_and in zip(xors, ands):
        out.append(scheme.decrypt(keys, c_xor))
        out.append(scheme.decrypt(keys, c_and))
    return out
