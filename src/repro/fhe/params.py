"""DGHV parameter sets.

Notation follows van Dijk et al. (EUROCRYPT 2010):

- ``rho``: bit-length of the fresh-ciphertext noise,
- ``eta``: bit-length of the secret key (an odd integer),
- ``gamma``: bit-length of a ciphertext / public-key element,
- ``tau``: number of public-key elements.

``SMALL_DGHV`` is sized so that ciphertexts are exactly the paper's
786,432-bit operands; ``eta``/``rho`` follow the "small" setting of the
Coron et al. line of work the paper references.  ``tau`` is reduced far
below the security requirement (which would be > gamma + lambda) to
keep key generation tractable — the accelerator workload (the gamma ×
gamma-bit ciphertext product) is unaffected by ``tau``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FHEParams:
    """One DGHV instantiation."""

    name: str
    lam: int  # nominal security parameter (informational)
    rho: int
    eta: int
    gamma: int
    tau: int

    def validate(self) -> None:
        """Sanity constraints from the DGHV correctness analysis."""
        if not self.rho < self.eta:
            raise ValueError("need rho < eta for decryption correctness")
        if not self.eta < self.gamma:
            raise ValueError("need eta < gamma")
        if self.tau < 2:
            raise ValueError("need at least two public-key elements")

    @property
    def ciphertext_bits(self) -> int:
        """Ciphertext width — the SSA multiplier's operand size."""
        return self.gamma

    @property
    def multiplicative_depth(self) -> int:
        """Approximate supported depth before decryption fails.

        Each multiplication roughly doubles the noise bit-length; fresh
        noise is ``~rho + log2(tau)`` bits and correctness needs noise
        below ``eta - 2``.
        """
        import math

        fresh = self.rho + max(1, self.tau).bit_length() + 2
        budget = self.eta - 2
        if fresh <= 0 or budget <= fresh:
            return 0
        return max(0, int(math.floor(math.log2(budget / fresh))))


#: Tiny parameters for unit tests (fast keygen, depth ≥ 2).
TOY = FHEParams(name="toy", lam=8, rho=8, eta=96, gamma=2048, tau=8)

#: Mid-size parameters for integration tests.
MEDIUM = FHEParams(name="medium", lam=16, rho=16, eta=256, gamma=16384, tau=8)

#: The paper's operating point: 786,432-bit ciphertexts (DGHV "small
#: security parameter setting", Section III).
SMALL_DGHV = FHEParams(
    name="small-dghv",
    lam=42,
    rho=26,
    eta=1632,
    gamma=786_432,
    tau=16,
)
