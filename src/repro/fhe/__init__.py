"""Homomorphic encryption workloads for the accelerator.

The workload that motivates the accelerator (paper Sections I, III):
the 786,432-bit operands of the SSA multiplier "correspond to the small
security parameter setting for DGHV adopted in various research
papers".  This package implements two schemes behind one
:class:`repro.fhe.ops.HEScheme` protocol:

- the van Dijk–Gentry–Halevi–Vaikuntanathan scheme over the integers
  (symmetric and public-key variants) with a pluggable big-integer
  multiplier, so ciphertext products can be routed through
  :class:`repro.ssa.SSAMultiplier` or the accelerator model in
  :mod:`repro.hw.accelerator`;
- a BV-style RLWE scheme over ``Z_q[x]/(x^n + 1)`` — the lattice/LWE
  direction the paper names in Section III — with ciphertext products
  (relinearization key switching), BGV modulus switching and an
  RNS/CRT residue representation, every ring product a negacyclic NTT
  convolution on the engine.

This is a *functional* reproduction of the workload — parameters are
sized to exercise the accelerator, not to deliver cryptographic
security (the public-key element count ``tau`` in particular is far
below the security requirement, as documented in
:mod:`repro.fhe.params`).
"""

from repro.fhe.params import FHEParams, TOY, MEDIUM, SMALL_DGHV
from repro.fhe.dghv import DGHV, KeyPair, Ciphertext
from repro.fhe.ops import (
    HEScheme,
    he_add,
    he_mult,
    he_mult_many,
    he_xor_and_eval,
    NoiseBudgetError,
)
from repro.fhe.rlwe import (
    RLWE,
    RLWEParams,
    RLWECiphertext,
    RLWEKeyPair,
    RelinKeys,
    default_rns_primes,
)

__all__ = [
    "FHEParams",
    "TOY",
    "MEDIUM",
    "SMALL_DGHV",
    "DGHV",
    "KeyPair",
    "Ciphertext",
    "HEScheme",
    "he_add",
    "he_mult",
    "he_mult_many",
    "he_xor_and_eval",
    "NoiseBudgetError",
    "RLWE",
    "RLWEParams",
    "RLWECiphertext",
    "RLWEKeyPair",
    "RelinKeys",
    "default_rns_primes",
]
