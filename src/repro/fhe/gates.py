"""Encrypted boolean circuits over DGHV — the application toolkit.

Builds the full gate set from the two native homomorphic operations
(XOR = addition, AND = multiplication) and composes them into the
circuits the paper's application list implies (comparators, adders):

- ``he_not``, ``he_or``, ``he_nand``, ``he_mux``, ``he_eq``
- ``encrypted_ripple_add`` — an n-bit ripple-carry adder on encrypted
  operands (2 ciphertext multiplications per bit position)
- ``encrypted_equality`` — encrypted comparison of two bit vectors

Every AND consumes one full-size integer multiplication — the
accelerator operation — so each helper also reports its multiplication
count, letting applications budget accelerator time directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.fhe.dghv import DGHV, Ciphertext, KeyPair
from repro.fhe.ops import _he_add, _he_mult


@dataclass
class GateCounter:
    """Tracks the accelerator-relevant cost of a circuit."""

    and_gates: int = 0
    xor_gates: int = 0

    def cost_us(self, mult_us: float = 122.88) -> float:
        """Accelerator time: AND gates dominate (XOR is one addition)."""
        return self.and_gates * mult_us


def _one(scheme: DGHV, keys: KeyPair) -> Ciphertext:
    """An encryption of 1 (fresh randomness each call)."""
    return scheme.encrypt(keys, 1)


def he_not(
    scheme: DGHV, keys: KeyPair, a: Ciphertext, counter: GateCounter = None
) -> Ciphertext:
    """NOT a = a XOR 1."""
    if counter:
        counter.xor_gates += 1
    return _he_add(a, _one(scheme, keys), x0=keys.x0)


def he_or(
    scheme: DGHV,
    keys: KeyPair,
    a: Ciphertext,
    b: Ciphertext,
    counter: GateCounter = None,
) -> Ciphertext:
    """a OR b = a XOR b XOR (a AND b)."""
    if counter:
        counter.and_gates += 1
        counter.xor_gates += 2
    ab = _he_mult(scheme, a, b, x0=keys.x0)
    return _he_add(_he_add(a, b, x0=keys.x0), ab, x0=keys.x0)


def he_nand(
    scheme: DGHV,
    keys: KeyPair,
    a: Ciphertext,
    b: Ciphertext,
    counter: GateCounter = None,
) -> Ciphertext:
    """NAND — the universal gate: 1 XOR (a AND b)."""
    if counter:
        counter.and_gates += 1
        counter.xor_gates += 1
    return he_not(
        scheme, keys, _he_mult(scheme, a, b, x0=keys.x0), counter=None
    )


def he_mux(
    scheme: DGHV,
    keys: KeyPair,
    select: Ciphertext,
    if_one: Ciphertext,
    if_zero: Ciphertext,
    counter: GateCounter = None,
) -> Ciphertext:
    """select ? if_one : if_zero = if_zero XOR select·(if_one XOR if_zero)."""
    if counter:
        counter.and_gates += 1
        counter.xor_gates += 2
    diff = _he_add(if_one, if_zero, x0=keys.x0)
    gated = _he_mult(scheme, select, diff, x0=keys.x0)
    return _he_add(if_zero, gated, x0=keys.x0)


def he_eq(
    scheme: DGHV,
    keys: KeyPair,
    a: Ciphertext,
    b: Ciphertext,
    counter: GateCounter = None,
) -> Ciphertext:
    """Bit equality: NOT (a XOR b)."""
    if counter:
        counter.xor_gates += 2
    return he_not(scheme, keys, _he_add(a, b, x0=keys.x0))


def encrypted_ripple_add(
    scheme: DGHV,
    keys: KeyPair,
    bits_a: Sequence[Ciphertext],
    bits_b: Sequence[Ciphertext],
    counter: GateCounter = None,
) -> List[Ciphertext]:
    """n-bit ripple-carry addition of encrypted operands (LSB first).

    Per position: ``sum = a ^ b ^ c``;
    ``carry' = (a AND b) XOR (c AND (a XOR b))`` — two ciphertext
    multiplications per bit, noise depth grows linearly with width, so
    the usable width is bounded by the parameter set's noise budget
    (a NoiseBudgetError is raised when exceeded, never a wrong result).

    Returns ``n + 1`` ciphertext bits (including the final carry).
    """
    if len(bits_a) != len(bits_b):
        raise ValueError("operand widths differ")
    out: List[Ciphertext] = []
    carry: Ciphertext = None
    for a, b in zip(bits_a, bits_b):
        axb = _he_add(a, b, x0=keys.x0)
        if counter:
            counter.xor_gates += 1
        if carry is None:
            out.append(axb)
            carry = _he_mult(scheme, a, b, x0=keys.x0)
            if counter:
                counter.and_gates += 1
            continue
        out.append(_he_add(axb, carry, x0=keys.x0))
        generate = _he_mult(scheme, a, b, x0=keys.x0)
        propagate = _he_mult(scheme, carry, axb, x0=keys.x0)
        carry = _he_add(generate, propagate, x0=keys.x0)
        if counter:
            counter.and_gates += 2
            counter.xor_gates += 2
    out.append(carry)
    return out


def encrypted_equality(
    scheme: DGHV,
    keys: KeyPair,
    bits_a: Sequence[Ciphertext],
    bits_b: Sequence[Ciphertext],
    counter: GateCounter = None,
) -> Ciphertext:
    """One encrypted bit: 1 iff the two encrypted vectors are equal.

    AND-reduction of per-bit equalities — ``n − 1`` multiplications,
    log-depth would need balanced trees; a linear chain is fine for the
    small widths the noise budget admits.
    """
    if len(bits_a) != len(bits_b) or not bits_a:
        raise ValueError("need equal, nonzero widths")
    result = None
    for a, b in zip(bits_a, bits_b):
        eq = he_eq(scheme, keys, a, b, counter=counter)
        if result is None:
            result = eq
        else:
            result = _he_mult(scheme, result, eq, x0=keys.x0)
            if counter:
                counter.and_gates += 1
    return result
